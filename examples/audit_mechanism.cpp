// Mechanism auditing: before deploying an LDP pipeline, verify empirically
// that the perturbation actually provides the privacy it claims (Def. 1) —
// implementation bugs in flip probabilities or RNG usage silently weaken the
// guarantee and are invisible in utility metrics.
//
// The audit perturbs two fixed neighboring inputs many times, estimates the
// worst-case output likelihood ratio, and compares it against the analytic
// epsilon bound. OUE and GRR are tight mechanisms, so a correct
// implementation converges to the bound from below; exceeding it beyond
// statistical error indicates a leak.
//
// Run:  ./build/examples/audit_mechanism [--trials=200000]

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "ldp/audit.h"

using namespace retrasyn;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t trials =
      static_cast<uint64_t>(flags.GetInt("trials", 200000));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 99)));

  std::printf("auditing frequency oracles with %llu trials per input...\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-10s %-8s %-12s %-12s %-10s %s\n", "mechanism", "eps",
              "empirical", "bound", "std.err", "verdict");

  for (double eps : {0.5, 1.0, 2.0}) {
    const LdpAuditResult oue = AuditOue(eps, 16, trials, rng);
    std::printf("%-10s %-8.1f %-12.4f %-12.4f %-10.4f %s\n", "OUE", eps,
                oue.empirical_log_ratio, oue.analytic_bound,
                oue.standard_error,
                oue.ConsistentWithBound() ? "consistent" : "LEAK?");
    const LdpAuditResult grr = AuditGrr(eps, 16, trials, rng);
    std::printf("%-10s %-8.1f %-12.4f %-12.4f %-10.4f %s\n", "GRR", eps,
                grr.empirical_log_ratio, grr.analytic_bound,
                grr.standard_error,
                grr.ConsistentWithBound() ? "consistent" : "LEAK?");
  }

  std::printf(
      "\ndemonstration of a detected violation: OUE run at eps=2.0 but "
      "audited against a (false) claim of eps=0.5:\n");
  LdpAuditResult overspend = AuditOue(2.0, 16, trials, rng);
  overspend.analytic_bound = 0.5;
  std::printf("  empirical %.4f vs claimed %.4f -> %s\n",
              overspend.empirical_log_ratio, overspend.analytic_bound,
              overspend.ConsistentWithBound() ? "consistent (BUG)"
                                              : "violation detected");
  return 0;
}
