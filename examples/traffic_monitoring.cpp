// Real-time traffic monitoring (the paper's motivating scenario, SI): a city
// operations center wants a live view of congestion, but vehicles refuse to
// share raw locations. Each vehicle pushes LDP-perturbed transition states
// into a TrajectoryService ingestion session; a ReleaseServer subscribed to
// the service maintains the evolving private release and answers congestion
// queries against it instead of against raw data.
//
// The example dispatches a Beijing-like taxi workload event by event —
// Enter/Move/Quit per vehicle per timestamp, the way reports arrive in a
// deployment — and, every few "hours", compares the top congested grid cells
// in the *live* private view (served by the subscribed ReleaseServer) with
// the ground truth, plus the live count for a watched downtown region.
//
// Run:  ./build/examples/traffic_monitoring [--epsilon=1.0]

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/release_server.h"
#include "geo/grid.h"
#include "metrics/histogram.h"
#include "service/trajectory_service.h"
#include "stream/feeder.h"
#include "stream/hotspot_generator.h"

using namespace retrasyn;

namespace {

std::vector<uint32_t> TopCells(const std::vector<uint32_t>& counts, int k) {
  std::vector<double> scores(counts.begin(), counts.end());
  return TopKIndices(scores, k);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);

  // One synthetic "day and a half" of taxi traffic at 10-minute granularity.
  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 216;  // 1.5 days
  data_config.initial_users = 3500;
  data_config.mean_arrivals = 260.0;
  Rng data_rng(11);
  const StreamDatabase db = GenerateHotspotStreams(data_config, data_rng);

  const Grid grid(db.box(), 6);
  const StateSpace states(grid);

  RetraSynConfig config;
  config.epsilon = flags.GetDouble("epsilon", 1.0);
  config.window = static_cast<int>(flags.GetInt("w", 20));
  config.division = DivisionStrategy::kPopulation;
  config.lambda = db.AverageLength();
  config.seed = 3;
  auto service_or = TrajectoryService::Create(states, config);
  service_or.status().CheckOK();
  TrajectoryService& service = *service_or.value();
  IngestSession& session = service.session();

  // The operations center subscribes to every closed round.
  ReleaseServer server(grid);
  service.AddSink(&server);

  // A watched region: the 2x2 cell block at the grid center.
  const uint32_t k = grid.k();
  auto in_watched = [&](CellId c) {
    const uint32_t r = grid.Row(c), col = grid.Col(c);
    return r >= k / 2 - 1 && r <= k / 2 && col >= k / 2 - 1 && col <= k / 2;
  };

  // Ground truth for the comparison printouts only (the service never sees
  // it): the discretized original streams.
  const StreamFeeder truth_feeder(db, grid, states);

  std::printf("monitoring %zu taxi streams under %.1f-LDP (w=%d)...\n\n",
              db.streams().size(), config.epsilon, config.window);
  std::printf("%-6s %-8s %-18s %-18s %s\n", "t", "active", "true top-3",
              "released top-3", "watched region true/released");

  // Dispatch per-vehicle events round by round, as a live feed would.
  for (int64_t t = 0; t < db.num_timestamps(); ++t) {
    for (uint32_t idx = 0; idx < db.streams().size(); ++idx) {
      const UserStream& s = db.streams()[idx];
      if (s.enter_time == t) {
        session.Enter(idx, s.points.front()).CheckOK();
      } else if (s.ActiveAt(t)) {
        session.Move(idx, s.At(t)).CheckOK();
      } else if (s.end_time() == t) {
        session.Quit(idx).CheckOK();
      }
    }
    session.Tick().CheckOK();
    if (t % 36 != 35) continue;  // report every 6 hours

    // Live snapshots: ground truth vs the subscribed release server's view.
    const std::vector<uint32_t> truth =
        truth_feeder.cell_streams().DensityCounts(grid.NumCells(), t);
    const std::vector<uint32_t>& released = server.DensityAt(t);
    const auto true_top = TopCells(truth, 3);
    const auto syn_top = TopCells(released, 3);
    uint64_t true_watched = 0, syn_watched = 0;
    for (CellId c = 0; c < grid.NumCells(); ++c) {
      if (!in_watched(c)) continue;
      true_watched += truth[c];
      syn_watched += released[c];
    }
    char true_buf[64], syn_buf[64];
    std::snprintf(true_buf, sizeof(true_buf), "[%u %u %u]", true_top[0],
                  true_top[1], true_top[2]);
    std::snprintf(syn_buf, sizeof(syn_buf), "[%u %u %u]", syn_top[0],
                  syn_top[1], syn_top[2]);
    std::printf("%-6lld %-8llu %-18s %-18s %llu / %llu\n",
                static_cast<long long>(t),
                static_cast<unsigned long long>(server.ActiveAt(t)), true_buf,
                syn_buf, static_cast<unsigned long long>(true_watched),
                static_cast<unsigned long long>(syn_watched));
  }

  std::printf(
      "\nNote: the released view is computed purely from LDP reports; no raw "
      "trajectory ever reaches the center.\n");
  std::printf("w-event discipline intact: %s\n",
              service.retrasyn_engine()->report_tracker().HasViolation()
                  ? "NO (bug!)"
                  : "yes");
  return 0;
}
