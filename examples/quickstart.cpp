// Quickstart: the full RetraSyn pipeline in ~60 lines, driven through the
// streaming service layer.
//
//   1. Generate a small synthetic trajectory stream (stand-in for data
//      arriving from users' devices).
//   2. Discretize the space into a K x K grid and derive the transition-state
//      space.
//   3. Open a TrajectoryService and replay the data through its ingestion
//      session: per-timestamp LDP collection (OUE), dynamic mobility update,
//      and real-time synthesis under w-event epsilon-LDP. A mid-stream
//      snapshot shows that releases are consumable while the stream is open.
//   4. Inspect the released synthetic database and a couple of utility
//      metrics.
//   5. Dump the service's telemetry (Prometheus text format) with
//      --metrics: every pipeline counter and latency histogram, ready
//      for a scrape endpoint.
//
// Build & run:  ./build/examples/quickstart [--epsilon=1.0] [--w=20]
//               [--metrics]

#include <cstdio>

#include "common/flags.h"
#include "geo/grid.h"
#include "metrics/historical.h"
#include "metrics/queries.h"
#include "metrics/streaming.h"
#include "service/replay.h"
#include "service/trajectory_service.h"
#include "telemetry/prometheus_writer.h"
#include "stream/feeder.h"
#include "stream/hotspot_generator.h"

using namespace retrasyn;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);

  // 1. A small city-taxi stream database: ~2k streams over 200 timestamps.
  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 200;
  data_config.initial_users = 1500;
  data_config.mean_arrivals = 110.0;
  Rng data_rng(7);
  const StreamDatabase db = GenerateHotspotStreams(data_config, data_rng);
  std::printf("input: %zu streams, %llu points, %lld timestamps\n",
              db.streams().size(),
              static_cast<unsigned long long>(db.TotalPoints()),
              static_cast<long long>(db.num_timestamps()));

  // 2. Geospatial discretization and the transition-state space.
  const Grid grid(db.box(), /*k=*/6);
  const StateSpace states(grid);
  std::printf("grid: %u cells, state space |S| = %u\n", grid.NumCells(),
              states.size());

  // 3. RetraSyn with population division + adaptive allocation, behind the
  //    streaming service. Create() validates the config instead of crashing.
  RetraSynConfig config;
  config.epsilon = flags.GetDouble("epsilon", 1.0);
  config.window = static_cast<int>(flags.GetInt("w", 20));
  config.division = DivisionStrategy::kPopulation;
  config.allocation.kind = AllocationKind::kAdaptive;
  config.lambda = db.AverageLength();
  config.seed = 1;
  auto service_or = TrajectoryService::Create(states, config);
  if (!service_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  TrajectoryService& service = *service_or.value();

  // Feed the database through the ingestion session (live deployments call
  // session().Enter/Move/Quit directly as reports arrive).
  ReplayDatabase(db, service).CheckOK();

  // Releases are non-destructive: snapshot now, keep streaming later.
  const CellStreamSet synthetic =
      service.SnapshotRelease().ValueOrDie();
  std::printf("released: %zu synthetic streams, %llu points\n",
              synthetic.streams().size(),
              static_cast<unsigned long long>(synthetic.TotalPoints()));
  const RetraSynEngine& engine = *service.retrasyn_engine();
  std::printf("privacy: %llu user reports, each once per w=%d window: %s\n",
              static_cast<unsigned long long>(engine.total_reports()),
              config.window,
              engine.report_tracker().HasViolation() ? "VIOLATED" : "ok");

  // 4. A taste of the utility metrics (ground truth via the batch feeder).
  const StreamFeeder feeder(db, grid, states);
  const DensityIndex orig_density(feeder.cell_streams(), grid);
  const DensityIndex syn_density(synthetic, grid);
  std::printf("density error (mean per-timestamp JSD): %.4f  (worst: 0.6931)\n",
              AverageDensityError(orig_density, syn_density));
  std::printf("cell-popularity Kendall tau: %.4f  (best: 1.0)\n",
              CellPopularityKendallTau(feeder.cell_streams(), synthetic,
                                       grid.NumCells()));

  // Peek at one synthetic trajectory.
  const CellStream& s = synthetic.streams().front();
  std::printf("sample synthetic stream (enters t=%lld): ",
              static_cast<long long>(s.enter_time));
  for (size_t i = 0; i < s.cells.size() && i < 12; ++i) {
    std::printf("%u ", s.cells[i]);
  }
  std::printf("%s\n", s.cells.size() > 12 ? "..." : "");

  // 5. Unified telemetry: one snapshot covers ingest, synthesis, journal,
  //    and checkpoint metrics plus per-round lifecycle traces. A real
  //    deployment serves this string from its /metrics endpoint.
  if (flags.GetBool("metrics", false)) {
    const TelemetrySnapshot telemetry = service.telemetry();
    std::printf("\n--- /metrics ---\n%s",
                PrometheusText(telemetry).c_str());
    if (!telemetry.recent_rounds.empty()) {
      const RoundSpanSnapshot& last = telemetry.recent_rounds.back();
      std::printf("last round %lld: close %.3f ms\n",
                  static_cast<long long>(last.round),
                  last.phase_seconds[static_cast<size_t>(RoundPhase::kClose)] *
                      1e3);
    }
  }
  return 0;
}
