// Historical trajectory release: a data holder wants to hand a complete
// trajectory dataset to analysts as a *safe substitute* for the raw traces
// (the paper's historical-analysis use case, SV-B "Historical Metrics").
//
// Pipeline demonstrated here:
//   raw CSV  ->  import (gap splitting, bbox inference)  ->  RetraSyn run
//   ->  synthetic CSV export  +  trajectory-level fidelity report
//
// The example writes its own input CSV first (a network-constrained
// workload), so it is fully self-contained; point it at real data with
// --input=<path>.
//
// Run:  ./build/examples/historical_release [--input=streams.csv]
//       [--output=synthetic.csv] [--epsilon=1.0]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "geo/grid.h"
#include "metrics/historical.h"
#include "service/replay.h"
#include "service/trajectory_service.h"
#include "stream/feeder.h"
#include "stream/io.h"
#include "stream/network_generator.h"

using namespace retrasyn;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string input =
      flags.GetString("input", "/tmp/retrasyn_example_input.csv");
  const std::string output =
      flags.GetString("output", "/tmp/retrasyn_example_synthetic.csv");

  if (!flags.Has("input")) {
    // Self-contained mode: fabricate a network-constrained dataset and write
    // it to CSV, playing the role of the raw data owner.
    NetworkGeneratorConfig config;
    config.num_timestamps = 150;
    config.initial_objects = 600;
    config.arrivals_per_timestamp = 25;
    Rng rng(17);
    const StreamDatabase raw = GenerateNetworkStreams(config, rng);
    WriteStreamDatabaseCsv(raw, input).CheckOK();
    std::printf("wrote example raw data to %s\n", input.c_str());
  }

  // Import: groups per-user reports, splits runs at reporting gaps, infers
  // the bounding box and horizon.
  auto imported = LoadStreamDatabaseCsv(input);
  imported.status().CheckOK();
  const StreamDatabase& db = imported.value();
  std::printf("imported %zu streams / %llu points over %lld timestamps\n",
              db.streams().size(),
              static_cast<unsigned long long>(db.TotalPoints()),
              static_cast<long long>(db.num_timestamps()));

  const Grid grid(db.box(), static_cast<uint32_t>(flags.GetInt("k", 6)));
  const StateSpace states(grid);
  const StreamFeeder feeder(db, grid, states);

  RetraSynConfig config;
  config.epsilon = flags.GetDouble("epsilon", 1.0);
  config.window = static_cast<int>(flags.GetInt("w", 20));
  config.division = DivisionStrategy::kPopulation;
  config.lambda = db.AverageLength();
  config.seed = 5;
  auto service_or = TrajectoryService::Create(states, config);
  service_or.status().CheckOK();
  ReplayDatabase(db, *service_or.value()).CheckOK();
  const CellStreamSet synthetic =
      service_or.value()->SnapshotRelease().ValueOrDie();

  // Export the synthetic dataset: this file is safe to hand out; it was
  // derived only from LDP reports (post-processing, Thm. 2).
  WriteCellStreamsCsv(synthetic, grid, output).CheckOK();
  std::printf("wrote synthetic release (%zu streams) to %s\n",
              synthetic.streams().size(), output.c_str());

  // Trajectory-level fidelity report: the metrics that only a synthesis-based
  // release can serve (whole trajectories, not per-timestamp histograms).
  std::printf("\nfidelity of the release (vs. raw, lower is better unless "
              "noted):\n");
  std::printf("  cell-popularity Kendall tau : %+.4f (higher is better)\n",
              CellPopularityKendallTau(feeder.cell_streams(), synthetic,
                                       grid.NumCells()));
  std::printf("  trip (start/end) error      : %.4f\n",
              TripError(feeder.cell_streams(), synthetic, grid.NumCells()));
  std::printf("  stream length error         : %.4f\n",
              LengthError(feeder.cell_streams(), synthetic));
  std::printf("\nanalysts can now run arbitrary trajectory analytics on %s "
              "without touching raw data.\n",
              output.c_str());
  return 0;
}
