// Privacy/utility dial: how the privacy budget epsilon and the protection
// window w trade off against release utility, with the w-event accounting
// made visible. Useful when choosing deployment parameters.
//
//   * For each epsilon, runs both division strategies and reports density /
//     transition error plus the audited privacy ledgers.
//   * For each w at fixed epsilon, shows the utility cost of protecting
//     longer windows.
//
// Run:  ./build/examples/privacy_sweep

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "geo/grid.h"
#include "metrics/queries.h"
#include "metrics/streaming.h"
#include "service/replay.h"
#include "service/trajectory_service.h"
#include "stream/feeder.h"
#include "stream/hotspot_generator.h"

using namespace retrasyn;

namespace {

struct SweepPoint {
  double density;
  double transition;
  double max_window_budget;
  bool population_ok;
  uint64_t reports;
};

SweepPoint RunOnce(const StreamDatabase& db, const StreamFeeder& feeder,
                   const Grid& grid, const StateSpace& states, double epsilon,
                   int w, DivisionStrategy division, double lambda) {
  RetraSynConfig config;
  config.epsilon = epsilon;
  config.window = w;
  config.division = division;
  config.lambda = lambda;
  config.seed = 9;
  auto service_or = TrajectoryService::Create(states, config);
  service_or.status().CheckOK();
  TrajectoryService& service = *service_or.value();
  ReplayDatabase(db, service).CheckOK();
  const CellStreamSet synthetic = service.SnapshotRelease().ValueOrDie();
  const RetraSynEngine& engine = *service.retrasyn_engine();
  const DensityIndex orig(feeder.cell_streams(), grid);
  const DensityIndex syn(synthetic, grid);
  const TransitionIndex orig_tr(feeder.cell_streams(), states);
  const TransitionIndex syn_tr(synthetic, states);
  return SweepPoint{AverageDensityError(orig, syn),
                    AverageTransitionError(orig_tr, syn_tr),
                    engine.budget_ledger().MaxWindowSpend(),
                    !engine.report_tracker().HasViolation(),
                    engine.total_reports()};
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  (void)flags;

  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 300;
  data_config.initial_users = 900;
  data_config.mean_arrivals = 65.0;
  Rng rng(13);
  const StreamDatabase db = GenerateHotspotStreams(data_config, rng);
  const Grid grid(db.box(), 6);
  const StateSpace states(grid);
  const StreamFeeder feeder(db, grid, states);
  const double lambda = db.AverageLength();

  std::printf("dataset: %zu streams, %lld timestamps\n\n", db.streams().size(),
              static_cast<long long>(db.num_timestamps()));

  std::printf("-- epsilon sweep (w = 20) --\n");
  std::printf("%-8s %-10s %-10s %-12s %-22s %s\n", "eps", "division",
              "density", "transition", "max window budget", "reports");
  for (double eps : {0.5, 1.0, 1.5, 2.0}) {
    for (DivisionStrategy division :
         {DivisionStrategy::kBudget, DivisionStrategy::kPopulation}) {
      const SweepPoint p =
          RunOnce(db, feeder, grid, states, eps, 20, division, lambda);
      char budget_buf[64];
      if (division == DivisionStrategy::kBudget) {
        std::snprintf(budget_buf, sizeof(budget_buf), "%.4f <= eps (%.1f)",
                      p.max_window_budget, eps);
      } else {
        std::snprintf(budget_buf, sizeof(budget_buf), "1 report/window: %s",
                      p.population_ok ? "ok" : "VIOLATED");
      }
      std::printf("%-8.1f %-10s %-10.4f %-12.4f %-22s %llu\n", eps,
                  division == DivisionStrategy::kBudget ? "budget" : "popul.",
                  p.density, p.transition, budget_buf,
                  static_cast<unsigned long long>(p.reports));
    }
  }

  std::printf("\n-- window sweep (eps = 1.0, population division) --\n");
  std::printf("%-6s %-10s %-12s %s\n", "w", "density", "transition",
              "reports");
  for (int w : {10, 20, 30, 40, 50}) {
    const SweepPoint p = RunOnce(db, feeder, grid, states, 1.0, w,
                                 DivisionStrategy::kPopulation, lambda);
    std::printf("%-6d %-10.4f %-12.4f %llu\n", w, p.density, p.transition,
                static_cast<unsigned long long>(p.reports));
  }
  std::printf(
      "\nlarger w protects longer location histories but thins the "
      "per-timestamp report population; epsilon buys utility directly.\n");
  return 0;
}
