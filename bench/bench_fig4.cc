// Figure 4 reproduction: impact of the window size w in {10, 20, 30, 40, 50}
// on Transition Error, Query Error and Trip Error for all six methods on the
// T-Drive-like and Oldenburg-like datasets.
//
// Expected shape (paper SV-D Fig. 4): RetraSyn wins at every w; its utility
// declines mildly as w grows (less budget/users per timestamp); LBD/LPD are
// flat-ish in w (exponential decay is w-independent), LBA/LPA degrade more.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  std::vector<int> windows{10, 20, 30, 40, 50};
  if (flags.Has("w")) windows = {options.window};

  const std::vector<MethodId> methods{MethodId::kLBD,       MethodId::kLBA,
                                      MethodId::kLPD,       MethodId::kLPA,
                                      MethodId::kRetraSynB, MethodId::kRetraSynP};

  std::printf("=== Figure 4: impact of window size w (eps=%.1f, K=%u) ===\n",
              options.epsilon, options.grid_k);
  TablePrinter csv_table({"dataset", "w", "method", "transition_error",
                          "query_error", "trip_error"});

  for (DatasetKind kind :
       {DatasetKind::kTDriveLike, DatasetKind::kOldenburgLike}) {
    const NamedDataset dataset = Prepare(kind, options);
    TablePrinter table(
        {"w", "method", "TransitionError", "QueryError", "TripError"});
    for (size_t wi = 0; wi < windows.size(); ++wi) {
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        const RunResult result =
            RunMethod(methods[mi], dataset, options, options.epsilon,
                      windows[wi], AllocationKind::kAdaptive, wi * 10 + mi);
        table.AddRow({std::to_string(windows[wi]), MethodName(methods[mi]),
                      FormatDouble(result.metrics.transition_error),
                      FormatDouble(result.metrics.query_error),
                      FormatDouble(result.metrics.trip_error)});
        csv_table.AddRow({dataset.name, std::to_string(windows[wi]),
                          MethodName(methods[mi]),
                          FormatDouble(result.metrics.transition_error),
                          FormatDouble(result.metrics.query_error),
                          FormatDouble(result.metrics.trip_error)});
      }
      if (wi + 1 < windows.size()) table.AddRow(TablePrinter::Separator());
    }
    std::printf("\n--- %s ---\n", dataset.name.c_str());
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
