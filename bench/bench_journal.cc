// Journal durability cost: append throughput per fsync policy and crash
// recovery time.
//
// Two measurement families, each swept over FsyncPolicy
// {never, every_round, every_record}:
//
//   append   — raw JournalWriter throughput on a scripted random-walk event
//              stream (users x rounds Moves + one Tick per round), isolating
//              the wire format + I/O cost from the engine: events/s, MB/s,
//              and the per-round boundary cost the ingest thread pays under
//              each policy.
//   recover  — a real journaled TrajectoryService ingests the same workload,
//              then TrajectoryService::Recover rebuilds it from disk: total
//              recovery wall time and replayed rounds/s (scan + decode +
//              full engine replay).
//
// Output: a table on stderr and a JSON array (--json, default
// BENCH_journal.json); --quick shrinks the workload for CI smoke runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "geo/grid.h"
#include "geo/state_space.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

constexpr FsyncPolicy kPolicies[] = {FsyncPolicy::kNever,
                                     FsyncPolicy::kEveryRound,
                                     FsyncPolicy::kEveryRecord};

struct AppendResult {
  FsyncPolicy fsync;
  uint64_t events = 0;
  uint64_t bytes = 0;
  double seconds = 0.0;
};

/// Raw writer throughput: no engine, just encode + append + policy fsyncs.
AppendResult RunAppend(FsyncPolicy policy, uint32_t users, int rounds,
                       uint64_t seed) {
  const std::string dir = MakeTempDir("bench-journal-", ".").ValueOrDie();
  JournalOptions options;
  options.fsync = policy;
  auto writer = JournalWriter::Open(dir, options);
  writer.status().CheckOK();

  Rng rng(seed);
  AppendResult result;
  result.fsync = policy;
  Stopwatch watch;
  for (uint64_t u = 0; u < users; ++u) {
    writer.value()
        ->Append(JournalEvent::Enter(
            u, Point{rng.UniformDouble() * 1000.0,
                     rng.UniformDouble() * 1000.0}))
        .CheckOK();
  }
  writer.value()->Append(JournalEvent::Tick()).CheckOK();
  for (int t = 1; t < rounds; ++t) {
    for (uint64_t u = 0; u < users; ++u) {
      writer.value()
          ->Append(JournalEvent::Move(
              u, Point{rng.UniformDouble() * 1000.0,
                       rng.UniformDouble() * 1000.0}))
          .CheckOK();
    }
    writer.value()->Append(JournalEvent::Tick()).CheckOK();
  }
  writer.value()->Close().CheckOK();
  result.seconds = watch.ElapsedSeconds();
  result.events = writer.value()->records_appended();
  result.bytes = writer.value()->bytes_appended();
  RemoveDirTree(dir).CheckOK();
  return result;
}

struct RecoverResult {
  FsyncPolicy fsync;
  int rounds = 0;
  uint64_t events = 0;
  double ingest_seconds = 0.0;
  double recover_seconds = 0.0;
};

/// Journaled service ingest, then a timed Recover of the produced journal.
RecoverResult RunRecover(FsyncPolicy policy, const StateSpace& states,
                         uint32_t users, int rounds, uint64_t seed) {
  const std::string dir = MakeTempDir("bench-journal-", ".").ValueOrDie();
  const BoundingBox& box = states.grid().box();

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = static_cast<double>(rounds) / 2.0;
  config.seed = seed;
  config.journal_dir = dir;
  config.journal_fsync = policy;

  RecoverResult result;
  result.fsync = policy;
  result.rounds = rounds;
  {
    auto service = TrajectoryService::Create(states, config);
    service.status().CheckOK();
    IngestSession& session = service.value()->session();
    Rng rng(seed);
    std::vector<Point> at(users);
    Stopwatch ingest;
    for (int t = 0; t < rounds; ++t) {
      for (uint64_t u = 0; u < users; ++u) {
        if (t == 0) {
          at[u] = Point{box.min_x + rng.UniformDouble() * box.Width(),
                        box.min_y + rng.UniformDouble() * box.Height()};
          session.Enter(u, at[u]).CheckOK();
        } else {
          at[u] = box.Clamp(
              Point{at[u].x + (rng.UniformDouble() - 0.5) * box.Width() * 0.03,
                    at[u].y +
                        (rng.UniformDouble() - 0.5) * box.Height() * 0.03});
          session.Move(u, at[u]).CheckOK();
        }
      }
      session.Tick().CheckOK();
    }
    result.ingest_seconds = ingest.ElapsedSeconds();
    result.events = service.value()->journal()->records_appended();
  }

  Stopwatch recover;
  auto recovered = TrajectoryService::Recover(states, config);
  recovered.status().CheckOK();
  result.recover_seconds = recover.ElapsedSeconds();
  if (recovered.value()->rounds_closed() != rounds) {
    std::fprintf(stderr, "recovery round mismatch\n");
    std::exit(1);
  }
  RemoveDirTree(dir).CheckOK();
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const uint32_t users =
      static_cast<uint32_t>(flags.GetInt("users", quick ? 1000 : 5000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", quick ? 20 : 100));
  const uint32_t grid_k =
      static_cast<uint32_t>(flags.GetInt("grid", quick ? 8 : 16));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_journal.json");

  const BoundingBox box{0.0, 0.0, 1000.0, 1000.0};
  const Grid grid(box, grid_k);
  const StateSpace states(grid);

  std::vector<AppendResult> appends;
  std::vector<RecoverResult> recovers;
  for (FsyncPolicy policy : kPolicies) {
    appends.push_back(RunAppend(policy, users, rounds, seed));
    const AppendResult& a = appends.back();
    std::fprintf(stderr,
                 "append  fsync=%-12s users=%6u rounds=%4d  %9.0f events/s  "
                 "%7.1f MB/s  %6.3f s\n",
                 FsyncPolicyName(policy), users, rounds,
                 static_cast<double>(a.events) / a.seconds,
                 static_cast<double>(a.bytes) / a.seconds / 1e6, a.seconds);
  }
  for (FsyncPolicy policy : kPolicies) {
    recovers.push_back(RunRecover(policy, states, users, rounds, seed));
    const RecoverResult& r = recovers.back();
    std::fprintf(stderr,
                 "recover fsync=%-12s users=%6u rounds=%4d  ingest %6.2f s  "
                 "recover %6.3f s  (%7.1f rounds/s)\n",
                 FsyncPolicyName(policy), users, rounds, r.ingest_seconds,
                 r.recover_seconds,
                 static_cast<double>(r.rounds) / r.recover_seconds);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  bool first = true;
  for (const AppendResult& a : appends) {
    std::fprintf(
        f,
        "%s  {\"bench\": \"journal\", \"mode\": \"append\", \"fsync\": "
        "\"%s\", \"users\": %u, \"rounds\": %d, \"events\": %llu, "
        "\"bytes\": %llu, \"seconds\": %.4f, \"events_per_s\": %.0f, "
        "\"mb_per_s\": %.2f}",
        first ? "" : ",\n", FsyncPolicyName(a.fsync), users, rounds,
        static_cast<unsigned long long>(a.events),
        static_cast<unsigned long long>(a.bytes), a.seconds,
        static_cast<double>(a.events) / a.seconds,
        static_cast<double>(a.bytes) / a.seconds / 1e6);
    first = false;
  }
  for (const RecoverResult& r : recovers) {
    std::fprintf(
        f,
        "%s  {\"bench\": \"journal\", \"mode\": \"recover\", \"fsync\": "
        "\"%s\", \"grid_k\": %u, \"users\": %u, \"rounds\": %d, "
        "\"events\": %llu, \"ingest_s\": %.3f, \"recover_s\": %.4f, "
        "\"rounds_per_s\": %.1f}",
        first ? "" : ",\n", FsyncPolicyName(r.fsync), grid_k, users, r.rounds,
        static_cast<unsigned long long>(r.events), r.ingest_seconds,
        r.recover_seconds,
        static_cast<double>(r.rounds) / r.recover_seconds);
    first = false;
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::Main(argc, argv); }
