// Shared scaffolding for the table/figure bench binaries.
//
// Every bench accepts:
//   --scale=<float>    dataset population multiplier relative to the bench's
//                      laptop-scale default (1.0 = default; raise toward the
//                      paper's full sizes with more time/memory)
//   --seed=<int>       dataset + engine seed base
//   --k=<int>          grid granularity (paper default 6)
//   --w=<int>          window size (paper default 20)
//   --phi=<int>        evaluation time range (paper default 10)
//   --queries=<int>    random queries per metric evaluation (paper: 100)
//   --csv=<path>       also dump the table as CSV
//   --grid_backend=<uniform|quadtree>
//                      spatial discretization backend; the quadtree is built
//                      at a matched effective cell count (see MakeSpatialGrid)
//
// Benches that drive a TrajectoryService additionally accept
//   --dump_telemetry   render the service's full telemetry snapshot
//                      (Prometheus text format) to stderr after each run,
//                      instead of per-bench one-off stat printing

#ifndef RETRASYN_BENCH_BENCH_COMMON_H_
#define RETRASYN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "eval/datasets.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "service/trajectory_service.h"
#include "telemetry/prometheus_writer.h"

namespace retrasyn {
namespace bench {

/// Laptop-scale default population multiplier per dataset; chosen so each
/// bench binary finishes in about a minute on a laptop while preserving the
/// population ratios of the paper's Table I.
inline double DefaultScale(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kTDriveLike:
      return 0.2;   // ~46k streams, ~700 active users per timestamp
    case DatasetKind::kOldenburgLike:
      return 0.08;  // ~21k streams over 500 timestamps
    case DatasetKind::kSanJoaquinLike:
      return 0.04;  // ~40k streams over 1000 timestamps
    case DatasetKind::kRandomWalk:
      return 1.0;
  }
  return 1.0;
}

struct BenchOptions {
  double scale_mult = 1.0;
  uint64_t seed = 42;
  uint32_t grid_k = 6;
  GridBackend grid_backend = GridBackend::kUniform;
  int window = 20;
  double epsilon = 1.0;
  StreamingMetricsConfig metrics;
  std::string csv_path;

  static BenchOptions FromFlags(const Flags& flags) {
    BenchOptions options;
    options.scale_mult = flags.GetDouble("scale", 1.0);
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.grid_k = static_cast<uint32_t>(flags.GetInt("k", 6));
    const std::string backend = flags.GetString("grid_backend", "uniform");
    if (backend == "quadtree") {
      options.grid_backend = GridBackend::kQuadtree;
    } else if (backend != "uniform") {
      std::fprintf(stderr, "unknown --grid_backend '%s'\n", backend.c_str());
      std::abort();
    }
    options.window = static_cast<int>(flags.GetInt("w", 20));
    options.epsilon = flags.GetDouble("epsilon", 1.0);
    options.metrics.phi = flags.GetInt("phi", 10);
    options.metrics.num_queries =
        static_cast<int>(flags.GetInt("queries", 100));
    options.metrics.num_hotspot_ranges =
        static_cast<int>(flags.GetInt("hotspot_ranges", 100));
    options.metrics.num_pattern_ranges =
        static_cast<int>(flags.GetInt("pattern_ranges", 50));
    options.csv_path = flags.GetString("csv", "");
    return options;
  }
};

struct NamedDataset {
  std::string name;
  std::unique_ptr<PreparedDataset> prepared;
  double average_length = 1.0;
};

/// Generates and prepares one dataset at bench scale.
inline NamedDataset Prepare(DatasetKind kind, const BenchOptions& options) {
  DatasetSpec spec;
  switch (kind) {
    case DatasetKind::kTDriveLike:
      spec = TDriveLike(DefaultScale(kind) * options.scale_mult, options.seed);
      break;
    case DatasetKind::kOldenburgLike:
      spec = OldenburgLike(DefaultScale(kind) * options.scale_mult,
                           options.seed + 1);
      break;
    case DatasetKind::kSanJoaquinLike:
      spec = SanJoaquinLike(DefaultScale(kind) * options.scale_mult,
                            options.seed + 2);
      break;
    case DatasetKind::kRandomWalk:
      spec = RandomWalkSmall(options.scale_mult, options.seed + 3);
      break;
  }
  const StreamDatabase db = MakeDataset(spec);
  NamedDataset out;
  out.name = spec.name;
  out.average_length = db.AverageLength();
  out.prepared = std::make_unique<PreparedDataset>(db, options.grid_k,
                                                   options.grid_backend);
  std::fprintf(stderr,
               "[%s] backend=%s streams=%zu points=%llu avg_len=%.2f "
               "horizon=%lld "
               "cells=%u states=%u\n",
               spec.name.c_str(), GridBackendName(options.grid_backend),
               db.streams().size(),
               static_cast<unsigned long long>(db.TotalPoints()),
               db.AverageLength(),
               static_cast<long long>(db.num_timestamps()),
               out.prepared->grid().NumCells(),
               out.prepared->states().size());
  return out;
}

/// Runs one method over a prepared dataset with the bench options.
inline RunResult RunMethod(MethodId id, const NamedDataset& dataset,
                           const BenchOptions& options, double epsilon,
                           int window,
                           AllocationKind allocation = AllocationKind::kAdaptive,
                           uint64_t engine_seed_offset = 0) {
  auto engine = MakeEngine(id, dataset.prepared->states(), epsilon, window,
                           allocation, dataset.average_length,
                           options.seed + 100 + engine_seed_offset);
  return RunEngine(*dataset.prepared, *engine, options.metrics,
                   options.seed + 1000);
}

/// Whether --dump_telemetry was passed.
inline bool DumpTelemetryRequested(const Flags& flags) {
  return flags.GetBool("dump_telemetry", false);
}

/// Renders \p service's telemetry snapshot (every counter, gauge, and
/// latency histogram across ingest/synthesis/journal/checkpoint, in
/// Prometheus text format) to stderr, tagged so multi-run benches stay
/// greppable. One shared exposition path instead of each bench hand-printing
/// the stats it happens to know about.
inline void DumpTelemetry(const std::string& tag,
                          const TrajectoryService& service) {
  std::fprintf(stderr, "--- telemetry [%s] ---\n%s--- end telemetry ---\n",
               tag.c_str(), PrometheusText(service.telemetry()).c_str());
}

inline void MaybeWriteCsv(const TablePrinter& table,
                          const BenchOptions& options) {
  if (options.csv_path.empty()) return;
  if (table.WriteCsv(options.csv_path)) {
    std::fprintf(stderr, "wrote %s\n", options.csv_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", options.csv_path.c_str());
  }
}

}  // namespace bench
}  // namespace retrasyn

#endif  // RETRASYN_BENCH_BENCH_COMMON_H_
