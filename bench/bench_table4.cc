// Table IV reproduction: ablation study of the DMU mechanism and the
// entering/quitting modeling at eps = 1.0.
//
//   AllUpdate_{b,p} — the whole mobility model is replaced every round.
//   NoEQ_{b,p}      — movement-only model, frozen synthetic population.
//   RetraSyn_{b,p}  — the full method.
//
// Expected shape (paper SV-D): AllUpdate loses on global/semantic metrics
// (accumulated perturbation noise); NoEQ collapses on trajectory-level
// metrics (Length Error -> ln 2, degraded Kendall tau / Trip error) while
// looking acceptable on global metrics.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  std::vector<DatasetKind> kinds{DatasetKind::kTDriveLike,
                                 DatasetKind::kOldenburgLike,
                                 DatasetKind::kSanJoaquinLike};
  if (flags.Has("dataset")) {
    auto spec = DatasetByName(flags.GetString("dataset", ""), 1.0, 1);
    spec.status().CheckOK();
    kinds = {spec.value().kind};
  }

  const std::vector<MethodId> variants{
      MethodId::kAllUpdateB, MethodId::kAllUpdateP, MethodId::kNoEQB,
      MethodId::kNoEQP,      MethodId::kRetraSynB,  MethodId::kRetraSynP};

  std::printf(
      "=== Table IV: ablation of DMU and enter/quit modeling (eps=%.1f, "
      "w=%d, K=%u) ===\n",
      options.epsilon, options.window, options.grid_k);
  TablePrinter csv_table({"dataset", "model", "density_error", "query_error",
                          "hotspot_ndcg", "transition_error", "pattern_f1",
                          "kendall_tau", "trip_error", "length_error"});

  for (DatasetKind kind : kinds) {
    const NamedDataset dataset = Prepare(kind, options);
    TablePrinter table({"model", "Density", "Query", "Hotspot", "Transition",
                        "PatternF1", "KendallTau", "Trip", "Length"});
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      const RunResult result =
          RunMethod(variants[vi], dataset, options, options.epsilon,
                    options.window, AllocationKind::kAdaptive, vi);
      const MetricsReport& m = result.metrics;
      table.AddRow({MethodName(variants[vi]), FormatDouble(m.density_error),
                    FormatDouble(m.query_error), FormatDouble(m.hotspot_ndcg),
                    FormatDouble(m.transition_error),
                    FormatDouble(m.pattern_f1), FormatDouble(m.kendall_tau),
                    FormatDouble(m.trip_error), FormatDouble(m.length_error)});
      csv_table.AddRow(
          {dataset.name, MethodName(variants[vi]),
           FormatDouble(m.density_error), FormatDouble(m.query_error),
           FormatDouble(m.hotspot_ndcg), FormatDouble(m.transition_error),
           FormatDouble(m.pattern_f1), FormatDouble(m.kendall_tau),
           FormatDouble(m.trip_error), FormatDouble(m.length_error)});
    }
    std::printf("\n--- %s ---\n", dataset.name.c_str());
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
