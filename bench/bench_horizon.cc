// Long-horizon resource profile: what stream-index recycling buys a service
// that runs for months instead of a one-shot experiment.
//
// A steady-churn workload (constant live population, `churn` streams
// quitting and entering per round) is driven for `rounds` rounds twice —
// recycling on and off. For each mode the bench reports per-round Tick()
// cost early in the run (rounds [100, 200)) vs at the end of the horizon,
// the session's index high-water mark, the engine's dense per-user slot
// count, and the process RSS before/mid/after the run. Without recycling
// the index space and dense vectors grow linearly with every stream ever
// started; with it they stay at the steady-state pool
// (live + churn * (window + 2)).
//
// A third mode, recycle_on_spill, additionally journals the workload and
// checkpoints every `every` rounds with history spill: closed streams move
// to checkpoint-owned spill files instead of accumulating in the engine,
// so steady-state RSS is flat in the horizon (rss_mid == rss_end) where
// plain recycle_on still grows linearly with the closed-stream history.
//
// Modes run smallest-footprint first (spill, on, off) so no reading is
// inflated by allocator pages a bigger earlier run grew (pollution in this
// order only shrinks the reported gaps, never fakes one).
//
// The whole profile is repeated per grid backend (--backends, default
// "uniform,quadtree", via MakeSpatialGrid at matched cell count): long-horizon
// resource behavior must be a property of the service, not of the uniform
// discretization it happened to be measured on.
//
// Output: a table on stderr and a JSON array (--json, default
// BENCH_horizon.json); --quick shrinks the workload for CI smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/spatial_grid.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

/// VmRSS of this process in MiB (0 when /proc is unavailable).
double RssMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%ld", &kb);
      break;
    }
  }
  std::fclose(f);
  return static_cast<double>(kb) / 1024.0;
}

struct ModeResult {
  std::string grid_backend;
  std::string mode;
  double tick_early_ms = 0.0;  ///< mean over rounds [100, 200)
  double tick_late_ms = 0.0;   ///< mean over the final 100 rounds
  double tick_p99_ms = 0.0;
  uint32_t index_high_water = 0;
  size_t dense_user_slots = 0;
  size_t free_indices = 0;
  uint64_t total_retired = 0;
  uint64_t streams_spilled = 0;
  double rss_start_mb = 0.0;
  double rss_mid_mb = 0.0;  ///< sampled at rounds / 2
  double rss_end_mb = 0.0;
  double total_s = 0.0;
};

double MeanRange(const std::vector<double>& v, size_t lo, size_t hi) {
  lo = std::min(lo, v.size());
  hi = std::min(hi, v.size());
  if (hi <= lo) return 0.0;
  double sum = 0.0;
  for (size_t i = lo; i < hi; ++i) sum += v[i];
  return sum / static_cast<double>(hi - lo);
}

ModeResult RunMode(bool recycle, bool spill, const StateSpace& states,
                   const SpatialGrid& grid, int64_t rounds, int64_t live,
                   int64_t churn, int window, int64_t every, uint64_t seed) {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = window;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = static_cast<double>(live) / static_cast<double>(churn);
  config.seed = seed;
  config.recycle_stream_indices = recycle;
  std::string journal_dir, checkpoint_dir;
  if (spill) {
    journal_dir = MakeTempDir("bench-horizon-journal-", ".").ValueOrDie();
    checkpoint_dir = MakeTempDir("bench-horizon-ckpt-", ".").ValueOrDie();
    config.journal_dir = journal_dir;
    config.journal_fsync = FsyncPolicy::kNever;
    config.journal_segment_bytes = 1 << 20;  // rotate → compactable prefix
    config.checkpoint_dir = checkpoint_dir;
    config.checkpoint_every_rounds = every;
  }

  ModeResult result;
  result.grid_backend = GridBackendName(grid.backend());
  result.mode = spill ? "recycle_on_spill" : (recycle ? "recycle_on" : "recycle_off");
  result.rss_start_mb = RssMb();

  auto service = TrajectoryService::Create(states, config);
  service.status().CheckOK();
  IngestSession& session = service.value()->session();

  // Same steady-churn schedule as DriveChurnRound(s) in the horizon-soak
  // and recovery tests — keep the three in sync so the committed numbers
  // and the CI bounds describe the same workload.
  const int64_t lifetime = live / churn;
  const int64_t cells = static_cast<int64_t>(grid.NumCells());
  auto at = [&](int64_t u, int64_t t) {
    return grid.CellCenter(static_cast<CellId>((u * 7 + t) % cells));
  };

  std::vector<double> tick_ms;
  tick_ms.reserve(static_cast<size_t>(rounds));
  Stopwatch total;
  for (int64_t t = 0; t < rounds; ++t) {
    const int64_t first = std::max<int64_t>(0, (t - lifetime) * churn);
    for (int64_t u = first; u < (t + 1) * churn; ++u) {
      const int64_t entered = u / churn;
      if (entered == t) {
        session.Enter(static_cast<uint64_t>(u), at(u, t)).CheckOK();
      } else if (t < entered + lifetime) {
        session.Move(static_cast<uint64_t>(u), at(u, t)).CheckOK();
      } else if (t == entered + lifetime) {
        session.Quit(static_cast<uint64_t>(u)).CheckOK();
      }
    }
    Stopwatch watch;
    session.Tick().CheckOK();
    tick_ms.push_back(watch.ElapsedSeconds() * 1e3);
    if (t == rounds / 2) result.rss_mid_mb = RssMb();
  }
  if (spill) service.value()->Drain().CheckOK();
  result.total_s = total.ElapsedSeconds();
  result.rss_end_mb = RssMb();

  result.tick_early_ms = MeanRange(tick_ms, 100, 200);
  result.tick_late_ms =
      MeanRange(tick_ms, tick_ms.size() - std::min<size_t>(100, tick_ms.size()),
                tick_ms.size());
  std::vector<double> sorted = tick_ms;
  std::sort(sorted.begin(), sorted.end());
  result.tick_p99_ms =
      sorted[std::min(sorted.size() - 1,
                      static_cast<size_t>(0.99 * (sorted.size() - 1) + 0.5))];
  result.index_high_water = session.index_high_water();
  result.free_indices = session.num_free_indices();
  const RetraSynEngine* engine = service.value()->retrasyn_engine();
  result.dense_user_slots = engine->dense_user_slots();
  result.total_retired = engine->total_retired();
  if (spill) {
    result.streams_spilled = service.value()->checkpoint()->streams_spilled();
    service.value().reset();
    RemoveDirTree(journal_dir).CheckOK();
    RemoveDirTree(checkpoint_dir).CheckOK();
  }
  return result;
}

bool WriteJson(const std::string& path, uint32_t grid_k, int64_t rounds,
               int64_t live, int64_t churn, int window,
               const std::vector<ModeResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    std::fprintf(
        f,
        "  {\"bench\": \"horizon\", \"grid_backend\": \"%s\", "
        "\"grid_k\": %u, \"rounds\": %lld, "
        "\"live\": %lld, \"churn\": %lld, \"window\": %d, \"mode\": \"%s\", "
        "\"tick_early_ms\": %.4f, \"tick_late_ms\": %.4f, "
        "\"tick_p99_ms\": %.4f, \"index_high_water\": %u, "
        "\"dense_user_slots\": %zu, \"free_indices\": %zu, "
        "\"total_retired\": %llu, \"streams_spilled\": %llu, "
        "\"rss_start_mb\": %.1f, \"rss_mid_mb\": %.1f, "
        "\"rss_end_mb\": %.1f, \"total_s\": %.3f}%s\n",
        m.grid_backend.c_str(), grid_k, static_cast<long long>(rounds),
        static_cast<long long>(live),
        static_cast<long long>(churn), window, m.mode.c_str(),
        m.tick_early_ms, m.tick_late_ms, m.tick_p99_ms, m.index_high_water,
        m.dense_user_slots, m.free_indices,
        static_cast<unsigned long long>(m.total_retired),
        static_cast<unsigned long long>(m.streams_spilled), m.rss_start_mb,
        m.rss_mid_mb, m.rss_end_mb, m.total_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const int64_t rounds = flags.GetInt("rounds", quick ? 1500 : 10000);
  const int64_t live = flags.GetInt("live", quick ? 500 : 2000);
  const int64_t churn = flags.GetInt("churn", quick ? 25 : 100);
  const uint32_t grid_k =
      static_cast<uint32_t>(flags.GetInt("grid", quick ? 8 : 16));
  const int window = static_cast<int>(flags.GetInt("window", 20));
  const int64_t every = flags.GetInt("every", 50);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_horizon.json");
  if (live % churn != 0) {
    std::fprintf(stderr, "live (%lld) must be a multiple of churn (%lld)\n",
                 static_cast<long long>(live), static_cast<long long>(churn));
    return 1;
  }

  const std::string backends_csv = flags.GetString("backends", "uniform,quadtree");
  std::vector<GridBackend> backends;
  {
    size_t pos = 0;
    while (pos < backends_csv.size()) {
      const size_t comma = backends_csv.find(',', pos);
      const std::string item = backends_csv.substr(
          pos, comma == std::string::npos ? backends_csv.size() - pos
                                          : comma - pos);
      if (item == "uniform") {
        backends.push_back(GridBackend::kUniform);
      } else if (item == "quadtree") {
        backends.push_back(GridBackend::kQuadtree);
      } else if (!item.empty()) {
        std::fprintf(stderr, "unknown grid backend '%s'\n", item.c_str());
        return 1;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const BoundingBox box{0.0, 0.0, 1000.0, 1000.0};
  std::vector<ModeResult> results;
  for (GridBackend backend : backends) {
    auto grid_or = MakeSpatialGrid(box, grid_k, backend);
    grid_or.status().CheckOK();
    const std::unique_ptr<SpatialGrid> grid = std::move(grid_or).value();
    const StateSpace states(*grid);
    results.push_back(RunMode(true, true, states, *grid, rounds, live, churn,
                              window, every, seed));
    results.push_back(RunMode(true, false, states, *grid, rounds, live, churn,
                              window, every, seed));
    results.push_back(RunMode(false, false, states, *grid, rounds, live,
                              churn, window, every, seed));
  }
  for (const ModeResult& m : results) {
    std::fprintf(
        stderr,
        "%-8s grid=%2ux%-2u rounds=%6lld live=%5lld churn=%4lld %-16s  "
        "tick@100=%7.3f ms  tick@end=%7.3f ms  p99=%7.3f ms  "
        "high_water=%8u  dense_slots=%9zu  rss=%6.1f->%6.1f->%6.1f MiB  "
        "total=%6.2f s\n",
        m.grid_backend.c_str(), grid_k, grid_k, static_cast<long long>(rounds),
        static_cast<long long>(live), static_cast<long long>(churn),
        m.mode.c_str(), m.tick_early_ms, m.tick_late_ms, m.tick_p99_ms,
        m.index_high_water, m.dense_user_slots, m.rss_start_mb, m.rss_mid_mb,
        m.rss_end_mb, m.total_s);
  }
  if (!WriteJson(json_path, grid_k, rounds, live, churn, window, results)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::Main(argc, argv); }
