// Figure 7 reproduction: scalability — average per-timestamp runtime of
// RetraSyn_b and RetraSyn_p as the dataset size varies over 20%..100% of
// each dataset's population.
//
// Expected shape (paper SV-E Fig. 7): runtime grows linearly with dataset
// size; the population-division variant is slightly cheaper because only a
// sampled fraction of users reports per timestamp.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  const std::vector<double> fractions{0.2, 0.4, 0.6, 0.8, 1.0};

  std::printf("=== Figure 7: scalability (eps=%.1f, w=%d, K=%u) ===\n",
              options.epsilon, options.window, options.grid_k);
  TablePrinter csv_table(
      {"dataset", "fraction", "streams", "method", "runtime_s_per_ts"});

  for (DatasetKind kind : {DatasetKind::kTDriveLike,
                           DatasetKind::kOldenburgLike,
                           DatasetKind::kSanJoaquinLike}) {
    DatasetSpec spec;
    switch (kind) {
      case DatasetKind::kTDriveLike:
        spec = TDriveLike(DefaultScale(kind) * options.scale_mult,
                          options.seed);
        break;
      case DatasetKind::kOldenburgLike:
        spec = OldenburgLike(DefaultScale(kind) * options.scale_mult,
                             options.seed + 1);
        break;
      default:
        spec = SanJoaquinLike(DefaultScale(kind) * options.scale_mult,
                              options.seed + 2);
        break;
    }
    const StreamDatabase full = MakeDataset(spec);
    std::printf("\n--- %s (full: %zu streams) ---\n", spec.name.c_str(),
                full.streams().size());
    TablePrinter table({"fraction", "streams", "method", "Runtime(s/ts)"});

    for (size_t fi = 0; fi < fractions.size(); ++fi) {
      Rng sub_rng(options.seed + 50 + fi);
      const StreamDatabase db =
          fractions[fi] >= 1.0 ? full : full.Subsample(fractions[fi], sub_rng);
      const PreparedDataset dataset(db, options.grid_k);
      for (MethodId id : {MethodId::kRetraSynB, MethodId::kRetraSynP}) {
        auto engine =
            MakeEngine(id, dataset.states(), options.epsilon, options.window,
                       AllocationKind::kAdaptive, db.AverageLength(),
                       options.seed + 100 + fi);
        // Time the engine only; skip metric evaluation (runtime figure).
        Stopwatch watch;
        for (int64_t t = 0; t < dataset.horizon(); ++t) {
          engine->Observe(dataset.feeder().Batch(t));
        }
        const double per_ts =
            watch.ElapsedSeconds() / static_cast<double>(dataset.horizon());
        table.AddRow({FormatDouble(fractions[fi], 1),
                      std::to_string(db.streams().size()), MethodName(id),
                      FormatDouble(per_ts, 6)});
        csv_table.AddRow({spec.name, FormatDouble(fractions[fi], 1),
                          std::to_string(db.streams().size()), MethodName(id),
                          FormatDouble(per_ts, 6)});
      }
      if (fi + 1 < fractions.size()) table.AddRow(TablePrinter::Separator());
    }
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
