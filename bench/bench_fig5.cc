// Figure 5 reproduction: impact of the evaluation time-range size phi in
// {5, 10, 20, 50, 100} on Query Error, Pattern F1, and Hotspot NDCG for all
// six methods on the T-Drive-like and Oldenburg-like datasets.
//
// The released synthetic stream does not depend on phi, so each method runs
// once per dataset and the stored release is re-evaluated at every phi —
// exactly how the paper's evaluation treats phi as an analysis-side knob.
//
// Expected shape (paper SV-D Fig. 5): RetraSyn best everywhere; its Pattern
// F1 / Hotspot NDCG improve with larger phi (long-range patterns accumulate)
// while baselines stay flat or degrade.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "service/replay.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  std::vector<int64_t> phis{5, 10, 20, 50, 100};
  if (flags.Has("phi")) phis = {options.metrics.phi};

  const std::vector<MethodId> methods{MethodId::kLBD,       MethodId::kLBA,
                                      MethodId::kLPD,       MethodId::kLPA,
                                      MethodId::kRetraSynB, MethodId::kRetraSynP};

  std::printf(
      "=== Figure 5: impact of evaluation range phi (eps=%.1f, w=%d, K=%u) "
      "===\n",
      options.epsilon, options.window, options.grid_k);
  TablePrinter csv_table({"dataset", "phi", "method", "query_error",
                          "pattern_f1", "hotspot_ndcg"});

  for (DatasetKind kind :
       {DatasetKind::kTDriveLike, DatasetKind::kOldenburgLike}) {
    const NamedDataset dataset = Prepare(kind, options);
    // One engine run per method; re-evaluate the stored release per phi.
    std::vector<CellStreamSet> releases;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      auto engine = MakeEngine(methods[mi], dataset.prepared->states(),
                               options.epsilon, options.window,
                               AllocationKind::kAdaptive,
                               dataset.average_length,
                               options.seed + 100 + mi);
      auto service = TrajectoryService::CreateWithEngine(
          dataset.prepared->states(), std::move(engine));
      service.status().CheckOK();
      ReplayDatabase(dataset.prepared->db(), *service.value()).CheckOK();
      releases.push_back(service.value()
                             ->SnapshotRelease(dataset.prepared->horizon())
                             .ValueOrDie());
    }

    TablePrinter table({"phi", "method", "QueryError", "PatternF1",
                        "HotspotNDCG"});
    for (size_t pi = 0; pi < phis.size(); ++pi) {
      StreamingMetricsConfig metrics = options.metrics;
      metrics.phi = phis[pi];
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        const MetricsReport m = EvaluateMetrics(
            *dataset.prepared, releases[mi], metrics, options.seed + 1000);
        table.AddRow({std::to_string(phis[pi]), MethodName(methods[mi]),
                      FormatDouble(m.query_error), FormatDouble(m.pattern_f1),
                      FormatDouble(m.hotspot_ndcg)});
        csv_table.AddRow({dataset.name, std::to_string(phis[pi]),
                          MethodName(methods[mi]),
                          FormatDouble(m.query_error),
                          FormatDouble(m.pattern_f1),
                          FormatDouble(m.hotspot_ndcg)});
      }
      if (pi + 1 < phis.size()) table.AddRow(TablePrinter::Separator());
    }
    std::printf("\n--- %s ---\n", dataset.name.c_str());
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
