// Ingest-thread Tick() latency: what the round-closing SyncPolicy buys the
// caller that must keep accepting reports in real time.
//
// Inline mode runs collection + model update + synthesis + sink delivery on
// the ingest thread, so Tick() pays the full synthesis cost. Async mode
// seals + enqueues and a background closer does the heavy step, so Tick()
// latency is decoupled from synthesis cost — until the bounded round queue
// fills and the configured backpressure policy kicks in (this bench uses
// kBlock, so saturation shows up honestly in the tail percentiles rather
// than as dropped rounds).
//
// The same scripted random-walk event sequence drives both modes through a
// real RetraSynEngine. Output: a table on stderr and a JSON array (--json,
// default BENCH_ingest.json) with p50/p99/max Tick() latency per mode; see
// docs/performance.md for the schema.
//
// Quick mode for CI smoke runs: --quick shrinks the workload.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/release_server.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

struct RoundScript {
  std::vector<std::pair<uint64_t, Point>> reports;  ///< user -> location
};

struct ModeResult {
  std::string mode;
  int queue_capacity = 0;  ///< 0 = inline (no queue)
  bool journaled = false;  ///< durable event journal at kEveryRound
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  double total_s = 0.0;    ///< wall clock for the whole ingest loop
  double drain_ms = 0.0;   ///< Drain() barrier at the end (async only)
};

/// Scripts \p rounds rounds of a fixed-population random walk, identical for
/// every mode: everyone enters at t=0 and reports a nearby point each round.
std::vector<RoundScript> ScriptWorkload(const BoundingBox& box, uint32_t users,
                                        int rounds, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> at(users);
  for (Point& p : at) {
    p = Point{box.min_x + rng.UniformDouble() * box.Width(),
              box.min_y + rng.UniformDouble() * box.Height()};
  }
  std::vector<RoundScript> script(rounds);
  const double step_x = box.Width() * 0.03;
  const double step_y = box.Height() * 0.03;
  for (int t = 0; t < rounds; ++t) {
    script[t].reports.reserve(users);
    for (uint64_t u = 0; u < users; ++u) {
      if (t > 0) {
        at[u] = box.Clamp(Point{at[u].x + (rng.UniformDouble() - 0.5) * step_x,
                                at[u].y + (rng.UniformDouble() - 0.5) * step_y});
      }
      script[t].reports.emplace_back(u, at[u]);
    }
  }
  return script;
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t i = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[i];
}

ModeResult RunMode(const std::string& mode, const StateSpace& states,
                   const Grid& grid, const std::vector<RoundScript>& script,
                   const RetraSynConfig& base_config, int queue_capacity,
                   bool journaled = false) {
  RetraSynConfig config = base_config;
  config.sync_policy =
      mode.rfind("inline", 0) == 0 ? SyncPolicy::kInline : SyncPolicy::kAsync;
  config.round_queue_capacity = queue_capacity;
  config.backpressure = BackpressurePolicy::kBlock;
  if (journaled) {
    config.journal_dir = MakeTempDir("bench-ingest-", ".").ValueOrDie();
    config.journal_fsync = FsyncPolicy::kEveryRound;
  }
  auto service = TrajectoryService::Create(states, config);
  service.status().CheckOK();
  ReleaseServer server(grid);
  service.value()->AddSink(&server);
  IngestSession& session = service.value()->session();

  ModeResult result;
  result.mode = mode;
  result.journaled = journaled;
  result.queue_capacity =
      config.sync_policy == SyncPolicy::kInline ? 0 : queue_capacity;
  std::vector<double> tick_ms;
  tick_ms.reserve(script.size());
  Stopwatch total;
  for (size_t t = 0; t < script.size(); ++t) {
    for (const auto& [user, point] : script[t].reports) {
      (t == 0 ? session.Enter(user, point) : session.Move(user, point))
          .CheckOK();
    }
    Stopwatch watch;
    session.Tick().CheckOK();
    tick_ms.push_back(watch.ElapsedSeconds() * 1e3);
  }
  Stopwatch drain;
  service.value()->Drain().CheckOK();
  result.drain_ms = drain.ElapsedSeconds() * 1e3;
  result.total_s = total.ElapsedSeconds();
  if (journaled) RemoveDirTree(config.journal_dir).CheckOK();

  double sum = 0.0;
  for (double ms : tick_ms) sum += ms;
  result.mean_ms = sum / tick_ms.size();
  std::sort(tick_ms.begin(), tick_ms.end());
  result.p50_ms = Percentile(tick_ms, 0.5);
  result.p99_ms = Percentile(tick_ms, 0.99);
  result.max_ms = tick_ms.back();
  return result;
}

bool WriteJson(const std::string& path, uint32_t grid_k, uint32_t users,
               int rounds, int threads,
               const std::vector<ModeResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    std::fprintf(
        f,
        "  {\"bench\": \"ingest_latency\", \"grid_k\": %u, \"users\": %u, "
        "\"rounds\": %d, \"queue_capacity\": %d, \"threads\": %d, "
        "\"mode\": \"%s\", \"journal\": \"%s\", \"tick_p50_ms\": %.4f, "
        "\"tick_p99_ms\": %.4f, \"tick_max_ms\": %.4f, "
        "\"tick_mean_ms\": %.4f, \"drain_ms\": %.2f, \"total_s\": %.3f}%s\n",
        grid_k, users, rounds, m.queue_capacity, threads, m.mode.c_str(),
        m.journaled ? "every_round" : "off", m.p50_ms, m.p99_ms, m.max_ms,
        m.mean_ms, m.drain_ms, m.total_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  // Defaults chosen so the round-closing step (model update + synthesis on a
  // 64x64 grid) clearly outweighs the seal cost (sorting 5k events): the
  // regime the async policy exists for.
  const uint32_t grid_k =
      static_cast<uint32_t>(flags.GetInt("grid", quick ? 16 : 64));
  const uint32_t users =
      static_cast<uint32_t>(flags.GetInt("users", quick ? 2000 : 5000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", quick ? 30 : 80));
  const int queue_capacity =
      static_cast<int>(flags.GetInt("queue_capacity", 8));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_ingest.json");

  const BoundingBox box{0.0, 0.0, 1000.0, 1000.0};
  const Grid grid(box, grid_k);
  const StateSpace states(grid);
  const std::vector<RoundScript> script =
      ScriptWorkload(box, users, rounds, seed);

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = static_cast<double>(rounds) / 2.0;
  config.seed = seed;
  config.num_threads = threads;

  // Four rows: inline (Tick pays synthesis), inline with the durable journal
  // at kEveryRound (the acceptance bar: < 10% added p50 — one boundary
  // record + fsync per round), async at the steady-state queue depth
  // (backpressure shows in the tail when the closer cannot keep up with the
  // ingest rate), and async with a queue deep enough to absorb the whole run
  // (pure seal + enqueue cost — the decoupled floor).
  std::vector<ModeResult> results;
  results.push_back(
      RunMode("inline", states, grid, script, config, queue_capacity));
  results.push_back(RunMode("inline_journal", states, grid, script, config,
                            queue_capacity, /*journaled=*/true));
  results.push_back(
      RunMode("async", states, grid, script, config, queue_capacity));
  results.push_back(
      RunMode("async_deep", states, grid, script, config, rounds + 1));
  for (const ModeResult& m : results) {
    std::fprintf(stderr,
                 "grid=%2ux%-2u users=%6u rounds=%3d %-14s cap=%3d  "
                 "tick p50=%7.3f ms  p99=%7.3f ms  max=%7.3f ms  "
                 "drain=%7.1f ms  total=%6.2f s\n",
                 grid_k, grid_k, users, rounds, m.mode.c_str(),
                 m.queue_capacity, m.p50_ms, m.p99_ms, m.max_ms, m.drain_ms,
                 m.total_s);
  }
  if (!WriteJson(json_path, grid_k, users, rounds, threads, results)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::Main(argc, argv); }
