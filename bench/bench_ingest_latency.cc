// Ingest-thread Tick() latency: what the round-closing SyncPolicy buys the
// caller that must keep accepting reports in real time.
//
// Inline mode runs collection + model update + synthesis + sink delivery on
// the ingest thread, so Tick() pays the full synthesis cost. Async mode
// seals + enqueues and a background closer does the heavy step, so Tick()
// latency is decoupled from synthesis cost — until the bounded round queue
// fills and the configured backpressure policy kicks in (this bench uses
// kBlock, so saturation shows up honestly in the tail percentiles rather
// than as dropped rounds).
//
// The same scripted random-walk event sequence drives both modes through a
// real RetraSynEngine. Output: a table on stderr and a JSON array (--json,
// default BENCH_ingest.json) with p50/p99/max Tick() latency per mode; see
// docs/performance.md for the schema.
//
// Quick mode for CI smoke runs: --quick shrinks the workload.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/file_io.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/release_server.h"
#include "geo/grid.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"

/// Global allocation counter, so the sharded sweep can pin the seal-buffer
/// reuse claim ("steady state allocates nothing proportional to the
/// population") with a measured allocs-per-round number instead of prose.
std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_allocated_bytes{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace retrasyn {
namespace {

struct RoundScript {
  std::vector<std::pair<uint64_t, Point>> reports;  ///< user -> location
};

struct ModeResult {
  std::string mode;
  int queue_capacity = 0;  ///< 0 = inline (no queue)
  bool journaled = false;  ///< durable event journal at kEveryRound
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  double total_s = 0.0;    ///< wall clock for the whole ingest loop
  double drain_ms = 0.0;   ///< Drain() barrier at the end (async only)
};

/// Scripts \p rounds rounds of a fixed-population random walk, identical for
/// every mode: everyone enters at t=0 and reports a nearby point each round.
std::vector<RoundScript> ScriptWorkload(const BoundingBox& box, uint32_t users,
                                        int rounds, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> at(users);
  for (Point& p : at) {
    p = Point{box.min_x + rng.UniformDouble() * box.Width(),
              box.min_y + rng.UniformDouble() * box.Height()};
  }
  std::vector<RoundScript> script(rounds);
  const double step_x = box.Width() * 0.03;
  const double step_y = box.Height() * 0.03;
  for (int t = 0; t < rounds; ++t) {
    script[t].reports.reserve(users);
    for (uint64_t u = 0; u < users; ++u) {
      if (t > 0) {
        at[u] = box.Clamp(Point{at[u].x + (rng.UniformDouble() - 0.5) * step_x,
                                at[u].y + (rng.UniformDouble() - 0.5) * step_y});
      }
      script[t].reports.emplace_back(u, at[u]);
    }
  }
  return script;
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t i = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[i];
}

ModeResult RunMode(const std::string& mode, const StateSpace& states,
                   const Grid& grid, const std::vector<RoundScript>& script,
                   const RetraSynConfig& base_config, int queue_capacity,
                   bool journaled = false, bool dump_telemetry = false) {
  RetraSynConfig config = base_config;
  config.sync_policy =
      mode.rfind("inline", 0) == 0 ? SyncPolicy::kInline : SyncPolicy::kAsync;
  config.round_queue_capacity = queue_capacity;
  config.backpressure = BackpressurePolicy::kBlock;
  if (journaled) {
    config.journal_dir = MakeTempDir("bench-ingest-", ".").ValueOrDie();
    config.journal_fsync = FsyncPolicy::kEveryRound;
  }
  auto service = TrajectoryService::Create(states, config);
  service.status().CheckOK();
  ReleaseServer server(grid);
  service.value()->AddSink(&server);
  IngestSession& session = service.value()->session();

  ModeResult result;
  result.mode = mode;
  result.journaled = journaled;
  result.queue_capacity =
      config.sync_policy == SyncPolicy::kInline ? 0 : queue_capacity;
  std::vector<double> tick_ms;
  tick_ms.reserve(script.size());
  Stopwatch total;
  for (size_t t = 0; t < script.size(); ++t) {
    for (const auto& [user, point] : script[t].reports) {
      (t == 0 ? session.Enter(user, point) : session.Move(user, point))
          .CheckOK();
    }
    Stopwatch watch;
    session.Tick().CheckOK();
    tick_ms.push_back(watch.ElapsedSeconds() * 1e3);
  }
  Stopwatch drain;
  service.value()->Drain().CheckOK();
  result.drain_ms = drain.ElapsedSeconds() * 1e3;
  result.total_s = total.ElapsedSeconds();
  if (dump_telemetry) bench::DumpTelemetry(mode, *service.value());
  if (journaled) RemoveDirTree(config.journal_dir).CheckOK();

  double sum = 0.0;
  for (double ms : tick_ms) sum += ms;
  result.mean_ms = sum / tick_ms.size();
  std::sort(tick_ms.begin(), tick_ms.end());
  result.p50_ms = Percentile(tick_ms, 0.5);
  result.p99_ms = Percentile(tick_ms, 0.99);
  result.max_ms = tick_ms.back();
  return result;
}

/// A row of the sharded ingest throughput sweep.
struct ShardResult {
  int shards = 0;
  uint32_t users = 0;
  int rounds = 0;
  bool reuse_buffers = true;
  double events_per_s = 0.0;
  double tick_mean_ms = 0.0;   ///< seal + merge + commit, per round
  double seal_s = 0.0;         ///< cumulative parallel per-shard seal
  double merge_s = 0.0;        ///< cumulative k-way merge
  double commit_s = 0.0;       ///< cumulative post-handler commit
  double allocs_per_round = 0.0;  ///< steady-state (first round excluded)
  double alloc_bytes_per_round = 0.0;  ///< ditto, bytes requested
};

/// Observe/LiveDensity no-ops: the sweep measures the ingest path (shard
/// locking, seal, merge, commit), not synthesis — that is bench_round_latency.
class NullEngine : public StreamReleaseEngine {
 public:
  void Observe(const TimestampBatch&) override {}
  CellStreamSet SnapshotRelease(int64_t n) const override {
    return CellStreamSet(n);
  }
  std::vector<uint32_t> LiveDensity() const override { return {}; }
  CellStreamSet Finish(int64_t n) override { return CellStreamSet(n); }
  std::string name() const override { return "bench-null"; }
};

/// The session's user -> shard hash (splitmix64 finalizer), replicated so
/// each producer thread feeds exactly one shard — the intended deployment
/// shape (shard-affine producers never contend on a shard mutex).
uint64_t ShardOf(uint64_t user, int shards) {
  uint64_t x = user + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x % static_cast<uint64_t>(shards);
}

ShardResult RunShardSweep(const StateSpace& states, const BoundingBox& box,
                          int shards, uint32_t users, int rounds,
                          bool reuse_buffers, bool dump_telemetry = false) {
  ServiceOptions options;
  options.ingest_shards = shards;
  options.reuse_seal_buffers = reuse_buffers;
  auto service = TrajectoryService::CreateWithEngine(
      states, std::make_unique<NullEngine>(), options);
  service.status().CheckOK();
  IngestSession& session = service.value()->session();

  // Shard-affine user lists, fixed report points (the ingest cost is in
  // validation + locking + seal, not in where the point lands).
  std::vector<std::vector<uint64_t>> by_shard(static_cast<size_t>(shards));
  for (uint64_t u = 0; u < users; ++u) {
    by_shard[ShardOf(u, shards)].push_back(u);
  }
  auto point_of = [&](uint64_t u) {
    return Point{box.min_x + (static_cast<double>(u % 997) / 997.0) * box.Width(),
                 box.min_y +
                     (static_cast<double>(u % 991) / 991.0) * box.Height()};
  };

  ShardResult result;
  result.shards = shards;
  result.users = users;
  result.rounds = rounds;
  result.reuse_buffers = reuse_buffers;
  uint64_t steady_allocs = 0;
  uint64_t steady_bytes = 0;
  Stopwatch total;
  for (int t = 0; t < rounds; ++t) {
    std::vector<std::thread> producers;
    producers.reserve(by_shard.size());
    for (const std::vector<uint64_t>& mine : by_shard) {
      producers.emplace_back([&session, &mine, &point_of, t] {
        for (uint64_t u : mine) {
          (t == 0 ? session.Enter(u, point_of(u))
                  : session.Move(u, point_of(u + static_cast<uint64_t>(t))))
              .CheckOK();
        }
      });
    }
    for (auto& thread : producers) thread.join();
    // The allocation count covers the seal + merge + commit inside Tick()
    // (the reuse knob's domain), not the producers' pending-event buffering.
    // Rounds 0 and 1 are warmup: round 0 runs with every buffer cold, and
    // round 1 is the first with live streams, so the entry and observation
    // buffers grow once to their steady capacity there. The claim is steady
    // state, which starts at round 2.
    const uint64_t allocs_before = g_allocations.load();
    const uint64_t bytes_before = g_allocated_bytes.load();
    session.Tick().CheckOK();
    if (t > 1) {
      steady_allocs += g_allocations.load() - allocs_before;
      steady_bytes += g_allocated_bytes.load() - bytes_before;
    }
  }
  const double elapsed = total.ElapsedSeconds();
  service.value()->Drain().CheckOK();
  if (dump_telemetry) {
    bench::DumpTelemetry("sharded/" + std::to_string(shards) + "x" +
                             std::to_string(users),
                         *service.value());
  }

  const IngestStats stats = service.value()->ingest_stats();
  result.events_per_s =
      static_cast<double>(users) * static_cast<double>(rounds) / elapsed;
  result.tick_mean_ms =
      (stats.seal_seconds + stats.merge_seconds + stats.commit_seconds) /
      static_cast<double>(rounds) * 1e3;
  result.seal_s = stats.seal_seconds;
  result.merge_s = stats.merge_seconds;
  result.commit_s = stats.commit_seconds;
  result.allocs_per_round =
      rounds > 2 ? static_cast<double>(steady_allocs) / (rounds - 2) : 0.0;
  result.alloc_bytes_per_round =
      rounds > 2 ? static_cast<double>(steady_bytes) / (rounds - 2) : 0.0;
  return result;
}

bool WriteJson(const std::string& path, uint32_t grid_k, uint32_t users,
               int rounds, int threads, const std::vector<ModeResult>& results,
               const std::vector<ShardResult>& shard_results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& m = results[i];
    std::fprintf(
        f,
        "  {\"bench\": \"ingest_latency\", \"grid_k\": %u, \"users\": %u, "
        "\"rounds\": %d, \"queue_capacity\": %d, \"threads\": %d, "
        "\"mode\": \"%s\", \"journal\": \"%s\", \"tick_p50_ms\": %.4f, "
        "\"tick_p99_ms\": %.4f, \"tick_max_ms\": %.4f, "
        "\"tick_mean_ms\": %.4f, \"drain_ms\": %.2f, \"total_s\": %.3f}%s\n",
        grid_k, users, rounds, m.queue_capacity, threads, m.mode.c_str(),
        m.journaled ? "every_round" : "off", m.p50_ms, m.p99_ms, m.max_ms,
        m.mean_ms, m.drain_ms, m.total_s,
        i + 1 < results.size() || !shard_results.empty() ? "," : "");
  }
  const int cores = ThreadPool::DefaultConcurrency();
  for (size_t i = 0; i < shard_results.size(); ++i) {
    const ShardResult& r = shard_results[i];
    std::fprintf(
        f,
        "  {\"bench\": \"ingest_sharded\", \"shards\": %d, \"users\": %u, "
        "\"rounds\": %d, \"cores\": %d, \"reuse_seal_buffers\": %s, "
        "\"events_per_s\": %.0f, \"tick_mean_ms\": %.3f, "
        "\"seal_s\": %.4f, \"merge_s\": %.4f, \"commit_s\": %.4f, "
        "\"allocs_per_round\": %.1f, \"alloc_bytes_per_round\": %.0f}%s\n",
        r.shards, r.users, r.rounds, cores,
        r.reuse_buffers ? "true" : "false", r.events_per_s, r.tick_mean_ms,
        r.seal_s, r.merge_s, r.commit_s, r.allocs_per_round,
        r.alloc_bytes_per_round, i + 1 < shard_results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  // Defaults chosen so the round-closing step (model update + synthesis on a
  // 64x64 grid) clearly outweighs the seal cost (sorting 5k events): the
  // regime the async policy exists for.
  const uint32_t grid_k =
      static_cast<uint32_t>(flags.GetInt("grid", quick ? 16 : 64));
  const uint32_t users =
      static_cast<uint32_t>(flags.GetInt("users", quick ? 2000 : 5000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", quick ? 30 : 80));
  const int queue_capacity =
      static_cast<int>(flags.GetInt("queue_capacity", 8));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_ingest.json");
  const bool dump_telemetry = bench::DumpTelemetryRequested(flags);

  const BoundingBox box{0.0, 0.0, 1000.0, 1000.0};
  const Grid grid(box, grid_k);
  const StateSpace states(grid);
  const std::vector<RoundScript> script =
      ScriptWorkload(box, users, rounds, seed);

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 20;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = static_cast<double>(rounds) / 2.0;
  config.seed = seed;
  config.num_threads = threads;

  // Four rows: inline (Tick pays synthesis), inline with the durable journal
  // at kEveryRound (the acceptance bar: < 10% added p50 — one boundary
  // record + fsync per round), async at the steady-state queue depth
  // (backpressure shows in the tail when the closer cannot keep up with the
  // ingest rate), and async with a queue deep enough to absorb the whole run
  // (pure seal + enqueue cost — the decoupled floor).
  std::vector<ModeResult> results;
  results.push_back(RunMode("inline", states, grid, script, config,
                            queue_capacity, /*journaled=*/false,
                            dump_telemetry));
  results.push_back(RunMode("inline_journal", states, grid, script, config,
                            queue_capacity, /*journaled=*/true,
                            dump_telemetry));
  results.push_back(RunMode("async", states, grid, script, config,
                            queue_capacity, /*journaled=*/false,
                            dump_telemetry));
  results.push_back(RunMode("async_deep", states, grid, script, config,
                            rounds + 1, /*journaled=*/false, dump_telemetry));
  for (const ModeResult& m : results) {
    std::fprintf(stderr,
                 "grid=%2ux%-2u users=%6u rounds=%3d %-14s cap=%3d  "
                 "tick p50=%7.3f ms  p99=%7.3f ms  max=%7.3f ms  "
                 "drain=%7.1f ms  total=%6.2f s\n",
                 grid_k, grid_k, users, rounds, m.mode.c_str(),
                 m.queue_capacity, m.p50_ms, m.p99_ms, m.max_ms, m.drain_ms,
                 m.total_s);
  }

  // Sharded ingest throughput sweep: shard count x live population, against
  // a no-op engine so the measurement isolates the ingest path. Expect
  // near-linear scaling in min(shards, cores) — the "cores" JSON field
  // records what the host could actually exercise. The pinned reuse-off rows
  // measure what the seal-buffer reuse saves: with reuse on, steady-state
  // allocs per round is O(1); off, it is O(population).
  std::vector<ShardResult> shard_results;
  if (!flags.GetBool("no_sweep", false)) {
    const std::vector<uint32_t> populations =
        quick ? std::vector<uint32_t>{20'000}
              : std::vector<uint32_t>{65'536, 262'144, 1'048'576};
    const std::vector<int> shard_counts =
        quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
    const int sweep_rounds = static_cast<int>(
        flags.GetInt("sweep_rounds", quick ? 4 : 6));
    for (uint32_t population : populations) {
      for (int shards : shard_counts) {
        shard_results.push_back(RunShardSweep(states, box, shards, population,
                                              sweep_rounds,
                                              /*reuse_buffers=*/true,
                                              dump_telemetry));
      }
    }
    // The allocation A/B pair, pinned at the smallest population.
    shard_results.push_back(RunShardSweep(states, box, shard_counts.back(),
                                          populations.front(), sweep_rounds,
                                          /*reuse_buffers=*/false,
                                          dump_telemetry));
    for (const ShardResult& r : shard_results) {
      std::fprintf(stderr,
                   "shards=%d users=%7u rounds=%d reuse=%-3s  "
                   "%10.0f events/s  tick mean=%7.3f ms  "
                   "(seal %.3fs merge %.3fs commit %.3fs)  "
                   "allocs/round=%.1f (%.0f KiB)\n",
                   r.shards, r.users, r.rounds, r.reuse_buffers ? "on" : "off",
                   r.events_per_s, r.tick_mean_ms, r.seal_s, r.merge_s,
                   r.commit_s, r.allocs_per_round,
                   r.alloc_bytes_per_round / 1024.0);
    }
  }

  if (!WriteJson(json_path, grid_k, users, rounds, threads, results,
                 shard_results)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::Main(argc, argv); }
