// Round-synthesis latency bench (paper SIV-B / Fig. 7): how long one
// synthesis round takes as population and grid size grow, and what the
// cached alias samplers + persistent thread pool buy over the legacy
// linear-scan / thread-spawn hot path.
//
// For each (grid, population) point the bench drives a Synthesizer through
// warm-up plus measured rounds against a randomized mobility model. Between
// rounds a small random subset of states is pushed through
// GlobalMobilityModel::UpdateStates — the DMU's steady state — so the
// sampler cache pays its real incremental invalidation cost, not a
// cached-forever fantasy. Modes:
//
//   legacy  — use_sampler_cache=false, serial: the former O(degree)-per-point
//             path with a heap allocation per sampled point.
//   cached  — alias samplers, serial. The headline single-thread speedup.
//   cached_telemetry
//           — cached with a Telemetry attached to the synthesizer: measures
//             what metric recording costs the hot path. --telemetry_budget
//             (fraction, e.g. 0.03) makes the bench exit nonzero when the
//             attached p50 exceeds the detached p50 by more than the budget
//             at any sweep point — the CI overhead gate.
//   pooled  — alias samplers + persistent ThreadPool at --threads.
//
// The sweep also carries a grid-backend dimension (--backends, default
// "uniform,quadtree"): each grid size is built through MakeSpatialGrid at a
// matched effective cell count, so the records answer whether the
// density-adaptive quadtree keeps round latency within the uniform grid's
// envelope when both discretize the domain into the same number of cells.
//
// Output: a human-readable table on stderr and a JSON array (--json, default
// BENCH_synthesis.json) with one record per (backend, grid, population,
// mode); see docs/performance.md for the schema and acceptance thresholds.
//
// Quick mode for CI smoke runs: --quick sweeps one point with few rounds.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/mobility_model.h"
#include "core/synthesizer.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/spatial_grid.h"
#include "geo/state_space.h"
#include "telemetry/telemetry.h"

namespace retrasyn {
namespace {

struct ModeResult {
  std::string mode;
  int threads = 1;
  int rounds = 0;
  bool telemetry = false;
  double mean_round_ms = 0.0;
  double p50_round_ms = 0.0;
  double min_round_ms = 0.0;
  double points_per_sec = 0.0;
};

struct SweepPoint {
  std::string grid_backend;
  uint32_t grid_k = 0;
  uint32_t num_cells = 0;
  uint32_t num_states = 0;
  uint32_t population = 0;
  std::vector<ModeResult> modes;
};

std::vector<double> RandomFrequencies(const StateSpace& states, Rng& rng) {
  std::vector<double> f(states.size());
  for (double& x : f) x = rng.UniformDouble() * 0.01;
  return f;
}

/// One DMU-like selective update: overwrite ~1% of the states (at least 32)
/// with fresh values, through the incremental-invalidation path.
void PerturbModel(GlobalMobilityModel& model, const StateSpace& states,
                  Rng& rng) {
  const uint32_t count =
      std::max<uint32_t>(32, states.size() / 100);
  std::vector<StateId> selected;
  selected.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    selected.push_back(static_cast<StateId>(
        rng.UniformInt(static_cast<uint64_t>(states.size()))));
  }
  std::vector<double> fresh = model.frequencies();
  for (StateId s : selected) fresh[s] = rng.UniformDouble() * 0.01;
  model.UpdateStates(selected, fresh);
}

ModeResult RunMode(const std::string& mode, const StateSpace& states,
                   uint32_t population, int threads, ThreadPool* pool,
                   int warmup, int rounds, uint64_t seed) {
  GlobalMobilityModel model(states);
  Rng model_rng(seed);
  model.ReplaceAll(RandomFrequencies(states, model_rng));

  SynthesizerConfig config;
  config.lambda = 50.0;
  config.num_threads = threads;
  config.use_sampler_cache = (mode != "legacy");
  // Declared before the synthesizer: attached components keep raw metric
  // pointers until they stop stepping.
  Telemetry telemetry;
  Synthesizer synthesizer(states, config);
  synthesizer.SetThreadPool(pool);
  const bool with_telemetry = mode == "cached_telemetry";
  if (with_telemetry) synthesizer.AttachTelemetry(&telemetry);
  Rng rng(seed + 1);
  synthesizer.Initialize(model, population, 0, rng);

  ModeResult result;
  result.mode = mode;
  result.threads = threads;
  result.rounds = rounds;
  result.telemetry = with_telemetry;
  result.min_round_ms = 1e300;
  int64_t t = 1;
  for (int i = 0; i < warmup; ++i) {
    PerturbModel(model, states, model_rng);
    synthesizer.Step(model, population, t++, rng);
  }
  double total_s = 0.0;
  uint64_t points = 0;
  std::vector<double> round_ms;
  round_ms.reserve(static_cast<size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    PerturbModel(model, states, model_rng);
    const uint64_t before = synthesizer.total_points();
    Stopwatch watch;
    synthesizer.Step(model, population, t++, rng);
    const double s = watch.ElapsedSeconds();
    total_s += s;
    points += synthesizer.total_points() - before;
    round_ms.push_back(s * 1e3);
    result.min_round_ms = std::min(result.min_round_ms, s * 1e3);
  }
  result.mean_round_ms = total_s / rounds * 1e3;
  std::sort(round_ms.begin(), round_ms.end());
  result.p50_round_ms = round_ms[round_ms.size() / 2];
  result.points_per_sec = total_s > 0.0 ? points / total_s : 0.0;
  return result;
}

bool WriteJson(const std::string& path, const std::vector<SweepPoint>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  bool first = true;
  for (const SweepPoint& point : sweep) {
    double legacy_mean = 0.0;
    for (const ModeResult& m : point.modes) {
      if (m.mode == "legacy") legacy_mean = m.mean_round_ms;
    }
    for (const ModeResult& m : point.modes) {
      if (!first) std::fprintf(f, ",\n");
      first = false;
      const double speedup =
          (legacy_mean > 0.0 && m.mean_round_ms > 0.0)
              ? legacy_mean / m.mean_round_ms
              : 0.0;
      std::fprintf(
          f,
          "  {\"bench\": \"round_latency\", \"grid_backend\": \"%s\", "
          "\"grid_k\": %u, \"cells\": %u, "
          "\"states\": %u, \"population\": %u, \"mode\": \"%s\", "
          "\"telemetry\": %s, "
          "\"threads\": %d, \"rounds\": %d, \"mean_round_ms\": %.4f, "
          "\"p50_round_ms\": %.4f, "
          "\"min_round_ms\": %.4f, \"points_per_sec\": %.0f, "
          "\"speedup_vs_legacy\": %.2f}",
          point.grid_backend.c_str(), point.grid_k, point.num_cells,
          point.num_states, point.population,
          m.mode.c_str(), m.telemetry ? "true" : "false",
          m.threads, m.rounds, m.mean_round_ms, m.p50_round_ms,
          m.min_round_ms, m.points_per_sec, speedup);
    }
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
  return true;
}

std::vector<GridBackend> ParseBackends(const std::string& csv) {
  std::vector<GridBackend> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (item == "uniform") {
      out.push_back(GridBackend::kUniform);
    } else if (item == "quadtree") {
      out.push_back(GridBackend::kQuadtree);
    } else if (!item.empty()) {
      std::fprintf(stderr, "unknown grid backend '%s'\n", item.c_str());
      std::exit(1);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<uint32_t> ParseList(const std::string& csv) {
  std::vector<uint32_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!item.empty()) {
      out.push_back(static_cast<uint32_t>(std::stoul(item)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const int rounds = static_cast<int>(flags.GetInt("rounds", quick ? 3 : 20));
  const int warmup = static_cast<int>(flags.GetInt("warmup", quick ? 1 : 3));
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path =
      flags.GetString("json", "BENCH_synthesis.json");
  const std::vector<uint32_t> grid_ks =
      ParseList(flags.GetString("grids", quick ? "16" : "32,64"));
  const std::vector<uint32_t> pops = ParseList(
      flags.GetString("pops", quick ? "20000" : "10000,100000"));
  const std::vector<GridBackend> backends =
      ParseBackends(flags.GetString("backends", "uniform,quadtree"));
  // Maximum tolerated fractional p50 overhead of cached_telemetry over
  // cached (0 = don't enforce). CI runs with --telemetry_budget=0.03.
  const double telemetry_budget = flags.GetDouble("telemetry_budget", 0.0);

  ThreadPool pool(threads);
  double worst_overhead = 0.0;
  std::vector<SweepPoint> sweep;
  for (GridBackend backend : backends) {
    for (uint32_t k : grid_ks) {
      auto grid_or =
          MakeSpatialGrid(BoundingBox{0.0, 0.0, 1.0, 1.0}, k, backend);
      grid_or.status().CheckOK();
      const std::unique_ptr<SpatialGrid> grid = std::move(grid_or).value();
      const StateSpace states(*grid);
      for (uint32_t pop : pops) {
        SweepPoint point;
        point.grid_backend = GridBackendName(backend);
        point.grid_k = k;
        point.num_cells = grid->NumCells();
        point.num_states = states.size();
        point.population = pop;
        point.modes.push_back(RunMode("legacy", states, pop, 1, nullptr,
                                      warmup, rounds, seed));
        point.modes.push_back(RunMode("cached", states, pop, 1, nullptr,
                                      warmup, rounds, seed));
        point.modes.push_back(RunMode("cached_telemetry", states, pop, 1,
                                      nullptr, warmup, rounds, seed));
        point.modes.push_back(RunMode("pooled", states, pop, threads, &pool,
                                      warmup, rounds, seed));
        const double legacy = point.modes[0].mean_round_ms;
        for (const ModeResult& m : point.modes) {
          std::fprintf(stderr,
                       "%-8s grid=%2ux%-2u cells=%5u pop=%6u %-16s threads=%d  "
                       "mean=%8.3f ms  p50=%8.3f ms  min=%8.3f ms  "
                       "%10.0f pts/s  %.2fx\n",
                       point.grid_backend.c_str(), k, k, point.num_cells, pop,
                       m.mode.c_str(), m.threads, m.mean_round_ms,
                       m.p50_round_ms, m.min_round_ms, m.points_per_sec,
                       legacy > 0.0 ? legacy / m.mean_round_ms : 0.0);
        }
        const double base_p50 = point.modes[1].p50_round_ms;
        const double tel_p50 = point.modes[2].p50_round_ms;
        const double overhead =
            base_p50 > 0.0 ? tel_p50 / base_p50 - 1.0 : 0.0;
        worst_overhead = std::max(worst_overhead, overhead);
        std::fprintf(stderr,
                     "%-8s grid=%2ux%-2u pop=%6u telemetry p50 overhead: "
                     "%+.2f%%\n",
                     point.grid_backend.c_str(), k, k, pop, overhead * 100.0);
        sweep.push_back(std::move(point));
      }
    }
  }
  if (!WriteJson(json_path, sweep)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  if (telemetry_budget > 0.0 && worst_overhead > telemetry_budget) {
    std::fprintf(stderr,
                 "FAIL: telemetry p50 overhead %.2f%% exceeds budget %.2f%%\n",
                 worst_overhead * 100.0, telemetry_budget * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::Main(argc, argv); }
