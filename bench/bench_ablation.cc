// Ablation benches for this implementation's documented design choices
// (beyond the paper's own Table IV ablations, which live in bench_table4):
//
//  1. Estimate post-processing: kClip (default) vs kNormSub. Norm-sub yields
//     a far more accurate global frequency vector but zeroes the outgoing
//     mass of weak cells, freezing their synthetic dynamics; clip preserves
//     per-cell relative structure. This bench quantifies the trade-off.
//  2. Adaptive probe floor: Eq. 10 with min_portion = 0 can starve
//     collection permanently once the stream looks steady; the 1/(2w) floor
//     keeps the curator probing. This bench compares both.
//  3. The Eq. 8 termination factor lambda, swept around the dataset's
//     average stream length (the paper's setting), showing its effect on the
//     trajectory-level metrics.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace retrasyn {
namespace bench {
namespace {

RunResult RunConfigured(const NamedDataset& dataset,
                        const BenchOptions& options,
                        const RetraSynConfig& config) {
  RetraSynEngine engine(dataset.prepared->states(), config);
  return RunEngine(*dataset.prepared, engine, options.metrics,
                   options.seed + 1000);
}

RetraSynConfig BaseConfig(const NamedDataset& dataset,
                          const BenchOptions& options) {
  RetraSynConfig config;
  config.epsilon = options.epsilon;
  config.window = options.window;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = dataset.average_length;
  config.seed = options.seed + 7;
  return config;
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  const NamedDataset dataset = Prepare(DatasetKind::kTDriveLike, options);

  std::printf(
      "=== Design-choice ablations (T-Drive-like, eps=%.1f, w=%d, K=%u) "
      "===\n",
      options.epsilon, options.window, options.grid_k);

  {
    std::printf("\n-- 1. Estimate post-processing --\n");
    TablePrinter table({"postprocess", "dmu", "Density", "Query", "Hotspot",
                        "KendallTau", "Length"});
    for (Postprocess pp : {Postprocess::kClip, Postprocess::kNormSub}) {
      for (bool use_dmu : {true, false}) {
        RetraSynConfig config = BaseConfig(dataset, options);
        config.postprocess = pp;
        config.use_dmu = use_dmu;
        const RunResult r = RunConfigured(dataset, options, config);
        table.AddRow({pp == Postprocess::kClip ? "clip" : "norm-sub",
                      use_dmu ? "DMU" : "AllUpdate",
                      FormatDouble(r.metrics.density_error),
                      FormatDouble(r.metrics.query_error),
                      FormatDouble(r.metrics.hotspot_ndcg),
                      FormatDouble(r.metrics.kendall_tau),
                      FormatDouble(r.metrics.length_error)});
      }
    }
    table.Print();
  }

  {
    std::printf("\n-- 2. Adaptive probe floor (min_portion) --\n");
    TablePrinter table({"min_portion", "Density", "Transition", "KendallTau",
                        "reports"});
    for (double floor : {-1.0, 0.0}) {
      RetraSynConfig config = BaseConfig(dataset, options);
      config.allocation.min_portion = floor;
      RetraSynEngine engine(dataset.prepared->states(), config);
      const RunResult r = RunEngine(*dataset.prepared, engine, options.metrics,
                                    options.seed + 1000);
      table.AddRow({floor < 0 ? "auto 1/(2w)" : "0 (paper literal)",
                    FormatDouble(r.metrics.density_error),
                    FormatDouble(r.metrics.transition_error),
                    FormatDouble(r.metrics.kendall_tau),
                    std::to_string(engine.total_reports())});
    }
    table.Print();
  }

  {
    std::printf("\n-- 3. Termination factor lambda (Eq. 8) --\n");
    TablePrinter table({"lambda/avg_len", "Length", "Trip", "KendallTau",
                        "Density"});
    for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      RetraSynConfig config = BaseConfig(dataset, options);
      config.lambda = dataset.average_length * mult;
      const RunResult r = RunConfigured(dataset, options, config);
      table.AddRow({FormatDouble(mult, 2),
                    FormatDouble(r.metrics.length_error),
                    FormatDouble(r.metrics.trip_error),
                    FormatDouble(r.metrics.kendall_tau),
                    FormatDouble(r.metrics.density_error)});
    }
    table.Print();
    std::printf(
        "(paper SV-A sets lambda to the dataset's average stream length, "
        "i.e. 1.0x)\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
