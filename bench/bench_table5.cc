// Table V reproduction: component efficiency of RetraSyn_p — mean
// per-timestamp wall-clock seconds spent in (i) user-side computation
// (perturbation), (ii) mobility model construction (aggregation/estimation),
// (iii) the DMU mechanism, and (iv) real-time synthesis, per dataset.
//
// Expected shape (paper SV-E Table V): synthesis dominates (O(|T_syn|) work),
// everything else is sub-millisecond; totals stay far below the inter-
// timestamp interval, so real-time operation is comfortable.
//
// Pass --per_user=true to time the real per-user OUE protocol instead of the
// distribution-exact aggregate simulation (slower; closer to the paper's
// user-side numbers).

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  const bool per_user = flags.GetBool("per_user", false);

  std::printf(
      "=== Table V: component efficiency of RetraSyn_p (eps=%.1f, w=%d, "
      "K=%u, %s collection) ===\n",
      options.epsilon, options.window, options.grid_k,
      per_user ? "per-user" : "aggregate-simulated");

  TablePrinter table({"procedure", "T-Drive-like", "Oldenburg-like",
                      "SanJoaquin-like"});
  std::vector<std::vector<double>> columns;  // [dataset][component]

  for (DatasetKind kind : {DatasetKind::kTDriveLike,
                           DatasetKind::kOldenburgLike,
                           DatasetKind::kSanJoaquinLike}) {
    const NamedDataset dataset = Prepare(kind, options);
    RetraSynConfig config;
    config.epsilon = options.epsilon;
    config.window = options.window;
    config.division = DivisionStrategy::kPopulation;
    config.allocation.kind = AllocationKind::kAdaptive;
    config.lambda = dataset.average_length;
    config.collection_mode =
        per_user ? CollectionMode::kPerUser : CollectionMode::kAggregateSim;
    config.seed = options.seed + 7;
    RetraSynEngine engine(dataset.prepared->states(), config);
    for (int64_t t = 0; t < dataset.prepared->horizon(); ++t) {
      engine.Observe(dataset.prepared->feeder().Batch(t));
    }
    const ComponentTimes& times = engine.component_times();
    columns.push_back({times.user_side.Mean(), times.model_construction.Mean(),
                       times.dmu.Mean(), times.synthesis.Mean(),
                       times.TotalMeanPerTimestamp()});
  }

  const char* rows[] = {"User-side Computation", "Mobility Model Construction",
                        "Dynamic Mobility Update", "Real-time Synthesis",
                        "Total"};
  for (int r = 0; r < 5; ++r) {
    table.AddRow({rows[r], FormatDouble(columns[0][r], 6),
                  FormatDouble(columns[1][r], 6),
                  FormatDouble(columns[2][r], 6)});
  }
  std::printf("(mean seconds per timestamp)\n");
  table.Print();
  MaybeWriteCsv(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
