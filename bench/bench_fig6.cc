// Figure 6 reproduction: impact of the discretization granularity K in
// {2, 6, 10, 14, 18} on query error and average per-timestamp runtime for
// RetraSyn_b and RetraSyn_p across the three datasets.
//
// Expected shape (paper SV-E Fig. 6): utility has an interior optimum — a
// coarse grid blurs mobility patterns while a fine grid inflates the state
// domain and the perturbation noise; runtime grows mildly with K.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  std::vector<uint32_t> ks{2, 6, 10, 14, 18};
  if (flags.Has("k")) ks = {options.grid_k};

  std::printf("=== Figure 6: impact of granularity K (eps=%.1f, w=%d) ===\n",
              options.epsilon, options.window);
  TablePrinter csv_table({"dataset", "K", "method", "query_error",
                          "runtime_s_per_ts"});

  for (DatasetKind kind : {DatasetKind::kTDriveLike,
                           DatasetKind::kOldenburgLike,
                           DatasetKind::kSanJoaquinLike}) {
    // Generate once; re-discretize per K.
    DatasetSpec spec;
    switch (kind) {
      case DatasetKind::kTDriveLike:
        spec = TDriveLike(DefaultScale(kind) * options.scale_mult,
                          options.seed);
        break;
      case DatasetKind::kOldenburgLike:
        spec = OldenburgLike(DefaultScale(kind) * options.scale_mult,
                             options.seed + 1);
        break;
      default:
        spec = SanJoaquinLike(DefaultScale(kind) * options.scale_mult,
                              options.seed + 2);
        break;
    }
    const StreamDatabase db = MakeDataset(spec);
    std::printf("\n--- %s (streams=%zu, points=%llu) ---\n", spec.name.c_str(),
                db.streams().size(),
                static_cast<unsigned long long>(db.TotalPoints()));
    TablePrinter table({"K", "method", "QueryError", "Runtime(s/ts)"});

    for (size_t ki = 0; ki < ks.size(); ++ki) {
      const PreparedDataset dataset(db, ks[ki]);
      for (MethodId id : {MethodId::kRetraSynB, MethodId::kRetraSynP}) {
        auto engine =
            MakeEngine(id, dataset.states(), options.epsilon, options.window,
                       AllocationKind::kAdaptive, db.AverageLength(),
                       options.seed + 100 + ki);
        const RunResult result =
            RunEngine(dataset, *engine, options.metrics, options.seed + 1000);
        table.AddRow({std::to_string(ks[ki]), MethodName(id),
                      FormatDouble(result.metrics.query_error),
                      FormatDouble(result.seconds_per_timestamp, 6)});
        csv_table.AddRow({spec.name, std::to_string(ks[ki]), MethodName(id),
                          FormatDouble(result.metrics.query_error),
                          FormatDouble(result.seconds_per_timestamp, 6)});
      }
      if (ki + 1 < ks.size()) table.AddRow(TablePrinter::Separator());
    }
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
