// Table III reproduction: overall utility of the six methods (LBD, LBA, LPD,
// LPA, RetraSyn_b, RetraSyn_p) across the three datasets and privacy budgets
// eps in {0.5, 1.0, 1.5, 2.0}, under all eight utility metrics.
//
// Expected shape (paper SV-C): RetraSyn variants dominate on every metric;
// RetraSyn_p generally beats RetraSyn_b; RetraSyn improves monotonically-ish
// with eps while the LDP-IDS baselines fluctuate; baseline Length Error sits
// at ln 2 = 0.6931 because their synthetic streams never terminate.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace retrasyn {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  std::vector<double> epsilons{0.5, 1.0, 1.5, 2.0};
  if (flags.Has("epsilon")) epsilons = {options.epsilon};

  std::vector<DatasetKind> kinds{DatasetKind::kTDriveLike,
                                 DatasetKind::kOldenburgLike,
                                 DatasetKind::kSanJoaquinLike};
  if (flags.Has("dataset")) {
    auto spec = DatasetByName(flags.GetString("dataset", ""), 1.0, 1);
    spec.status().CheckOK();
    kinds = {spec.value().kind};
  }

  const std::vector<MethodId> methods{MethodId::kLBD,       MethodId::kLBA,
                                      MethodId::kLPD,       MethodId::kLPA,
                                      MethodId::kRetraSynB, MethodId::kRetraSynP};

  std::printf("=== Table III: overall utility (w=%d, K=%u, phi=%lld) ===\n",
              options.window, options.grid_k,
              static_cast<long long>(options.metrics.phi));
  TablePrinter csv_table({"dataset", "epsilon", "method", "density_error",
                          "query_error", "hotspot_ndcg", "transition_error",
                          "pattern_f1", "kendall_tau", "trip_error",
                          "length_error"});

  for (DatasetKind kind : kinds) {
    const NamedDataset dataset = Prepare(kind, options);
    TablePrinter table({"eps", "method", "Density", "Query", "Hotspot",
                        "Transition", "PatternF1", "KendallTau", "Trip",
                        "Length"});
    for (size_t ei = 0; ei < epsilons.size(); ++ei) {
      const double eps = epsilons[ei];
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        const RunResult result =
            RunMethod(methods[mi], dataset, options, eps, options.window,
                      AllocationKind::kAdaptive, ei * 10 + mi);
        const MetricsReport& m = result.metrics;
        table.AddRow({FormatDouble(eps, 1), MethodName(methods[mi]),
                      FormatDouble(m.density_error), FormatDouble(m.query_error),
                      FormatDouble(m.hotspot_ndcg),
                      FormatDouble(m.transition_error),
                      FormatDouble(m.pattern_f1), FormatDouble(m.kendall_tau),
                      FormatDouble(m.trip_error),
                      FormatDouble(m.length_error)});
        csv_table.AddRow({dataset.name, FormatDouble(eps, 1),
                          MethodName(methods[mi]),
                          FormatDouble(m.density_error),
                          FormatDouble(m.query_error),
                          FormatDouble(m.hotspot_ndcg),
                          FormatDouble(m.transition_error),
                          FormatDouble(m.pattern_f1),
                          FormatDouble(m.kendall_tau),
                          FormatDouble(m.trip_error),
                          FormatDouble(m.length_error)});
      }
      if (ei + 1 < epsilons.size()) table.AddRow(TablePrinter::Separator());
    }
    std::printf("\n--- %s ---\n", dataset.name.c_str());
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
