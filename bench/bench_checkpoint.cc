// Checkpointed recovery cost: what a checkpoint buys over full journal
// replay at long horizons, and what compaction does to the on-disk journal.
//
// The same steady-churn workload (constant `live` population, `churn`
// streams quitting/entering per round — the schedule shared with
// bench_horizon and the recovery tests) is ingested twice:
//
//   full_replay   — journal only. Recover scans and replays every round
//                   ever ingested: O(horizon).
//   checkpointed  — journal + checkpoints every `every` rounds with history
//                   spill. Recover loads the newest checkpoint and replays
//                   only the journal suffix behind it: O(window), constant
//                   in the horizon. Compaction retires the journal prefix,
//                   so the on-disk footprint is bounded too.
//
// For each mode the bench reports ingest time, the on-disk journal (and
// checkpoint) footprint at crash time, timed TrajectoryService::Recover
// wall time, and — for the checkpointed mode — the replayed-suffix length
// and the speedup over full replay.
//
// Output: a table on stderr and a JSON array (--json, default
// BENCH_checkpoint.json); --quick shrinks the workload for CI smoke runs.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "geo/grid.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

/// Total bytes of the regular files in \p dir (0 if the dir is missing).
uint64_t DirBytes(const std::string& dir) {
  auto names = ListDirectory(dir);
  if (!names.ok()) return 0;
  uint64_t total = 0;
  for (const std::string& name : names.value()) {
    auto size = FileSize(dir + "/" + name);
    if (size.ok()) total += static_cast<uint64_t>(size.value());
  }
  return total;
}

struct CaseResult {
  std::string mode;
  int64_t rounds = 0;
  double ingest_s = 0.0;
  double recover_s = 0.0;
  uint64_t journal_bytes = 0;     ///< on disk at crash time
  uint64_t checkpoint_bytes = 0;  ///< on disk at crash time
  uint64_t checkpoints_written = 0;
  uint64_t segments_retired = 0;
  int64_t replayed_rounds = 0;  ///< journal suffix applied by Recover
};

CaseResult RunCase(bool checkpointed, const StateSpace& states,
                   const Grid& grid, int64_t rounds, int64_t live,
                   int64_t churn, int window, int64_t every,
                   int64_t segment_bytes, uint64_t seed) {
  const std::string journal_dir =
      MakeTempDir("bench-ckpt-journal-", ".").ValueOrDie();
  const std::string checkpoint_dir =
      MakeTempDir("bench-ckpt-state-", ".").ValueOrDie();

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = window;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = static_cast<double>(live) / static_cast<double>(churn);
  config.seed = seed;
  config.journal_dir = journal_dir;
  config.journal_fsync = FsyncPolicy::kNever;
  config.journal_segment_bytes = segment_bytes;
  if (checkpointed) {
    config.checkpoint_dir = checkpoint_dir;
    config.checkpoint_every_rounds = every;
  }

  CaseResult result;
  result.mode = checkpointed ? "checkpointed" : "full_replay";
  result.rounds = rounds;
  {
    auto service = TrajectoryService::Create(states, config);
    service.status().CheckOK();
    IngestSession& session = service.value()->session();
    const int64_t lifetime = live / churn;
    const int64_t cells = static_cast<int64_t>(grid.NumCells());
    auto at = [&](int64_t u, int64_t t) {
      return grid.CellCenter(static_cast<CellId>((u * 7 + t) % cells));
    };
    Stopwatch ingest;
    for (int64_t t = 0; t < rounds; ++t) {
      const int64_t first = std::max<int64_t>(0, (t - lifetime) * churn);
      for (int64_t u = first; u < (t + 1) * churn; ++u) {
        const int64_t entered = u / churn;
        if (entered == t) {
          session.Enter(static_cast<uint64_t>(u), at(u, t)).CheckOK();
        } else if (t < entered + lifetime) {
          session.Move(static_cast<uint64_t>(u), at(u, t)).CheckOK();
        } else if (t == entered + lifetime) {
          session.Quit(static_cast<uint64_t>(u)).CheckOK();
        }
      }
      session.Tick().CheckOK();
    }
    service.value()->Drain().CheckOK();
    result.ingest_s = ingest.ElapsedSeconds();
    if (checkpointed) {
      result.checkpoints_written =
          service.value()->checkpoint()->checkpoints_written();
      result.segments_retired =
          service.value()->checkpoint()->segments_retired();
    }
  }

  result.journal_bytes = DirBytes(journal_dir);
  result.checkpoint_bytes = DirBytes(checkpoint_dir);

  Stopwatch recover;
  auto recovered = TrajectoryService::Recover(states, config);
  recovered.status().CheckOK();
  result.recover_s = recover.ElapsedSeconds();
  if (recovered.value()->rounds_closed() != rounds) {
    std::fprintf(stderr, "recovery round mismatch\n");
    std::exit(1);
  }
  result.replayed_rounds =
      checkpointed
          ? rounds - recovered.value()->checkpoint()->last_checkpoint_round()
          : rounds;

  recovered.value().reset();
  RemoveDirTree(journal_dir).CheckOK();
  RemoveDirTree(checkpoint_dir).CheckOK();
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const int64_t rounds = flags.GetInt("rounds", quick ? 400 : 10000);
  const int64_t live = flags.GetInt("live", quick ? 200 : 500);
  const int64_t churn = flags.GetInt("churn", quick ? 10 : 25);
  const uint32_t grid_k =
      static_cast<uint32_t>(flags.GetInt("grid", quick ? 8 : 16));
  const int window = static_cast<int>(flags.GetInt("window", 20));
  const int64_t every = flags.GetInt("every", quick ? 50 : 100);
  const int64_t segment_bytes = flags.GetInt("segment_bytes", 1 << 20);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path =
      flags.GetString("json", "BENCH_checkpoint.json");
  if (live % churn != 0) {
    std::fprintf(stderr, "live (%lld) must be a multiple of churn (%lld)\n",
                 static_cast<long long>(live), static_cast<long long>(churn));
    return 1;
  }

  const BoundingBox box{0.0, 0.0, 1000.0, 1000.0};
  const Grid grid(box, grid_k);
  const StateSpace states(grid);

  std::vector<CaseResult> results;
  results.push_back(RunCase(false, states, grid, rounds, live, churn, window,
                            every, segment_bytes, seed));
  results.push_back(RunCase(true, states, grid, rounds, live, churn, window,
                            every, segment_bytes, seed));
  const double speedup = results[0].recover_s / results[1].recover_s;

  for (const CaseResult& c : results) {
    std::fprintf(
        stderr,
        "%-12s rounds=%6lld  ingest %6.2f s  journal %7.2f MiB  "
        "ckpt %6.2f MiB  recover %7.4f s  (replayed %5lld rounds, "
        "%7.1f rounds/s)\n",
        c.mode.c_str(), static_cast<long long>(c.rounds), c.ingest_s,
        static_cast<double>(c.journal_bytes) / (1 << 20),
        static_cast<double>(c.checkpoint_bytes) / (1 << 20), c.recover_s,
        static_cast<long long>(c.replayed_rounds),
        static_cast<double>(c.rounds) / c.recover_s);
  }
  std::fprintf(stderr, "checkpointed recovery speedup: %.1fx\n", speedup);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& c = results[i];
    std::fprintf(
        f,
        "  {\"bench\": \"checkpoint\", \"mode\": \"%s\", \"grid_k\": %u, "
        "\"rounds\": %lld, \"live\": %lld, \"churn\": %lld, \"window\": %d, "
        "\"every\": %lld, \"segment_bytes\": %lld, \"ingest_s\": %.3f, "
        "\"journal_mb\": %.2f, \"checkpoint_mb\": %.2f, "
        "\"checkpoints_written\": %llu, \"segments_retired\": %llu, "
        "\"recover_s\": %.4f, \"replayed_rounds\": %lld, "
        "\"recovered_rounds_per_s\": %.1f%s}%s\n",
        c.mode.c_str(), grid_k, static_cast<long long>(c.rounds),
        static_cast<long long>(live), static_cast<long long>(churn), window,
        static_cast<long long>(every), static_cast<long long>(segment_bytes),
        c.ingest_s, static_cast<double>(c.journal_bytes) / (1 << 20),
        static_cast<double>(c.checkpoint_bytes) / (1 << 20),
        static_cast<unsigned long long>(c.checkpoints_written),
        static_cast<unsigned long long>(c.segments_retired), c.recover_s,
        static_cast<long long>(c.replayed_rounds),
        static_cast<double>(c.rounds) / c.recover_s,
        c.mode == "checkpointed"
            ? (", \"speedup_vs_full_replay\": " + std::to_string(speedup))
                  .c_str()
            : "",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::Main(argc, argv); }
