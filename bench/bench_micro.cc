// Hot-path microbenchmarks (google-benchmark): the LDP perturbation and
// estimation kernels, the DMU selection, and the synthesis step, swept over
// domain sizes / populations so the complexity claims of paper SIV-B are
// visible (user-side O(|S|), curator aggregation O(n + |S|), DMU O(|S|),
// synthesis O(|T_syn|)).

#include <benchmark/benchmark.h>

#include "common/alias_table.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dmu.h"
#include "core/mobility_model.h"
#include "core/synthesizer.h"
#include "core/transition_sampler_cache.h"
#include "geo/grid.h"
#include "geo/state_space.h"
#include "ldp/aggregate.h"
#include "ldp/frequency_oracle.h"
#include "metrics/histogram.h"

namespace retrasyn {
namespace {

void BM_OuePerturbDense(benchmark::State& state) {
  const uint32_t domain = static_cast<uint32_t>(state.range(0));
  OueClient client(1.0, domain);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Perturb(domain / 2, rng));
  }
  state.SetComplexityN(domain);
}
BENCHMARK(BM_OuePerturbDense)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_OuePerturbSparse(benchmark::State& state) {
  const uint32_t domain = static_cast<uint32_t>(state.range(0));
  OueClient client(1.0, domain);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.PerturbSparse(domain / 2, rng));
  }
}
BENCHMARK(BM_OuePerturbSparse)->Range(64, 4096);

void BM_OueEstimate(benchmark::State& state) {
  const uint32_t domain = static_cast<uint32_t>(state.range(0));
  OueAggregator agg(1.0, domain);
  std::vector<uint64_t> ones(domain, 13);
  agg.AddRawCounts(ones, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.EstimateFrequencies());
  }
}
BENCHMARK(BM_OueEstimate)->Range(64, 4096);

void BM_CollectAggregateSim(benchmark::State& state) {
  const uint32_t domain = 1000;
  const size_t n = static_cast<size_t>(state.range(0));
  TransitionCollector collector(domain, CollectionMode::kAggregateSim);
  Rng rng(3);
  std::vector<StateId> states(n);
  for (size_t i = 0; i < n; ++i) states[i] = i % domain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(collector.Collect(states, 1.0, rng));
  }
}
BENCHMARK(BM_CollectAggregateSim)->Range(100, 100000);

void BM_CollectPerUser(benchmark::State& state) {
  const uint32_t domain = 1000;
  const size_t n = static_cast<size_t>(state.range(0));
  TransitionCollector collector(domain, CollectionMode::kPerUser);
  Rng rng(4);
  std::vector<StateId> states(n);
  for (size_t i = 0; i < n; ++i) states[i] = i % domain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(collector.Collect(states, 1.0, rng));
  }
}
BENCHMARK(BM_CollectPerUser)->Range(100, 2000);

void BM_DmuSelect(benchmark::State& state) {
  const uint32_t domain = static_cast<uint32_t>(state.range(0));
  Rng rng(5);
  std::vector<double> model(domain), fresh(domain);
  for (uint32_t i = 0; i < domain; ++i) {
    model[i] = rng.UniformDouble() * 0.01;
    fresh[i] = model[i] + rng.Gaussian(0.0, 0.002);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectSignificantTransitions(model, fresh, 1.0, 5000));
  }
  state.SetComplexityN(domain);
}
BENCHMARK(BM_DmuSelect)->Range(64, 8192)->Complexity(benchmark::oN);

// --- O(1) cached sampling vs O(n) linear scans (paper SIV-B) ---------------
//
// The per-point complexity claim of the alias-table hot path: sampling from a
// cached table is flat in the distribution size, while Rng::Discrete walks
// the weight vector. The build cost is linear and paid once per model change.

void BM_DiscreteLinear(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(21);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.UniformDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Discrete(weights));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DiscreteLinear)->Range(8, 4096)->Complexity(benchmark::oN);

void BM_AliasSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(22);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.UniformDouble();
  AliasTable table;
  table.Build(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AliasSample)->Range(8, 4096)->Complexity(benchmark::o1);

void BM_AliasBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(23);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.UniformDouble();
  AliasTable table;
  for (auto _ : state) {
    table.Build(weights);
    benchmark::DoNotOptimize(table);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AliasBuild)->Range(8, 4096)->Complexity(benchmark::oN);

void BM_SamplerCacheSyncIncremental(benchmark::State& state) {
  // Steady-state DMU round: a small selective update followed by a Sync that
  // re-derives only the touched cells.
  const uint32_t dirty = static_cast<uint32_t>(state.range(0));
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 32);
  const StateSpace states(grid);
  GlobalMobilityModel model(states);
  Rng rng(24);
  std::vector<double> f(states.size());
  for (double& x : f) x = rng.UniformDouble() * 0.01;
  model.ReplaceAll(f);
  TransitionSamplerCache cache(states);
  cache.Sync(model);
  std::vector<StateId> selected(dirty);
  for (auto _ : state) {
    state.PauseTiming();
    for (StateId& s : selected) {
      s = static_cast<StateId>(
          rng.UniformInt(static_cast<uint64_t>(states.size())));
      f[s] = rng.UniformDouble() * 0.01;
    }
    model.UpdateStates(selected, f);
    state.ResumeTiming();
    cache.Sync(model);
  }
  state.SetComplexityN(dirty);
}
BENCHMARK(BM_SamplerCacheSyncIncremental)
    ->Range(8, 2048)
    ->Complexity(benchmark::oN);

void BM_SynthesizerStep(benchmark::State& state) {
  const uint32_t population = static_cast<uint32_t>(state.range(0));
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 10);
  const StateSpace states(grid);
  GlobalMobilityModel model(states);
  Rng rng(6);
  std::vector<double> f(states.size());
  for (double& x : f) x = rng.UniformDouble() * 0.01;
  model.ReplaceAll(f);
  SynthesizerConfig config;
  config.lambda = 50.0;
  Synthesizer synthesizer(states, config);
  synthesizer.Initialize(model, population, 0, rng);
  int64_t t = 1;
  for (auto _ : state) {
    synthesizer.Step(model, population, t++, rng);
  }
  state.SetComplexityN(population);
}
BENCHMARK(BM_SynthesizerStep)->Range(1000, 64000)->Complexity(benchmark::oN);

void BM_SynthesizerStepLegacy(benchmark::State& state) {
  // A/B partner of BM_SynthesizerStep: the former linear-scan sampling with
  // a heap allocation per sampled point (use_sampler_cache=false).
  const uint32_t population = static_cast<uint32_t>(state.range(0));
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 10);
  const StateSpace states(grid);
  GlobalMobilityModel model(states);
  Rng rng(6);
  std::vector<double> f(states.size());
  for (double& x : f) x = rng.UniformDouble() * 0.01;
  model.ReplaceAll(f);
  SynthesizerConfig config;
  config.lambda = 50.0;
  config.use_sampler_cache = false;
  Synthesizer synthesizer(states, config);
  synthesizer.Initialize(model, population, 0, rng);
  int64_t t = 1;
  for (auto _ : state) {
    synthesizer.Step(model, population, t++, rng);
  }
  state.SetComplexityN(population);
}
BENCHMARK(BM_SynthesizerStepLegacy)
    ->Range(1000, 64000)
    ->Complexity(benchmark::oN);

void BM_SynthesizerStepThreads(benchmark::State& state) {
  // The paper's future-work acceleration: parallel synthesis. Sweep worker
  // threads at a fixed large population, on a live persistent pool (without
  // one the chunks run inline and the sweep would measure serial execution).
  const int threads = static_cast<int>(state.range(0));
  const uint32_t population = 64000;
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 10);
  const StateSpace states(grid);
  GlobalMobilityModel model(states);
  Rng rng(9);
  std::vector<double> f(states.size());
  for (double& x : f) x = rng.UniformDouble() * 0.01;
  model.ReplaceAll(f);
  SynthesizerConfig config;
  config.lambda = 50.0;
  config.num_threads = threads;
  ThreadPool pool(threads);
  Synthesizer synthesizer(states, config);
  synthesizer.SetThreadPool(&pool);
  synthesizer.Initialize(model, population, 0, rng);
  int64_t t = 1;
  for (auto _ : state) {
    synthesizer.Step(model, population, t++, rng);
  }
}
BENCHMARK(BM_SynthesizerStepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GridLocate(benchmark::State& state) {
  const Grid grid(BoundingBox{0.0, 0.0, 30000.0, 30000.0}, 18);
  Rng rng(7);
  Point p{rng.UniformDouble(0, 30000), rng.UniformDouble(0, 30000)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Locate(p));
    p.x += 1.0;
    if (p.x > 30000.0) p.x = 0.0;
  }
}
BENCHMARK(BM_GridLocate);

void BM_Jsd(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> p(d), q(d);
  for (size_t i = 0; i < d; ++i) {
    p[i] = rng.UniformDouble();
    q[i] = rng.UniformDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(JensenShannonDivergence(p, q));
  }
}
BENCHMARK(BM_Jsd)->Range(64, 4096);

}  // namespace
}  // namespace retrasyn

BENCHMARK_MAIN();
