// Figure 3 reproduction: impact of the allocation strategy. Adaptive,
// Uniform (both divisions), Sample, and the extra Random population strategy
// discussed in SIII-E, compared on Transition Error, Query Error, and
// Kendall tau for the T-Drive-like and Oldenburg-like datasets.
//
// Expected shape (paper SV-D Fig. 3): Adaptive is the most robust overall;
// Sample can win transition/query error on steadier streams (Oldenburg) but
// collapses on Kendall tau; the differences stay modest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace retrasyn {
namespace bench {
namespace {

struct Strategy {
  std::string label;
  MethodId method;
  AllocationKind allocation;
};

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);

  const std::vector<Strategy> strategies{
      {"Adaptive_b", MethodId::kRetraSynB, AllocationKind::kAdaptive},
      {"Adaptive_p", MethodId::kRetraSynP, AllocationKind::kAdaptive},
      {"Uniform_b", MethodId::kRetraSynB, AllocationKind::kUniform},
      {"Uniform_p", MethodId::kRetraSynP, AllocationKind::kUniform},
      {"Sample_b", MethodId::kRetraSynB, AllocationKind::kSample},
      {"Sample_p", MethodId::kRetraSynP, AllocationKind::kSample},
      {"Random_p", MethodId::kRetraSynP, AllocationKind::kRandom},
  };

  std::printf(
      "=== Figure 3: allocation strategies (eps=%.1f, w=%d, K=%u) ===\n",
      options.epsilon, options.window, options.grid_k);
  TablePrinter csv_table({"dataset", "strategy", "transition_error",
                          "query_error", "kendall_tau"});

  for (DatasetKind kind :
       {DatasetKind::kTDriveLike, DatasetKind::kOldenburgLike}) {
    const NamedDataset dataset = Prepare(kind, options);
    TablePrinter table({"strategy", "TransitionError", "QueryError",
                        "KendallTau"});
    for (size_t si = 0; si < strategies.size(); ++si) {
      const Strategy& s = strategies[si];
      const RunResult result = RunMethod(s.method, dataset, options,
                                         options.epsilon, options.window,
                                         s.allocation, si);
      table.AddRow({s.label, FormatDouble(result.metrics.transition_error),
                    FormatDouble(result.metrics.query_error),
                    FormatDouble(result.metrics.kendall_tau)});
      csv_table.AddRow({dataset.name, s.label,
                        FormatDouble(result.metrics.transition_error),
                        FormatDouble(result.metrics.query_error),
                        FormatDouble(result.metrics.kendall_tau)});
    }
    std::printf("\n--- %s ---\n", dataset.name.c_str());
    table.Print();
  }
  MaybeWriteCsv(csv_table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace retrasyn

int main(int argc, char** argv) { return retrasyn::bench::Run(argc, argv); }
