#include "ldp/aggregate.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace retrasyn {
namespace {

std::vector<StateId> MakeStates(uint32_t domain, size_t n) {
  // Skewed workload: ~half the mass on state 0, the rest round-robin.
  std::vector<StateId> states;
  states.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    states.push_back(i % 2 == 0 ? 0 : static_cast<StateId>(1 + i % (domain - 1)));
  }
  return states;
}

TEST(CollectorTest, EmptyInputYieldsNoReports) {
  TransitionCollector collector(10, CollectionMode::kPerUser);
  Rng rng(1);
  const CollectionResult result = collector.Collect({}, 1.0, rng);
  EXPECT_EQ(result.num_reports, 0u);
  EXPECT_TRUE(result.frequencies.empty());
}

TEST(CollectorTest, ZeroEpsilonYieldsNoReports) {
  TransitionCollector collector(10, CollectionMode::kAggregateSim);
  Rng rng(2);
  const CollectionResult result = collector.Collect({1, 2, 3}, 0.0, rng);
  EXPECT_EQ(result.num_reports, 0u);
  EXPECT_TRUE(result.frequencies.empty());
}

class CollectorModeTest : public testing::TestWithParam<CollectionMode> {};

TEST_P(CollectorModeTest, UnbiasedEstimates) {
  const uint32_t domain = 20;
  const size_t n = 20000;
  TransitionCollector collector(domain, GetParam());
  Rng rng(3);
  const std::vector<StateId> states = MakeStates(domain, n);
  const CollectionResult result = collector.Collect(states, 1.0, rng);
  ASSERT_EQ(result.num_reports, n);
  ASSERT_EQ(result.frequencies.size(), domain);
  // True frequency of state 0 is 1/2.
  EXPECT_NEAR(result.frequencies[0], 0.5, 0.03);
  double total = 0.0;
  for (double f : result.frequencies) total += f;
  EXPECT_NEAR(total, 1.0, 0.15);
}

TEST_P(CollectorModeTest, EpsilonRecordedInResult) {
  TransitionCollector collector(8, GetParam());
  Rng rng(4);
  const CollectionResult result = collector.Collect({0, 1, 2}, 0.7, rng);
  EXPECT_DOUBLE_EQ(result.epsilon, 0.7);
  EXPECT_EQ(result.num_reports, 3u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, CollectorModeTest,
                         testing::Values(CollectionMode::kPerUser,
                                         CollectionMode::kAggregateSim));

TEST(CollectorEquivalenceTest, ModesAgreeInMeanAndVariance) {
  // The aggregate simulator must match the per-user protocol's estimator
  // distribution. Compare empirical mean and variance of f_hat(0) over many
  // rounds for both modes.
  const uint32_t domain = 10;
  const size_t n = 300;
  const double eps = 1.0;
  const int rounds = 1500;
  std::vector<StateId> states(n, 0);
  for (size_t i = n / 4; i < n; ++i) states[i] = 1 + i % (domain - 1);
  // True f(0) = 1/4.

  auto run = [&](CollectionMode mode, uint64_t seed, double* mean_out,
                 double* var_out) {
    TransitionCollector collector(domain, mode);
    Rng rng(seed);
    double sum = 0.0, sum_sq = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const CollectionResult result = collector.Collect(states, eps, rng);
      const double f = result.frequencies[0];
      sum += f;
      sum_sq += f * f;
    }
    *mean_out = sum / rounds;
    *var_out = sum_sq / rounds - (sum / rounds) * (sum / rounds);
  };

  double mean_user, var_user, mean_sim, var_sim;
  run(CollectionMode::kPerUser, 10, &mean_user, &var_user);
  run(CollectionMode::kAggregateSim, 11, &mean_sim, &var_sim);

  EXPECT_NEAR(mean_user, 0.25, 0.01);
  EXPECT_NEAR(mean_sim, 0.25, 0.01);
  EXPECT_NEAR(mean_user, mean_sim, 0.01);
  // Variances within 15% of each other.
  EXPECT_NEAR(var_user, var_sim, 0.15 * std::max(var_user, var_sim));
}

TEST(CollectorTest, TimingsPopulated) {
  TransitionCollector collector(50, CollectionMode::kAggregateSim);
  Rng rng(5);
  CollectTimings timings;
  std::vector<StateId> states(1000, 7);
  collector.Collect(states, 1.0, rng, &timings);
  EXPECT_GE(timings.user_side_seconds, 0.0);
  EXPECT_GE(timings.aggregation_seconds, 0.0);
}

TEST(CollectorTest, DeterministicGivenSeed) {
  TransitionCollector collector(16, CollectionMode::kAggregateSim);
  const std::vector<StateId> states = MakeStates(16, 500);
  Rng a(42), b(42);
  const CollectionResult ra = collector.Collect(states, 1.0, a);
  const CollectionResult rb = collector.Collect(states, 1.0, b);
  EXPECT_EQ(ra.frequencies, rb.frequencies);
}

}  // namespace
}  // namespace retrasyn
