#include "ldp/frequency_oracle.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace retrasyn {
namespace {

TEST(OueParamsTest, FlipProbability) {
  OueParams params{1.0, 10};
  EXPECT_NEAR(params.q(), 1.0 / (std::exp(1.0) + 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(OueParams::p(), 0.5);
}

TEST(OueVarianceTest, MatchesEquation3) {
  // Var = 4 e^eps / (n (e^eps - 1)^2)
  const double eps = 1.0;
  const uint64_t n = 1000;
  const double e = std::exp(eps);
  EXPECT_NEAR(OueFrequencyVariance(eps, n), 4.0 * e / (n * (e - 1) * (e - 1)),
              1e-12);
}

TEST(OueVarianceTest, DecreasesInEpsilonAndN) {
  EXPECT_GT(OueFrequencyVariance(0.5, 100), OueFrequencyVariance(1.0, 100));
  EXPECT_GT(OueFrequencyVariance(1.0, 100), OueFrequencyVariance(1.0, 1000));
  EXPECT_TRUE(std::isinf(OueFrequencyVariance(1.0, 0)));
}

TEST(OueClientTest, PerturbedVectorHasCorrectLength) {
  Rng rng(1);
  OueClient client(1.0, 16);
  const auto bits = client.Perturb(3, rng);
  EXPECT_EQ(bits.size(), 16u);
}

TEST(OueClientTest, SatisfiesLdpBitProbabilities) {
  // The defining randomization: P[bit=1 | true] = 1/2,
  // P[bit=1 | false] = 1/(e^eps + 1).
  Rng rng(2);
  const double eps = 1.0;
  OueClient client(eps, 8);
  const int trials = 30000;
  int true_ones = 0;
  std::vector<int> false_ones(8, 0);
  for (int i = 0; i < trials; ++i) {
    const auto bits = client.Perturb(5, rng);
    true_ones += bits[5];
    for (int j = 0; j < 8; ++j) {
      if (j != 5) false_ones[j] += bits[j];
    }
  }
  EXPECT_NEAR(true_ones / static_cast<double>(trials), 0.5, 0.01);
  const double q = 1.0 / (std::exp(eps) + 1.0);
  for (int j = 0; j < 8; ++j) {
    if (j == 5) continue;
    EXPECT_NEAR(false_ones[j] / static_cast<double>(trials), q, 0.012);
  }
}

TEST(OueClientTest, SparseAndDenseAgreeInDistribution) {
  Rng rng_dense(3), rng_sparse(4);
  const double eps = 1.5;
  const uint32_t d = 12;
  OueClient client(eps, d);
  const int trials = 20000;
  std::vector<double> dense_ones(d, 0.0), sparse_ones(d, 0.0);
  for (int i = 0; i < trials; ++i) {
    const auto bits = client.Perturb(7, rng_dense);
    for (uint32_t j = 0; j < d; ++j) dense_ones[j] += bits[j];
    for (uint32_t j : client.PerturbSparse(7, rng_sparse)) {
      ASSERT_LT(j, d);
      sparse_ones[j] += 1.0;
    }
  }
  for (uint32_t j = 0; j < d; ++j) {
    EXPECT_NEAR(dense_ones[j] / trials, sparse_ones[j] / trials, 0.015)
        << "position " << j;
  }
}

TEST(OueAggregatorTest, UnbiasedFrequencyEstimation) {
  // 60/30/10 split over 3 values, many users: estimates converge.
  Rng rng(5);
  const double eps = 1.0;
  const uint32_t d = 3;
  OueClient client(eps, d);
  OueAggregator agg(eps, d);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const uint32_t value = i < n * 6 / 10 ? 0 : (i < n * 9 / 10 ? 1 : 2);
    agg.AddReport(client.Perturb(value, rng));
  }
  const auto freqs = agg.EstimateFrequencies();
  EXPECT_EQ(agg.num_reports(), static_cast<uint64_t>(n));
  EXPECT_NEAR(freqs[0], 0.6, 0.02);
  EXPECT_NEAR(freqs[1], 0.3, 0.02);
  EXPECT_NEAR(freqs[2], 0.1, 0.02);
}

TEST(OueAggregatorTest, EstimateVarianceMatchesEquation3) {
  // Empirical variance of the estimator for a zero-frequency position should
  // match the paper's worst-case formula closely.
  const double eps = 1.0;
  const uint32_t d = 4;
  const int n = 400;
  const int runs = 3000;
  Rng rng(6);
  OueClient client(eps, d);
  double sum = 0.0, sum_sq = 0.0;
  for (int r = 0; r < runs; ++r) {
    OueAggregator agg(eps, d);
    for (int i = 0; i < n; ++i) {
      agg.AddReport(client.Perturb(0, rng));  // position 3 never true
    }
    const double f3 = agg.EstimateFrequencies()[3];
    sum += f3;
    sum_sq += f3 * f3;
  }
  const double mean = sum / runs;
  const double var = sum_sq / runs - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.005);
  EXPECT_NEAR(var, OueFrequencyVariance(eps, n),
              0.15 * OueFrequencyVariance(eps, n));
}

TEST(OueAggregatorTest, CountsAreFrequenciesTimesN) {
  Rng rng(7);
  OueClient client(1.0, 5);
  OueAggregator agg(1.0, 5);
  for (int i = 0; i < 100; ++i) agg.AddReport(client.Perturb(2, rng));
  const auto freqs = agg.EstimateFrequencies();
  const auto counts = agg.EstimateCounts();
  for (size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(counts[i], freqs[i] * 100.0, 1e-9);
  }
}

TEST(OueAggregatorTest, EmptyAggregatorReturnsZeros) {
  OueAggregator agg(1.0, 4);
  const auto freqs = agg.EstimateFrequencies();
  for (double f : freqs) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(GrrTest, KeepProbability) {
  GrrClient client(1.0, 10);
  const double e = std::exp(1.0);
  EXPECT_NEAR(client.keep_probability(), e / (e + 9.0), 1e-12);
}

TEST(GrrTest, UnbiasedEstimation) {
  Rng rng(8);
  const double eps = 2.0;
  const uint32_t d = 6;
  GrrClient client(eps, d);
  GrrAggregator agg(eps, d);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const uint32_t value = (i % 2 == 0) ? 1 : 4;  // 50/50 over two values
    agg.AddReport(client.Perturb(value, rng));
  }
  const auto freqs = agg.EstimateFrequencies();
  EXPECT_NEAR(freqs[1], 0.5, 0.02);
  EXPECT_NEAR(freqs[4], 0.5, 0.02);
  EXPECT_NEAR(freqs[0], 0.0, 0.02);
}

TEST(GrrTest, PerturbStaysInDomain) {
  Rng rng(9);
  GrrClient client(0.5, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(client.Perturb(i % 4, rng), 4u);
  }
}

TEST(GrrVarianceTest, LargerDomainLargerVariance) {
  EXPECT_GT(GrrFrequencyVariance(1.0, 100, 1000),
            GrrFrequencyVariance(1.0, 10, 1000));
}

TEST(OracleChoiceTest, OueBeatsGrrOnLargeDomains) {
  // The reason the paper uses OUE: for transition-state domains (hundreds to
  // thousands of states), OUE's variance is smaller than GRR's.
  const uint32_t domain = 900;  // ~ 9|C| + 2|C| at K = 9
  EXPECT_LT(OueFrequencyVariance(1.0, 1000),
            GrrFrequencyVariance(1.0, domain, 1000));
}

TEST(PostprocessTest, ClipRemovesNegatives) {
  std::vector<double> f{0.5, -0.2, 0.7, -0.01};
  ApplyPostprocess(Postprocess::kClip, f);
  EXPECT_DOUBLE_EQ(f[0], 0.5);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  EXPECT_DOUBLE_EQ(f[2], 0.7);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
}

TEST(PostprocessTest, NoneIsIdentity) {
  std::vector<double> f{0.5, -0.2};
  const std::vector<double> orig = f;
  ApplyPostprocess(Postprocess::kNone, f);
  EXPECT_EQ(f, orig);
}

TEST(PostprocessTest, NormSubProducesDistribution) {
  std::vector<double> f{0.6, -0.3, 0.5, 0.4, -0.1};
  ApplyPostprocess(Postprocess::kNormSub, f, 1.0);
  double sum = 0.0;
  for (double x : f) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PostprocessTest, NormSubPreservesOrdering) {
  std::vector<double> f{0.9, 0.4, -0.5, 0.2};
  ApplyPostprocess(Postprocess::kNormSub, f, 1.0);
  EXPECT_GE(f[0], f[1]);
  EXPECT_GE(f[1], f[3]);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

}  // namespace
}  // namespace retrasyn
