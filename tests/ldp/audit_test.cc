#include "ldp/audit.h"

#include <cmath>

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

TEST(AuditTest, OueAnalyticBoundIsEpsilon) {
  EXPECT_DOUBLE_EQ(OueAnalyticLogRatio(0.5), 0.5);
  EXPECT_DOUBLE_EQ(OueAnalyticLogRatio(2.0), 2.0);
}

TEST(AuditTest, OueEmpiricalMatchesClaimedEpsilon) {
  Rng rng(1);
  for (double eps : {0.5, 1.0, 2.0}) {
    const LdpAuditResult result = AuditOue(eps, 8, 200000, rng);
    // OUE is tight: the empirical worst case converges to eps itself.
    EXPECT_NEAR(result.empirical_log_ratio, eps,
                5.0 * result.standard_error)
        << "eps=" << eps;
    EXPECT_TRUE(result.ConsistentWithBound()) << "eps=" << eps;
  }
}

TEST(AuditTest, GrrEmpiricalMatchesClaimedEpsilon) {
  Rng rng(2);
  for (double eps : {0.5, 1.0, 2.0}) {
    const LdpAuditResult result = AuditGrr(eps, 6, 200000, rng);
    EXPECT_NEAR(result.empirical_log_ratio, eps,
                5.0 * result.standard_error)
        << "eps=" << eps;
    EXPECT_TRUE(result.ConsistentWithBound()) << "eps=" << eps;
  }
}

TEST(AuditTest, DetectsOverspentBudget) {
  // A mechanism run with a *larger* eps than claimed must fail the audit
  // against the smaller claimed bound: run OUE at eps = 2 and audit against
  // a claimed bound of 0.5.
  Rng rng(3);
  LdpAuditResult result = AuditOue(2.0, 8, 200000, rng);
  result.analytic_bound = 0.5;  // the (false) claim
  EXPECT_FALSE(result.ConsistentWithBound());
}

TEST(AuditTest, StandardErrorShrinksWithTrials) {
  Rng rng(4);
  const LdpAuditResult small = AuditOue(1.0, 8, 1000, rng);
  const LdpAuditResult large = AuditOue(1.0, 8, 100000, rng);
  EXPECT_LT(large.standard_error, small.standard_error);
}

}  // namespace
}  // namespace retrasyn
