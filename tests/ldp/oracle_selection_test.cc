// Tests for the GRR collection path and the variance-based kAuto oracle
// selection.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldp/aggregate.h"
#include "ldp/frequency_oracle.h"

namespace retrasyn {
namespace {

std::vector<StateId> SkewedStates(uint32_t domain, size_t n) {
  std::vector<StateId> states;
  states.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    states.push_back(i % 2 == 0 ? 0 : static_cast<StateId>(1 + i % (domain - 1)));
  }
  return states;
}

TEST(OracleSelectionTest, AutoPicksGrrForTinyDomains) {
  // GRR wins iff d < 3 e^eps + 2.
  TransitionCollector tiny(4, CollectionMode::kAggregateSim,
                           OracleKind::kAuto);
  EXPECT_EQ(tiny.EffectiveOracle(1.0), OracleKind::kGrr);
  TransitionCollector large(1000, CollectionMode::kAggregateSim,
                            OracleKind::kAuto);
  EXPECT_EQ(large.EffectiveOracle(1.0), OracleKind::kOue);
}

TEST(OracleSelectionTest, AutoSwitchesWithEpsilon) {
  // d = 30: OUE at eps = 1 (3e + 2 ~ 10.2 < 30), GRR at eps = 3
  // (3e^3 + 2 ~ 62 > 30).
  TransitionCollector collector(30, CollectionMode::kAggregateSim,
                                OracleKind::kAuto);
  EXPECT_EQ(collector.EffectiveOracle(1.0), OracleKind::kOue);
  EXPECT_EQ(collector.EffectiveOracle(3.0), OracleKind::kGrr);
}

TEST(OracleSelectionTest, FixedKindsNeverSwitch) {
  TransitionCollector oue(4, CollectionMode::kAggregateSim, OracleKind::kOue);
  TransitionCollector grr(1000, CollectionMode::kAggregateSim,
                          OracleKind::kGrr);
  EXPECT_EQ(oue.EffectiveOracle(5.0), OracleKind::kOue);
  EXPECT_EQ(grr.EffectiveOracle(0.1), OracleKind::kGrr);
}

class GrrCollectorModeTest : public testing::TestWithParam<CollectionMode> {};

TEST_P(GrrCollectorModeTest, UnbiasedEstimates) {
  const uint32_t domain = 12;
  const size_t n = 30000;
  TransitionCollector collector(domain, GetParam(), OracleKind::kGrr);
  Rng rng(5);
  const CollectionResult result =
      collector.Collect(SkewedStates(domain, n), 1.0, rng);
  ASSERT_EQ(result.num_reports, n);
  EXPECT_NEAR(result.frequencies[0], 0.5, 0.03);
  double total = 0.0;
  for (double f : result.frequencies) total += f;
  EXPECT_NEAR(total, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(BothModes, GrrCollectorModeTest,
                         testing::Values(CollectionMode::kPerUser,
                                         CollectionMode::kAggregateSim));

TEST(GrrCollectorTest, ModesAgreeInMeanAndVariance) {
  const uint32_t domain = 8;
  const size_t n = 400;
  const int rounds = 1200;
  std::vector<StateId> states(n, 0);
  for (size_t i = n / 4; i < n; ++i) states[i] = 1 + i % (domain - 1);

  auto run = [&](CollectionMode mode, uint64_t seed, double* mean,
                 double* var) {
    TransitionCollector collector(domain, mode, OracleKind::kGrr);
    Rng rng(seed);
    double sum = 0.0, sum_sq = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const double f = collector.Collect(states, 1.0, rng).frequencies[0];
      sum += f;
      sum_sq += f * f;
    }
    *mean = sum / rounds;
    *var = sum_sq / rounds - (*mean) * (*mean);
  };
  double mean_user, var_user, mean_sim, var_sim;
  run(CollectionMode::kPerUser, 10, &mean_user, &var_user);
  run(CollectionMode::kAggregateSim, 11, &mean_sim, &var_sim);
  EXPECT_NEAR(mean_user, 0.25, 0.01);
  EXPECT_NEAR(mean_sim, 0.25, 0.01);
  EXPECT_NEAR(var_user, var_sim, 0.2 * std::max(var_user, var_sim));
}

TEST(GrrCollectorTest, VarianceWorseThanOueOnLargeDomain) {
  // Empirical confirmation of why the paper uses OUE: on a transition-sized
  // domain, GRR's zero-frequency estimates fluctuate more.
  const uint32_t domain = 300;
  const size_t n = 2000;
  const int rounds = 400;
  std::vector<StateId> states(n, 0);
  auto estimate_var = [&](OracleKind kind, uint64_t seed) {
    TransitionCollector collector(domain, CollectionMode::kAggregateSim, kind);
    Rng rng(seed);
    double sum = 0.0, sum_sq = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const double f =
          collector.Collect(states, 1.0, rng).frequencies[domain - 1];
      sum += f;
      sum_sq += f * f;
    }
    const double mean = sum / rounds;
    return sum_sq / rounds - mean * mean;
  };
  EXPECT_GT(estimate_var(OracleKind::kGrr, 20),
            estimate_var(OracleKind::kOue, 21));
}

}  // namespace
}  // namespace retrasyn
