#include "ldp/budget.h"

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

TEST(BudgetLedgerTest, WindowSumAndRemaining) {
  BudgetLedger ledger(/*window=*/3, /*total=*/1.0);
  ledger.Record(0, 0.3);
  EXPECT_NEAR(ledger.SpentInWindow(0), 0.3, 1e-12);
  EXPECT_NEAR(ledger.RemainingAt(1), 0.7, 1e-12);
  ledger.Record(1, 0.4);
  EXPECT_NEAR(ledger.SpentInWindow(1), 0.7, 1e-12);
  EXPECT_NEAR(ledger.RemainingAt(2), 0.3, 1e-12);
  ledger.Record(2, 0.3);
  EXPECT_NEAR(ledger.SpentInWindow(2), 1.0, 1e-12);
  // At t=3, the spend at t=0 leaves the window.
  EXPECT_NEAR(ledger.RemainingAt(3), 1.0 - 0.4 - 0.3, 1e-12);
}

TEST(BudgetLedgerTest, MaxWindowSpendTracksPeak) {
  BudgetLedger ledger(2, 1.0);
  ledger.Record(0, 0.5);
  ledger.Record(1, 0.5);
  ledger.Record(2, 0.1);
  ledger.Record(3, 0.2);
  EXPECT_NEAR(ledger.MaxWindowSpend(), 1.0, 1e-12);
}

TEST(BudgetLedgerTest, SkippedTimestampsEvictCorrectly) {
  BudgetLedger ledger(3, 1.0);
  ledger.Record(0, 0.6);
  // Jump ahead: nothing recorded at 1, 2.
  ledger.Record(5, 0.2);
  EXPECT_NEAR(ledger.SpentInWindow(5), 0.2, 1e-12);
  EXPECT_NEAR(ledger.RemainingAt(6), 0.8, 1e-12);
}

TEST(BudgetLedgerTest, ZeroSpendAdvancesClockOnly) {
  BudgetLedger ledger(4, 2.0);
  ledger.Record(0, 0.5);
  ledger.Record(1, 0.0);
  ledger.Record(2, 0.0);
  EXPECT_NEAR(ledger.SpentInWindow(2), 0.5, 1e-12);
  EXPECT_NEAR(ledger.MaxWindowSpend(), 0.5, 1e-12);
}

TEST(BudgetLedgerTest, RemainingNeverNegative) {
  BudgetLedger ledger(2, 1.0);
  ledger.Record(0, 0.3);
  ledger.Record(1, 1.2);  // over-spend recorded; RemainingAt floors at 0
  EXPECT_DOUBLE_EQ(ledger.RemainingAt(2), 0.0);
}

TEST(BudgetLedgerTest, UniformAllocationSaturatesWindowExactly) {
  const int w = 10;
  const double eps = 1.0;
  BudgetLedger ledger(w, eps);
  for (int64_t t = 0; t < 100; ++t) {
    ledger.Record(t, eps / w);
  }
  EXPECT_NEAR(ledger.MaxWindowSpend(), eps, 1e-9);
}

TEST(BudgetLedgerTest, ExponentialHalvingStaysWithinBudget) {
  // The LBD-style policy: spend half the remaining budget each timestamp.
  const int w = 5;
  const double eps = 1.0;
  BudgetLedger ledger(w, eps);
  for (int64_t t = 0; t < 50; ++t) {
    const double spend = ledger.RemainingAt(t) / 2.0;
    ledger.Record(t, spend);
  }
  EXPECT_LE(ledger.MaxWindowSpend(), eps + 1e-9);
}

TEST(ReportWindowTrackerTest, DetectsDoubleReportInWindow) {
  ReportWindowTracker tracker(5);
  EXPECT_TRUE(tracker.RecordReport(1, 0));
  EXPECT_FALSE(tracker.RecordReport(1, 4));  // within the window
  EXPECT_TRUE(tracker.HasViolation());
}

TEST(ReportWindowTrackerTest, AllowsReportAfterWindow) {
  ReportWindowTracker tracker(5);
  EXPECT_TRUE(tracker.RecordReport(1, 0));
  EXPECT_TRUE(tracker.RecordReport(1, 5));
  EXPECT_TRUE(tracker.RecordReport(1, 10));
  EXPECT_FALSE(tracker.HasViolation());
  EXPECT_EQ(tracker.num_reports(), 3);
}

TEST(ReportWindowTrackerTest, UsersIndependent) {
  ReportWindowTracker tracker(10);
  EXPECT_TRUE(tracker.RecordReport(1, 0));
  EXPECT_TRUE(tracker.RecordReport(2, 0));
  EXPECT_TRUE(tracker.RecordReport(3, 3));
  EXPECT_FALSE(tracker.HasViolation());
}

}  // namespace
}  // namespace retrasyn
