// IngestSession semantics: per-user event validation, implicit quits on
// reporting gaps, arrival-order independence, and bit-exact equivalence of
// the replayed session path with the legacy StreamFeeder batch path.

#include "service/ingest_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "service/replay.h"
#include "service/trajectory_service.h"
#include "stream/feeder.h"
#include "stream/hotspot_generator.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct SessionFixture {
  SessionFixture()
      : grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 4), states(grid) {}

  /// A session that records the closed batches.
  IngestSession MakeSession() {
    return IngestSession(states, [this](const TimestampBatch& batch) {
      batches.push_back(batch);
      return Status::OK();
    });
  }

  Point CellPoint(uint32_t row, uint32_t col) const {
    return grid.CellCenter(grid.Cell(row, col));
  }

  Grid grid;
  StateSpace states;
  std::vector<TimestampBatch> batches;
};

void ExpectEqualSets(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  EXPECT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time) << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << i;
  }
}

TEST(IngestSessionTest, BasicLifecycleBuildsFeederShapedBatches) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();

  ASSERT_TRUE(session.Enter(7, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());                  // t=0: e
  ASSERT_TRUE(session.Move(7, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());                  // t=1: m
  ASSERT_TRUE(session.Quit(7).ok());
  ASSERT_TRUE(session.Tick().ok());                  // t=2: q

  ASSERT_EQ(fx.batches.size(), 3u);
  ASSERT_EQ(fx.batches[0].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[0].observations[0].is_enter);
  EXPECT_EQ(fx.batches[0].observations[0].state,
            fx.states.EnterIndex(fx.grid.Cell(0, 0)));
  EXPECT_EQ(fx.batches[0].num_active, 1u);

  ASSERT_EQ(fx.batches[1].observations.size(), 1u);
  EXPECT_EQ(fx.batches[1].observations[0].state,
            fx.states.MoveIndex(fx.grid.Cell(0, 0), fx.grid.Cell(0, 1)));
  EXPECT_EQ(fx.batches[1].num_active, 1u);

  ASSERT_EQ(fx.batches[2].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[2].observations[0].is_quit);
  EXPECT_EQ(fx.batches[2].observations[0].state,
            fx.states.QuitIndex(fx.grid.Cell(0, 1)));
  EXPECT_EQ(fx.batches[2].num_active, 0u);
}

TEST(IngestSessionTest, DuplicateEnterRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  // Same round.
  Status again = session.Enter(1, fx.CellPoint(1, 1));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Tick().ok());
  // Next round, still active.
  again = session.Enter(1, fx.CellPoint(1, 1));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST(IngestSessionTest, MoveBeforeEnterRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  const Status st = session.Move(5, fx.CellPoint(0, 0));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("Enter"), std::string::npos);
}

TEST(IngestSessionTest, QuitTwiceRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(3, fx.CellPoint(2, 2)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Quit(3).ok());
  EXPECT_EQ(session.Quit(3).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Tick().ok());
  // The stream is gone entirely now.
  EXPECT_EQ(session.Quit(3).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Move(3, fx.CellPoint(2, 2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IngestSessionTest, QuitInReportingRoundRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(4, fx.CellPoint(1, 1)).ok());
  // Def. 5: the quit transition carries the previous round's location.
  EXPECT_EQ(session.Quit(4).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Move(4, fx.CellPoint(1, 2)).ok());
  EXPECT_EQ(session.Quit(4).code(), StatusCode::kFailedPrecondition);
}

TEST(IngestSessionTest, EventsAfterAdvanceToApplyToNewRound) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.AdvanceTo(5).ok());
  EXPECT_EQ(session.open_round(), 5);
  ASSERT_EQ(fx.batches.size(), 5u);
  // The user reported at t=0 only; the gap quit it implicitly at t=1.
  EXPECT_EQ(session.Move(2, fx.CellPoint(0, 1)).code(),
            StatusCode::kFailedPrecondition);
  // Going backwards is rejected.
  EXPECT_EQ(session.AdvanceTo(3).code(), StatusCode::kInvalidArgument);
  // Re-entering starts a second stream segment at the open round.
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  const TimestampBatch& last = fx.batches.back();
  ASSERT_EQ(last.observations.size(), 1u);
  EXPECT_TRUE(last.observations[0].is_enter);
  EXPECT_EQ(last.t, 5);
}

TEST(IngestSessionTest, SilentUserQuitsImplicitly) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(9, fx.CellPoint(3, 3)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Tick().ok());  // user 9 silent at t=1
  ASSERT_EQ(fx.batches.size(), 2u);
  ASSERT_EQ(fx.batches[1].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[1].observations[0].is_quit);
  EXPECT_EQ(fx.batches[1].observations[0].state,
            fx.states.QuitIndex(fx.grid.Cell(3, 3)));
  EXPECT_EQ(fx.batches[1].num_active, 0u);
  EXPECT_EQ(session.num_active_users(), 0u);
}

TEST(IngestSessionTest, NonAdjacentMoveClampedLikeFeeder) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  // Jump across the grid: must clamp to a neighbor of (0,0).
  ASSERT_TRUE(session.Move(1, fx.CellPoint(3, 3)).ok());
  ASSERT_TRUE(session.Tick().ok());
  const StateId state = fx.batches[1].observations[0].state;
  const TransitionState decoded = fx.states.Decode(state);
  EXPECT_EQ(decoded.kind, StateKind::kMove);
  EXPECT_EQ(decoded.from, fx.grid.Cell(0, 0));
  EXPECT_TRUE(fx.grid.AreNeighbors(fx.grid.Cell(0, 0), decoded.to));
  EXPECT_EQ(decoded.to, fx.grid.Cell(1, 1));  // closest neighbor to (3,3)
}

TEST(IngestSessionTest, NonFiniteLocationRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  const double nan = std::nan("");
  EXPECT_EQ(session.Enter(1, Point{nan, 0.0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(session.Move(1, Point{0.0, nan}).code(),
            StatusCode::kInvalidArgument);
}

TEST(IngestSessionTest, BatchesIndependentOfArrivalOrder) {
  SessionFixture fx;
  auto run = [&fx](bool reversed) {
    std::vector<TimestampBatch> batches;
    IngestSession session(fx.states, [&batches](const TimestampBatch& batch) {
      batches.push_back(batch);
      return Status::OK();
    });
    std::vector<uint64_t> users{1, 2, 3, 4, 5};
    if (reversed) std::reverse(users.begin(), users.end());
    for (uint64_t u : users) {
      EXPECT_TRUE(
          session.Enter(u, fx.CellPoint(u % 4, (u / 2) % 4)).ok());
    }
    EXPECT_TRUE(session.Tick().ok());
    for (uint64_t u : users) {
      EXPECT_TRUE(session.Move(u, fx.CellPoint((u + 1) % 4, u % 4)).ok());
    }
    EXPECT_TRUE(session.Tick().ok());
    return batches;
  };
  const auto forward = run(false);
  const auto backward = run(true);
  ASSERT_EQ(forward.size(), backward.size());
  for (size_t t = 0; t < forward.size(); ++t) {
    ASSERT_EQ(forward[t].observations.size(),
              backward[t].observations.size());
    EXPECT_EQ(forward[t].num_active, backward[t].num_active);
    for (size_t i = 0; i < forward[t].observations.size(); ++i) {
      EXPECT_EQ(forward[t].observations[i].state,
                backward[t].observations[i].state);
      EXPECT_EQ(forward[t].observations[i].is_enter,
                backward[t].observations[i].is_enter);
      EXPECT_EQ(forward[t].observations[i].is_quit,
                backward[t].observations[i].is_quit);
    }
  }
}

TEST(IngestSessionTest, ReplayMatchesStreamFeederBatches) {
  // The session-built batches must equal the legacy feeder's, byte for byte
  // (up to engine-facing stream indices, which are renumbered but consistent).
  RandomWalkConfig config;
  config.num_timestamps = 40;
  config.initial_users = 120;
  config.mean_arrivals = 10.0;
  Rng rng(77);
  const StreamDatabase db = GenerateRandomWalkStreams(config, rng);
  const Grid grid(db.box(), 4);
  const StateSpace states(grid);
  const StreamFeeder feeder(db, grid, states);

  std::vector<TimestampBatch> batches;
  IngestSession session(states, [&batches](const TimestampBatch& batch) {
    batches.push_back(batch);
    return Status::OK();
  });
  // Replay manually (stream indices as user ids), mirroring ReplayDatabase.
  for (int64_t t = 0; t < db.num_timestamps(); ++t) {
    for (uint32_t idx = 0; idx < db.streams().size(); ++idx) {
      const UserStream& s = db.streams()[idx];
      if (s.enter_time == t) {
        ASSERT_TRUE(session.Enter(idx, s.points.front()).ok());
      } else if (s.ActiveAt(t)) {
        ASSERT_TRUE(session.Move(idx, s.At(t)).ok());
      }
      // Quits are left implicit: the session must synthesize them.
    }
    ASSERT_TRUE(session.Tick().ok());
  }

  ASSERT_EQ(static_cast<int64_t>(batches.size()), feeder.num_timestamps());
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    const TimestampBatch& expected = feeder.Batch(t);
    const TimestampBatch& got = batches[t];
    ASSERT_EQ(got.observations.size(), expected.observations.size())
        << "t=" << t;
    EXPECT_EQ(got.num_active, expected.num_active) << "t=" << t;
    for (size_t i = 0; i < expected.observations.size(); ++i) {
      EXPECT_EQ(got.observations[i].state, expected.observations[i].state)
          << "t=" << t << " i=" << i;
      EXPECT_EQ(got.observations[i].is_enter,
                expected.observations[i].is_enter);
      EXPECT_EQ(got.observations[i].is_quit, expected.observations[i].is_quit);
    }
  }
}

TEST(IngestSessionTest, ReplayedEngineReleaseIsByteIdenticalToLegacyPath) {
  // Same trajectories + same seed: legacy batch pipeline and service replay
  // must release the same synthetic database.
  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 60;
  data_config.initial_users = 300;
  data_config.mean_arrivals = 25.0;
  Rng rng(5);
  const StreamDatabase db = GenerateHotspotStreams(data_config, rng);
  const Grid grid(db.box(), 4);
  const StateSpace states(grid);

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = db.AverageLength();
  config.seed = 123;

  // Legacy path.
  const StreamFeeder feeder(db, grid, states);
  RetraSynEngine legacy(states, config);
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    legacy.Observe(feeder.Batch(t));
  }
  const CellStreamSet expected = legacy.Finish(feeder.num_timestamps());

  // Service path.
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(ReplayDatabase(db, *service.value()).ok());
  auto got = service.value()->SnapshotRelease(db.num_timestamps());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectEqualSets(got.value(), expected);
}

}  // namespace
}  // namespace retrasyn
