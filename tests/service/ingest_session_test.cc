// IngestSession semantics: per-user event validation, implicit quits on
// reporting gaps, arrival-order independence, and bit-exact equivalence of
// the replayed session path with the legacy StreamFeeder batch path.

#include "geo/grid.h"
#include "service/ingest_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "service/replay.h"
#include "service/trajectory_service.h"
#include "stream/feeder.h"
#include "stream/hotspot_generator.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct SessionFixture {
  SessionFixture()
      : grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 4), states(grid) {}

  /// A session that records the closed batches.
  IngestSession MakeSession() {
    return IngestSession(states, [this](const TimestampBatch& batch) {
      batches.push_back(batch);
      return Status::OK();
    });
  }

  Point CellPoint(uint32_t row, uint32_t col) const {
    return grid.CellCenter(grid.Cell(row, col));
  }

  Grid grid;
  StateSpace states;
  std::vector<TimestampBatch> batches;
};

void ExpectEqualSets(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  EXPECT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time) << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << i;
  }
}

TEST(IngestSessionTest, BasicLifecycleBuildsFeederShapedBatches) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();

  ASSERT_TRUE(session.Enter(7, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());                  // t=0: e
  ASSERT_TRUE(session.Move(7, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());                  // t=1: m
  ASSERT_TRUE(session.Quit(7).ok());
  ASSERT_TRUE(session.Tick().ok());                  // t=2: q

  ASSERT_EQ(fx.batches.size(), 3u);
  ASSERT_EQ(fx.batches[0].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[0].observations[0].is_enter);
  EXPECT_EQ(fx.batches[0].observations[0].state,
            fx.states.EnterIndex(fx.grid.Cell(0, 0)));
  EXPECT_EQ(fx.batches[0].num_active, 1u);

  ASSERT_EQ(fx.batches[1].observations.size(), 1u);
  EXPECT_EQ(fx.batches[1].observations[0].state,
            fx.states.MoveIndex(fx.grid.Cell(0, 0), fx.grid.Cell(0, 1)));
  EXPECT_EQ(fx.batches[1].num_active, 1u);

  ASSERT_EQ(fx.batches[2].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[2].observations[0].is_quit);
  EXPECT_EQ(fx.batches[2].observations[0].state,
            fx.states.QuitIndex(fx.grid.Cell(0, 1)));
  EXPECT_EQ(fx.batches[2].num_active, 0u);
}

TEST(IngestSessionTest, DuplicateEnterRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  // Same round.
  Status again = session.Enter(1, fx.CellPoint(1, 1));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Tick().ok());
  // Next round, still active.
  again = session.Enter(1, fx.CellPoint(1, 1));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST(IngestSessionTest, MoveBeforeEnterRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  const Status st = session.Move(5, fx.CellPoint(0, 0));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("Enter"), std::string::npos);
}

TEST(IngestSessionTest, QuitTwiceRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(3, fx.CellPoint(2, 2)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Quit(3).ok());
  EXPECT_EQ(session.Quit(3).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Tick().ok());
  // The stream is gone entirely now.
  EXPECT_EQ(session.Quit(3).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Move(3, fx.CellPoint(2, 2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IngestSessionTest, QuitInMoveRoundRejected) {
  // Def. 5: the quit transition carries the previous round's location, so a
  // user that already Moved this round cannot also quit in it.
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(4, fx.CellPoint(1, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Move(4, fx.CellPoint(1, 2)).ok());
  const Status st = session.Quit(4);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("previous round"), std::string::npos);
}

TEST(IngestSessionTest, QuitCancelsSameRoundEnter) {
  // An Enter still buffered in the open round has sent no report, so a Quit
  // simply cancels it: the aborted stream never existed.
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(4, fx.CellPoint(1, 1)).ok());
  EXPECT_EQ(session.num_active_users(), 1u);
  ASSERT_TRUE(session.Quit(4).ok());
  EXPECT_EQ(session.num_active_users(), 0u);
  EXPECT_EQ(session.num_pending_events(), 0u);
  // A second quit finds nothing to cancel.
  EXPECT_EQ(session.Quit(4).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_EQ(fx.batches.size(), 1u);
  EXPECT_TRUE(fx.batches[0].observations.empty());
  // The user can re-enter afterwards as if nothing happened — and the
  // canceled enter burned no stream index.
  ASSERT_TRUE(session.Enter(4, fx.CellPoint(2, 2)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_EQ(fx.batches[1].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[1].observations[0].is_enter);
  EXPECT_EQ(fx.batches[1].observations[0].user_index, 0u);
}

TEST(IngestSessionTest, QuitEnterQuitKeepsOldStreamQuit) {
  // Quit -> Enter -> Quit in one round: the first quit closes the *old*
  // stream (previous round's location) and must survive; the second quit
  // only cancels the re-entry.
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(8, fx.CellPoint(1, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Quit(8).ok());
  ASSERT_TRUE(session.Enter(8, fx.CellPoint(3, 3)).ok());
  EXPECT_EQ(session.num_pending_events(), 2u);
  ASSERT_TRUE(session.Quit(8).ok());  // cancels the enter, keeps the quit
  EXPECT_EQ(session.num_pending_events(), 1u);
  EXPECT_EQ(session.num_active_users(), 0u);
  ASSERT_TRUE(session.Tick().ok());
  const TimestampBatch& last = fx.batches.back();
  ASSERT_EQ(last.observations.size(), 1u);
  EXPECT_TRUE(last.observations[0].is_quit);
  EXPECT_EQ(last.observations[0].state,
            fx.states.QuitIndex(fx.grid.Cell(1, 1)));
}

TEST(IngestSessionTest, EventsAfterAdvanceToApplyToNewRound) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.AdvanceTo(5).ok());
  EXPECT_EQ(session.open_round(), 5);
  ASSERT_EQ(fx.batches.size(), 5u);
  // The user reported at t=0 only; the gap quit it implicitly at t=1.
  EXPECT_EQ(session.Move(2, fx.CellPoint(0, 1)).code(),
            StatusCode::kFailedPrecondition);
  // Going backwards is rejected.
  EXPECT_EQ(session.AdvanceTo(3).code(), StatusCode::kInvalidArgument);
  // Re-entering starts a second stream segment at the open round.
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  const TimestampBatch& last = fx.batches.back();
  ASSERT_EQ(last.observations.size(), 1u);
  EXPECT_TRUE(last.observations[0].is_enter);
  EXPECT_EQ(last.t, 5);
}

TEST(IngestSessionTest, SilentUserQuitsImplicitly) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(9, fx.CellPoint(3, 3)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Tick().ok());  // user 9 silent at t=1
  ASSERT_EQ(fx.batches.size(), 2u);
  ASSERT_EQ(fx.batches[1].observations.size(), 1u);
  EXPECT_TRUE(fx.batches[1].observations[0].is_quit);
  EXPECT_EQ(fx.batches[1].observations[0].state,
            fx.states.QuitIndex(fx.grid.Cell(3, 3)));
  EXPECT_EQ(fx.batches[1].num_active, 0u);
  EXPECT_EQ(session.num_active_users(), 0u);
}

TEST(IngestSessionTest, NonAdjacentMoveClampedLikeFeeder) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  // Jump across the grid: must clamp to a neighbor of (0,0).
  ASSERT_TRUE(session.Move(1, fx.CellPoint(3, 3)).ok());
  ASSERT_TRUE(session.Tick().ok());
  const StateId state = fx.batches[1].observations[0].state;
  const TransitionState decoded = fx.states.Decode(state);
  EXPECT_EQ(decoded.kind, StateKind::kMove);
  EXPECT_EQ(decoded.from, fx.grid.Cell(0, 0));
  EXPECT_TRUE(fx.grid.AreNeighbors(fx.grid.Cell(0, 0), decoded.to));
  EXPECT_EQ(decoded.to, fx.grid.Cell(1, 1));  // closest neighbor to (3,3)
}

TEST(IngestSessionTest, NonFiniteLocationRejected) {
  SessionFixture fx;
  IngestSession session = fx.MakeSession();
  const double nan = std::nan("");
  EXPECT_EQ(session.Enter(1, Point{nan, 0.0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(session.Move(1, Point{0.0, nan}).code(),
            StatusCode::kInvalidArgument);
}

TEST(IngestSessionTest, BatchesIndependentOfArrivalOrder) {
  SessionFixture fx;
  auto run = [&fx](bool reversed) {
    std::vector<TimestampBatch> batches;
    IngestSession session(fx.states, [&batches](const TimestampBatch& batch) {
      batches.push_back(batch);
      return Status::OK();
    });
    std::vector<uint64_t> users{1, 2, 3, 4, 5};
    if (reversed) std::reverse(users.begin(), users.end());
    for (uint64_t u : users) {
      EXPECT_TRUE(
          session.Enter(u, fx.CellPoint(u % 4, (u / 2) % 4)).ok());
    }
    EXPECT_TRUE(session.Tick().ok());
    for (uint64_t u : users) {
      EXPECT_TRUE(session.Move(u, fx.CellPoint((u + 1) % 4, u % 4)).ok());
    }
    EXPECT_TRUE(session.Tick().ok());
    return batches;
  };
  const auto forward = run(false);
  const auto backward = run(true);
  ASSERT_EQ(forward.size(), backward.size());
  for (size_t t = 0; t < forward.size(); ++t) {
    ASSERT_EQ(forward[t].observations.size(),
              backward[t].observations.size());
    EXPECT_EQ(forward[t].num_active, backward[t].num_active);
    for (size_t i = 0; i < forward[t].observations.size(); ++i) {
      EXPECT_EQ(forward[t].observations[i].state,
                backward[t].observations[i].state);
      EXPECT_EQ(forward[t].observations[i].is_enter,
                backward[t].observations[i].is_enter);
      EXPECT_EQ(forward[t].observations[i].is_quit,
                backward[t].observations[i].is_quit);
    }
  }
}

TEST(IngestSessionTest, ReplayMatchesStreamFeederBatches) {
  // The session-built batches must equal the legacy feeder's, byte for byte
  // (up to engine-facing stream indices, which are renumbered but consistent).
  RandomWalkConfig config;
  config.num_timestamps = 40;
  config.initial_users = 120;
  config.mean_arrivals = 10.0;
  Rng rng(77);
  const StreamDatabase db = GenerateRandomWalkStreams(config, rng);
  const Grid grid(db.box(), 4);
  const StateSpace states(grid);
  const StreamFeeder feeder(db, grid, states);

  std::vector<TimestampBatch> batches;
  IngestSession session(states, [&batches](const TimestampBatch& batch) {
    batches.push_back(batch);
    return Status::OK();
  });
  // Replay manually (stream indices as user ids), mirroring ReplayDatabase.
  for (int64_t t = 0; t < db.num_timestamps(); ++t) {
    for (uint32_t idx = 0; idx < db.streams().size(); ++idx) {
      const UserStream& s = db.streams()[idx];
      if (s.enter_time == t) {
        ASSERT_TRUE(session.Enter(idx, s.points.front()).ok());
      } else if (s.ActiveAt(t)) {
        ASSERT_TRUE(session.Move(idx, s.At(t)).ok());
      }
      // Quits are left implicit: the session must synthesize them.
    }
    ASSERT_TRUE(session.Tick().ok());
  }

  ASSERT_EQ(static_cast<int64_t>(batches.size()), feeder.num_timestamps());
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    const TimestampBatch& expected = feeder.Batch(t);
    const TimestampBatch& got = batches[t];
    ASSERT_EQ(got.observations.size(), expected.observations.size())
        << "t=" << t;
    EXPECT_EQ(got.num_active, expected.num_active) << "t=" << t;
    for (size_t i = 0; i < expected.observations.size(); ++i) {
      EXPECT_EQ(got.observations[i].state, expected.observations[i].state)
          << "t=" << t << " i=" << i;
      EXPECT_EQ(got.observations[i].is_enter,
                expected.observations[i].is_enter);
      EXPECT_EQ(got.observations[i].is_quit, expected.observations[i].is_quit);
    }
  }
}

void ExpectEqualBatches(const std::vector<TimestampBatch>& got,
                        const std::vector<TimestampBatch>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t t = 0; t < expected.size(); ++t) {
    EXPECT_EQ(got[t].t, expected[t].t);
    EXPECT_EQ(got[t].num_active, expected[t].num_active) << "t=" << t;
    ASSERT_EQ(got[t].observations.size(), expected[t].observations.size())
        << "t=" << t;
    for (size_t i = 0; i < expected[t].observations.size(); ++i) {
      const UserObservation& a = got[t].observations[i];
      const UserObservation& b = expected[t].observations[i];
      EXPECT_EQ(a.user_index, b.user_index) << "t=" << t << " i=" << i;
      EXPECT_EQ(a.state, b.state) << "t=" << t << " i=" << i;
      EXPECT_EQ(a.is_enter, b.is_enter) << "t=" << t << " i=" << i;
      EXPECT_EQ(a.is_quit, b.is_quit) << "t=" << t << " i=" << i;
    }
  }
}

TEST(IngestSessionTest, FailedHandlerRetryIsByteIdentical) {
  // Regression for the Tick() atomicity bug: a failing handler must leave
  // the session un-mutated — stream indices included — so that a retried
  // Tick() hands the handler the identical batch and the full run matches a
  // never-failed one byte for byte.
  SessionFixture fx;
  auto script = [&fx](IngestSession& session, int64_t t) {
    switch (t) {
      case 0:
        ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
        ASSERT_TRUE(session.Enter(2, fx.CellPoint(1, 1)).ok());
        break;
      case 1:
        ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 1)).ok());
        // user 2 silent: implicit quit.
        ASSERT_TRUE(session.Enter(3, fx.CellPoint(2, 2)).ok());
        break;
      case 2:
        ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 0)).ok());
        ASSERT_TRUE(session.Move(3, fx.CellPoint(2, 3)).ok());
        ASSERT_TRUE(session.Enter(4, fx.CellPoint(3, 0)).ok());
        ASSERT_TRUE(session.Enter(2, fx.CellPoint(1, 2)).ok());
        break;
      default:
        ASSERT_TRUE(session.Move(4, fx.CellPoint(3, 1)).ok());
        break;
    }
  };

  // Clean run.
  std::vector<TimestampBatch> clean;
  {
    IngestSession session(fx.states, [&clean](TimestampBatch batch) {
      clean.push_back(std::move(batch));
      return Status::OK();
    });
    for (int64_t t = 0; t < 4; ++t) {
      script(session, t);
      ASSERT_TRUE(session.Tick().ok());
    }
  }

  // Failing run: the handler rejects the first attempt at t=2 (twice, to
  // exercise repeated retries).
  std::vector<TimestampBatch> flaky;
  int failures_left = 2;
  IngestSession session(fx.states,
                        [&flaky, &failures_left](TimestampBatch batch) {
                          if (batch.t == 2 && failures_left > 0) {
                            --failures_left;
                            return Status::IOError("collector offline");
                          }
                          flaky.push_back(std::move(batch));
                          return Status::OK();
                        });
  for (int64_t t = 0; t < 4; ++t) {
    script(session, t);
    if (t == 2) {
      const size_t pending = session.num_pending_events();
      Status st = session.Tick();
      EXPECT_EQ(st.code(), StatusCode::kIOError);
      // The round is still open with its events intact...
      EXPECT_EQ(session.open_round(), 2);
      EXPECT_EQ(session.num_pending_events(), pending);
      EXPECT_EQ(session.Tick().code(), StatusCode::kIOError);  // retry 1
    }
    ASSERT_TRUE(session.Tick().ok()) << "t=" << t;  // ...and retry succeeds.
  }
  ExpectEqualBatches(flaky, clean);
}

TEST(IngestSessionTest, BatchInvariantUnderArrivalPermutations) {
  // Property: the sealed batch is a pure function of the *set* of events
  // buffered for the round, not of their arrival order. Randomly scripted
  // rounds, replayed under several shuffles, must seal byte-identical
  // batches (stream indices included).
  SessionFixture fx;
  struct Event {
    uint64_t user;
    int op;  // 0 = enter, 1 = move, 2 = quit
    Point point;
  };
  constexpr int kRounds = 8;
  constexpr uint64_t kUsers = 48;

  // Script the rounds once, deterministically, tracking liveness so every
  // event is valid; at most one event per user per round keeps the claim
  // exact (a same-user Quit/Enter pair in one round is order-sensitive by
  // design).
  std::mt19937 script_rng(20260729);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  auto random_point = [&] {
    return Point{unit(script_rng) * 100.0, unit(script_rng) * 100.0};
  };
  std::vector<bool> live(kUsers, false);
  std::vector<std::vector<Event>> rounds(kRounds);
  for (int t = 0; t < kRounds; ++t) {
    for (uint64_t u = 0; u < kUsers; ++u) {
      const double r = unit(script_rng);
      if (live[u]) {
        if (r < 0.55) {
          rounds[t].push_back(Event{u, 1, random_point()});
        } else if (r < 0.75) {
          rounds[t].push_back(Event{u, 2, Point{}});
          live[u] = false;
        } else {
          live[u] = false;  // silent: implicit quit
        }
      } else if (r < 0.4) {
        rounds[t].push_back(Event{u, 0, random_point()});
        live[u] = true;
      }
    }
  }

  auto run = [&](uint32_t shuffle_seed) {
    std::vector<TimestampBatch> batches;
    IngestSession session(fx.states, [&batches](TimestampBatch batch) {
      batches.push_back(std::move(batch));
      return Status::OK();
    });
    std::mt19937 shuffle_rng(shuffle_seed);
    for (int t = 0; t < kRounds; ++t) {
      std::vector<Event> events = rounds[t];
      if (shuffle_seed != 0) {
        std::shuffle(events.begin(), events.end(), shuffle_rng);
      }
      for (const Event& e : events) {
        switch (e.op) {
          case 0:
            EXPECT_TRUE(session.Enter(e.user, e.point).ok());
            break;
          case 1:
            EXPECT_TRUE(session.Move(e.user, e.point).ok());
            break;
          default:
            EXPECT_TRUE(session.Quit(e.user).ok());
            break;
        }
      }
      EXPECT_TRUE(session.Tick().ok());
    }
    return batches;
  };

  const std::vector<TimestampBatch> canonical = run(0);
  uint64_t total_events = 0;
  for (const auto& r : rounds) total_events += r.size();
  ASSERT_GT(total_events, 100u);  // the script actually exercises something
  for (uint32_t seed : {7u, 99u, 123456u, 888u}) {
    ExpectEqualBatches(run(seed), canonical);
  }
}

// --- Stream-index lifecycle (recycling + the 2^30 cap) ---------------------

IngestSessionOptions Recycling(int window) {
  IngestSessionOptions options;
  options.recycle_stream_indices = true;
  options.window = window;
  return options;
}

TEST(IngestSessionTest, RecyclesQuitIndexOncePastWindow) {
  SessionFixture fx;
  std::vector<TimestampBatch> batches;
  IngestSession session(
      fx.states,
      [&batches](TimestampBatch batch) {
        batches.push_back(std::move(batch));
        return Status::OK();
      },
      Recycling(/*window=*/2));

  // t=0: A (idx 0) and B (idx 1) enter.
  ASSERT_TRUE(session.Enter(100, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Enter(200, fx.CellPoint(1, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  // t=1: A quits (quit round 1); B moves.
  ASSERT_TRUE(session.Quit(100).ok());
  ASSERT_TRUE(session.Move(200, fx.CellPoint(1, 2)).ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(session.num_retiring_indices(), 1u);
  // t=2: quit round 1 is still inside the window (1 > 2 - 2), so a new
  // enter must mint a fresh index.
  ASSERT_TRUE(session.Enter(300, fx.CellPoint(2, 2)).ok());
  ASSERT_TRUE(session.Move(200, fx.CellPoint(1, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(batches[2].observations[1].user_index, 2u);  // user 300
  EXPECT_EQ(session.num_free_indices(), 0u);
  // t=3: quit round 1 <= 3 - 2 — index 0 retires and the next enter takes it.
  ASSERT_TRUE(session.Enter(400, fx.CellPoint(3, 3)).ok());
  ASSERT_TRUE(session.Move(200, fx.CellPoint(1, 2)).ok());
  ASSERT_TRUE(session.Move(300, fx.CellPoint(2, 3)).ok());
  ASSERT_TRUE(session.Tick().ok());
  const TimestampBatch& reuse = batches[3];
  ASSERT_EQ(reuse.observations.size(), 3u);
  bool saw_reuse = false;
  for (const UserObservation& obs : reuse.observations) {
    if (obs.is_enter) {
      EXPECT_EQ(obs.user_index, 0u);  // recycled, not a fresh 3
      saw_reuse = true;
    }
  }
  EXPECT_TRUE(saw_reuse);
  EXPECT_EQ(session.index_high_water(), 3u);
  EXPECT_EQ(session.num_retiring_indices(), 0u);
  EXPECT_EQ(session.num_free_indices(), 0u);
}

TEST(IngestSessionTest, RecycledIndicesReusedOldestFirst) {
  SessionFixture fx;
  std::vector<TimestampBatch> batches;
  IngestSession session(
      fx.states,
      [&batches](TimestampBatch batch) {
        batches.push_back(std::move(batch));
        return Status::OK();
      },
      Recycling(/*window=*/1));

  // Three streams enter; they quit in rounds 1 (idx 1), 2 (idx 0 and 2).
  for (uint64_t u : {0u, 1u, 2u}) {
    ASSERT_TRUE(session.Enter(u, fx.CellPoint(u % 4, u % 4)).ok());
  }
  ASSERT_TRUE(session.Tick().ok());  // t=0
  ASSERT_TRUE(session.Quit(1).ok());
  ASSERT_TRUE(session.Move(0, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Move(2, fx.CellPoint(2, 3)).ok());
  ASSERT_TRUE(session.Tick().ok());  // t=1: quit bucket (1, [1])
  ASSERT_TRUE(session.Quit(0).ok());
  ASSERT_TRUE(session.Quit(2).ok());
  ASSERT_TRUE(session.Tick().ok());  // t=2: quit bucket (2, [0, 2])
  // t=3 (window 1): all three indices retired; new enters reuse them in
  // retirement order — bucket round, then user-id order inside the bucket —
  // before any fresh index.
  for (uint64_t u : {10u, 11u, 12u, 13u}) {
    ASSERT_TRUE(session.Enter(u, fx.CellPoint(u % 4, (u / 2) % 4)).ok());
  }
  ASSERT_TRUE(session.Tick().ok());
  const TimestampBatch& batch = batches[3];
  ASSERT_EQ(batch.observations.size(), 4u);
  EXPECT_EQ(batch.observations[0].user_index, 1u);  // quit earliest
  EXPECT_EQ(batch.observations[1].user_index, 0u);  // round-2 bucket, idx 0
  EXPECT_EQ(batch.observations[2].user_index, 2u);  // round-2 bucket, idx 2
  EXPECT_EQ(batch.observations[3].user_index, 3u);  // fresh
  EXPECT_EQ(session.index_high_water(), 4u);
}

TEST(IngestSessionTest, RecyclingOffKeepsCumulativeIndices) {
  SessionFixture fx;
  std::vector<TimestampBatch> batches;
  IngestSession session(fx.states, [&batches](TimestampBatch batch) {
    batches.push_back(std::move(batch));
    return Status::OK();
  });
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Quit(1).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Tick().ok());
  // Way past any window: a new enter still mints index 1.
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(1, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(batches.back().observations[0].user_index, 1u);
  EXPECT_EQ(session.num_free_indices(), 0u);
  EXPECT_EQ(session.num_retiring_indices(), 0u);
}

TEST(IngestSessionTest, FailedHandlerRetryDoesNotConsumeRecycledIndices) {
  // The free list is part of the round's error-atomic state: a failing
  // handler must not burn recycled indices, and the retry must hand out the
  // identical assignment.
  SessionFixture fx;
  std::vector<TimestampBatch> batches;
  int failures_left = 2;
  IngestSession session(
      fx.states,
      [&batches, &failures_left](TimestampBatch batch) {
        if (batch.t == 2 && failures_left > 0) {
          --failures_left;
          return Status::IOError("collector offline");
        }
        batches.push_back(std::move(batch));
        return Status::OK();
      },
      Recycling(/*window=*/1));

  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());  // t=0: idx 0
  ASSERT_TRUE(session.Quit(1).ok());
  ASSERT_TRUE(session.Tick().ok());  // t=1: quit round 1
  // t=2: idx 0 retires this round; the enter should reuse it — across two
  // failed attempts and the final success.
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(1, 1)).ok());
  EXPECT_EQ(session.Tick().code(), StatusCode::kIOError);
  EXPECT_EQ(session.num_retiring_indices(), 1u);  // nothing committed
  EXPECT_EQ(session.Tick().code(), StatusCode::kIOError);
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(batches.back().observations[0].user_index, 0u);
  EXPECT_EQ(session.index_high_water(), 1u);
  EXPECT_EQ(session.num_retiring_indices(), 0u);
}

TEST(IngestSessionTest, StreamIndexCapReturnsResourceExhausted) {
  SessionFixture fx;
  std::vector<TimestampBatch> batches;
  IngestSession session(fx.states, [&batches](TimestampBatch batch) {
    batches.push_back(std::move(batch));
    return Status::OK();
  });
  session.set_next_stream_index_for_testing(kMaxStreamIndex - 1);

  // Two fresh enters need indices {cap-1, cap}; the second overflows, so the
  // Tick must refuse before the handler runs — the engine's dense
  // bookkeeping would abort on index 2^30.
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(1, 1)).ok());
  const size_t pending = session.num_pending_events();
  Status st = session.Tick();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("stream-index space exhausted"),
            std::string::npos);
  // Error-atomic: round open, events intact, nothing reached the handler.
  EXPECT_EQ(session.open_round(), 0);
  EXPECT_EQ(session.num_pending_events(), pending);
  EXPECT_TRUE(batches.empty());
  // Shedding one pending enter (Quit cancels it) makes the round sealable,
  // and the last valid index is handed out.
  ASSERT_TRUE(session.Quit(2).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].observations.size(), 1u);
  EXPECT_EQ(batches[0].observations[0].user_index, kMaxStreamIndex - 1);
}

TEST(IngestSessionTest, StreamIndexCapReachableWithRecyclingOn) {
  // Recycling delays exhaustion but cannot prevent it: when every retired
  // index is consumed and the fresh counter sits at the cap, the next enter
  // still fails with kResourceExhausted.
  SessionFixture fx;
  std::vector<TimestampBatch> batches;
  IngestSession session(
      fx.states,
      [&batches](TimestampBatch batch) {
        batches.push_back(std::move(batch));
        return Status::OK();
      },
      Recycling(/*window=*/1));
  session.set_next_stream_index_for_testing(kMaxStreamIndex - 1);

  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());  // consumes cap-1
  ASSERT_TRUE(session.Quit(1).ok());
  ASSERT_TRUE(session.Tick().ok());
  // One retired index is available again two rounds later; a single enter
  // reuses it, a second one would need a fresh index past the cap.
  ASSERT_TRUE(session.Enter(2, fx.CellPoint(1, 1)).ok());
  ASSERT_TRUE(session.Enter(3, fx.CellPoint(2, 2)).ok());
  Status st = session.Tick();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(session.Quit(3).ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(batches.back().observations[0].user_index, kMaxStreamIndex - 1);
}

TEST(IngestSessionTest, ReplayedEngineReleaseIsByteIdenticalToLegacyPath) {
  // Same trajectories + same seed: legacy batch pipeline and service replay
  // must release the same synthetic database.
  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 60;
  data_config.initial_users = 300;
  data_config.mean_arrivals = 25.0;
  Rng rng(5);
  const StreamDatabase db = GenerateHotspotStreams(data_config, rng);
  const Grid grid(db.box(), 4);
  const StateSpace states(grid);

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = db.AverageLength();
  config.seed = 123;

  // Legacy path.
  const StreamFeeder feeder(db, grid, states);
  RetraSynEngine legacy(states, config);
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    legacy.Observe(feeder.Batch(t));
  }
  const CellStreamSet expected = legacy.Finish(feeder.num_timestamps());

  // Service path.
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(ReplayDatabase(db, *service.value()).ok());
  auto got = service.value()->SnapshotRelease(db.num_timestamps());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectEqualSets(got.value(), expected);
}

}  // namespace
}  // namespace retrasyn
