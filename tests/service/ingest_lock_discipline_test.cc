// Regression tests for two lock-discipline findings the thread-safety
// annotation pass surfaced (and fixed) in IngestSession. Both are races a
// functional assertion cannot catch — the payoff is under
// -DRETRASYN_SANITIZE_THREAD=ON, where the pre-fix code reports a data race
// and the fixed code runs clean:
//
//  1. AttachJournal / AttachJournals wrote shard->journal with no lock,
//     relying on an unenforced "attach before producers start" convention.
//     Producers read the pointer under the shard lock on every event, so any
//     concurrent attach/detach was a race on the pointer itself.
//  2. RestoreCheckpointState populated shard->active (and the active-streams
//     gauge) with no locks, relying on "the session is fresh" — but fresh
//     never meant unobserved: a monitoring thread polling stats() or
//     num_active_users() during recovery read the same maps.

#include "service/ingest_session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "geo/grid.h"

namespace retrasyn {
namespace {

struct Fixture {
  Fixture() : grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 4), states(grid) {}

  Point CellPoint(uint32_t row, uint32_t col) const {
    return grid.CellCenter(grid.Cell(row, col));
  }

  Grid grid;
  StateSpace states;
};

TEST(IngestLockDisciplineTest, AttachJournalConcurrentWithProducers) {
  Fixture fx;
  IngestSession session(fx.states,
                        [](const TimestampBatch&) { return Status::OK(); });
  std::atomic<bool> stop{false};
  std::thread producer([&]() {
    uint64_t user = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Enter/Quit churn: every admission reads shard->journal under the
      // shard lock (the journaling branch of the *Locked helpers).
      (void)session.Enter(user, fx.CellPoint(0, 0));
      (void)session.Quit(user);
      ++user;
    }
  });
  // Detach (a null attach) races the producer's pointer reads unless
  // AttachJournal takes the shard lock. Attaching null keeps the journaling
  // semantics trivial; the race was on the pointer, not the pointee.
  for (int i = 0; i < 2000; ++i) {
    session.AttachJournal(nullptr);
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
}

TEST(IngestLockDisciplineTest, AttachJournalsConcurrentWithShardedProducers) {
  Fixture fx;
  IngestSessionOptions options;
  options.num_shards = 4;
  IngestSession session(
      fx.states, [](const TimestampBatch&) { return Status::OK(); }, options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t]() {
      uint64_t user = static_cast<uint64_t>(t) * 1000000;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)session.Enter(user, fx.CellPoint(1, 1));
        (void)session.Quit(user);
        ++user;
      }
    });
  }
  // The empty-vector form detaches every shard's journal.
  for (int i = 0; i < 2000; ++i) {
    session.AttachJournals({});
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : producers) t.join();
}

TEST(IngestLockDisciplineTest, RestoreConcurrentWithStatsReaders) {
  Fixture fx;
  IngestSessionOptions options;
  options.num_shards = 4;
  IngestSession session(
      fx.states, [](const TimestampBatch&) { return Status::OK(); }, options);

  // A sizeable checkpoint keeps the restore busy long enough for the readers
  // to overlap it.
  constexpr uint32_t kStreams = 50000;
  SessionCheckpointState state;
  state.open_round = 3;
  state.next_stream_index = kStreams;
  state.active.reserve(kStreams);
  for (uint32_t i = 0; i < kStreams; ++i) {
    state.active.push_back(
        SessionCheckpointState::ActiveEntry{i, i, fx.grid.Cell(0, 0)});
  }

  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    // The monitoring pattern: poll liveness while recovery is in flight.
    while (!stop.load(std::memory_order_relaxed)) {
      (void)session.num_active_users();
      (void)session.stats();
    }
  });
  ASSERT_TRUE(session.RestoreCheckpointState(std::move(state)).ok());
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(session.num_active_users(), static_cast<size_t>(kStreams));
  EXPECT_EQ(session.open_round(), 3);
}

}  // namespace
}  // namespace retrasyn
