// Acceptance tests for sharded ingestion: for a fixed shard count the
// released bytes must be identical to a single-shard run — under both sync
// policies, under arbitrary arrival order across shards, under concurrent
// producers, and across a kill-and-recover — and a journal written under N
// shards must refuse to replay under any other sharding.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"
#include "common/rng.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-sharded-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() { RemoveDirTree(path_).CheckOK(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct DeviceTrace {
  int64_t enter_time = 0;
  std::vector<Point> points;
};

constexpr int64_t kHorizon = 24;

std::vector<DeviceTrace> MakeWorkload(uint64_t seed, int devices) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  Rng rng(seed);
  std::vector<DeviceTrace> traces;
  for (int i = 0; i < devices; ++i) {
    DeviceTrace trace;
    trace.enter_time = static_cast<int64_t>(rng.UniformInt(kHorizon - 2));
    const int64_t max_len = kHorizon - trace.enter_time;
    const int64_t len =
        1 + static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(std::min<int64_t>(max_len, 10))));
    Point p{box.min_x + rng.UniformDouble() * box.Width(),
            box.min_y + rng.UniformDouble() * box.Height()};
    for (int64_t k = 0; k < len; ++k) {
      trace.points.push_back(p);
      p = box.Clamp(Point{p.x + (rng.UniformDouble() - 0.5) * 80.0,
                          p.y + (rng.UniformDouble() - 0.5) * 80.0});
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

RetraSynConfig BaseConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 6.0;
  config.seed = 7;
  return config;
}

/// The event a device contributes at round t, if any.
enum class EventKind { kNone, kEnter, kMove, kQuit };

EventKind EventAt(const DeviceTrace& trace, int64_t t, Point* location) {
  const int64_t end =
      trace.enter_time + static_cast<int64_t>(trace.points.size());
  if (t == trace.enter_time) {
    *location = trace.points.front();
    return EventKind::kEnter;
  }
  if (t > trace.enter_time && t < end) {
    *location = trace.points[t - trace.enter_time];
    return EventKind::kMove;
  }
  if (t == end && end < kHorizon) return EventKind::kQuit;
  return EventKind::kNone;
}

void Feed(IngestSession& session, uint64_t id, const DeviceTrace& trace,
          int64_t t) {
  Point p;
  switch (EventAt(trace, t, &p)) {
    case EventKind::kEnter:
      ASSERT_TRUE(session.Enter(id, p).ok());
      break;
    case EventKind::kMove:
      ASSERT_TRUE(session.Move(id, p).ok());
      break;
    case EventKind::kQuit:
      ASSERT_TRUE(session.Quit(id).ok());
      break;
    case EventKind::kNone:
      break;
  }
}

/// Feeds rounds [from, to) in ascending device order.
void DriveRounds(IngestSession& session, const std::vector<DeviceTrace>& traces,
                 int64_t from, int64_t to) {
  for (int64_t t = from; t < to; ++t) {
    for (uint64_t id = 0; id < traces.size(); ++id) {
      Feed(session, id, traces[id], t);
    }
    ASSERT_TRUE(session.Tick().ok());
  }
}

void ExpectSameRelease(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  ASSERT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << "stream " << i;
  }
}

void ExpectSameIndexLifecycle(const IngestSession& a, const IngestSession& b) {
  EXPECT_EQ(a.index_high_water(), b.index_high_water());
  EXPECT_EQ(a.num_free_indices(), b.num_free_indices());
  EXPECT_EQ(a.num_retiring_indices(), b.num_retiring_indices());
  EXPECT_EQ(a.num_active_users(), b.num_active_users());
}

TEST(ShardedIngestTest, ShardCountsReleaseIdenticalBytesInline) {
  // The core determinism contract: for every shard count the k-way merge
  // reproduces the single-shard observation sequence exactly, so stream
  // index assignment, recycling, and the released bytes are all identical.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(11, 80);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(want.ok());

  for (int shards : {2, 3, 8}) {
    RetraSynConfig config = BaseConfig();
    config.ingest_shards = shards;
    auto sharded = TrajectoryService::Create(states, config);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    DriveRounds(sharded.value()->session(), traces, 0, kHorizon);
    auto got = sharded.value()->SnapshotRelease();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameRelease(got.value(), want.value());
    ExpectSameIndexLifecycle(sharded.value()->session(),
                             reference.value()->session());
  }
}

TEST(ShardedIngestTest, ShardCountsReleaseIdenticalBytesAsync) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(13, 60);

  auto reference = TrajectoryService::Create(states, BaseConfig());  // inline
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  RetraSynConfig config = BaseConfig();
  config.ingest_shards = 4;
  config.sync_policy = SyncPolicy::kAsync;
  auto sharded = TrajectoryService::Create(states, config);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  DriveRounds(sharded.value()->session(), traces, 0, kHorizon);
  ASSERT_TRUE(sharded.value()->Drain().ok());

  auto got = sharded.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(ShardedIngestTest, ArrivalOrderWithinARoundNeverChangesTheRelease) {
  // Producers race into different shards, so the per-round arrival order is
  // arbitrary; the sealed batch must be a pure function of the event SET.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(17, 60);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(want.ok());

  for (uint64_t perm_seed : {1u, 2u, 3u}) {
    RetraSynConfig config = BaseConfig();
    config.ingest_shards = 4;
    auto sharded = TrajectoryService::Create(states, config);
    ASSERT_TRUE(sharded.ok());
    IngestSession& session = sharded.value()->session();
    Rng rng(perm_seed);
    std::vector<uint64_t> order(traces.size());
    for (uint64_t id = 0; id < traces.size(); ++id) order[id] = id;
    for (int64_t t = 0; t < kHorizon; ++t) {
      std::shuffle(order.begin(), order.end(), rng);
      for (uint64_t id : order) Feed(session, id, traces[id], t);
      ASSERT_TRUE(session.Tick().ok());
    }
    auto got = sharded.value()->SnapshotRelease();
    ASSERT_TRUE(got.ok());
    ExpectSameRelease(got.value(), want.value());
  }
}

TEST(ShardedIngestTest, ConcurrentProducersReleaseIdenticalBytes) {
  // One producer thread per shard slice, racing within every round; the
  // result must match the serial single-shard run byte for byte. Run under
  // TSan this is also the data-race acceptance test for the shard locking.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(19, 96);
  constexpr int kProducers = 4;

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  RetraSynConfig config = BaseConfig();
  config.ingest_shards = kProducers;
  auto sharded = TrajectoryService::Create(states, config);
  ASSERT_TRUE(sharded.ok());
  IngestSession& session = sharded.value()->session();
  for (int64_t t = 0; t < kHorizon; ++t) {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (uint64_t id = static_cast<uint64_t>(p); id < traces.size();
             id += kProducers) {
          Feed(session, id, traces[id], t);
        }
      });
    }
    for (auto& thread : producers) thread.join();
    ASSERT_TRUE(session.Tick().ok());
  }

  auto got = sharded.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(ShardedIngestTest, BufferReuseDisabledReleasesIdenticalBytes) {
  // reuse_seal_buffers is a pure allocation knob: on or off, same bytes.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(23, 60);

  RetraSynConfig fresh_each_round = BaseConfig();
  fresh_each_round.ingest_shards = 4;
  fresh_each_round.reuse_seal_buffers = false;
  auto a = TrajectoryService::Create(states, fresh_each_round);
  ASSERT_TRUE(a.ok());
  DriveRounds(a.value()->session(), traces, 0, kHorizon);

  RetraSynConfig reusing = BaseConfig();
  reusing.ingest_shards = 4;
  auto b = TrajectoryService::Create(states, reusing);
  ASSERT_TRUE(b.ok());
  DriveRounds(b.value()->session(), traces, 0, kHorizon);

  auto got = a.value()->SnapshotRelease();
  auto want = b.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());

  // The reusing run actually recycled observation buffers...
  EXPECT_GT(b.value()->ingest_stats().obs_buffers_reused, 0u);
  // ...and the non-reusing run never did.
  EXPECT_EQ(a.value()->ingest_stats().obs_buffers_reused, 0u);
}

TEST(ShardedIngestTest, IngestStatsTrackQueueDepthsAndTimings) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(29, 64);

  RetraSynConfig config = BaseConfig();
  config.ingest_shards = 4;
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok());
  DriveRounds(service.value()->session(), traces, 0, kHorizon);

  const IngestStats stats = service.value()->ingest_stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.rounds_sealed, static_cast<uint64_t>(kHorizon));
  EXPECT_GT(stats.entries_merged, 0u);
  EXPECT_GT(stats.seal_seconds, 0.0);
  EXPECT_GT(stats.merge_seconds, 0.0);
  EXPECT_GT(stats.commit_seconds, 0.0);

  uint64_t accepted = 0, peak = 0, rejected = 0;
  for (const IngestShardStats& shard : stats.shards) {
    accepted += shard.events_accepted;
    rejected += shard.events_rejected;
    peak = std::max(peak, shard.peak_pending_events);
    // Round boundaries drain every queue.
    EXPECT_EQ(shard.pending_events, 0u);
  }
  uint64_t total_events = 0;
  for (const DeviceTrace& trace : traces) {
    total_events += trace.points.size();  // enter + moves
    const int64_t end =
        trace.enter_time + static_cast<int64_t>(trace.points.size());
    if (end < kHorizon) ++total_events;  // the quit
  }
  EXPECT_EQ(accepted, total_events);
  EXPECT_EQ(rejected, 0u);
  EXPECT_GT(peak, 0u);

  // Validation failures land in events_rejected without perturbing state.
  EXPECT_FALSE(service.value()->session().Move(1u << 20, Point{10, 10}).ok());
  uint64_t rejected_after = 0;
  for (const auto& shard : service.value()->ingest_stats().shards) {
    rejected_after += shard.events_rejected;
  }
  EXPECT_EQ(rejected_after, 1u);
}

TEST(ShardedIngestTest, KillAndRecoverShardedByteIdentical) {
  // Crash mid-run with 3 shards (3 per-shard journals), recover under the
  // same config, finish the workload: identical to an unjournaled
  // single-shard run end to end.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(31, 60);
  TempDir dir;
  constexpr int64_t kCrashAt = 13;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  journaled.ingest_shards = 3;
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ(service.value()->num_journals(), 3u);
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
  }
  // The on-disk layout is one journal per shard.
  for (int shard = 0; shard < 3; ++shard) {
    auto names =
        ListDirectory(dir.path() + "/" + ShardJournalDirName(shard));
    ASSERT_TRUE(names.ok()) << names.status().ToString();
    EXPECT_FALSE(names.value().empty());
  }

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
  ExpectSameIndexLifecycle(recovered.value()->session(),
                           reference.value()->session());
}

TEST(ShardedIngestTest, AsyncShardedKillAndRecoverByteIdentical) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(37, 50);
  TempDir dir;
  constexpr int64_t kCrashAt = 9;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  journaled.ingest_shards = 4;
  journaled.sync_policy = SyncPolicy::kAsync;
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);
  ASSERT_TRUE(recovered.value()->Drain().ok());

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(ShardedIngestTest, ShardedCheckpointRecoveryByteIdentical) {
  // Checkpoints are shard-count agnostic on disk but recovery must stitch
  // them together with all N shard journals' suffixes.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(41, 60);
  TempDir dir;
  constexpr int64_t kCrashAt = 19;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path() + "/journal";
  journaled.checkpoint_dir = dir.path() + "/checkpoints";
  journaled.checkpoint_every_rounds = 5;
  journaled.ingest_shards = 3;
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);
  ASSERT_TRUE(recovered.value()->Drain().ok());

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(ShardedIngestTest, BoundaryAppendSkewIsRepairedOnRecovery) {
  // A crash between the per-shard boundary appends of one Tick leaves some
  // shard journals one round ahead of the slowest one. Recovery must settle
  // on the minimum (a round is durable only once its boundary reached every
  // shard), physically drop the orphaned boundaries, and re-buffer the
  // now-open round's events — byte-identically to a run that never ticked.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(47, 50);
  TempDir dir;
  constexpr int64_t kCrashAt = 11;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  journaled.ingest_shards = 3;
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
  }

  // Simulate the torn boundary: cut shard 1's journal right before its final
  // Tick record, leaving shards 0 and 2 one boundary ahead.
  const std::string lagging = dir.path() + "/" + ShardJournalDirName(1);
  {
    auto scan = JournalReader::ScanDir(lagging);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ASSERT_FALSE(scan.value().events.empty());
    ASSERT_EQ(scan.value().events.back().type, JournalEventType::kTick);
    ASSERT_TRUE(TruncateFile(scan.value().last_record_segment,
                             scan.value().last_record_offset)
                    .ok());
  }

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The torn round is open again, its events re-buffered...
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt - 1);
  EXPECT_GT(recovered.value()->session().num_pending_events(), 0u);
  // Closing the reopened round needs no re-feeding — the events are already
  // buffered — and produces the batch the crashed Tick never durably sealed.
  ASSERT_TRUE(recovered.value()->session().Tick().ok());
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);
  recovered.value().reset();  // release the shard locks

  auto again = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again.value()->rounds_closed(), kHorizon);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = again.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(ShardedIngestTest, ShardCountMismatchIsRefusedLoudly) {
  // The shard count is part of the deployment fingerprint AND the on-disk
  // layout; replaying under a different count would regroup rounds silently,
  // so both checks must fail closed.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(43, 40);
  TempDir sharded_dir;
  TempDir flat_dir;

  RetraSynConfig sharded = BaseConfig();
  sharded.journal_dir = sharded_dir.path();
  sharded.ingest_shards = 3;
  {
    auto service = TrajectoryService::Create(states, sharded);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, 5);
  }
  RetraSynConfig flat = BaseConfig();
  flat.journal_dir = flat_dir.path();
  {
    auto service = TrajectoryService::Create(states, flat);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, 5);
  }

  // Sharded journal under any other shard count: refused.
  for (int other : {1, 2, 8}) {
    RetraSynConfig wrong = sharded;
    wrong.ingest_shards = other;
    EXPECT_EQ(TrajectoryService::Recover(states, wrong).status().code(),
              StatusCode::kFailedPrecondition)
        << "ingest_shards=" << other;
  }
  // Flat journal under a sharded config: refused.
  RetraSynConfig wrong_flat = flat;
  wrong_flat.ingest_shards = 3;
  EXPECT_EQ(TrajectoryService::Recover(states, wrong_flat).status().code(),
            StatusCode::kFailedPrecondition);
  // Create refuses existing state under either layout.
  EXPECT_EQ(TrajectoryService::Create(states, sharded).status().code(),
            StatusCode::kFailedPrecondition);
  // The matching counts still recover.
  EXPECT_TRUE(TrajectoryService::Recover(states, sharded).ok());
  EXPECT_TRUE(TrajectoryService::Recover(states, flat).ok());
}

TEST(ShardedIngestTest, ShardCountValidation) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  RetraSynConfig zero = BaseConfig();
  zero.ingest_shards = 0;
  EXPECT_EQ(TrajectoryService::Create(states, zero).status().code(),
            StatusCode::kInvalidArgument);
  RetraSynConfig too_many = BaseConfig();
  too_many.ingest_shards = RetraSynConfig::kMaxIngestShards + 1;
  EXPECT_EQ(TrajectoryService::Create(states, too_many).status().code(),
            StatusCode::kInvalidArgument);
  RetraSynConfig max = BaseConfig();
  max.ingest_shards = RetraSynConfig::kMaxIngestShards;
  EXPECT_TRUE(TrajectoryService::Create(states, max).ok());
}

}  // namespace
}  // namespace retrasyn
