// Fingerprint coverage for the spatial grid: the deployment fingerprint in
// journal segment headers and checkpoint frames hashes the grid's canonical
// Describe() bytes, so recovering durable state under a different
// discretization — a different backend, or even a quadtree with the same
// cell count but different splits — must fail with FailedPrecondition, never
// silently resolve events to different cells. The checkpoint body also
// round-trips the description verbatim, which keeps the refusal precise even
// against a fingerprint collision.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_format.h"
#include "common/file_io.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/quadtree_grid.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

const BoundingBox kBox{0.0, 0.0, 400.0, 400.0};

class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-grid-fp-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() {
    for (const char* sub : {"/journal", "/ckpt"}) {
      RemoveDirTree(path_ + sub).CheckOK();
    }
    RemoveDirTree(path_).CheckOK();
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

RetraSynConfig BaseConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 6.0;
  config.seed = 7;
  return config;
}

/// Drives \p rounds of a tiny deterministic workload: 6 users walking the
/// grid's own cell centers, so the script is valid for any backend.
void DriveRounds(IngestSession& session, const SpatialGrid& grid,
                 int64_t rounds) {
  const int64_t cells = static_cast<int64_t>(grid.NumCells());
  for (int64_t t = 0; t < rounds; ++t) {
    for (uint64_t u = 0; u < 6; ++u) {
      const Point p = grid.CellCenter(
          static_cast<CellId>((static_cast<int64_t>(u) * 7 + t) % cells));
      ASSERT_TRUE((t == 0 ? session.Enter(u, p) : session.Move(u, p)).ok());
    }
    ASSERT_TRUE(session.Tick().ok());
  }
}

/// All mass in one probe cell — two different corners give two quadtrees
/// with identical leaf counts but different split structures.
DensitySnapshot CornerDensity(uint32_t ix, uint32_t iy) {
  DensitySnapshot d;
  d.k = 8;
  d.counts.assign(64, 0.0);
  d.counts[static_cast<size_t>(iy) * 8 + ix] = 10.0;
  return d;
}

TEST(GridFingerprintTest, JournalRefusesRecoveryUnderADifferentBackend) {
  const Grid uniform(kBox, 4);
  const StateSpace uniform_states(uniform);
  auto quad = MakeSpatialGrid(kBox, 4, GridBackend::kQuadtree);
  ASSERT_TRUE(quad.ok()) << quad.status().ToString();
  const StateSpace quad_states(*quad.value());

  // Journal written under the uniform grid: replaying it under the quadtree
  // would re-resolve every point; the fingerprint refuses instead.
  {
    TempDir dir;
    RetraSynConfig journaled = BaseConfig();
    journaled.journal_dir = dir.path() + "/journal";
    {
      auto service = TrajectoryService::Create(uniform_states, journaled);
      ASSERT_TRUE(service.ok()) << service.status().ToString();
      DriveRounds(service.value()->session(), uniform, 4);
    }
    auto refused = TrajectoryService::Recover(quad_states, journaled);
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    // The matching deployment still recovers.
    EXPECT_TRUE(TrajectoryService::Recover(uniform_states, journaled).ok());
  }

  // And the reverse direction: a quadtree journal refuses a uniform replay.
  {
    TempDir dir;
    RetraSynConfig journaled = BaseConfig();
    journaled.journal_dir = dir.path() + "/journal";
    {
      auto service = TrajectoryService::Create(quad_states, journaled);
      ASSERT_TRUE(service.ok()) << service.status().ToString();
      DriveRounds(service.value()->session(), *quad.value(), 4);
    }
    auto refused = TrajectoryService::Recover(uniform_states, journaled);
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_TRUE(TrajectoryService::Recover(quad_states, journaled).ok());
  }
}

TEST(GridFingerprintTest, JournalRefusesSameCellCountDifferentSplits) {
  // The hard case a |C|-only fingerprint would miss: two quadtrees with the
  // same backend, box, and leaf count whose split structures differ. The
  // fingerprint hashes the full Describe() blob, so it still refuses.
  QuadtreeConfig config;
  config.max_depth = 3;
  auto sw = QuadtreeGrid::Build(kBox, CornerDensity(0, 0), config);
  auto ne = QuadtreeGrid::Build(kBox, CornerDensity(7, 7), config);
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(ne.ok());
  ASSERT_EQ(sw.value()->NumCells(), ne.value()->NumCells());
  ASSERT_NE(sw.value()->Describe(), ne.value()->Describe());
  const StateSpace sw_states(*sw.value());
  const StateSpace ne_states(*ne.value());

  TempDir dir;
  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path() + "/journal";
  {
    auto service = TrajectoryService::Create(sw_states, journaled);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveRounds(service.value()->session(), *sw.value(), 4);
  }
  auto refused = TrajectoryService::Recover(ne_states, journaled);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // An independently rebuilt grid from the same density recovers: the
  // fingerprint binds to the structure, not to the object instance.
  auto rebuilt = QuadtreeGrid::Build(kBox, CornerDensity(0, 0), config);
  ASSERT_TRUE(rebuilt.ok());
  const StateSpace rebuilt_states(*rebuilt.value());
  EXPECT_TRUE(TrajectoryService::Recover(rebuilt_states, journaled).ok());
}

TEST(GridFingerprintTest, CheckpointGridDescriptionIsVerifiedVerbatim) {
  // Beyond the hash: the checkpoint body carries the grid description
  // verbatim, and recovery compares the round-tripped bytes against the
  // running deployment. Forge a checkpoint whose frame fingerprint matches
  // (simulating a hash collision) but whose body was captured under the
  // uniform grid — recovery must still refuse, with a message naming the
  // spatial grid.
  auto quad = MakeSpatialGrid(kBox, 4, GridBackend::kQuadtree);
  ASSERT_TRUE(quad.ok());
  const StateSpace quad_states(*quad.value());
  const Grid uniform(kBox, 4);
  const StateSpace uniform_states(uniform);

  TempDir quad_dir;
  RetraSynConfig quad_config = BaseConfig();
  quad_config.journal_dir = quad_dir.path() + "/journal";
  quad_config.checkpoint_dir = quad_dir.path() + "/ckpt";
  quad_config.checkpoint_every_rounds = 5;
  {
    auto service = TrajectoryService::Create(quad_states, quad_config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveRounds(service.value()->session(), *quad.value(), 11);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  TempDir uniform_dir;
  RetraSynConfig uniform_config = BaseConfig();
  uniform_config.journal_dir = uniform_dir.path() + "/journal";
  uniform_config.checkpoint_dir = uniform_dir.path() + "/ckpt";
  uniform_config.checkpoint_every_rounds = 5;
  {
    auto service = TrajectoryService::Create(uniform_states, uniform_config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveRounds(service.value()->session(), uniform, 11);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  // The quadtree deployment's own fingerprint, read off its latest frame.
  const std::string quad_latest =
      quad_config.checkpoint_dir + "/" + CheckpointFileName(10);
  uint64_t quad_fingerprint = 0;
  ASSERT_TRUE(ReadFramedFile(quad_latest, kCheckpointMagic, &quad_fingerprint)
                  .ok());
  // The uniform deployment's checkpoint body (uniform grid description
  // inside), re-framed with the quadtree deployment's fingerprint.
  uint64_t ignored = 0;
  auto uniform_body =
      ReadFramedFile(uniform_config.checkpoint_dir + "/" +
                         CheckpointFileName(10),
                     kCheckpointMagic, &ignored);
  ASSERT_TRUE(uniform_body.ok()) << uniform_body.status().ToString();
  ASSERT_TRUE(WriteFramedFile(quad_config.checkpoint_dir,
                              CheckpointFileName(10), kCheckpointMagic,
                              quad_fingerprint, uniform_body.value())
                  .ok());

  auto refused = TrajectoryService::Recover(quad_states, quad_config);
  ASSERT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("spatial grid"),
            std::string::npos)
      << refused.status().ToString();
}

}  // namespace
}  // namespace retrasyn
