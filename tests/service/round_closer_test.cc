// The async round-closing pipeline: ordered sink delivery under a slow sink,
// backpressure (block and fail-fast), the Drain()-before-snapshot rule,
// error propagation from background failures to the ingest thread, and
// byte-exact Inline-vs-Async equivalence for the real engine.

#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "service/round_closer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/release_server.h"
#include "service/replay.h"
#include "service/trajectory_service.h"
#include "stream/hotspot_generator.h"

namespace retrasyn {
namespace {

/// A trivial engine whose Observe can be slowed down, for exercising the
/// queue without paying for real synthesis.
class StubEngine : public StreamReleaseEngine {
 public:
  explicit StubEngine(uint32_t num_cells, int observe_delay_ms = 0)
      : num_cells_(num_cells), observe_delay_ms_(observe_delay_ms) {}

  void Observe(const TimestampBatch& batch) override {
    if (observe_delay_ms_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(observe_delay_ms_));
    }
    last_t_ = batch.t;
    ++observed_;
  }

  CellStreamSet SnapshotRelease(int64_t num_timestamps) const override {
    CellStreamSet set(num_timestamps);
    // One synthetic stream per observed round, so tests can see how many
    // rounds actually reached the engine.
    for (int64_t i = 0; i < observed_; ++i) {
      CellStream s;
      s.enter_time = 0;
      s.cells = {0};
      set.Add(std::move(s)).CheckOK();
    }
    return set;
  }

  std::vector<uint32_t> LiveDensity() const override {
    std::vector<uint32_t> density(num_cells_, 0);
    density[0] = static_cast<uint32_t>(observed_);  // marks the round number
    return density;
  }

  CellStreamSet Finish(int64_t num_timestamps) override {
    return SnapshotRelease(num_timestamps);
  }

  std::string name() const override { return "stub"; }

  int64_t observed() const { return observed_; }

 private:
  const uint32_t num_cells_;
  const int observe_delay_ms_;
  int64_t observed_ = 0;
  int64_t last_t_ = -1;
};

/// Records delivery order; optionally sleeps per round or fails at a round.
class RecordingSink : public ReleaseSink {
 public:
  Status OnRound(const RoundRelease& round) override {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (round.t == fail_at_t) {
      return Status::IOError("sink exploded at round " +
                             std::to_string(round.t));
    }
    rounds.push_back(round.t);
    actives.push_back(round.active);
    return Status::OK();
  }

  int delay_ms = 0;
  int64_t fail_at_t = -1;
  std::vector<int64_t> rounds;   ///< delivery order as observed by the sink
  std::vector<uint64_t> actives;
};

struct AsyncFixture {
  AsyncFixture()
      : grid_owner(MakeEnvGrid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 4)),
        grid(*grid_owner),
        states(grid) {}

  /// A point inside the (row, col) cell of the 4x4 reference lattice — just
  /// a stable coordinate for any backend; these tests drive trivial
  /// single-point rounds and never depend on the cell layout.
  Point CellPoint(uint32_t row, uint32_t col) const {
    return Point{(col + 0.5) * 25.0, (row + 0.5) * 25.0};
  }

  /// Drives \p session through \p rounds trivial single-user rounds.
  static void DriveRounds(IngestSession& session, const Point& point,
                          int rounds) {
    for (int t = 0; t < rounds; ++t) {
      if (t == 0) {
        ASSERT_TRUE(session.Enter(1, point).ok());
      } else {
        ASSERT_TRUE(session.Move(1, point).ok());
      }
      ASSERT_TRUE(session.Tick().ok());
    }
  }

  std::unique_ptr<SpatialGrid> grid_owner;
  const SpatialGrid& grid;
  StateSpace states;
};

TEST(RoundCloserTest, SlowSinkStillReceivesRoundsInOrder) {
  AsyncFixture fx;
  ServiceOptions options;
  options.sync_policy = SyncPolicy::kAsync;
  options.round_queue_capacity = 16;
  auto service = TrajectoryService::CreateWithEngine(
      fx.states, std::make_unique<StubEngine>(fx.grid.NumCells()), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  RecordingSink sink;
  sink.delay_ms = 2;  // slower than the (instant) close step
  service.value()->AddSink(&sink);
  AsyncFixture::DriveRounds(service.value()->session(), fx.CellPoint(0, 0), 12);
  ASSERT_TRUE(service.value()->Drain().ok());

  ASSERT_EQ(sink.rounds.size(), 12u);
  for (int64_t t = 0; t < 12; ++t) {
    EXPECT_EQ(sink.rounds[t], t);  // strictly in round order, none skipped
    // LiveDensity marks how many rounds the engine had observed when the
    // release was built: round t must have been built after observing t + 1
    // rounds, i.e. releases are built in order too.
    EXPECT_EQ(sink.actives[t], static_cast<uint64_t>(t + 1));
  }
}

TEST(RoundCloserTest, BlockBackpressureProcessesEveryRound) {
  AsyncFixture fx;
  ServiceOptions options;
  options.sync_policy = SyncPolicy::kAsync;
  options.round_queue_capacity = 1;  // force the ingest thread to block
  options.backpressure = BackpressurePolicy::kBlock;
  auto engine =
      std::make_unique<StubEngine>(fx.grid.NumCells(), /*observe_delay_ms=*/3);
  StubEngine* raw = engine.get();
  auto service = TrajectoryService::CreateWithEngine(fx.states,
                                                     std::move(engine), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  RecordingSink sink;
  service.value()->AddSink(&sink);

  AsyncFixture::DriveRounds(service.value()->session(), fx.CellPoint(1, 1), 10);
  ASSERT_TRUE(service.value()->Drain().ok());
  EXPECT_EQ(raw->observed(), 10);
  ASSERT_EQ(sink.rounds.size(), 10u);
  for (int64_t t = 0; t < 10; ++t) EXPECT_EQ(sink.rounds[t], t);
}

TEST(RoundCloserTest, FailFastBackpressureRejectsAndAllowsRetry) {
  AsyncFixture fx;
  ServiceOptions options;
  options.sync_policy = SyncPolicy::kAsync;
  options.round_queue_capacity = 1;
  options.backpressure = BackpressurePolicy::kFailFast;
  auto engine = std::make_unique<StubEngine>(fx.grid.NumCells(),
                                             /*observe_delay_ms=*/30);
  StubEngine* raw = engine.get();
  auto service = TrajectoryService::CreateWithEngine(fx.states,
                                                     std::move(engine), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  IngestSession& session = service.value()->session();

  // Round 0 heads for the (slow) closer; subsequent rounds pile up in the
  // single queue slot until a Tick fails fast. The failed Tick leaves the
  // round open with its events intact.
  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 1)).ok());
  Status st = Status::OK();
  int accepted = 0;
  while (true) {
    st = session.Tick();
    if (!st.ok()) break;
    ++accepted;
    ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 0)).ok());
    ASSERT_LT(accepted, 1000) << "queue never filled";
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  const int64_t open_round = session.open_round();
  EXPECT_EQ(session.num_pending_events(), 1u);

  // Once the closer catches up, the identical round goes through.
  ASSERT_TRUE(service.value()->Drain().ok());
  ASSERT_TRUE(session.Tick().ok());
  EXPECT_EQ(session.open_round(), open_round + 1);
  ASSERT_TRUE(service.value()->Drain().ok());
  EXPECT_EQ(raw->observed(), session.open_round());
}

TEST(RoundCloserTest, SnapshotRequiresDrain) {
  AsyncFixture fx;
  ServiceOptions options;
  options.sync_policy = SyncPolicy::kAsync;
  options.round_queue_capacity = 8;
  auto service = TrajectoryService::CreateWithEngine(
      fx.states,
      std::make_unique<StubEngine>(fx.grid.NumCells(), /*observe_delay_ms=*/20),
      options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  IngestSession& session = service.value()->session();

  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());

  // Rounds are still being closed in the background.
  auto premature = service.value()->SnapshotRelease();
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(premature.status().message().find("Drain"), std::string::npos);

  ASSERT_TRUE(service.value()->Drain().ok());
  auto snapshot = service.value()->SnapshotRelease();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value().streams().size(), 2u);  // one per observed round
}

TEST(RoundCloserTest, SinkFailureSurfacesOnNextTickAndDrain) {
  AsyncFixture fx;
  ServiceOptions options;
  options.sync_policy = SyncPolicy::kAsync;
  options.round_queue_capacity = 4;
  auto service = TrajectoryService::CreateWithEngine(
      fx.states, std::make_unique<StubEngine>(fx.grid.NumCells()), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  RecordingSink sink;
  sink.fail_at_t = 1;
  service.value()->AddSink(&sink);
  IngestSession& session = service.value()->session();

  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());  // round 1: delivery will fail

  // The failure is asynchronous: eventually a Tick() reports it instead of
  // swallowing it. (The first post-failure Tick may still be accepted if it
  // races ahead of delivery.)
  Status st = Status::OK();
  for (int i = 0; i < 1000 && st.ok(); ++i) {
    ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 0)).ok());
    st = session.Tick();
    if (st.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("sink exploded"), std::string::npos);

  // The error is sticky: Drain() and the snapshot surface it too.
  EXPECT_EQ(service.value()->Drain().code(), StatusCode::kIOError);
  EXPECT_EQ(service.value()->SnapshotRelease().status().code(),
            StatusCode::kIOError);
  // Rounds before the failure were delivered; the failing one was not.
  ASSERT_EQ(sink.rounds.size(), 1u);
  EXPECT_EQ(sink.rounds[0], 0);
}

TEST(RoundCloserTest, InlineSinkFailureCommitsRoundAndSurfacesOnNextTick) {
  // Inline counterpart of the async poisoning contract: by the time a sink
  // runs, the engine has consumed the round, so the closing Tick() must NOT
  // fail (a session rollback would make a retry double-observe the batch).
  // The error surfaces, sticky, on the next Tick()/Drain()/snapshot.
  AsyncFixture fx;
  auto engine = std::make_unique<StubEngine>(fx.grid.NumCells());
  StubEngine* raw = engine.get();
  auto service = TrajectoryService::CreateWithEngine(fx.states,
                                                     std::move(engine), {});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  RecordingSink sink;
  sink.fail_at_t = 1;
  service.value()->AddSink(&sink);
  IngestSession& session = service.value()->session();

  ASSERT_TRUE(session.Enter(1, fx.CellPoint(0, 0)).ok());
  ASSERT_TRUE(session.Tick().ok());
  ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 1)).ok());
  ASSERT_TRUE(session.Tick().ok());  // sink fails, but the round commits
  EXPECT_EQ(session.open_round(), 2);
  EXPECT_EQ(raw->observed(), 2);  // observed exactly once, no double-observe

  ASSERT_TRUE(session.Move(1, fx.CellPoint(0, 0)).ok());
  Status st = session.Tick();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("sink exploded"), std::string::npos);
  EXPECT_EQ(session.open_round(), 2);  // refused round rolled back
  EXPECT_EQ(raw->observed(), 2);
  EXPECT_EQ(service.value()->Drain().code(), StatusCode::kIOError);
  EXPECT_EQ(service.value()->SnapshotRelease().status().code(),
            StatusCode::kIOError);
  ASSERT_EQ(sink.rounds.size(), 1u);  // round 0 delivered, round 1 failed
  EXPECT_EQ(sink.rounds[0], 0);
}

TEST(RoundCloserTest, AsyncReleaseIsByteIdenticalToInline) {
  // The determinism contract: for a fixed (seed, num_threads), Async mode
  // produces the identical release sequence and snapshot as Inline mode.
  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 50;
  data_config.initial_users = 250;
  data_config.mean_arrivals = 20.0;
  Rng rng(11);
  const StreamDatabase db = GenerateHotspotStreams(data_config, rng);
  const auto grid_owner = MakeEnvGrid(db.box(), 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = db.AverageLength();
  config.seed = 321;
  config.num_threads = 2;
  config.thread_pool = std::make_shared<ThreadPool>(2);

  auto run = [&](SyncPolicy policy, ReleaseServer* server) {
    RetraSynConfig run_config = config;
    run_config.sync_policy = policy;
    run_config.round_queue_capacity = 4;
    auto service = TrajectoryService::Create(states, run_config);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    service.value()->AddSink(server);
    ReplayDatabase(db, *service.value()).CheckOK();
    EXPECT_TRUE(service.value()->Drain().ok());
    auto snapshot = service.value()->SnapshotRelease(db.num_timestamps());
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    return std::move(snapshot).value();
  };

  ReleaseServer inline_server(grid);
  ReleaseServer async_server(grid);
  const CellStreamSet inline_set = run(SyncPolicy::kInline, &inline_server);
  const CellStreamSet async_set = run(SyncPolicy::kAsync, &async_server);

  // Identical snapshots, stream for stream.
  ASSERT_EQ(async_set.streams().size(), inline_set.streams().size());
  ASSERT_EQ(async_set.TotalPoints(), inline_set.TotalPoints());
  for (size_t i = 0; i < inline_set.streams().size(); ++i) {
    EXPECT_EQ(async_set.streams()[i].enter_time,
              inline_set.streams()[i].enter_time) << "stream " << i;
    EXPECT_EQ(async_set.streams()[i].cells, inline_set.streams()[i].cells)
        << "stream " << i;
  }
  // Identical release sequences as observed by the sinks.
  ASSERT_EQ(async_server.horizon(), inline_server.horizon());
  for (int64_t t = 0; t < inline_server.horizon(); ++t) {
    EXPECT_EQ(async_server.DensityAt(t), inline_server.DensityAt(t))
        << "t=" << t;
    EXPECT_EQ(async_server.ActiveAt(t), inline_server.ActiveAt(t)) << "t=" << t;
  }
}

}  // namespace
}  // namespace retrasyn
