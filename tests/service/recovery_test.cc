// Crash-recovery acceptance tests for the durable event journal: a journaled
// TrajectoryService must be reconstructible from its journal alone, byte for
// byte — the durability extension of the Inline-vs-Async determinism family.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/rng.h"
#include "core/release_server.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-recovery-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() { RemoveDirTree(path_).CheckOK(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct DeviceTrace {
  int64_t enter_time = 0;
  std::vector<Point> points;
};

constexpr int64_t kHorizon = 24;

std::vector<DeviceTrace> MakeWorkload(uint64_t seed, int devices) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  Rng rng(seed);
  std::vector<DeviceTrace> traces;
  for (int i = 0; i < devices; ++i) {
    DeviceTrace trace;
    trace.enter_time = static_cast<int64_t>(rng.UniformInt(kHorizon - 2));
    const int64_t max_len = kHorizon - trace.enter_time;
    const int64_t len =
        1 + static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(std::min<int64_t>(max_len, 10))));
    Point p{box.min_x + rng.UniformDouble() * box.Width(),
            box.min_y + rng.UniformDouble() * box.Height()};
    for (int64_t k = 0; k < len; ++k) {
      trace.points.push_back(p);
      p = box.Clamp(Point{p.x + (rng.UniformDouble() - 0.5) * 80.0,
                          p.y + (rng.UniformDouble() - 0.5) * 80.0});
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

RetraSynConfig BaseConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 6.0;
  config.seed = 7;
  return config;
}

/// Feeds rounds [from, to) of the scripted workload into the session.
void DriveRounds(IngestSession& session, const std::vector<DeviceTrace>& traces,
                 int64_t from, int64_t to) {
  for (int64_t t = from; t < to; ++t) {
    for (uint64_t id = 0; id < traces.size(); ++id) {
      const DeviceTrace& trace = traces[id];
      const int64_t end =
          trace.enter_time + static_cast<int64_t>(trace.points.size());
      if (t == trace.enter_time) {
        ASSERT_TRUE(session.Enter(id, trace.points.front()).ok());
      } else if (t > trace.enter_time && t < end) {
        ASSERT_TRUE(session.Move(id, trace.points[t - trace.enter_time]).ok());
      } else if (t == end && end < kHorizon) {
        ASSERT_TRUE(session.Quit(id).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
}

void ExpectSameRelease(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  ASSERT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << "stream " << i;
  }
}

TEST(RecoveryTest, KillAndRecoverSnapshotByteIdentical) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(11, 60);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();

  // The service that will "crash": journal everything, then abandon it
  // without any graceful handoff beyond the destructor.
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveRounds(service.value()->session(), traces, 0, kHorizon);
  }

  // The uncrashed reference: same config, no journal.
  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->rounds_closed(), kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(RecoveryTest, RecoveredServiceContinuesIngestingAndJournaling) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(23, 50);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  constexpr int64_t kCrashAt = 10;

  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
  }

  // First recovery: continue the remaining rounds on the recovered service,
  // which keeps journaling into a fresh segment.
  {
    auto recovered = TrajectoryService::Recover(states, journaled);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
    ASSERT_NE(recovered.value()->journal(), nullptr);
    DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);
  }

  // Second recovery reads segments from both incarnations.
  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->rounds_closed(), kHorizon);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(RecoveryTest, AsyncRecoverMatchesInlineAndReArmsTheCloser) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(31, 50);
  TempDir dir;

  RetraSynConfig async_journaled = BaseConfig();
  async_journaled.journal_dir = dir.path();
  async_journaled.sync_policy = SyncPolicy::kAsync;
  constexpr int64_t kCrashAt = 12;

  {
    auto service = TrajectoryService::Create(states, async_journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  // Recovery replays inline, then re-arms the async closer; the continued
  // ingest exercises the re-armed pipeline (Drain required again).
  auto recovered = TrajectoryService::Recover(states, async_journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);
  ASSERT_TRUE(recovered.value()->Drain().ok());

  auto reference = TrajectoryService::Create(states, BaseConfig());  // inline
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(RecoveryTest, RecoverDirHoldingOnlyLockFileYieldsEmptyService) {
  // A supervisor that crashes between taking the journal lock and writing
  // the first segment leaves a directory holding nothing but LOCK. Recover
  // must treat it as a fresh deployment, not an error.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(61, 20);
  TempDir dir;
  {
    std::FILE* f = std::fopen((dir.path() + "/LOCK").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  {
    auto recovered = TrajectoryService::Recover(states, journaled);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered.value()->rounds_closed(), 0);
    ASSERT_NE(recovered.value()->journal(), nullptr);
    // The empty service is fully usable: ingest, close rounds, journal.
    DriveRounds(recovered.value()->session(), traces, 0, kHorizon);
  }
  auto again = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value()->rounds_closed(), kHorizon);
}

TEST(RecoveryTest, RecoverSingleZeroByteSegmentYieldsEmptyService) {
  // A crash between segment creation and the header flush leaves a single
  // zero-byte segment (and no LOCK if the dir was never locked before).
  // That is clean-empty: no acknowledged record can live in a segment
  // without bytes.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(67, 20);
  TempDir dir;
  {
    std::FILE* f = std::fopen(
        (dir.path() + "/" + JournalWriter::SegmentFileName(0)).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  {
    auto recovered = TrajectoryService::Recover(states, journaled);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered.value()->rounds_closed(), 0);
    ASSERT_NE(recovered.value()->journal(), nullptr);
    DriveRounds(recovered.value()->session(), traces, 0, kHorizon);
  }
  // The second incarnation appended after the empty segment; everything
  // replays, and the empty segment stays harmless mid-journal.
  auto again = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value()->rounds_closed(), kHorizon);
}

/// Drives rounds [from, to) of a steady-churn workload: `churn` fresh
/// user-ids enter every round and every stream lives exactly live/churn
/// rounds before its explicit quit, so the live population is constant while
/// stream indices retire and recycle continuously. Pure function of t —
/// resumable from any round, e.g. on a recovered service.
void DriveChurnRounds(IngestSession& session, const SpatialGrid& grid, int64_t from,
                      int64_t to, int64_t live, int64_t churn) {
  const int64_t lifetime = live / churn;
  const int64_t cells = static_cast<int64_t>(grid.NumCells());
  auto at = [&](int64_t u, int64_t t) {
    return grid.CellCenter(static_cast<CellId>((u * 7 + t) % cells));
  };
  for (int64_t t = from; t < to; ++t) {
    const int64_t first = std::max<int64_t>(0, (t - lifetime) * churn);
    for (int64_t u = first; u < (t + 1) * churn; ++u) {
      const int64_t entered = u / churn;
      if (entered == t) {
        ASSERT_TRUE(session.Enter(static_cast<uint64_t>(u), at(u, t)).ok());
      } else if (t < entered + lifetime) {
        ASSERT_TRUE(session.Move(static_cast<uint64_t>(u), at(u, t)).ok());
      } else if (t == entered + lifetime) {
        ASSERT_TRUE(session.Quit(static_cast<uint64_t>(u)).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
}

TEST(RecoveryTest, ChurnKillAndRecoverByteIdenticalWithRecycling) {
  // The acceptance scenario for index recycling: under steady churn (indices
  // being retired and re-issued every round), killing the service at an
  // arbitrary round and recovering from the journal must reproduce the
  // uninterrupted run byte for byte — index assignments included, because
  // retirement depends only on the replayed batch sequence.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir dir;
  constexpr int64_t kLive = 20, kChurn = 4, kRounds = 30, kCrashAt = 17;

  RetraSynConfig journaled = BaseConfig();  // window 8, recycling default-on
  journaled.journal_dir = dir.path();
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveChurnRounds(service.value()->session(), grid, 0, kCrashAt, kLive,
                     kChurn);
  }

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveChurnRounds(recovered.value()->session(), grid, kCrashAt, kRounds,
                   kLive, kChurn);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveChurnRounds(reference.value()->session(), grid, 0, kRounds, kLive,
                   kChurn);

  // Index lifecycle state matches the uninterrupted run exactly...
  const IngestSession& got_session = recovered.value()->session();
  const IngestSession& want_session = reference.value()->session();
  EXPECT_EQ(got_session.index_high_water(), want_session.index_high_water());
  EXPECT_EQ(got_session.num_free_indices(), want_session.num_free_indices());
  EXPECT_EQ(got_session.num_retiring_indices(),
            want_session.num_retiring_indices());
  // ...recycling actually happened (high-water far below streams started)...
  EXPECT_LT(got_session.index_high_water(), kChurn * kRounds);
  // ...and the released bytes are identical.
  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(RecoveryTest, JournalingDoesNotPerturbTheRelease) {
  // The journal must be a pure tap: a journaled run and a plain run release
  // identical bytes, and the ReleaseServer sink sees identical rounds.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(47, 60);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();

  auto a = TrajectoryService::Create(states, journaled);
  ASSERT_TRUE(a.ok());
  ReleaseServer server_a(grid);
  a.value()->AddSink(&server_a);
  DriveRounds(a.value()->session(), traces, 0, kHorizon);

  auto b = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(b.ok());
  ReleaseServer server_b(grid);
  b.value()->AddSink(&server_b);
  DriveRounds(b.value()->session(), traces, 0, kHorizon);

  auto got = a.value()->SnapshotRelease();
  auto want = b.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
  ASSERT_EQ(server_a.horizon(), server_b.horizon());
  for (int64_t t = 0; t < server_a.horizon(); ++t) {
    EXPECT_EQ(server_a.DensityAt(t), server_b.DensityAt(t)) << "t=" << t;
  }
}

TEST(RecoveryTest, TornTailRecoversAPrefixAtEveryByteOffset) {
  // Truncate the journal at every byte offset spanning the last closed round
  // and the final record, and assert Recover always succeeds with a state
  // byte-identical to a reference service fed exactly the surviving events.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(5, 8);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  constexpr int64_t kRounds = 6;
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, kRounds);
  }

  const std::string segment_name = JournalWriter::SegmentFileName(0);
  auto full_contents = ReadFileToString(dir.path() + "/" + segment_name);
  ASSERT_TRUE(full_contents.ok());
  const std::string full = full_contents.value();

  // Per-cut expected event prefix: every record that fully fits.
  struct RecordSpan {
    size_t end;  // offset one past the record
    JournalEvent event;
  };
  std::vector<RecordSpan> spans;
  {
    size_t offset = 0;
    uint64_t fingerprint = 0;
    ASSERT_TRUE(
        CheckSegmentHeader(full.data(), full.size(), &offset, &fingerprint)
            .ok());
    JournalEvent e;
    while (offset < full.size()) {
      ASSERT_TRUE(DecodeRecord(full.data(), full.size(), &offset, &e).ok());
      spans.push_back(RecordSpan{offset, e});
    }
  }
  ASSERT_GE(spans.size(), 3u);

  // Cuts spanning the last round: from just past the second-to-last Tick to
  // the end of the file (the final record is the last round's Tick).
  size_t cut_from = kSegmentHeaderSize;
  {
    int ticks_seen = 0;
    for (size_t i = spans.size(); i-- > 0;) {
      if (spans[i].event.type == JournalEventType::kTick && ++ticks_seen == 2) {
        cut_from = spans[i].end;
        break;
      }
    }
  }

  for (size_t cut = cut_from; cut <= full.size(); ++cut) {
    TempDir copy;
    {
      std::FILE* f =
          std::fopen((copy.path() + "/" + segment_name).c_str(), "wb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(full.data(), 1, cut, f), cut);
      std::fclose(f);
    }
    RetraSynConfig recover_config = journaled;
    recover_config.journal_dir = copy.path();
    auto recovered = TrajectoryService::Recover(states, recover_config);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();

    // Reference: a fresh unjournaled service fed exactly the surviving
    // events through the same session API.
    auto reference = TrajectoryService::Create(states, BaseConfig());
    ASSERT_TRUE(reference.ok());
    IngestSession& session = reference.value()->session();
    int64_t expected_rounds = 0;
    size_t expected_events = 0;
    for (const RecordSpan& span : spans) {
      if (span.end > cut) break;
      ++expected_events;
      const JournalEvent& e = span.event;
      switch (e.type) {
        case JournalEventType::kEnter:
          ASSERT_TRUE(session.Enter(e.user, e.location).ok());
          break;
        case JournalEventType::kMove:
          ASSERT_TRUE(session.Move(e.user, e.location).ok());
          break;
        case JournalEventType::kQuit:
          ASSERT_TRUE(session.Quit(e.user).ok());
          break;
        case JournalEventType::kTick:
          ASSERT_TRUE(session.Tick().ok());
          ++expected_rounds;
          break;
        case JournalEventType::kAdvanceTo:
          FAIL() << "live sessions never journal AdvanceTo";
      }
    }

    EXPECT_EQ(recovered.value()->rounds_closed(), expected_rounds)
        << "cut=" << cut;
    EXPECT_EQ(recovered.value()->session().num_active_users(),
              session.num_active_users())
        << "cut=" << cut;
    EXPECT_EQ(recovered.value()->session().num_pending_events(),
              session.num_pending_events())
        << "cut=" << cut;
    if (expected_rounds > 0) {
      auto got = recovered.value()->SnapshotRelease();
      auto want = reference.value()->SnapshotRelease();
      ASSERT_TRUE(got.ok()) << "cut=" << cut;
      ASSERT_TRUE(want.ok());
      ExpectSameRelease(got.value(), want.value());
    }
  }
}

TEST(RecoveryTest, CreateRefusesAnExistingJournal) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(3, 5);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, 3);
  }
  auto second = TrajectoryService::Create(states, journaled);
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Recover is the sanctioned way in.
  auto recovered = TrajectoryService::Recover(states, journaled);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(RecoveryTest, RecoverOnAMissingOrEmptyJournalIsAFreshService) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path() + "/never-created";
  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->rounds_closed(), 0);
  // And it is immediately usable (journaling included).
  ASSERT_TRUE(recovered.value()->session().Enter(1, Point{10, 10}).ok());
  ASSERT_TRUE(recovered.value()->session().Tick().ok());
  recovered.value().reset();  // release the journal LOCK before cleanup
  RemoveDirTree(journaled.journal_dir).CheckOK();
}

TEST(RecoveryTest, CustomEngineServicesRecoverThroughRecoverWithEngine) {
  // Journals written by CreateWithEngine/Attach deployments must be
  // recoverable too — through the overloads that accept a caller-built
  // engine (identically reconstructed, as byte-identity always required).
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(19, 40);
  TempDir dir;

  ServiceOptions options;
  options.journal_dir = dir.path();
  constexpr int64_t kCrashAt = 8;
  {
    auto service = TrajectoryService::CreateWithEngine(
        states, std::make_unique<RetraSynEngine>(states, BaseConfig()),
        options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveRounds(service.value()->session(), traces, 0, kCrashAt);
  }

  auto recovered = TrajectoryService::RecoverWithEngine(
      states, std::make_unique<RetraSynEngine>(states, BaseConfig()), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveRounds(recovered.value()->session(), traces, kCrashAt, kHorizon);

  RetraSynEngine reference_engine(states, BaseConfig());
  auto reference = TrajectoryService::Attach(states, &reference_engine);
  ASSERT_TRUE(reference.ok());
  DriveRounds(reference.value()->session(), traces, 0, kHorizon);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());

  // RecoverAttached drives the same path for caller-owned engines.
  recovered.value().reset();
  RetraSynEngine attached_engine(states, BaseConfig());
  auto reattached =
      TrajectoryService::RecoverAttached(states, &attached_engine, options);
  ASSERT_TRUE(reattached.ok()) << reattached.status().ToString();
  EXPECT_EQ(reattached.value()->rounds_closed(), kHorizon);
}

TEST(RecoveryTest, RecoverUnderAChangedDeploymentIsRefused) {
  // Replay under a different grid or engine config would still *accept*
  // most events — just resolve them to different cells — so the deployment
  // fingerprint in the segment headers must turn silent divergence into a
  // hard error.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(3, 10);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, 4);
  }

  RetraSynConfig reseeded = journaled;
  reseeded.seed = journaled.seed + 1;
  EXPECT_EQ(TrajectoryService::Recover(states, reseeded).status().code(),
            StatusCode::kFailedPrecondition);

  const Grid finer(box, 6);
  const StateSpace finer_states(finer);
  EXPECT_EQ(TrajectoryService::Recover(finer_states, journaled).status().code(),
            StatusCode::kFailedPrecondition);

  // The unchanged deployment still recovers.
  EXPECT_TRUE(TrajectoryService::Recover(states, journaled).ok());
}

TEST(RecoveryTest, RecoverRequiresAJournalDir) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  auto recovered = TrajectoryService::Recover(states, BaseConfig());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, CorruptionBeforeTheFinalSegmentFailsRecovery) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  const auto traces = MakeWorkload(13, 100);
  TempDir dir;

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir.path();
  journaled.journal_segment_bytes = JournalOptions::kMinSegmentBytes;
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok());
    DriveRounds(service.value()->session(), traces, 0, kHorizon);
  }
  // Flip one byte mid-way through the first of several segments.
  const std::string first = dir.path() + "/" + JournalWriter::SegmentFileName(0);
  auto contents = ReadFileToString(first);
  ASSERT_TRUE(contents.ok());
  std::string data = contents.value();
  auto segments = ListDirectory(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_GT(segments.value().size(), 1u);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x10);
  {
    std::FILE* f = std::fopen(first.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
  }
  auto recovered = TrajectoryService::Recover(states, journaled);
  EXPECT_EQ(recovered.status().code(), StatusCode::kIOError);
}

TEST(RecoveryTest, PoisonedJournalBlocksTheSessionWithoutCrashing) {
  // Force a real journal I/O failure by deleting the journal directory out
  // from under the writer: appends to the open segment still land in the
  // orphaned inode, but the next segment rotation cannot create a file, and
  // from that point every session entry point must refuse work with the
  // sticky error — no aborts, no silent divergence.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;
  const std::string dir = parent.path() + "/journal";

  RetraSynConfig journaled = BaseConfig();
  journaled.journal_dir = dir;
  journaled.journal_segment_bytes = JournalOptions::kMinSegmentBytes;
  auto service = TrajectoryService::Create(states, journaled);
  ASSERT_TRUE(service.ok());
  IngestSession& session = service.value()->session();

  // Pull the directory out from under the writer.
  ASSERT_TRUE(RemoveDirTree(dir).ok());

  // Drive rounds until the rotation hits the missing directory.
  Status failure;
  for (int64_t t = 0; t < 400 && failure.ok(); ++t) {
    for (uint64_t u = 0; u < 4 && failure.ok(); ++u) {
      failure = t == 0 ? session.Enter(u, Point{50.0 * (u + 1), 100.0})
                       : session.Move(u, Point{50.0 * (u + 1), 100.0});
    }
    if (failure.ok()) failure = session.Tick();
  }
  ASSERT_FALSE(failure.ok()) << "rotation over a deleted dir must fail";
  EXPECT_EQ(failure.code(), StatusCode::kIOError);

  // Sticky: everything is refused, nothing aborts, state stays queryable.
  const int64_t rounds = service.value()->rounds_closed();
  EXPECT_FALSE(session.Enter(99, Point{10, 10}).ok());
  EXPECT_FALSE(session.Move(0, Point{10, 10}).ok());
  EXPECT_FALSE(session.Quit(0).ok());
  EXPECT_FALSE(session.Tick().ok());
  EXPECT_EQ(service.value()->rounds_closed(), rounds);
}

}  // namespace
}  // namespace retrasyn
