// TrajectoryService: validated construction, non-destructive snapshot
// releases while the stream is open, and push-based sink notification.

#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "service/trajectory_service.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/ldp_ids.h"
#include "common/rng.h"
#include "core/release_server.h"
#include "metrics/queries.h"
#include "service/replay.h"
#include "stream/feeder.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct ServiceFixture {
  ServiceFixture()
      : grid_owner(MakeEnvGrid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 4)),
        grid(*grid_owner),
        states(grid) {
    RandomWalkConfig config;
    config.num_timestamps = 50;
    config.initial_users = 200;
    config.mean_arrivals = 12.0;
    Rng rng(41);
    db = GenerateRandomWalkStreams(config, rng);
  }

  RetraSynConfig EngineConfig() const {
    RetraSynConfig config;
    config.epsilon = 1.0;
    config.window = 10;
    config.division = DivisionStrategy::kPopulation;
    config.lambda = 12.0;
    config.seed = 6;
    return config;
  }

  std::unique_ptr<SpatialGrid> grid_owner;
  const SpatialGrid& grid;
  StateSpace states;
  StreamDatabase db;
};

TEST(TrajectoryServiceTest, CreateRejectsInvalidConfig) {
  const ServiceFixture fx;
  RetraSynConfig config = fx.EngineConfig();
  config.epsilon = -1.0;
  auto service = TrajectoryService::Create(fx.states, config);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(service.status().message().find("epsilon"), std::string::npos);
}

TEST(TrajectoryServiceTest, SnapshotBeforeFirstRoundFails) {
  const ServiceFixture fx;
  auto service = TrajectoryService::Create(fx.states, fx.EngineConfig());
  ASSERT_TRUE(service.ok());
  auto snapshot = service.value()->SnapshotRelease();
  EXPECT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TrajectoryServiceTest, SnapshotIsNonDestructiveAndGrows) {
  const ServiceFixture fx;
  auto service = TrajectoryService::Create(fx.states, fx.EngineConfig());
  ASSERT_TRUE(service.ok());
  TrajectoryService& svc = *service.value();

  // Ingest half the stream, snapshot twice, ingest the rest, snapshot again.
  const int64_t half = fx.db.num_timestamps() / 2;
  IngestSession& session = svc.session();
  for (int64_t t = 0; t < fx.db.num_timestamps(); ++t) {
    for (uint32_t idx = 0; idx < fx.db.streams().size(); ++idx) {
      const UserStream& s = fx.db.streams()[idx];
      if (s.enter_time == t) {
        ASSERT_TRUE(session.Enter(idx, s.points.front()).ok());
      } else if (s.ActiveAt(t)) {
        ASSERT_TRUE(session.Move(idx, s.At(t)).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
    if (t + 1 == half) {
      auto first = svc.SnapshotRelease();
      auto second = svc.SnapshotRelease();
      ASSERT_TRUE(first.ok());
      ASSERT_TRUE(second.ok());
      // Snapshotting twice yields the same release; the stream stays open.
      EXPECT_EQ(first.value().TotalPoints(), second.value().TotalPoints());
      EXPECT_EQ(first.value().streams().size(),
                second.value().streams().size());
      EXPECT_EQ(first.value().num_timestamps(), half);
      EXPECT_GT(first.value().TotalPoints(), 0u);
    }
  }
  auto final_snapshot = svc.SnapshotRelease();
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_EQ(final_snapshot.value().num_timestamps(), fx.db.num_timestamps());
  // The mid-stream snapshot cannot exceed the final one.
  EXPECT_GT(final_snapshot.value().TotalPoints(), 0u);
  EXPECT_EQ(svc.rounds_closed(), fx.db.num_timestamps());
}

TEST(TrajectoryServiceTest, SnapshotHorizonMustCoverClosedRounds) {
  const ServiceFixture fx;
  auto service = TrajectoryService::Create(fx.states, fx.EngineConfig());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(ReplayDatabase(fx.db, *service.value()).ok());
  auto too_short = service.value()->SnapshotRelease(3);
  EXPECT_FALSE(too_short.ok());
  EXPECT_EQ(too_short.status().code(), StatusCode::kInvalidArgument);
  auto padded = service.value()->SnapshotRelease(fx.db.num_timestamps() + 10);
  EXPECT_TRUE(padded.ok());
}

TEST(TrajectoryServiceTest, SubscribedReleaseServerMatchesPostHocRelease) {
  // The push-based sink sees exactly the live view the legacy polling loop
  // saw: its answers equal the post-hoc DensityIndex of the release.
  const ServiceFixture fx;
  auto service = TrajectoryService::Create(fx.states, fx.EngineConfig());
  ASSERT_TRUE(service.ok());
  ReleaseServer server(fx.grid);
  service.value()->AddSink(&server);
  ASSERT_TRUE(ReplayDatabase(fx.db, *service.value()).ok());

  auto released = service.value()->SnapshotRelease();
  ASSERT_TRUE(released.ok());
  const DensityIndex post_hoc(released.value(), fx.grid);
  ASSERT_EQ(server.horizon(), fx.db.num_timestamps());
  for (int64_t t = 0; t < server.horizon(); ++t) {
    EXPECT_EQ(server.DensityAt(t), post_hoc.DensityAt(t)) << "t=" << t;
    EXPECT_EQ(server.ActiveAt(t), post_hoc.TotalPointsIn(t, t + 1))
        << "t=" << t;
  }
}

TEST(TrajectoryServiceTest, MidStreamSubscriberSeesZerosForMissedRounds) {
  // A sink added after some rounds closed must still index round t at t,
  // answering zeros for the rounds it missed.
  const ServiceFixture fx;
  auto service = TrajectoryService::Create(fx.states, fx.EngineConfig());
  ASSERT_TRUE(service.ok());
  IngestSession& session = service.value()->session();
  ASSERT_TRUE(session.AdvanceTo(5).ok());  // 5 empty rounds, no subscriber

  ReleaseServer late(fx.grid);
  service.value()->AddSink(&late);
  for (int64_t t = 5; t < 15; ++t) {
    for (uint32_t idx = 0; idx < fx.db.streams().size(); ++idx) {
      const UserStream& s = fx.db.streams()[idx];
      if (s.enter_time == t) {
        ASSERT_TRUE(session.Enter(idx, s.points.front()).ok());
      } else if (s.ActiveAt(t) && s.enter_time < t && s.enter_time >= 5) {
        ASSERT_TRUE(session.Move(idx, s.At(t)).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
  ASSERT_EQ(late.horizon(), 15);
  for (int64_t t = 0; t < 5; ++t) {
    EXPECT_EQ(late.ActiveAt(t), 0u) << "t=" << t;
  }
  // Rounds ingested after subscription land at their own timestamps.
  EXPECT_GT(late.ActiveAt(14), 0u);
}

TEST(TrajectoryServiceTest, ReplayRequiresFreshService) {
  const ServiceFixture fx;
  auto service = TrajectoryService::Create(fx.states, fx.EngineConfig());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service.value()->session().Tick().ok());
  const Status st = ReplayDatabase(fx.db, *service.value());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(TrajectoryServiceTest, ValidatesNumThreads) {
  const ServiceFixture fx;
  RetraSynConfig config = fx.EngineConfig();
  config.num_threads = -2;
  auto service = TrajectoryService::Create(fx.states, config);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(service.status().message().find("num_threads"),
            std::string::npos);

  config.num_threads = RetraSynConfig::kMaxThreads + 1;
  service = TrajectoryService::Create(fx.states, config);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);

  // 0 = auto (hardware / shared pool size) is valid.
  config.num_threads = 0;
  service = TrajectoryService::Create(fx.states, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
}

TEST(TrajectoryServiceTest, SessionsShareOneThreadPool) {
  // Multi-tenant deployments run one pool for several sessions: both engines
  // must use the caller-provided pool instead of spawning their own workers.
  const ServiceFixture fx;
  auto pool = std::make_shared<ThreadPool>(2);
  RetraSynConfig config = fx.EngineConfig();
  config.num_threads = 2;
  config.thread_pool = pool;
  auto a = TrajectoryService::Create(fx.states, config);
  auto b = TrajectoryService::Create(fx.states, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->retrasyn_engine()->thread_pool(), pool.get());
  EXPECT_EQ(b.value()->retrasyn_engine()->thread_pool(), pool.get());
  // Both sessions stream through the shared pool without interference.
  ASSERT_TRUE(ReplayDatabase(fx.db, *a.value()).ok());
  ASSERT_TRUE(ReplayDatabase(fx.db, *b.value()).ok());
  auto ra = a.value()->SnapshotRelease();
  auto rb = b.value()->SnapshotRelease();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Identical configs + identical input + one pool: identical releases.
  ASSERT_EQ(ra.value().streams().size(), rb.value().streams().size());
  EXPECT_EQ(ra.value().TotalPoints(), rb.value().TotalPoints());
}

TEST(TrajectoryServiceTest, WrapsBaselineEnginesToo) {
  // The service layer is engine-agnostic: the LDP-IDS baselines stream
  // through the same sessions and snapshots.
  const ServiceFixture fx;
  LdpIdsConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.method = LdpIdsMethod::kLPD;
  config.seed = 2;
  auto service = TrajectoryService::CreateWithEngine(
      fx.states, std::make_unique<LdpIdsEngine>(fx.states, config));
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service.value()->retrasyn_engine(), nullptr);
  ASSERT_TRUE(ReplayDatabase(fx.db, *service.value()).ok());
  auto released = service.value()->SnapshotRelease();
  ASSERT_TRUE(released.ok());
  EXPECT_GT(released.value().TotalPoints(), 0u);
}

}  // namespace
}  // namespace retrasyn
