// Acceptance tests for the checkpoint + journal compaction subsystem: a
// checkpointed service must recover byte-identically to full-journal replay
// (and to an uninterrupted run), survive corrupted checkpoints by falling
// back, refuse foreign deployments loudly, poison cleanly on checkpoint I/O
// failure without endangering the journal, and keep snapshots complete while
// closed-stream history lives in spill files.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_format.h"
#include "common/file_io.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "journal/journal_compaction.h"
#include "journal/journal_writer.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-ckpt-recovery-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() {
    // RemoveDirTree is single-level; clear the known subdirectories first.
    for (const char* sub : {"/journal", "/ckpt", "/ckpt2"}) {
      RemoveDirTree(path_ + sub).CheckOK();
    }
    RemoveDirTree(path_).CheckOK();
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

RetraSynConfig BaseConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 6.0;
  config.seed = 7;
  return config;
}

/// BaseConfig plus durability: journal under <parent>/journal, checkpoints
/// under <parent>/ckpt, every 5 rounds.
RetraSynConfig CheckpointedConfig(const std::string& parent) {
  RetraSynConfig config = BaseConfig();
  config.journal_dir = parent + "/journal";
  config.checkpoint_dir = parent + "/ckpt";
  config.checkpoint_every_rounds = 5;
  return config;
}

/// Drives rounds [from, to) of a steady-churn workload (same shape as
/// recovery_test.cc): `churn` fresh users enter per round, each living
/// live/churn rounds. Pure function of t, so it resumes on a recovered
/// service.
void DriveChurnRounds(IngestSession& session, const SpatialGrid& grid, int64_t from,
                      int64_t to, int64_t live, int64_t churn) {
  const int64_t lifetime = live / churn;
  const int64_t cells = static_cast<int64_t>(grid.NumCells());
  auto at = [&](int64_t u, int64_t t) {
    return grid.CellCenter(static_cast<CellId>((u * 7 + t) % cells));
  };
  for (int64_t t = from; t < to; ++t) {
    const int64_t first = std::max<int64_t>(0, (t - lifetime) * churn);
    for (int64_t u = first; u < (t + 1) * churn; ++u) {
      const int64_t entered = u / churn;
      if (entered == t) {
        ASSERT_TRUE(session.Enter(static_cast<uint64_t>(u), at(u, t)).ok());
      } else if (t < entered + lifetime) {
        ASSERT_TRUE(session.Move(static_cast<uint64_t>(u), at(u, t)).ok());
      } else if (t == entered + lifetime) {
        ASSERT_TRUE(session.Quit(static_cast<uint64_t>(u)).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
}

void ExpectSameRelease(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  ASSERT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << "stream " << i;
  }
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Copies every regular file of \p src into \p dst (flat directories only).
void CopyDir(const std::string& src, const std::string& dst) {
  ASSERT_TRUE(CreateDirIfMissing(dst).ok());
  auto names = ListDirectory(src);
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  for (const std::string& name : names.value()) {
    auto contents = ReadFileToString(src + "/" + name);
    ASSERT_TRUE(contents.ok()) << name;
    WriteBytes(dst + "/" + name, contents.value());
  }
}

bool FileExists(const std::string& path) { return FileSize(path).ok(); }

TEST(CheckpointRecoveryTest, KillRecoverContinueByteIdenticalInline) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;
  constexpr int64_t kLive = 20, kChurn = 4, kCrashAt = 32, kRounds = 44;

  const RetraSynConfig config = CheckpointedConfig(parent.path());
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_NE(service.value()->checkpoint(), nullptr);
    DriveChurnRounds(service.value()->session(), grid, 0, kCrashAt, kLive,
                     kChurn);
    ASSERT_TRUE(service.value()->Drain().ok());
    // Checkpoints landed (rounds 5..30 due; retention keeps the newest 2).
    EXPECT_GE(service.value()->checkpoint()->checkpoints_written(), 6u);
    EXPECT_EQ(service.value()->checkpoint()->last_checkpoint_round(), 30);
    EXPECT_GT(service.value()->checkpoint()->streams_spilled(), 0u);
  }

  auto recovered = TrajectoryService::Recover(states, config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  ASSERT_NE(recovered.value()->checkpoint(), nullptr);
  EXPECT_EQ(recovered.value()->checkpoint()->last_checkpoint_round(), 30);
  DriveChurnRounds(recovered.value()->session(), grid, kCrashAt, kRounds,
                   kLive, kChurn);
  ASSERT_TRUE(recovered.value()->Drain().ok());

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveChurnRounds(reference.value()->session(), grid, 0, kRounds, kLive,
                   kChurn);

  // Index lifecycle matches the uninterrupted run exactly...
  const IngestSession& got_session = recovered.value()->session();
  const IngestSession& want_session = reference.value()->session();
  EXPECT_EQ(got_session.index_high_water(), want_session.index_high_water());
  EXPECT_EQ(got_session.num_free_indices(), want_session.num_free_indices());
  EXPECT_EQ(got_session.num_retiring_indices(),
            want_session.num_retiring_indices());
  // ...and the released bytes — served partly from spill files — are
  // identical to the spill-less uninterrupted run.
  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());

  // A second recovery (spanning both incarnations' segments) agrees too.
  recovered.value().reset();
  auto again = TrajectoryService::Recover(states, config);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again.value()->rounds_closed(), kRounds);
  auto got2 = again.value()->SnapshotRelease();
  ASSERT_TRUE(got2.ok());
  ExpectSameRelease(got2.value(), want.value());
}

TEST(CheckpointRecoveryTest, AsyncCheckpointedRecoverMatchesInline) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;
  constexpr int64_t kLive = 16, kChurn = 4, kCrashAt = 23, kRounds = 34;

  RetraSynConfig config = CheckpointedConfig(parent.path());
  config.sync_policy = SyncPolicy::kAsync;
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, kCrashAt, kLive,
                     kChurn);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  auto recovered = TrajectoryService::Recover(states, config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  DriveChurnRounds(recovered.value()->session(), grid, kCrashAt, kRounds,
                   kLive, kChurn);
  ASSERT_TRUE(recovered.value()->Drain().ok());

  auto reference = TrajectoryService::Create(states, BaseConfig());  // inline
  ASSERT_TRUE(reference.ok());
  DriveChurnRounds(reference.value()->session(), grid, 0, kRounds, kLive,
                   kChurn);

  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(CheckpointRecoveryTest, CompactionRetiresThePrefixAndRecoveryHolds) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;
  constexpr int64_t kLive = 20, kChurn = 4, kRounds = 60;

  RetraSynConfig config = CheckpointedConfig(parent.path());
  config.checkpoint_every_rounds = 10;
  config.journal_segment_bytes = JournalOptions::kMinSegmentBytes;
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, kRounds, kLive,
                     kChurn);
    ASSERT_TRUE(service.value()->Drain().ok());
    // Compaction actually retired sealed prefix segments and declared the
    // new base.
    EXPECT_GT(service.value()->checkpoint()->segments_retired(), 0u);
  }
  EXPECT_TRUE(FileExists(config.journal_dir + "/" + kJournalBaseFileName));
  EXPECT_FALSE(
      FileExists(config.journal_dir + "/" + JournalWriter::SegmentFileName(0)));

  // Full replay of the compacted journal is impossible — recovery without a
  // checkpoint must say so, not silently serve a truncated history.
  {
    RetraSynConfig no_checkpoint = config;
    no_checkpoint.checkpoint_every_rounds = 0;
    no_checkpoint.checkpoint_dir.clear();
    auto refused = TrajectoryService::Recover(states, no_checkpoint);
    EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
  }

  auto recovered = TrajectoryService::Recover(states, config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kRounds);

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveChurnRounds(reference.value()->session(), grid, 0, kRounds, kLive,
                   kChurn);
  auto got = recovered.value()->SnapshotRelease();
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(CheckpointRecoveryTest, TruncatedNewestCheckpointFallsBackToPrevious) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;
  constexpr int64_t kLive = 8, kChurn = 2, kRounds = 12;

  RetraSynConfig config = CheckpointedConfig(parent.path());
  config.checkpoint_every_rounds = 4;  // checkpoints at 4, 8, 12; retain 8, 12
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, kRounds, kLive,
                     kChurn);
    ASSERT_TRUE(service.value()->Drain().ok());
    ASSERT_EQ(service.value()->checkpoint()->last_checkpoint_round(), 12);
  }

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveChurnRounds(reference.value()->session(), grid, 0, kRounds, kLive,
                   kChurn);
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(want.ok());

  const std::string newest = CheckpointFileName(12);
  auto full = ReadFileToString(config.checkpoint_dir + "/" + newest);
  ASSERT_TRUE(full.ok());
  const std::string& bytes = full.value();
  ASSERT_GT(bytes.size(), 100u);

  // Truncate the newest checkpoint at EVERY byte offset: recovery must
  // always succeed by deleting it and falling back to checkpoint 8, and the
  // recovered state must stay byte-identical to the uninterrupted run.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    TempDir work;
    RetraSynConfig damaged = CheckpointedConfig(work.path());
    damaged.checkpoint_every_rounds = 4;
    CopyDir(config.journal_dir, damaged.journal_dir);
    CopyDir(config.checkpoint_dir, damaged.checkpoint_dir);
    WriteBytes(damaged.checkpoint_dir + "/" + newest, bytes.substr(0, cut));

    auto recovered = TrajectoryService::Recover(states, damaged);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered.value()->rounds_closed(), kRounds) << "cut=" << cut;
    // The damaged newest checkpoint was discarded; the previous one carried
    // recovery.
    EXPECT_EQ(recovered.value()->checkpoint()->last_checkpoint_round(), 8)
        << "cut=" << cut;
    EXPECT_FALSE(FileExists(damaged.checkpoint_dir + "/" + newest))
        << "cut=" << cut;
    // Byte-identity on a sample of cuts (every cut costs a full snapshot).
    if (cut % 41 == 0 || cut + 1 == bytes.size()) {
      auto got = recovered.value()->SnapshotRelease();
      ASSERT_TRUE(got.ok()) << "cut=" << cut;
      ExpectSameRelease(got.value(), want.value());
    }
  }
}

TEST(CheckpointRecoveryTest, ValidForeignCheckpointIsRefusedLoudly) {
  // A checkpoint that is structurally INTACT but stamped by a different
  // deployment must fail recovery with FailedPrecondition — never silently
  // fall back to replay (the satellite requirement: no silent fallback).
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;

  const RetraSynConfig config = CheckpointedConfig(parent.path());
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, 10, 8, 2);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  // Re-frame the newest checkpoint under a different fingerprint, leaving
  // its body bit-identical (so every structural check still passes).
  const std::string path = config.checkpoint_dir + "/" + CheckpointFileName(10);
  uint64_t fingerprint = 0;
  auto body = ReadFramedFile(path, kCheckpointMagic, &fingerprint);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  ASSERT_TRUE(WriteFramedFile(config.checkpoint_dir, CheckpointFileName(10),
                              kCheckpointMagic, fingerprint + 1, body.value())
                  .ok());

  auto refused = TrajectoryService::Recover(states, config);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // The foreign checkpoint was not deleted — refusal is diagnosable.
  EXPECT_TRUE(FileExists(path));
}

TEST(CheckpointRecoveryTest, ChangedDeploymentIsRefusedLoudly) {
  // Changing the grid, an engine-config field, or the recycling flag between
  // the crash and the recovery must refuse, not replay-and-diverge.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;

  const RetraSynConfig config = CheckpointedConfig(parent.path());
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, 10, 8, 2);
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  RetraSynConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  EXPECT_EQ(TrajectoryService::Recover(states, reseeded).status().code(),
            StatusCode::kFailedPrecondition);

  RetraSynConfig no_recycling = config;
  no_recycling.recycle_stream_indices = false;
  EXPECT_EQ(TrajectoryService::Recover(states, no_recycling).status().code(),
            StatusCode::kFailedPrecondition);

  const Grid finer(box, 6);
  const StateSpace finer_states(finer);
  EXPECT_EQ(TrajectoryService::Recover(finer_states, config).status().code(),
            StatusCode::kFailedPrecondition);

  // The unchanged deployment still recovers.
  EXPECT_TRUE(TrajectoryService::Recover(states, config).ok());
}

TEST(CheckpointRecoveryTest, CheckpointDirDeletedMidRunPoisonsTicksOnly) {
  // The satellite regression: deleting the checkpoint directory mid-run must
  // fail the next Tick cleanly (sticky, no aborts), leave the journal intact
  // and snapshots complete, and the deployment fully recoverable.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;
  constexpr int64_t kLive = 8, kChurn = 2;

  RetraSynConfig config = CheckpointedConfig(parent.path());
  config.checkpoint_every_rounds = 3;
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  DriveChurnRounds(service.value()->session(), grid, 0, 2, kLive, kChurn);

  // Pull the checkpoint directory out from under the worker.
  ASSERT_TRUE(RemoveDirTree(config.checkpoint_dir).ok());

  // Drive until the due checkpoint's write failure surfaces on a Tick. The
  // workload itself stays valid (Moves only), so the only failure mode is
  // the poisoned checkpoint subsystem.
  IngestSession& session = service.value()->session();
  Status failure;
  for (int64_t t = 0; t < 100 && failure.ok(); ++t) {
    for (uint64_t u = 0; u < 4 && failure.ok(); ++u) {
      failure = session.Move(u, grid.CellCenter(0));
    }
    if (failure.ok()) failure = session.Tick();
  }
  ASSERT_FALSE(failure.ok()) << "a deleted checkpoint dir must poison Tick";
  EXPECT_EQ(failure.code(), StatusCode::kIOError);

  // Sticky: further Ticks are refused with the same error, rounds stop.
  const int64_t rounds = service.value()->rounds_closed();
  EXPECT_EQ(session.Tick().code(), StatusCode::kIOError);
  EXPECT_EQ(service.value()->rounds_closed(), rounds);
  EXPECT_EQ(service.value()->Drain().code(), StatusCode::kIOError);

  // Snapshots stay complete: streams taken for spilling before the failure
  // are still served from memory.
  auto poisoned_snapshot = service.value()->SnapshotRelease();
  ASSERT_TRUE(poisoned_snapshot.ok()) << poisoned_snapshot.status().ToString();

  auto reference = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(reference.ok());
  DriveChurnRounds(reference.value()->session(), grid, 0, 2, kLive, kChurn);
  {
    IngestSession& ref_session = reference.value()->session();
    for (int64_t t = 0; t < rounds - 2; ++t) {
      for (uint64_t u = 0; u < 4; ++u) {
        ASSERT_TRUE(ref_session.Move(u, grid.CellCenter(0)).ok());
      }
      ASSERT_TRUE(ref_session.Tick().ok());
    }
  }
  auto want = reference.value()->SnapshotRelease();
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(poisoned_snapshot.value(), want.value());

  // The journal never suffered: recovery into a fresh checkpoint dir
  // reproduces every durable round byte for byte.
  service.value().reset();
  RetraSynConfig recover_config = config;
  recover_config.checkpoint_dir = parent.path() + "/ckpt2";
  auto recovered = TrajectoryService::Recover(states, recover_config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->rounds_closed(), rounds);
  auto got = recovered.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(CheckpointRecoveryTest, OrphanedTmpFilesAreCleanedUpOnRecovery) {
  // A crash mid-compaction (or mid-checkpoint) leaves `*.tmp` files that
  // never renamed into place; both scanners must delete them and carry on.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;

  const RetraSynConfig config = CheckpointedConfig(parent.path());
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, 10, 8, 2);
    ASSERT_TRUE(service.value()->Drain().ok());
  }
  WriteBytes(config.checkpoint_dir + "/" + CheckpointFileName(15) + ".tmp",
             "torn checkpoint");
  WriteBytes(config.checkpoint_dir + "/" + HistoryFileName(15) + ".tmp",
             "torn history");
  WriteBytes(config.journal_dir + "/" + JournalWriter::SegmentFileName(9) +
                 ".tmp",
             "torn segment");
  WriteBytes(config.journal_dir + "/" + std::string(kJournalBaseFileName) +
                 ".tmp",
             "torn base");

  auto recovered = TrajectoryService::Recover(states, config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->rounds_closed(), 10);
  for (const std::string& dir : {config.checkpoint_dir, config.journal_dir}) {
    auto names = ListDirectory(dir);
    ASSERT_TRUE(names.ok());
    for (const std::string& name : names.value()) {
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << dir << "/" << name;
    }
  }
}

TEST(CheckpointRecoveryTest, SpillOnAndOffReleaseIdenticalBytes) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir spill_parent;
  TempDir no_spill_parent;
  constexpr int64_t kLive = 12, kChurn = 3, kRounds = 20;

  RetraSynConfig spill = CheckpointedConfig(spill_parent.path());
  RetraSynConfig no_spill = CheckpointedConfig(no_spill_parent.path());
  no_spill.checkpoint_spill_history = false;

  auto a = TrajectoryService::Create(states, spill);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  DriveChurnRounds(a.value()->session(), grid, 0, kRounds, kLive, kChurn);
  ASSERT_TRUE(a.value()->Drain().ok());
  EXPECT_GT(a.value()->checkpoint()->streams_spilled(), 0u);
  EXPECT_TRUE(a.value()->checkpoint()->has_spilled_history());

  auto b = TrajectoryService::Create(states, no_spill);
  ASSERT_TRUE(b.ok());
  DriveChurnRounds(b.value()->session(), grid, 0, kRounds, kLive, kChurn);
  ASSERT_TRUE(b.value()->Drain().ok());
  EXPECT_EQ(b.value()->checkpoint()->streams_spilled(), 0u);
  EXPECT_FALSE(b.value()->checkpoint()->has_spilled_history());

  auto plain = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(plain.ok());
  DriveChurnRounds(plain.value()->session(), grid, 0, kRounds, kLive, kChurn);

  auto got_a = a.value()->SnapshotRelease();
  auto got_b = b.value()->SnapshotRelease();
  auto want = plain.value()->SnapshotRelease();
  ASSERT_TRUE(got_a.ok()) << got_a.status().ToString();
  ASSERT_TRUE(got_b.ok());
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got_a.value(), want.value());
  ExpectSameRelease(got_b.value(), want.value());
}

/// Minimal non-RetraSyn engine for the checkpointability guard.
class NullEngine : public StreamReleaseEngine {
 public:
  void Observe(const TimestampBatch&) override {}
  CellStreamSet SnapshotRelease(int64_t n) const override {
    return CellStreamSet(n);
  }
  std::vector<uint32_t> LiveDensity() const override { return {0}; }
  CellStreamSet Finish(int64_t n) override { return CellStreamSet(n); }
  std::string name() const override { return "null-engine"; }
};

TEST(CheckpointRecoveryTest, GuardsRefuseUncheckpointableConfigurations) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 3);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);
  TempDir parent;

  // Checkpointing without a journal is meaningless — a checkpoint only
  // bridges recovery to the journal suffix behind it.
  RetraSynConfig no_journal = BaseConfig();
  no_journal.checkpoint_dir = parent.path() + "/ckpt";
  no_journal.checkpoint_every_rounds = 5;
  EXPECT_EQ(TrajectoryService::Create(states, no_journal).status().code(),
            StatusCode::kInvalidArgument);

  // ...and without a checkpoint directory there is nowhere to write.
  RetraSynConfig no_dir = BaseConfig();
  no_dir.journal_dir = parent.path() + "/journal";
  no_dir.checkpoint_every_rounds = 5;
  EXPECT_EQ(TrajectoryService::Create(states, no_dir).status().code(),
            StatusCode::kInvalidArgument);

  // Custom engines have no serializable state; the guard refuses instead of
  // crashing at the first due round.
  ServiceOptions options;
  options.journal_dir = parent.path() + "/journal";
  options.checkpoint_dir = parent.path() + "/ckpt";
  options.checkpoint_every_rounds = 5;
  EXPECT_EQ(TrajectoryService::CreateWithEngine(
                states, std::make_unique<NullEngine>(), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  NullEngine attached;
  EXPECT_EQ(TrajectoryService::Attach(states, &attached, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // A fresh Create must refuse a directory already holding checkpoints —
  // silently shadowing recoverable state is how deployments lose data.
  const RetraSynConfig config = CheckpointedConfig(parent.path());
  {
    auto service = TrajectoryService::Create(states, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    DriveChurnRounds(service.value()->session(), grid, 0, 10, 8, 2);
    ASSERT_TRUE(service.value()->Drain().ok());
  }
  EXPECT_EQ(TrajectoryService::Create(states, config).status().code(),
            StatusCode::kFailedPrecondition);
  // Recover remains the sanctioned way back in.
  EXPECT_TRUE(TrajectoryService::Recover(states, config).ok());
}

}  // namespace
}  // namespace retrasyn
