// Long-horizon churn soak: the regression suite for the unbounded-horizon
// resource leak. A service run under steady enter/quit churn at constant
// live population must keep its per-stream bookkeeping — the session's index
// space and the engine's dense status/report-slot vectors — bounded by
// O(peak live + one window of churn), not by the number of streams ever
// started. Also pins the recycling determinism contracts: released bytes are
// identical with recycling on/off and under Inline/Async round closing, and
// the retired-index flow delivered through the release pipeline matches the
// session's own accounting.
//
// Round count scales with RETRASYN_SOAK_ROUNDS (default 10000) so the TSan
// CI stress job can shrink it while the release job soaks the full horizon.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/engine.h"
#include "core/release_sink.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

int64_t SoakRounds() {
  const char* env = std::getenv("RETRASYN_SOAK_ROUNDS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return parsed;
  }
  return 10000;
}

constexpr int64_t kLive = 32;   ///< constant live population
constexpr int64_t kChurn = 4;   ///< streams quitting (and entering) per round
constexpr int kWindow = 4;

RetraSynConfig SoakConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = kWindow;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 8.0;
  config.seed = 11;
  return config;
}

/// Same steady-churn schedule as the recovery tests: `kChurn` fresh user-ids
/// per round, each stream living exactly kLive/kChurn rounds to its explicit
/// quit. Pure function of t.
void DriveChurnRound(IngestSession& session, const SpatialGrid& grid, int64_t t) {
  const int64_t lifetime = kLive / kChurn;
  const int64_t cells = static_cast<int64_t>(grid.NumCells());
  auto at = [&](int64_t u, int64_t round) {
    return grid.CellCenter(static_cast<CellId>((u * 7 + round) % cells));
  };
  const int64_t first = std::max<int64_t>(0, (t - lifetime) * kChurn);
  for (int64_t u = first; u < (t + 1) * kChurn; ++u) {
    const int64_t entered = u / kChurn;
    if (entered == t) {
      ASSERT_TRUE(session.Enter(static_cast<uint64_t>(u), at(u, t)).ok());
    } else if (t < entered + lifetime) {
      ASSERT_TRUE(session.Move(static_cast<uint64_t>(u), at(u, t)).ok());
    } else if (t == entered + lifetime) {
      ASSERT_TRUE(session.Quit(static_cast<uint64_t>(u)).ok());
    }
  }
  ASSERT_TRUE(session.Tick().ok());
}

void ExpectSameRelease(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  ASSERT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << "stream " << i;
  }
}

/// Records every delivered release (density + retired indices).
class RecordingSink : public ReleaseSink {
 public:
  Status OnRound(const RoundRelease& round) override {
    rounds_.push_back(round);
    return Status::OK();
  }
  const std::vector<RoundRelease>& rounds() const { return rounds_; }

 private:
  std::vector<RoundRelease> rounds_;
};

TEST(HorizonSoakTest, ChurnKeepsIndexSpaceAndDenseStateBounded) {
  const int64_t rounds = SoakRounds();
  const BoundingBox box{0.0, 0.0, 100.0, 100.0};
  const auto grid_owner = MakeEnvGrid(box, 2);  // tiny domain: the soak measures bookkeeping
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  auto service = TrajectoryService::Create(states, SoakConfig());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  IngestSession& session = service.value()->session();
  for (int64_t t = 0; t < rounds; ++t) {
    DriveChurnRound(session, grid, t);
    if (testing::Test::HasFatalFailure()) return;
  }

  // An index stays occupied from its stream's enter to one window past its
  // quit round, so the steady-state footprint is the live population plus
  // (window + 1 retirement round + 1 quit round) of churn. Everything beyond
  // that small constant pool would be the old leak coming back.
  const int64_t occupancy = kLive + kChurn * (kWindow + 2);
  EXPECT_GE(session.index_high_water(), static_cast<uint32_t>(kLive));
  EXPECT_LE(session.index_high_water(), static_cast<uint32_t>(2 * occupancy))
      << "index high-water grew past the steady-state pool: leak";
  EXPECT_LE(session.num_free_indices() + session.num_retiring_indices(),
            static_cast<size_t>(2 * occupancy));

  // The engine's dense bookkeeping is bounded by the high-water mark (plus
  // the geometric growth factor of EnsureUser), not by total streams.
  const RetraSynEngine* engine = service.value()->retrasyn_engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_LE(engine->dense_user_slots(),
            static_cast<size_t>(4 * occupancy));
  // Recycling really ran: nearly every started stream has been retired, and
  // without recycling this run would have minted ~started indices.
  const int64_t started = kChurn * rounds;
  EXPECT_GT(static_cast<int64_t>(engine->total_retired()),
            std::max<int64_t>(0, started - 4 * occupancy));
  if (rounds >= 1000) {
    EXPECT_LT(session.index_high_water(), static_cast<uint32_t>(started / 10));
  }
}

TEST(HorizonSoakTest, LegacyModeGrowsLinearlyProvingTheLeakExisted) {
  // Control experiment (short): with recycling off, the index high-water and
  // the dense engine state grow with every stream ever started.
  constexpr int64_t kRounds = 400;
  const BoundingBox box{0.0, 0.0, 100.0, 100.0};
  const auto grid_owner = MakeEnvGrid(box, 2);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  RetraSynConfig config = SoakConfig();
  config.recycle_stream_indices = false;
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok());
  IngestSession& session = service.value()->session();
  for (int64_t t = 0; t < kRounds; ++t) {
    DriveChurnRound(session, grid, t);
    if (testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(session.index_high_water(),
            static_cast<uint32_t>(kChurn * kRounds));
  EXPECT_GE(service.value()->retrasyn_engine()->dense_user_slots(),
            static_cast<size_t>(kChurn * kRounds - kLive));
}

TEST(HorizonSoakTest, ChurnReleaseByteIdenticalWithRecyclingOnAndOff) {
  // The A/B contract behind the default-on flag: recycled indices resolve to
  // dense slots indistinguishable from fresh ones, so the released bytes
  // must match the legacy cumulative assignment exactly.
  constexpr int64_t kRounds = 400;
  const BoundingBox box{0.0, 0.0, 100.0, 100.0};
  const auto grid_owner = MakeEnvGrid(box, 2);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  auto run = [&](bool recycle) {
    RetraSynConfig config = SoakConfig();
    config.recycle_stream_indices = recycle;
    auto service = TrajectoryService::Create(states, config);
    EXPECT_TRUE(service.ok());
    for (int64_t t = 0; t < kRounds; ++t) {
      DriveChurnRound(service.value()->session(), grid, t);
    }
    return std::move(service).value();
  };
  auto on = run(true);
  auto off = run(false);
  if (testing::Test::HasFatalFailure()) return;
  EXPECT_LT(on->session().index_high_water(),
            off->session().index_high_water() / 4);
  auto got = on->SnapshotRelease();
  auto want = off->SnapshotRelease();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

TEST(HorizonSoakTest, ChurnInlineVsAsyncByteIdenticalWithRecycling) {
  // Retirement must be a function of the batch sequence alone: the async
  // closer lags the ingest thread, so any dependence on close timing would
  // fork the index assignments. Releases, retired-index flow, and session
  // accounting must all match Inline exactly.
  constexpr int64_t kRounds = 300;
  const BoundingBox box{0.0, 0.0, 100.0, 100.0};
  const auto grid_owner = MakeEnvGrid(box, 2);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  auto run = [&](SyncPolicy policy, RecordingSink* sink) {
    RetraSynConfig config = SoakConfig();
    config.sync_policy = policy;
    config.round_queue_capacity = 4;
    auto service = TrajectoryService::Create(states, config);
    EXPECT_TRUE(service.ok());
    service.value()->AddSink(sink);
    for (int64_t t = 0; t < kRounds; ++t) {
      DriveChurnRound(service.value()->session(), grid, t);
    }
    EXPECT_TRUE(service.value()->Drain().ok());
    return std::move(service).value();
  };
  RecordingSink inline_sink, async_sink;
  auto inline_service = run(SyncPolicy::kInline, &inline_sink);
  auto async_service = run(SyncPolicy::kAsync, &async_sink);
  if (testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(inline_service->session().index_high_water(),
            async_service->session().index_high_water());
  EXPECT_EQ(inline_service->session().num_free_indices(),
            async_service->session().num_free_indices());

  ASSERT_EQ(inline_sink.rounds().size(), async_sink.rounds().size());
  uint64_t total_retired = 0;
  for (size_t i = 0; i < inline_sink.rounds().size(); ++i) {
    const RoundRelease& a = inline_sink.rounds()[i];
    const RoundRelease& b = async_sink.rounds()[i];
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.density, b.density) << "t=" << a.t;
    EXPECT_EQ(a.active, b.active) << "t=" << a.t;
    EXPECT_EQ(a.retired, b.retired) << "t=" << a.t;
    total_retired += a.retired.size();
    for (uint32_t index : a.retired) {
      EXPECT_LT(index, inline_service->session().index_high_water());
    }
  }
  // The engine's retired flow agrees with the session's bookkeeping: every
  // retired index was re-issuable, and the steady churn retired almost every
  // started stream.
  EXPECT_EQ(total_retired,
            inline_service->retrasyn_engine()->total_retired());
  EXPECT_GT(total_retired, static_cast<uint64_t>(kChurn * (kRounds / 2)));

  auto got = async_service->SnapshotRelease();
  auto want = inline_service->SnapshotRelease();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ExpectSameRelease(got.value(), want.value());
}

}  // namespace
}  // namespace retrasyn
