// Golden-bytes regression for the full service pipeline. The committed
// tests/golden/uniform_k4.golden was captured from the pre-SpatialGrid tree
// (uniform 4x4 grid, the pinned workload/config of golden_pipeline.h); every
// scenario here must keep producing those exact bytes, so any refactor of the
// grid seam, the engine, the sink path, or the durability stack that perturbs
// uniform-grid released bytes fails loudly. The quadtree scenario has no
// pre-refactor golden to pin against; it asserts the equally strong internal
// invariant — kill-and-recover byte-identity against an uninterrupted run —
// end to end through journal + checkpoints.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "core/release_server.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/state_space.h"
#include "golden/golden_pipeline.h"
#include "service/trajectory_service.h"

namespace retrasyn {
namespace {

using golden::DriveGoldenRounds;
using golden::GoldenConfig;
using golden::GoldenTrace;
using golden::GoldenWorkload;
using golden::kGoldenHorizon;
using golden::SerializeGoldenRelease;

const BoundingBox kBox{0.0, 0.0, 400.0, 400.0};

class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-golden-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() {
    for (const char* sub : {"/journal", "/ckpt"}) {
      RemoveDirTree(path_ + sub).CheckOK();
    }
    RemoveDirTree(path_).CheckOK();
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string LoadGoldenBytes() {
  auto bytes =
      ReadFileToString(std::string(RETRASYN_TESTDATA_DIR) +
                       "/golden/uniform_k4.golden");
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? bytes.value() : std::string();
}

TEST(GoldenReleaseTest, InlinePipelineMatchesPreRefactorBytes) {
  const std::string want = LoadGoldenBytes();
  ASSERT_FALSE(want.empty());

  const Grid grid(kBox, 4);
  const StateSpace states(grid);
  auto service = TrajectoryService::Create(states, GoldenConfig());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ReleaseServer server(grid);
  service.value()->AddSink(&server);
  ASSERT_TRUE(DriveGoldenRounds(service.value()->session(), GoldenWorkload(),
                                0, kGoldenHorizon));
  auto snapshot = service.value()->SnapshotRelease();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(SerializeGoldenRelease(server, snapshot.value()), want);
}

TEST(GoldenReleaseTest, AsyncPipelineMatchesPreRefactorBytes) {
  // The async round closer is a delivery mechanism, not a behavior: the
  // released bytes must equal the inline golden exactly.
  const std::string want = LoadGoldenBytes();
  ASSERT_FALSE(want.empty());

  const Grid grid(kBox, 4);
  const StateSpace states(grid);
  RetraSynConfig config = GoldenConfig();
  config.sync_policy = SyncPolicy::kAsync;
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ReleaseServer server(grid);
  service.value()->AddSink(&server);
  ASSERT_TRUE(DriveGoldenRounds(service.value()->session(), GoldenWorkload(),
                                0, kGoldenHorizon));
  ASSERT_TRUE(service.value()->Drain().ok());
  auto snapshot = service.value()->SnapshotRelease();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(SerializeGoldenRelease(server, snapshot.value()), want);
}

TEST(GoldenReleaseTest, KillAndRecoverMatchesPreRefactorBytes) {
  // Crash mid-run, recover from the journal, finish the workload: the
  // surviving downstream server (a separate process in production) plus the
  // recovered snapshot must still serialize to the pre-refactor golden.
  const std::string want = LoadGoldenBytes();
  ASSERT_FALSE(want.empty());

  const Grid grid(kBox, 4);
  const StateSpace states(grid);
  const auto traces = GoldenWorkload();
  TempDir dir;
  RetraSynConfig journaled = GoldenConfig();
  journaled.journal_dir = dir.path() + "/journal";
  constexpr int64_t kCrashAt = 12;

  ReleaseServer server(grid);  // outlives the crashed service
  {
    auto service = TrajectoryService::Create(states, journaled);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service.value()->AddSink(&server);
    ASSERT_TRUE(DriveGoldenRounds(service.value()->session(), traces, 0,
                                  kCrashAt));
  }

  auto recovered = TrajectoryService::Recover(states, journaled);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  recovered.value()->AddSink(&server);  // resumes at round kCrashAt
  ASSERT_TRUE(DriveGoldenRounds(recovered.value()->session(), traces, kCrashAt,
                                kGoldenHorizon));
  auto snapshot = recovered.value()->SnapshotRelease();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(SerializeGoldenRelease(server, snapshot.value()), want);
}

TEST(GoldenReleaseTest, QuadtreeKillAndRecoverIsByteIdentical) {
  // The quadtree backend end to end: ingest the golden workload, journal,
  // checkpoint, crash, recover, continue — and serialize byte-identically to
  // the uninterrupted quadtree run.
  auto grid_owner = MakeSpatialGrid(kBox, 4, GridBackend::kQuadtree);
  ASSERT_TRUE(grid_owner.ok()) << grid_owner.status().ToString();
  const SpatialGrid& grid = *grid_owner.value();
  ASSERT_EQ(grid.backend(), GridBackend::kQuadtree);
  const StateSpace states(grid);
  const auto traces = GoldenWorkload();
  TempDir dir;
  RetraSynConfig durable = GoldenConfig();
  durable.journal_dir = dir.path() + "/journal";
  durable.checkpoint_dir = dir.path() + "/ckpt";
  durable.checkpoint_every_rounds = 5;
  constexpr int64_t kCrashAt = 12;

  ReleaseServer server(grid);
  {
    auto service = TrajectoryService::Create(states, durable);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service.value()->AddSink(&server);
    ASSERT_TRUE(DriveGoldenRounds(service.value()->session(), traces, 0,
                                  kCrashAt));
    ASSERT_TRUE(service.value()->Drain().ok());
  }

  auto recovered = TrajectoryService::Recover(states, durable);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->rounds_closed(), kCrashAt);
  recovered.value()->AddSink(&server);
  ASSERT_TRUE(DriveGoldenRounds(recovered.value()->session(), traces, kCrashAt,
                                kGoldenHorizon));
  auto got_snapshot = recovered.value()->SnapshotRelease();
  ASSERT_TRUE(got_snapshot.ok()) << got_snapshot.status().ToString();
  const std::string got = SerializeGoldenRelease(server, got_snapshot.value());

  // The uninterrupted reference (no journal, no checkpoints).
  auto reference = TrajectoryService::Create(states, GoldenConfig());
  ASSERT_TRUE(reference.ok());
  ReleaseServer reference_server(grid);
  reference.value()->AddSink(&reference_server);
  ASSERT_TRUE(DriveGoldenRounds(reference.value()->session(), traces, 0,
                                kGoldenHorizon));
  auto want_snapshot = reference.value()->SnapshotRelease();
  ASSERT_TRUE(want_snapshot.ok());
  EXPECT_EQ(got,
            SerializeGoldenRelease(reference_server, want_snapshot.value()));

  // And the quadtree release is genuinely different bytes from the uniform
  // golden — the backend changes the discretization, never silently no-ops.
  EXPECT_NE(got, LoadGoldenBytes());
}

}  // namespace
}  // namespace retrasyn
