// Acceptance tests for the unified telemetry subsystem at the service layer:
// telemetry is observation-only (released bytes are byte-identical attached
// vs detached, under both sync policies), the snapshot reflects the actual
// pipeline activity, disabling yields an empty snapshot while the legacy
// ingest_stats() view keeps working, and sink failures land in the sticky
// first-failure record.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "service/trajectory_service.h"
#include "telemetry/prometheus_writer.h"
#include "telemetry/telemetry.h"

namespace retrasyn {
namespace {

struct DeviceTrace {
  int64_t enter_time = 0;
  std::vector<Point> points;
};

constexpr int64_t kHorizon = 20;

std::vector<DeviceTrace> MakeWorkload(uint64_t seed, int devices) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  Rng rng(seed);
  std::vector<DeviceTrace> traces;
  for (int i = 0; i < devices; ++i) {
    DeviceTrace trace;
    trace.enter_time = static_cast<int64_t>(rng.UniformInt(kHorizon - 2));
    const int64_t max_len = kHorizon - trace.enter_time;
    const int64_t len =
        1 + static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(std::min<int64_t>(max_len, 10))));
    Point p{box.min_x + rng.UniformDouble() * box.Width(),
            box.min_y + rng.UniformDouble() * box.Height()};
    for (int64_t k = 0; k < len; ++k) {
      trace.points.push_back(p);
      p = box.Clamp(Point{p.x + (rng.UniformDouble() - 0.5) * 80.0,
                          p.y + (rng.UniformDouble() - 0.5) * 80.0});
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

RetraSynConfig BaseConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 6.0;
  config.seed = 7;
  return config;
}

void DriveRounds(IngestSession& session, const std::vector<DeviceTrace>& traces,
                 int64_t from, int64_t to) {
  for (int64_t t = from; t < to; ++t) {
    for (uint64_t id = 0; id < traces.size(); ++id) {
      const DeviceTrace& trace = traces[id];
      const int64_t end =
          trace.enter_time + static_cast<int64_t>(trace.points.size());
      if (t == trace.enter_time) {
        ASSERT_TRUE(session.Enter(id, trace.points.front()).ok());
      } else if (t > trace.enter_time && t < end) {
        ASSERT_TRUE(session.Move(id, trace.points[t - trace.enter_time]).ok());
      } else if (t == end && end < kHorizon) {
        ASSERT_TRUE(session.Quit(id).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
}

void ExpectSameRelease(const CellStreamSet& a, const CellStreamSet& b) {
  ASSERT_EQ(a.num_timestamps(), b.num_timestamps());
  ASSERT_EQ(a.streams().size(), b.streams().size());
  ASSERT_EQ(a.TotalPoints(), b.TotalPoints());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells) << "stream " << i;
  }
}

const MetricSample* FindMetric(const TelemetrySnapshot& snap,
                               const std::string& name) {
  for (const MetricSample& sample : snap.metrics) {
    if (sample.name == name && sample.labels.empty()) return &sample;
  }
  return nullptr;
}

TEST(ServiceTelemetryTest, OnOffReleasesIdenticalBytesInline) {
  // The tentpole invariant: telemetry is pure observation. Attached or
  // detached, the released bytes are identical — same invariant class as
  // Inline-vs-Async and sharded-vs-unsharded.
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const StateSpace states(*grid_owner);
  const auto traces = MakeWorkload(51, 80);

  RetraSynConfig with = BaseConfig();
  with.enable_telemetry = true;
  RetraSynConfig without = BaseConfig();
  without.enable_telemetry = false;

  auto a = TrajectoryService::Create(states, with);
  auto b = TrajectoryService::Create(states, without);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  DriveRounds(a.value()->session(), traces, 0, kHorizon);
  DriveRounds(b.value()->session(), traces, 0, kHorizon);

  auto got = a.value()->SnapshotRelease();
  auto want = b.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ExpectSameRelease(got.value(), want.value());
}

TEST(ServiceTelemetryTest, OnOffReleasesIdenticalBytesAsync) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const StateSpace states(*grid_owner);
  const auto traces = MakeWorkload(53, 60);

  RetraSynConfig with = BaseConfig();
  with.sync_policy = SyncPolicy::kAsync;
  with.ingest_shards = 2;
  with.enable_telemetry = true;
  RetraSynConfig without = with;
  without.enable_telemetry = false;

  auto a = TrajectoryService::Create(states, with);
  auto b = TrajectoryService::Create(states, without);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  DriveRounds(a.value()->session(), traces, 0, kHorizon);
  DriveRounds(b.value()->session(), traces, 0, kHorizon);
  ASSERT_TRUE(a.value()->Drain().ok());
  ASSERT_TRUE(b.value()->Drain().ok());

  auto got = a.value()->SnapshotRelease();
  auto want = b.value()->SnapshotRelease();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ExpectSameRelease(got.value(), want.value());
}

TEST(ServiceTelemetryTest, SnapshotReflectsPipelineActivity) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const StateSpace states(*grid_owner);
  const auto traces = MakeWorkload(57, 60);

  auto service = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  DriveRounds(service.value()->session(), traces, 0, kHorizon);

  const TelemetrySnapshot snap = service.value()->telemetry();
  EXPECT_TRUE(snap.enabled);
  EXPECT_FALSE(snap.first_failure.failed);

  const MetricSample* sealed =
      FindMetric(snap, "retrasyn_ingest_rounds_sealed_total");
  ASSERT_NE(sealed, nullptr);
  EXPECT_EQ(sealed->value, static_cast<double>(kHorizon));

  const MetricSample* rounds =
      FindMetric(snap, "retrasyn_engine_rounds_observed_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value, static_cast<double>(kHorizon));

  const MetricSample* close = FindMetric(snap, "retrasyn_service_close_seconds");
  ASSERT_NE(close, nullptr);
  EXPECT_EQ(close->kind, MetricKind::kHistogram);
  EXPECT_EQ(close->histogram.count, static_cast<uint64_t>(kHorizon));
  EXPECT_GT(close->histogram.sum_seconds, 0.0);

  const MetricSample* live = FindMetric(snap, "retrasyn_synthesis_live_streams");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->value,
            static_cast<double>(service.value()->session().num_active_users()));

  // Every closed round has a lifecycle trace with the service-side phases.
  ASSERT_EQ(snap.recent_rounds.size(), static_cast<size_t>(kHorizon));
  EXPECT_EQ(snap.recent_rounds.front().round, 0);
  EXPECT_EQ(snap.recent_rounds.back().round, kHorizon - 1);
  for (const RoundSpanSnapshot& round : snap.recent_rounds) {
    EXPECT_GT(
        round.phase_seconds[static_cast<size_t>(RoundPhase::kClose)], 0.0)
        << "round " << round.round;
  }

  // The same snapshot renders to a scrapeable exposition.
  const std::string text = PrometheusText(snap);
  EXPECT_NE(text.find("# TYPE retrasyn_ingest_rounds_sealed_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("retrasyn_service_close_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("retrasyn_round_trace_last_round 19"),
            std::string::npos);
}

TEST(ServiceTelemetryTest, DisabledSnapshotIsEmptyButStatsViewSurvives) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const StateSpace states(*grid_owner);
  const auto traces = MakeWorkload(59, 40);

  RetraSynConfig config = BaseConfig();
  config.enable_telemetry = false;
  config.ingest_shards = 2;
  auto service = TrajectoryService::Create(states, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  DriveRounds(service.value()->session(), traces, 0, kHorizon);

  const TelemetrySnapshot snap = service.value()->telemetry();
  EXPECT_FALSE(snap.enabled);
  EXPECT_TRUE(snap.metrics.empty());
  EXPECT_TRUE(snap.recent_rounds.empty());
  EXPECT_FALSE(snap.first_failure.failed);
  EXPECT_EQ(PrometheusText(snap), "");

  // The legacy counters are a view over a session-private registry, so they
  // keep working with service telemetry off.
  const IngestStats stats = service.value()->ingest_stats();
  EXPECT_EQ(stats.rounds_sealed, static_cast<uint64_t>(kHorizon));
  ASSERT_EQ(stats.shards.size(), 2u);
  uint64_t accepted = 0;
  for (const IngestShardStats& shard : stats.shards) {
    accepted += shard.events_accepted;
  }
  EXPECT_GT(accepted, 0u);
}

class FailingSink : public ReleaseSink {
 public:
  Status OnRound(const RoundRelease& round) override {
    (void)round;
    return Status::Internal("sink exploded");
  }
};

TEST(ServiceTelemetryTest, InlineSinkFailureRecordsFirstFailure) {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  const auto grid_owner = MakeEnvGrid(box, 4);
  const StateSpace states(*grid_owner);

  auto service = TrajectoryService::Create(states, BaseConfig());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  FailingSink sink;
  service.value()->AddSink(&sink);

  IngestSession& session = service.value()->session();
  ASSERT_TRUE(session.Enter(1, Point{10, 10}).ok());
  // The failing delivery poisons the pipeline: the round stays committed and
  // the error surfaces, sticky, on the next Tick.
  (void)session.Tick();
  EXPECT_FALSE(session.Tick().ok());

  const FirstFailure failure = service.value()->telemetry().first_failure;
  EXPECT_TRUE(failure.failed);
  EXPECT_EQ(failure.component, "inline_delivery");
  EXPECT_EQ(failure.code, StatusCode::kInternal);
  EXPECT_EQ(failure.round, 0);
  EXPECT_NE(failure.message.find("sink exploded"), std::string::npos);
}

}  // namespace
}  // namespace retrasyn
