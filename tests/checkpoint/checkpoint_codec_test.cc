// Unit tests for the checkpoint wire format: body codecs must round-trip
// every field bit-exactly (doubles included), and the framed file layer must
// reject any structural damage — a torn tmp file, a flipped bit, a foreign
// magic — while reporting the stored fingerprint for the caller to police.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_format.h"
#include "common/file_io.h"

namespace retrasyn {
namespace {

class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-ckpt-codec-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() { RemoveDirTree(path_).CheckOK(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CellStream MakeStream(int64_t enter, std::vector<CellId> cells) {
  CellStream s;
  s.enter_time = enter;
  s.cells = std::move(cells);
  return s;
}

/// A state exercising every field with asymmetric, non-default values —
/// including doubles whose bit patterns a lossy codec would mangle.
CheckpointState MakeState() {
  CheckpointState state;
  state.round = 42;
  // The grid description is an opaque binary blob (backend byte, raw IEEE
  // doubles, packed split bits) — embedded NULs included.
  state.grid_describe = std::string("\x01grid\x00payload\xff", 14);
  state.engine.rng_state = {0x123456789abcdef0ull, 3, 0xffffffffffffffffull, 7};
  state.engine.collected_once = true;
  state.engine.total_reports = 12345;
  state.engine.model_freq = {0.125, 1e-9, 0.375, 0.0, 1.0 / 3.0};
  state.engine.model_initialized = true;
  state.engine.live = {MakeStream(40, {1, 2}), MakeStream(41, {0})};
  state.engine.finished = {MakeStream(3, {5, 5, 6})};
  state.engine.total_points = 99;
  state.engine.synth_initialized = true;
  state.engine.allocator_rounds_recorded = 17;
  state.engine.allocator_freq_history = {{0.5, 0.25}, {0.75, 0.125}};
  state.engine.allocator_ratio_history = {0.1, 0.9};
  state.engine.ledger_spends = {{40, 0.0625}, {41, 0.03125}};
  state.engine.ledger_window_sum = 0.09375;
  state.engine.ledger_last_t = 41;
  state.engine.ledger_max_window_spend = 0.25;
  state.engine.tracker_last_report = {{2, 39}, {9, 41}};
  state.engine.tracker_violation = true;
  state.engine.tracker_num_reports = 1234;
  state.engine.status = {0, 1, 2, 1, 0, 3};
  state.engine.report_slot = {-1, 4, 7};
  state.engine.reported_at = {{40, {0, 2}}, {41, {1}}};
  state.engine.quitted_at = {{39, {5}}};
  state.engine.total_retired = 6;
  state.session.open_round = 42;
  state.session.next_stream_index = 11;
  state.session.active = {{7, 0, 3}, {21, 4, 8}};
  state.session.quitted_at = {{39, {1, 2}}, {41, {9}}};
  state.session.free_indices = {10, 3};
  state.spill_rounds = {10, 20, 30};
  return state;
}

void ExpectSameState(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.grid_describe, b.grid_describe);
  EXPECT_EQ(a.engine.rng_state, b.engine.rng_state);
  EXPECT_EQ(a.engine.collected_once, b.engine.collected_once);
  EXPECT_EQ(a.engine.total_reports, b.engine.total_reports);
  EXPECT_EQ(a.engine.model_freq, b.engine.model_freq);
  EXPECT_EQ(a.engine.model_initialized, b.engine.model_initialized);
  ASSERT_EQ(a.engine.live.size(), b.engine.live.size());
  for (size_t i = 0; i < a.engine.live.size(); ++i) {
    EXPECT_EQ(a.engine.live[i].enter_time, b.engine.live[i].enter_time);
    EXPECT_EQ(a.engine.live[i].cells, b.engine.live[i].cells);
  }
  ASSERT_EQ(a.engine.finished.size(), b.engine.finished.size());
  for (size_t i = 0; i < a.engine.finished.size(); ++i) {
    EXPECT_EQ(a.engine.finished[i].enter_time, b.engine.finished[i].enter_time);
    EXPECT_EQ(a.engine.finished[i].cells, b.engine.finished[i].cells);
  }
  EXPECT_EQ(a.engine.total_points, b.engine.total_points);
  EXPECT_EQ(a.engine.synth_initialized, b.engine.synth_initialized);
  EXPECT_EQ(a.engine.allocator_rounds_recorded,
            b.engine.allocator_rounds_recorded);
  EXPECT_EQ(a.engine.allocator_freq_history, b.engine.allocator_freq_history);
  EXPECT_EQ(a.engine.allocator_ratio_history, b.engine.allocator_ratio_history);
  EXPECT_EQ(a.engine.ledger_spends, b.engine.ledger_spends);
  EXPECT_EQ(a.engine.ledger_window_sum, b.engine.ledger_window_sum);
  EXPECT_EQ(a.engine.ledger_last_t, b.engine.ledger_last_t);
  EXPECT_EQ(a.engine.ledger_max_window_spend,
            b.engine.ledger_max_window_spend);
  EXPECT_EQ(a.engine.tracker_last_report, b.engine.tracker_last_report);
  EXPECT_EQ(a.engine.tracker_violation, b.engine.tracker_violation);
  EXPECT_EQ(a.engine.tracker_num_reports, b.engine.tracker_num_reports);
  EXPECT_EQ(a.engine.status, b.engine.status);
  EXPECT_EQ(a.engine.report_slot, b.engine.report_slot);
  EXPECT_EQ(a.engine.reported_at, b.engine.reported_at);
  EXPECT_EQ(a.engine.quitted_at, b.engine.quitted_at);
  EXPECT_EQ(a.engine.total_retired, b.engine.total_retired);
  EXPECT_EQ(a.session.open_round, b.session.open_round);
  EXPECT_EQ(a.session.next_stream_index, b.session.next_stream_index);
  ASSERT_EQ(a.session.active.size(), b.session.active.size());
  for (size_t i = 0; i < a.session.active.size(); ++i) {
    EXPECT_EQ(a.session.active[i].user, b.session.active[i].user);
    EXPECT_EQ(a.session.active[i].stream_index,
              b.session.active[i].stream_index);
    EXPECT_EQ(a.session.active[i].last_cell, b.session.active[i].last_cell);
  }
  EXPECT_EQ(a.session.quitted_at, b.session.quitted_at);
  EXPECT_EQ(a.session.free_indices, b.session.free_indices);
  EXPECT_EQ(a.spill_rounds, b.spill_rounds);
}

TEST(CheckpointCodecTest, CheckpointBodyRoundTripsEveryField) {
  const CheckpointState state = MakeState();
  std::string body;
  EncodeCheckpointBody(state, &body);
  CheckpointState decoded;
  auto st = DecodeCheckpointBody(body.data(), body.size(), &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ExpectSameState(state, decoded);
}

TEST(CheckpointCodecTest, DefaultStateRoundTrips) {
  const CheckpointState state;  // the ledger_last_t INT64_MIN sentinel, etc.
  std::string body;
  EncodeCheckpointBody(state, &body);
  CheckpointState decoded;
  ASSERT_TRUE(DecodeCheckpointBody(body.data(), body.size(), &decoded).ok());
  ExpectSameState(state, decoded);
}

TEST(CheckpointCodecTest, TruncatedBodyIsRejectedAtEveryLength) {
  const CheckpointState state = MakeState();
  std::string body;
  EncodeCheckpointBody(state, &body);
  for (size_t len = 0; len < body.size(); ++len) {
    CheckpointState decoded;
    EXPECT_EQ(DecodeCheckpointBody(body.data(), len, &decoded).code(),
              StatusCode::kIOError)
        << "len=" << len;
  }
  // Trailing garbage is damage too: a body must consume exactly its bytes.
  std::string padded = body + '\0';
  CheckpointState decoded;
  EXPECT_EQ(DecodeCheckpointBody(padded.data(), padded.size(), &decoded).code(),
            StatusCode::kIOError);
}

TEST(CheckpointCodecTest, HistoryBodyRoundTrips) {
  const std::vector<CellStream> streams = {MakeStream(0, {1, 2, 3}),
                                           MakeStream(5, {0}),
                                           MakeStream(2, {7, 7})};
  std::string body;
  EncodeHistoryBody(streams, &body);
  std::vector<CellStream> decoded;
  ASSERT_TRUE(DecodeHistoryBody(body.data(), body.size(), &decoded).ok());
  ASSERT_EQ(decoded.size(), streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    EXPECT_EQ(decoded[i].enter_time, streams[i].enter_time);
    EXPECT_EQ(decoded[i].cells, streams[i].cells);
  }
}

TEST(CheckpointCodecTest, FileNamesRoundTripAndRejectForeignNames) {
  int64_t round = 0;
  EXPECT_TRUE(ParseCheckpointFileName(CheckpointFileName(123), &round));
  EXPECT_EQ(round, 123);
  EXPECT_TRUE(ParseHistoryFileName(HistoryFileName(40), &round));
  EXPECT_EQ(round, 40);
  EXPECT_FALSE(ParseCheckpointFileName(HistoryFileName(40), &round));
  EXPECT_FALSE(ParseHistoryFileName(CheckpointFileName(123), &round));
  EXPECT_FALSE(ParseCheckpointFileName("checkpoint-1.ckpt.tmp", &round));
  EXPECT_FALSE(ParseCheckpointFileName("journal-00000000.wal", &round));
  EXPECT_FALSE(ParseCheckpointFileName("LOCK", &round));
}

TEST(CheckpointCodecTest, FramedFileRoundTripsAndReportsFingerprint) {
  TempDir dir;
  const std::string body = "checkpoint body bytes \x01\x02\x00 with zeros";
  ASSERT_TRUE(WriteFramedFile(dir.path(), "f.ckpt", kCheckpointMagic,
                              0xfeedfacecafebeefull, std::string(body))
                  .ok());
  uint64_t fingerprint = 0;
  auto read =
      ReadFramedFile(dir.path() + "/f.ckpt", kCheckpointMagic, &fingerprint);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), body);
  EXPECT_EQ(fingerprint, 0xfeedfacecafebeefull);
  // No tmp residue after a successful publication.
  auto names = ListDirectory(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 1u);
}

TEST(CheckpointCodecTest, FramedFileRejectsTruncationAtEveryOffset) {
  TempDir dir;
  ASSERT_TRUE(WriteFramedFile(dir.path(), "f.ckpt", kCheckpointMagic, 7,
                              "payload")
                  .ok());
  auto full = ReadFileToString(dir.path() + "/f.ckpt");
  ASSERT_TRUE(full.ok());
  const std::string& bytes = full.value();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string path = dir.path() + "/cut.ckpt";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
    std::fclose(f);
    uint64_t fingerprint = 0;
    EXPECT_EQ(ReadFramedFile(path, kCheckpointMagic, &fingerprint)
                  .status()
                  .code(),
              StatusCode::kIOError)
        << "cut=" << cut;
  }
}

TEST(CheckpointCodecTest, FramedFileRejectsEveryFlippedBit) {
  TempDir dir;
  ASSERT_TRUE(
      WriteFramedFile(dir.path(), "f.ckpt", kCheckpointMagic, 7, "payload")
          .ok());
  auto full = ReadFileToString(dir.path() + "/f.ckpt");
  ASSERT_TRUE(full.ok());
  for (size_t i = 0; i < full.value().size(); ++i) {
    std::string damaged = full.value();
    damaged[i] = static_cast<char>(damaged[i] ^ 0x04);
    const std::string path = dir.path() + "/bad.ckpt";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), f),
              damaged.size());
    std::fclose(f);
    uint64_t fingerprint = 0;
    // A flip inside the fingerprint field is structurally valid — the caller
    // polices the value — but anywhere else must fail the frame check.
    auto read = ReadFramedFile(path, kCheckpointMagic, &fingerprint);
    if (i >= 9 && i < 17) {
      EXPECT_TRUE(read.ok()) << "fingerprint byte " << i;
      EXPECT_NE(fingerprint, 7u);
    } else {
      EXPECT_EQ(read.status().code(), StatusCode::kIOError) << "byte " << i;
    }
  }
}

TEST(CheckpointCodecTest, FramedFileRejectsAForeignMagic) {
  TempDir dir;
  ASSERT_TRUE(
      WriteFramedFile(dir.path(), "f.hst", kHistoryMagic, 7, "payload").ok());
  uint64_t fingerprint = 0;
  EXPECT_EQ(ReadFramedFile(dir.path() + "/f.hst", kCheckpointMagic,
                           &fingerprint)
                .status()
                .code(),
            StatusCode::kIOError);
  EXPECT_TRUE(
      ReadFramedFile(dir.path() + "/f.hst", kHistoryMagic, &fingerprint).ok());
}

}  // namespace
}  // namespace retrasyn
