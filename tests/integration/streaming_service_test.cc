// Acceptance test for the streaming service layer: a fleet of simulated
// devices drives TrajectoryService purely through per-user Enter/Move/Quit
// events — no StreamDatabase, no StreamFeeder, no precomputed batches on the
// service path — and the released synthetic database is compared against the
// legacy batch-replay pipeline fed the same underlying trajectories with the
// same seed. The two releases must be identical, stream for stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/release_server.h"
#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "service/trajectory_service.h"
#include "stream/feeder.h"

namespace retrasyn {
namespace {

/// One simulated device's trajectory: when it appears and the raw points it
/// reports, one per timestamp. Deliberately *not* a StreamDatabase.
struct DeviceTrace {
  int64_t enter_time = 0;
  std::vector<Point> points;
};

constexpr int64_t kHorizon = 60;

/// A deterministic workload: devices appear over time, random-walk with
/// occasional non-adjacent GPS glitches (exercising the clamp path), and
/// leave before the horizon.
std::vector<DeviceTrace> MakeWorkload(uint64_t seed) {
  const BoundingBox box{0.0, 0.0, 800.0, 800.0};
  Rng rng(seed);
  std::vector<DeviceTrace> traces;
  for (int i = 0; i < 220; ++i) {
    DeviceTrace trace;
    trace.enter_time = static_cast<int64_t>(rng.UniformInt(kHorizon - 2));
    const int64_t max_len = kHorizon - trace.enter_time;
    const int64_t len =
        1 + static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(std::min<int64_t>(max_len, 25))));
    Point p{box.min_x + rng.UniformDouble() * box.Width(),
            box.min_y + rng.UniformDouble() * box.Height()};
    for (int64_t k = 0; k < len; ++k) {
      trace.points.push_back(p);
      if (rng.UniformDouble() < 0.05) {
        // GPS glitch: teleport (will be clamped by the protocol).
        p = Point{box.min_x + rng.UniformDouble() * box.Width(),
                  box.min_y + rng.UniformDouble() * box.Height()};
      } else {
        p = box.Clamp(Point{p.x + (rng.UniformDouble() - 0.5) * 150.0,
                            p.y + (rng.UniformDouble() - 0.5) * 150.0});
      }
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

RetraSynConfig EngineConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 12;
  config.division = DivisionStrategy::kPopulation;
  config.allocation.kind = AllocationKind::kAdaptive;
  config.lambda = 10.0;
  config.seed = 99;
  return config;
}

TEST(StreamingServiceTest, PureEventDrivenReleaseMatchesLegacyBatchReplay) {
  const BoundingBox box{0.0, 0.0, 800.0, 800.0};
  const std::vector<DeviceTrace> traces = MakeWorkload(17);
  const auto grid_owner = MakeEnvGrid(box, 5);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  // --- Service path: per-device events only. -----------------------------
  auto service = TrajectoryService::Create(states, EngineConfig());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ReleaseServer server(grid);
  service.value()->AddSink(&server);
  IngestSession& session = service.value()->session();
  for (int64_t t = 0; t < kHorizon; ++t) {
    for (uint64_t id = 0; id < traces.size(); ++id) {
      const DeviceTrace& trace = traces[id];
      const int64_t end = trace.enter_time +
                          static_cast<int64_t>(trace.points.size());
      if (t == trace.enter_time) {
        ASSERT_TRUE(session.Enter(id, trace.points.front()).ok());
      } else if (t > trace.enter_time && t < end) {
        ASSERT_TRUE(
            session.Move(id, trace.points[t - trace.enter_time]).ok());
      } else if (t == end && end < kHorizon) {
        ASSERT_TRUE(session.Quit(id).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
  auto snapshot = service.value()->SnapshotRelease(kHorizon);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const CellStreamSet& streamed = snapshot.value();

  // --- Legacy path: materialize the database, replay batches, Finish. ----
  StreamDatabase db(box, kHorizon);
  for (const DeviceTrace& trace : traces) {
    UserStream stream;
    stream.user_id = 0;
    stream.enter_time = trace.enter_time;
    stream.points = trace.points;
    db.Add(std::move(stream)).CheckOK();
  }
  const StreamFeeder feeder(db, grid, states);
  RetraSynEngine legacy(states, EngineConfig());
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    legacy.Observe(feeder.Batch(t));
  }
  const CellStreamSet batch = legacy.Finish(kHorizon);

  // --- Identical releases. ------------------------------------------------
  ASSERT_EQ(streamed.num_timestamps(), batch.num_timestamps());
  ASSERT_EQ(streamed.streams().size(), batch.streams().size());
  ASSERT_EQ(streamed.TotalPoints(), batch.TotalPoints());
  for (size_t i = 0; i < streamed.streams().size(); ++i) {
    EXPECT_EQ(streamed.streams()[i].enter_time, batch.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(streamed.streams()[i].cells, batch.streams()[i].cells)
        << "stream " << i;
  }

  // And the subscribed server's live view equals the legacy ground truth of
  // the released database at every timestamp.
  const DensityIndex post_hoc(batch, grid);
  ASSERT_EQ(server.horizon(), kHorizon);
  for (int64_t t = 0; t < kHorizon; ++t) {
    EXPECT_EQ(server.DensityAt(t), post_hoc.DensityAt(t)) << "t=" << t;
  }
}

TEST(StreamingServiceTest, PoolEnabledAtOneThreadKeepsByteExactEquivalence) {
  // num_threads=1 with a live ThreadPool attached must not perturb the
  // serial RNG stream: the streamed release still matches the plain batch
  // replay byte for byte.
  const BoundingBox box{0.0, 0.0, 800.0, 800.0};
  const std::vector<DeviceTrace> traces = MakeWorkload(17);
  const auto grid_owner = MakeEnvGrid(box, 5);
  const SpatialGrid& grid = *grid_owner;
  const StateSpace states(grid);

  RetraSynConfig pooled_config = EngineConfig();
  pooled_config.num_threads = 1;
  pooled_config.thread_pool = std::make_shared<ThreadPool>(4);
  auto service = TrajectoryService::Create(states, pooled_config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_EQ(service.value()->retrasyn_engine()->thread_pool(),
            pooled_config.thread_pool.get());
  IngestSession& session = service.value()->session();
  for (int64_t t = 0; t < kHorizon; ++t) {
    for (uint64_t id = 0; id < traces.size(); ++id) {
      const DeviceTrace& trace = traces[id];
      const int64_t end = trace.enter_time +
                          static_cast<int64_t>(trace.points.size());
      if (t == trace.enter_time) {
        ASSERT_TRUE(session.Enter(id, trace.points.front()).ok());
      } else if (t > trace.enter_time && t < end) {
        ASSERT_TRUE(
            session.Move(id, trace.points[t - trace.enter_time]).ok());
      } else if (t == end && end < kHorizon) {
        ASSERT_TRUE(session.Quit(id).ok());
      }
    }
    ASSERT_TRUE(session.Tick().ok());
  }
  auto snapshot = service.value()->SnapshotRelease(kHorizon);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const CellStreamSet& streamed = snapshot.value();

  StreamDatabase db(box, kHorizon);
  for (const DeviceTrace& trace : traces) {
    UserStream stream;
    stream.user_id = 0;
    stream.enter_time = trace.enter_time;
    stream.points = trace.points;
    db.Add(std::move(stream)).CheckOK();
  }
  const StreamFeeder feeder(db, grid, states);
  RetraSynEngine serial(states, EngineConfig());  // no pool at all
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    serial.Observe(feeder.Batch(t));
  }
  const CellStreamSet batch = serial.Finish(kHorizon);

  ASSERT_EQ(streamed.streams().size(), batch.streams().size());
  ASSERT_EQ(streamed.TotalPoints(), batch.TotalPoints());
  for (size_t i = 0; i < streamed.streams().size(); ++i) {
    EXPECT_EQ(streamed.streams()[i].enter_time, batch.streams()[i].enter_time)
        << "stream " << i;
    EXPECT_EQ(streamed.streams()[i].cells, batch.streams()[i].cells)
        << "stream " << i;
  }
}

}  // namespace
}  // namespace retrasyn
