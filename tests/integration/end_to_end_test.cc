// Full-pipeline integration tests: generator -> CSV round trip -> feeder ->
// engine (real per-user OUE clients) -> synthesis -> metrics, plus
// cross-method shape assertions mirroring the paper's headline claims at
// tiny scale.

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "stream/io.h"

namespace retrasyn {
namespace {

StreamingMetricsConfig FastMetrics() {
  StreamingMetricsConfig config;
  config.phi = 5;
  config.num_queries = 30;
  config.num_hotspot_ranges = 10;
  config.num_pattern_ranges = 10;
  return config;
}

TEST(EndToEndTest, CsvRoundTripThroughFullPipeline) {
  // Generate, export, re-import, and verify the pipeline produces identical
  // ground truth from the re-imported data.
  const StreamDatabase db = MakeDataset(RandomWalkSmall(0.5, 51));
  const std::string path = testing::TempDir() + "/e2e_streams.csv";
  ASSERT_TRUE(WriteStreamDatabaseCsv(db, path).ok());

  ImportOptions options;
  options.box = db.box();
  options.num_timestamps = db.num_timestamps();
  auto loaded = LoadStreamDatabaseCsv(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().TotalPoints(), db.TotalPoints());
  EXPECT_EQ(loaded.value().streams().size(), db.streams().size());

  const PreparedDataset original(db, 4);
  const PreparedDataset reimported(loaded.value(), 4);
  // Same discretized ground truth (densities per timestamp).
  for (int64_t t = 0; t < original.horizon(); ++t) {
    EXPECT_EQ(original.original_density().DensityAt(t),
              reimported.original_density().DensityAt(t))
        << "t=" << t;
  }
}

TEST(EndToEndTest, PerUserProtocolFullRun) {
  // The real protocol (every user runs an OUE client) end to end.
  const StreamDatabase db = MakeDataset(RandomWalkSmall(0.4, 52));
  const PreparedDataset dataset(db, 4);
  auto engine = MakeEngine(MethodId::kRetraSynP, dataset.states(), 1.0, 10,
                           AllocationKind::kAdaptive,
                           dataset.average_length(), 7,
                           CollectionMode::kPerUser);
  const RunResult result = RunEngine(dataset, *engine, FastMetrics(), 11);
  EXPECT_GT(result.total_reports, 0u);
  EXPECT_FALSE(result.report_window_violation);
  EXPECT_LT(result.metrics.density_error, 0.6931);
}

TEST(EndToEndTest, EnterQuitModelingImprovesTrajectoryMetrics) {
  // Table IV's shape: NoEQ collapses the Length Error to ln 2 while RetraSyn
  // stays well below, and RetraSyn's Kendall tau is higher.
  const StreamDatabase db = MakeDataset(TDriveLike(0.02, 53));
  const PreparedDataset dataset(db, 6);
  auto retra = MakeEngine(MethodId::kRetraSynP, dataset.states(), 1.0, 20,
                          AllocationKind::kAdaptive,
                          dataset.average_length(), 7);
  auto noeq = MakeEngine(MethodId::kNoEQP, dataset.states(), 1.0, 20,
                         AllocationKind::kAdaptive,
                         dataset.average_length(), 7);
  const RunResult r_retra = RunEngine(dataset, *retra, FastMetrics(), 21);
  const RunResult r_noeq = RunEngine(dataset, *noeq, FastMetrics(), 21);
  EXPECT_NEAR(r_noeq.metrics.length_error, 0.6931, 1e-3);
  EXPECT_LT(r_retra.metrics.length_error, 0.5);
  EXPECT_GT(r_retra.metrics.kendall_tau, r_noeq.metrics.kendall_tau);
}

TEST(EndToEndTest, RetraSynBeatsLdpIdsOnDensity) {
  // Table III's headline ordering at small scale: RetraSyn_p lower density
  // error than every LDP-IDS strategy on hotspot-structured data.
  const StreamDatabase db = MakeDataset(TDriveLike(0.02, 54));
  const PreparedDataset dataset(db, 6);
  auto run = [&](MethodId id) {
    auto engine = MakeEngine(id, dataset.states(), 1.0, 20,
                             AllocationKind::kAdaptive,
                             dataset.average_length(), 7);
    return RunEngine(dataset, *engine, FastMetrics(), 31).metrics;
  };
  const MetricsReport retra = run(MethodId::kRetraSynP);
  for (MethodId id :
       {MethodId::kLBD, MethodId::kLBA, MethodId::kLPD, MethodId::kLPA}) {
    const MetricsReport baseline = run(id);
    EXPECT_LT(retra.density_error, baseline.density_error + 0.05)
        << MethodName(id);
    EXPECT_LT(retra.length_error, baseline.length_error) << MethodName(id);
  }
}

TEST(EndToEndTest, HigherEpsilonNotWorseForRetraSyn) {
  // Table III's trend: RetraSyn's utility improves (or at least does not
  // materially degrade) as the privacy budget grows.
  const StreamDatabase db = MakeDataset(TDriveLike(0.02, 55));
  const PreparedDataset dataset(db, 6);
  auto density_at = [&](double eps) {
    auto engine = MakeEngine(MethodId::kRetraSynP, dataset.states(), eps, 20,
                             AllocationKind::kAdaptive,
                             dataset.average_length(), 7);
    return RunEngine(dataset, *engine, FastMetrics(), 41)
        .metrics.density_error;
  };
  const double low = density_at(0.5);
  const double high = density_at(2.0);
  EXPECT_LE(high, low + 0.05);
}

TEST(EndToEndTest, WholePipelineDeterministic) {
  auto run_once = [&]() {
    const StreamDatabase db = MakeDataset(RandomWalkSmall(0.4, 56));
    const PreparedDataset dataset(db, 4);
    auto engine = MakeEngine(MethodId::kRetraSynP, dataset.states(), 1.0, 10,
                             AllocationKind::kAdaptive, 12.0, 9);
    return RunEngine(dataset, *engine, FastMetrics(), 61);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.metrics.density_error, b.metrics.density_error);
  EXPECT_DOUBLE_EQ(a.metrics.query_error, b.metrics.query_error);
  EXPECT_DOUBLE_EQ(a.metrics.pattern_f1, b.metrics.pattern_f1);
  EXPECT_DOUBLE_EQ(a.metrics.trip_error, b.metrics.trip_error);
  EXPECT_EQ(a.total_reports, b.total_reports);
}

}  // namespace
}  // namespace retrasyn
