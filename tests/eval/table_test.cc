#include "eval/table.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace retrasyn {
namespace {

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
  EXPECT_EQ(FormatDouble(3.14159, 6), "3.141590");
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow(TablePrinter::Separator());
  table.AddRow({"a-much-longer-name", "2"});

  const std::string path = testing::TempDir() + "/table_print.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  table.Print(f);
  std::fclose(f);

  auto rows = ReadCsvFile(path);  // no commas: one field per line
  ASSERT_TRUE(rows.ok());
  // header + rule + row + rule (separator) + row = 5 lines
  ASSERT_EQ(rows.value().size(), 5u);
  EXPECT_NE(rows.value()[0][0].find("name"), std::string::npos);
  EXPECT_NE(rows.value()[0][0].find("value"), std::string::npos);
  EXPECT_NE(rows.value()[4][0].find("a-much-longer-name"), std::string::npos);
}

TEST(TablePrinterTest, CsvDumpSkipsSeparators) {
  TablePrinter table({"h1", "h2"});
  table.AddRow({"a", "b"});
  table.AddRow(TablePrinter::Separator());
  table.AddRow({"c", "d"});
  const std::string path = testing::TempDir() + "/table_dump.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);  // header + 2 data rows
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(rows.value()[2], (std::vector<std::string>{"c", "d"}));
}

TEST(TablePrinterTest, CsvToBadPathFails) {
  TablePrinter table({"h"});
  EXPECT_FALSE(table.WriteCsv("/no/such/dir/table.csv"));
}

}  // namespace
}  // namespace retrasyn
