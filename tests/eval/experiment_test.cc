#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

constexpr double kLn2 = 0.6931471805599453;

DatasetSpec SmallSpec() {
  DatasetSpec spec = RandomWalkSmall(1.0, 21);
  return spec;
}

StreamingMetricsConfig FastMetrics() {
  StreamingMetricsConfig config;
  config.phi = 5;
  config.num_queries = 30;
  config.num_hotspot_ranges = 15;
  config.num_pattern_ranges = 15;
  return config;
}

TEST(DatasetsTest, RegistryLookup) {
  EXPECT_TRUE(DatasetByName("tdrive", 0.1, 1).ok());
  EXPECT_TRUE(DatasetByName("oldenburg", 0.1, 1).ok());
  EXPECT_TRUE(DatasetByName("sanjoaquin", 0.1, 1).ok());
  EXPECT_TRUE(DatasetByName("randomwalk", 0.1, 1).ok());
  EXPECT_FALSE(DatasetByName("beijing", 0.1, 1).ok());
}

TEST(DatasetsTest, ScaleChangesPopulation) {
  const StreamDatabase small = MakeDataset(RandomWalkSmall(0.5, 9));
  const StreamDatabase large = MakeDataset(RandomWalkSmall(2.0, 9));
  EXPECT_GT(large.streams().size(), small.streams().size());
}

TEST(PreparedDatasetTest, ConsistentViews) {
  const StreamDatabase db = MakeDataset(SmallSpec());
  const PreparedDataset dataset(db, 5);
  ASSERT_NE(dataset.grid().AsUniform(), nullptr);
  EXPECT_EQ(dataset.grid().AsUniform()->k(), 5u);
  EXPECT_EQ(dataset.grid().NumCells(), 25u);
  EXPECT_EQ(dataset.horizon(), db.num_timestamps());
  EXPECT_EQ(dataset.original().streams().size(), db.streams().size());
  EXPECT_NEAR(dataset.average_length(), db.AverageLength(), 1e-9);
  EXPECT_EQ(dataset.original_density().num_timestamps(), dataset.horizon());
}

TEST(MethodFactoryTest, AllMethodsConstructible) {
  const StreamDatabase db = MakeDataset(SmallSpec());
  const PreparedDataset dataset(db, 4);
  for (MethodId id :
       {MethodId::kLBD, MethodId::kLBA, MethodId::kLPD, MethodId::kLPA,
        MethodId::kRetraSynB, MethodId::kRetraSynP, MethodId::kAllUpdateB,
        MethodId::kAllUpdateP, MethodId::kNoEQB, MethodId::kNoEQP}) {
    auto engine = MakeEngine(id, dataset.states(), 1.0, 10,
                             AllocationKind::kAdaptive, 12.0, 3);
    ASSERT_NE(engine, nullptr) << MethodName(id);
  }
}

class RunEngineTest : public testing::TestWithParam<MethodId> {};

TEST_P(RunEngineTest, MetricsWithinTheoreticalBounds) {
  const StreamDatabase db = MakeDataset(SmallSpec());
  const PreparedDataset dataset(db, 4);
  auto engine =
      MakeEngine(GetParam(), dataset.states(), 1.0, 10,
                 AllocationKind::kAdaptive, dataset.average_length(), 3);
  const RunResult result = RunEngine(dataset, *engine, FastMetrics(), 99);
  const MetricsReport& m = result.metrics;
  EXPECT_GE(m.density_error, 0.0);
  EXPECT_LE(m.density_error, kLn2 + 1e-9);
  EXPECT_GE(m.transition_error, 0.0);
  EXPECT_LE(m.transition_error, kLn2 + 1e-9);
  EXPECT_GE(m.trip_error, 0.0);
  EXPECT_LE(m.trip_error, kLn2 + 1e-9);
  EXPECT_GE(m.length_error, 0.0);
  EXPECT_LE(m.length_error, kLn2 + 1e-9);
  EXPECT_GE(m.query_error, 0.0);
  EXPECT_GE(m.hotspot_ndcg, 0.0);
  EXPECT_LE(m.hotspot_ndcg, 1.0 + 1e-9);
  EXPECT_GE(m.pattern_f1, 0.0);
  EXPECT_LE(m.pattern_f1, 1.0 + 1e-9);
  EXPECT_GE(m.kendall_tau, -1.0 - 1e-9);
  EXPECT_LE(m.kendall_tau, 1.0 + 1e-9);
  EXPECT_GT(result.engine_seconds, 0.0);
  EXPECT_FALSE(result.report_window_violation);
}

INSTANTIATE_TEST_SUITE_P(CoreMethods, RunEngineTest,
                         testing::Values(MethodId::kRetraSynP,
                                         MethodId::kRetraSynB,
                                         MethodId::kLPD, MethodId::kLBA),
                         [](const testing::TestParamInfo<MethodId>& info) {
                           return MethodName(info.param);
                         });

TEST(RunEngineTest, IdenticalMetricSeedsGiveComparableEvaluations) {
  // Two engines evaluated with the same metrics seed face identical queries;
  // the *same* engine evaluated twice must produce identical metric values.
  const StreamDatabase db = MakeDataset(SmallSpec());
  const PreparedDataset dataset(db, 4);
  auto make = [&]() {
    return MakeEngine(MethodId::kRetraSynP, dataset.states(), 1.0, 10,
                      AllocationKind::kAdaptive, 12.0, 3);
  };
  auto e1 = make();
  auto e2 = make();
  const RunResult r1 = RunEngine(dataset, *e1, FastMetrics(), 123);
  const RunResult r2 = RunEngine(dataset, *e2, FastMetrics(), 123);
  EXPECT_DOUBLE_EQ(r1.metrics.density_error, r2.metrics.density_error);
  EXPECT_DOUBLE_EQ(r1.metrics.query_error, r2.metrics.query_error);
  EXPECT_DOUBLE_EQ(r1.metrics.kendall_tau, r2.metrics.kendall_tau);
}

TEST(RunEngineTest, RetraSynBeatsWorstCaseOnStructuredData) {
  // A weak end-to-end utility assertion: on hotspot-structured data RetraSyn_p
  // must stay clearly below the worst-case density error and produce a
  // positive Kendall tau (shape-level reproduction of Table III's ordering).
  DatasetSpec spec = TDriveLike(0.02, 31);
  const StreamDatabase db = MakeDataset(spec);
  const PreparedDataset dataset(db, 6);
  auto engine =
      MakeEngine(MethodId::kRetraSynP, dataset.states(), 1.0, 20,
                 AllocationKind::kAdaptive, dataset.average_length(), 3);
  const RunResult result = RunEngine(dataset, *engine, FastMetrics(), 77);
  EXPECT_LT(result.metrics.density_error, 0.45);
  EXPECT_GT(result.metrics.kendall_tau, 0.25);
  EXPECT_GT(result.metrics.hotspot_ndcg, 0.3);
}

TEST(MethodNameTest, AllNamed) {
  EXPECT_STREQ(MethodName(MethodId::kRetraSynP), "RetraSyn_p");
  EXPECT_STREQ(MethodName(MethodId::kNoEQB), "NoEQ_b");
  EXPECT_STREQ(MethodName(MethodId::kLBD), "LBD");
}

}  // namespace
}  // namespace retrasyn
