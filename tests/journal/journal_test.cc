#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"

namespace retrasyn {
namespace {

/// A unique journal directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    auto dir = MakeTempDir("retrasyn-journal-");
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = std::move(dir).value();
  }
  ~TempDir() { RemoveDirTree(path_).CheckOK(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<JournalEvent> SampleWorkload(int rounds, int users) {
  std::vector<JournalEvent> events;
  for (int u = 0; u < users; ++u) {
    events.push_back(JournalEvent::Enter(
        static_cast<uint64_t>(u), Point{1.0 * u, 2.0 * u}));
  }
  events.push_back(JournalEvent::Tick());
  for (int t = 1; t < rounds; ++t) {
    for (int u = 0; u < users; ++u) {
      events.push_back(JournalEvent::Move(
          static_cast<uint64_t>(u), Point{1.0 * u + t, 2.0 * u - t}));
    }
    events.push_back(JournalEvent::Tick());
  }
  return events;
}

Status WriteAll(const std::string& dir, const JournalOptions& options,
                const std::vector<JournalEvent>& events) {
  auto writer = JournalWriter::Open(dir, options);
  RETRASYN_RETURN_NOT_OK(writer.status());
  for (const JournalEvent& e : events) {
    RETRASYN_RETURN_NOT_OK(writer.value()->Append(e));
  }
  return writer.value()->Close();
}

TEST(JournalOptionsTest, ValidateRejectsTinySegments) {
  JournalOptions options;
  options.segment_bytes = 16;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.segment_bytes = JournalOptions::kMinSegmentBytes;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(JournalWriterTest, SegmentFileNameRoundtrips) {
  for (uint64_t index : {0ull, 7ull, 99999999ull, 123456789012ull}) {
    uint64_t parsed = 0;
    ASSERT_TRUE(JournalWriter::ParseSegmentFileName(
        JournalWriter::SegmentFileName(index), &parsed));
    EXPECT_EQ(parsed, index);
  }
  uint64_t unused;
  EXPECT_FALSE(JournalWriter::ParseSegmentFileName("journal-1.wal", &unused));
  EXPECT_FALSE(
      JournalWriter::ParseSegmentFileName("journal-0000000x.wal", &unused));
  EXPECT_FALSE(JournalWriter::ParseSegmentFileName("notes.txt", &unused));
}

TEST(JournalTest, WriterReaderRoundtripAllPolicies) {
  const std::vector<JournalEvent> events = SampleWorkload(10, 7);
  for (FsyncPolicy policy : {FsyncPolicy::kNever, FsyncPolicy::kEveryRound,
                             FsyncPolicy::kEveryRecord}) {
    TempDir dir;
    JournalOptions options;
    options.fsync = policy;
    ASSERT_TRUE(WriteAll(dir.path(), options, events).ok())
        << FsyncPolicyName(policy);
    auto scan = JournalReader::ScanDir(dir.path());
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_FALSE(scan.value().torn);
    EXPECT_EQ(scan.value().events, events) << FsyncPolicyName(policy);
  }
}

TEST(JournalTest, RotatesAtRoundBoundariesOnly) {
  TempDir dir;
  JournalOptions options;
  options.segment_bytes = JournalOptions::kMinSegmentBytes;  // rotate often
  const std::vector<JournalEvent> events = SampleWorkload(40, 20);
  {
    auto writer = JournalWriter::Open(dir.path(), options);
    ASSERT_TRUE(writer.ok());
    for (const JournalEvent& e : events) {
      ASSERT_TRUE(writer.value()->Append(e).ok());
    }
    EXPECT_GT(writer.value()->segments_created(), 2u);
    EXPECT_EQ(writer.value()->records_appended(), events.size());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  // Every non-final segment must end exactly on a record boundary with a
  // round boundary as its last record — the reader enforces the former and
  // the scan proves the latter by reproducing the exact event sequence.
  auto scan = JournalReader::ScanDir(dir.path());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_GT(scan.value().num_segments, 2u);
  EXPECT_EQ(scan.value().events, events);
}

TEST(JournalTest, ReopenStartsNewSegmentAndScanSeesBoth) {
  TempDir dir;
  const std::vector<JournalEvent> first = SampleWorkload(3, 2);
  const std::vector<JournalEvent> second = {JournalEvent::Quit(0),
                                            JournalEvent::Quit(1),
                                            JournalEvent::Tick()};
  ASSERT_TRUE(WriteAll(dir.path(), JournalOptions(), first).ok());
  ASSERT_TRUE(WriteAll(dir.path(), JournalOptions(), second).ok());

  auto scan = JournalReader::ScanDir(dir.path());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().num_segments, 2u);
  std::vector<JournalEvent> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(scan.value().events, expected);
}

TEST(JournalTest, ScanOfMissingOrEmptyDirIsEmpty) {
  auto missing = JournalReader::ScanDir("/nonexistent/retrasyn-journal");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing.value().events.empty());

  TempDir dir;
  auto empty = JournalReader::ScanDir(dir.path());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().events.empty());
  EXPECT_FALSE(empty.value().torn);
}

TEST(JournalTest, ZeroLengthSegmentAnywhereIsCleanEmpty) {
  // A crash between segment creation and the header flush leaves a 0-byte
  // file; once a later writer continues in a fresh segment, that file sits
  // mid-journal. Both positions must scan clean.
  TempDir dir;
  const std::vector<JournalEvent> first = SampleWorkload(2, 2);
  ASSERT_TRUE(WriteAll(dir.path(), JournalOptions(), first).ok());
  {  // 0-byte last segment
    std::FILE* f = std::fopen(
        (dir.path() + "/" + JournalWriter::SegmentFileName(1)).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  auto scan = JournalReader::ScanDir(dir.path());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan.value().torn);
  EXPECT_EQ(scan.value().events, first);

  // A writer reopening the dir numbers past the empty file, making it a
  // mid-journal segment.
  const std::vector<JournalEvent> second = {JournalEvent::Tick()};
  ASSERT_TRUE(WriteAll(dir.path(), JournalOptions(), second).ok());
  scan = JournalReader::ScanDir(dir.path());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  std::vector<JournalEvent> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(scan.value().events, expected);
}

TEST(JournalTest, SegmentGapFailsTheScan) {
  TempDir dir;
  JournalOptions options;
  options.segment_bytes = JournalOptions::kMinSegmentBytes;
  ASSERT_TRUE(WriteAll(dir.path(), options, SampleWorkload(40, 20)).ok());
  auto before = JournalReader::ScanDir(dir.path());
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before.value().num_segments, 2u);
  ASSERT_TRUE(
      RemoveFile(dir.path() + "/" + JournalWriter::SegmentFileName(1)).ok());
  EXPECT_EQ(JournalReader::ScanDir(dir.path()).status().code(),
            StatusCode::kIOError);
}

TEST(JournalTest, CorruptionBeforeFinalSegmentFailsTheScan) {
  TempDir dir;
  JournalOptions options;
  options.segment_bytes = JournalOptions::kMinSegmentBytes;
  ASSERT_TRUE(WriteAll(dir.path(), options, SampleWorkload(40, 20)).ok());

  const std::string first = dir.path() + "/" + JournalWriter::SegmentFileName(0);
  auto contents = ReadFileToString(first);
  ASSERT_TRUE(contents.ok());
  std::string data = contents.value();
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  {
    std::FILE* f = std::fopen(first.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
  }
  EXPECT_EQ(JournalReader::ScanDir(dir.path()).status().code(),
            StatusCode::kIOError);
}

TEST(JournalTest, TornTailInFinalSegmentTruncatesAtEveryByteOffset) {
  // Write a small journal, then truncate the FINAL segment at every byte
  // offset inside its final record: the scan must always succeed, keep
  // exactly the events whose records fit, and report a truncation point that
  // makes the journal clean again.
  TempDir dir;
  const std::vector<JournalEvent> events = SampleWorkload(4, 3);
  ASSERT_TRUE(WriteAll(dir.path(), JournalOptions(), events).ok());
  const std::string segment =
      dir.path() + "/" + JournalWriter::SegmentFileName(0);
  auto full_contents = ReadFileToString(segment);
  ASSERT_TRUE(full_contents.ok());
  const std::string full = full_contents.value();

  // Record boundaries: offsets at which a cut leaves a *clean* journal
  // (empty file, end of header, or end of any record).
  std::vector<size_t> boundaries = {0, kSegmentHeaderSize};
  {
    size_t offset = kSegmentHeaderSize;
    JournalEvent e;
    while (offset < full.size()) {
      ASSERT_TRUE(DecodeRecord(full.data(), full.size(), &offset, &e).ok());
      boundaries.push_back(offset);
    }
  }

  for (int64_t cut = static_cast<int64_t>(full.size()) - 1; cut >= 0; --cut) {
    TempDir copy;
    const std::string path =
        copy.path() + "/" + JournalWriter::SegmentFileName(0);
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(full.data(), 1, static_cast<size_t>(cut), f),
                static_cast<size_t>(cut));
      std::fclose(f);
    }
    auto scan = JournalReader::ScanDir(copy.path());
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();
    const JournalScan& s = scan.value();
    EXPECT_LE(s.events.size(), events.size());
    for (size_t i = 0; i < s.events.size(); ++i) {
      EXPECT_EQ(s.events[i], events[i]) << "cut=" << cut << " event " << i;
    }
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(),
                  static_cast<size_t>(cut)) != boundaries.end();
    EXPECT_EQ(s.torn, !on_boundary) << "cut=" << cut;
    if (s.torn) {
      EXPECT_LE(s.valid_tail_size, cut);
      // Truncating at the reported offset yields a clean journal with the
      // same surviving events.
      ASSERT_TRUE(TruncateFile(path, s.valid_tail_size).ok());
      auto rescan = JournalReader::ScanDir(copy.path());
      ASSERT_TRUE(rescan.ok());
      EXPECT_FALSE(rescan.value().torn) << "cut=" << cut;
      EXPECT_EQ(rescan.value().events, s.events) << "cut=" << cut;
    }
  }
}

TEST(JournalWriterTest, SecondWriterOnTheSameDirIsRefused) {
  // Two writers interleaving appends into one segment would corrupt the
  // journal beyond recovery; the <dir>/LOCK flock turns that race (e.g. a
  // supervisor restarting a service whose old process is still dying) into
  // a fast FailedPrecondition.
  TempDir dir;
  auto first = JournalWriter::Open(dir.path(), JournalOptions());
  ASSERT_TRUE(first.ok());
  auto second = JournalWriter::Open(dir.path(), JournalOptions());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Releasing the first writer (Close or destruction) frees the lock.
  ASSERT_TRUE(first.value()->Close().ok());
  auto third = JournalWriter::Open(dir.path(), JournalOptions());
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST(JournalWriterTest, AppendAfterCloseIsSticky) {
  TempDir dir;
  auto writer = JournalWriter::Open(dir.path(), JournalOptions());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(JournalEvent::Tick()).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_FALSE(writer.value()->Append(JournalEvent::Tick()).ok());
  EXPECT_FALSE(writer.value()->Sync().ok());
}

}  // namespace
}  // namespace retrasyn
