#include "journal/event_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/crc32c.h"

namespace retrasyn {
namespace {

std::vector<JournalEvent> AllEventKinds() {
  return {
      JournalEvent::Enter(0, Point{0.0, 0.0}),
      JournalEvent::Enter(42, Point{-12.75, 9876.5}),
      JournalEvent::Enter(std::numeric_limits<uint64_t>::max(),
                          Point{1e300, -1e-300}),
      JournalEvent::Move(7, Point{3.25, -4.5}),
      JournalEvent::Quit(129),
      JournalEvent::Tick(),
      JournalEvent::AdvanceTo(0),
      JournalEvent::AdvanceTo(886),
      JournalEvent::AdvanceTo(std::numeric_limits<int64_t>::max()),
  };
}

TEST(Crc32cTest, MatchesTheStandardTestVector) {
  // Pins the wire format to real CRC32C (Castagnoli): the canonical
  // check value for "123456789" — a polynomial/reflection refactor that
  // only self-checks would silently orphan every existing journal.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
}

TEST(VarintTest, RoundtripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 35) - 1,
                             1ull << 35,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(v, &buf);
    size_t offset = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &offset, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(VarintTest, RejectsTruncatedAndOverlongInput) {
  std::string buf;
  PutVarint64(std::numeric_limits<uint64_t>::max(), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t offset = 0;
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(buf.data(), cut, &offset, &out)) << cut;
  }
  // 11 continuation bytes can never be a valid 64-bit varint.
  const std::string overlong(11, '\x80');
  size_t offset = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(overlong.data(), overlong.size(), &offset, &out));
}

TEST(VarintTest, ZigzagRoundtripsNegatives) {
  const int64_t values[] = {0, -1, 1, -2, 886,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(EventCodecTest, RoundtripsEveryEventKind) {
  for (const JournalEvent& event : AllEventKinds()) {
    std::string buf;
    EncodeRecord(event, &buf);
    size_t offset = 0;
    JournalEvent out;
    ASSERT_TRUE(DecodeRecord(buf.data(), buf.size(), &offset, &out).ok())
        << JournalEventTypeName(event.type);
    EXPECT_EQ(out, event) << JournalEventTypeName(event.type);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(EventCodecTest, RoundtripsExactDoubleBits) {
  // Replay must relocate the identical coordinates; the codec ships raw
  // IEEE-754 bits, so even a denormal or negative zero survives.
  const double x = -0.0;
  const double y = std::numeric_limits<double>::denorm_min();
  std::string buf;
  EncodeRecord(JournalEvent::Move(1, Point{x, y}), &buf);
  size_t offset = 0;
  JournalEvent out;
  ASSERT_TRUE(DecodeRecord(buf.data(), buf.size(), &offset, &out).ok());
  EXPECT_EQ(std::signbit(out.location.x), std::signbit(x));
  EXPECT_EQ(out.location.y, y);
}

TEST(EventCodecTest, RoundtripsConcatenatedStream) {
  const std::vector<JournalEvent> events = AllEventKinds();
  std::string buf;
  for (const JournalEvent& e : events) EncodeRecord(e, &buf);
  size_t offset = 0;
  for (const JournalEvent& expected : events) {
    JournalEvent out;
    ASSERT_TRUE(DecodeRecord(buf.data(), buf.size(), &offset, &out).ok());
    EXPECT_EQ(out, expected);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(EventCodecTest, TruncationAtEveryByteIsOutOfRange) {
  std::string buf;
  EncodeRecord(JournalEvent::Enter(1234567, Point{1.5, -2.5}), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t offset = 0;
    JournalEvent out;
    const Status st = DecodeRecord(buf.data(), cut, &offset, &out);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << "cut=" << cut;
    EXPECT_EQ(offset, 0u) << "offset must not advance on failure";
  }
}

TEST(EventCodecTest, BitFlipAnywhereIsDetected) {
  std::string pristine;
  EncodeRecord(JournalEvent::Enter(99, Point{10.0, 20.0}), &pristine);
  for (size_t i = 0; i < pristine.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = pristine;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      size_t offset = 0;
      JournalEvent out;
      const Status st =
          DecodeRecord(corrupt.data(), corrupt.size(), &offset, &out);
      EXPECT_FALSE(st.ok()) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(EventCodecTest, ChecksumMismatchIsIOError) {
  std::string buf;
  EncodeRecord(JournalEvent::Quit(3), &buf);
  buf[buf.size() - 1] = static_cast<char>(buf[buf.size() - 1] ^ 0x01);
  size_t offset = 0;
  JournalEvent out;
  EXPECT_EQ(DecodeRecord(buf.data(), buf.size(), &offset, &out).code(),
            StatusCode::kIOError);
}

// Hand-builds a record with a valid frame and CRC around \p payload.
std::string FrameRaw(const std::string& payload) {
  std::string buf;
  PutVarint64(payload.size(), &buf);
  buf.append(payload);
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return buf;
}

TEST(EventCodecTest, UnknownTypeWithValidChecksumIsInvalidArgument) {
  const std::string buf = FrameRaw(std::string(1, static_cast<char>(250)));
  size_t offset = 0;
  JournalEvent out;
  EXPECT_EQ(DecodeRecord(buf.data(), buf.size(), &offset, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(EventCodecTest, TrailingPayloadBytesAreInvalidArgument) {
  // A Tick payload with an extra byte: well-framed, checksummed garbage.
  std::string payload;
  payload.push_back(static_cast<char>(JournalEventType::kTick));
  payload.push_back('\x00');
  const std::string buf = FrameRaw(payload);
  size_t offset = 0;
  JournalEvent out;
  EXPECT_EQ(DecodeRecord(buf.data(), buf.size(), &offset, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(EventCodecTest, ImplausibleLengthIsInvalidArgument) {
  std::string buf;
  PutVarint64(1 << 20, &buf);  // far beyond any v1 payload
  buf.append(8, '\x00');
  size_t offset = 0;
  JournalEvent out;
  EXPECT_EQ(DecodeRecord(buf.data(), buf.size(), &offset, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(EventCodecTest, SegmentHeaderRoundtripAndRejection) {
  constexpr uint64_t kFingerprint = 0xDEADBEEFCAFEF00Dull;
  std::string buf;
  AppendSegmentHeader(kFingerprint, &buf);
  ASSERT_EQ(buf.size(), kSegmentHeaderSize);
  size_t offset = 0;
  uint64_t fingerprint = 0;
  EXPECT_TRUE(
      CheckSegmentHeader(buf.data(), buf.size(), &offset, &fingerprint).ok());
  EXPECT_EQ(offset, kSegmentHeaderSize);
  EXPECT_EQ(fingerprint, kFingerprint);

  // Torn header.
  offset = 0;
  EXPECT_EQ(
      CheckSegmentHeader(buf.data(), buf.size() - 1, &offset, &fingerprint)
          .code(),
      StatusCode::kOutOfRange);

  // Bad magic.
  std::string bad = buf;
  bad[0] = 'X';
  offset = 0;
  EXPECT_EQ(
      CheckSegmentHeader(bad.data(), bad.size(), &offset, &fingerprint).code(),
      StatusCode::kInvalidArgument);

  // Future version.
  std::string future = buf;
  future[sizeof(kJournalMagic)] = 99;
  offset = 0;
  EXPECT_EQ(CheckSegmentHeader(future.data(), future.size(), &offset,
                               &fingerprint)
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace retrasyn
