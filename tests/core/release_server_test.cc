#include "core/release_server.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct ServerFixture {
  ServerFixture() : grid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 4),
                    states(grid) {
    RandomWalkConfig config;
    config.num_timestamps = 60;
    config.initial_users = 250;
    config.mean_arrivals = 15.0;
    Rng rng(41);
    db = GenerateRandomWalkStreams(config, rng);
    feeder = std::make_unique<StreamFeeder>(db, grid, states);
  }

  RetraSynConfig EngineConfig() const {
    RetraSynConfig config;
    config.epsilon = 1.0;
    config.window = 10;
    config.division = DivisionStrategy::kPopulation;
    config.lambda = 12.0;
    config.seed = 6;
    return config;
  }

  Grid grid;
  StateSpace states;
  StreamDatabase db;
  std::unique_ptr<StreamFeeder> feeder;
};

TEST(ReleaseServerTest, LiveAnswersMatchPostHocRelease) {
  // The online server's per-timestamp answers must equal what the post-hoc
  // DensityIndex computes from the finished release — the consistency that
  // makes "query the live view" legitimate.
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const CellStreamSet released = engine.Finish(fx.feeder->num_timestamps());
  const DensityIndex post_hoc(released, fx.grid);

  ASSERT_EQ(server.horizon(), fx.feeder->num_timestamps());
  for (int64_t t = 0; t < server.horizon(); ++t) {
    EXPECT_EQ(server.DensityAt(t), post_hoc.DensityAt(t)) << "t=" << t;
    EXPECT_EQ(server.ActiveAt(t), post_hoc.TotalPointsIn(t, t + 1))
        << "t=" << t;
  }
}

TEST(ReleaseServerTest, RangeCountsMatchPostHoc) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const CellStreamSet released = engine.Finish(fx.feeder->num_timestamps());
  const DensityIndex post_hoc(released, fx.grid);

  Rng qrng(9);
  const auto queries =
      GenerateRandomQueries(fx.grid, server.horizon(), 8, 40, qrng);
  for (const RangeQuery& q : queries) {
    EXPECT_EQ(server.RangeCount(q), post_hoc.Count(q));
  }
}

TEST(ReleaseServerTest, TopHotspotsMatchAggregateDensity) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const CellStreamSet released = engine.Finish(fx.feeder->num_timestamps());
  const DensityIndex post_hoc(released, fx.grid);

  const auto hotspots = server.TopHotspots(10, 30, 5);
  ASSERT_EQ(hotspots.size(), 5u);
  const std::vector<double> agg = post_hoc.AggregateDensity(10, 30);
  // The reported hotspots are sorted by aggregate density.
  for (size_t i = 1; i < hotspots.size(); ++i) {
    EXPECT_GE(agg[hotspots[i - 1]], agg[hotspots[i]]);
  }
  // And the first one is a global maximum.
  for (CellId c = 0; c < fx.grid.NumCells(); ++c) {
    EXPECT_LE(agg[c], agg[hotspots[0]] + 1e-9);
  }
}

TEST(ReleaseServerTest, PreInitializationTimestampsAreZero) {
  // If ingestion starts before the engine's first synthesis round, those
  // timestamps report zero density rather than garbage.
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  server.Ingest(engine);  // before any Observe
  EXPECT_EQ(server.ActiveAt(0), 0u);
  EXPECT_EQ(server.horizon(), 1);
}

TEST(ReleaseServerTest, TrailingMeanActive) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < 20; ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const double mean5 = server.TrailingMeanActive(5);
  double expected = 0.0;
  for (int64_t t = 15; t < 20; ++t) {
    expected += static_cast<double>(server.ActiveAt(t));
  }
  expected /= 5.0;
  EXPECT_DOUBLE_EQ(mean5, expected);
  // Window larger than history falls back to the full mean.
  EXPECT_GT(server.TrailingMeanActive(1000), 0.0);
}

TEST(PrivacyExtremesTest, WindowOneIsEventLevel) {
  // w = 1 degenerates to event-level LDP (paper SII-B): every user may
  // report at every timestamp under population division.
  const ServerFixture fx;
  RetraSynConfig config = fx.EngineConfig();
  config.window = 1;
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  EXPECT_FALSE(engine.report_tracker().HasViolation());
  // With w = 1 and recycling every timestamp, the engine can use a large
  // share of all observations.
  EXPECT_GT(engine.total_reports(),
            fx.feeder->cell_streams().TotalPoints() / 4);
}

TEST(PrivacyExtremesTest, WindowEqualToHorizonIsUserLevel) {
  // w = stream horizon: each user reports at most once over the whole run —
  // user-level LDP on the finite stream.
  const ServerFixture fx;
  RetraSynConfig config = fx.EngineConfig();
  config.window = static_cast<int>(fx.feeder->num_timestamps());
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  EXPECT_FALSE(engine.report_tracker().HasViolation());
  // No user may appear twice: total reports <= number of users.
  EXPECT_LE(engine.total_reports(), fx.db.streams().size());
}

}  // namespace
}  // namespace retrasyn
