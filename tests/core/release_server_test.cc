#include "core/release_server.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct ServerFixture {
  ServerFixture() : grid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 4),
                    states(grid) {
    RandomWalkConfig config;
    config.num_timestamps = 60;
    config.initial_users = 250;
    config.mean_arrivals = 15.0;
    Rng rng(41);
    db = GenerateRandomWalkStreams(config, rng);
    feeder = std::make_unique<StreamFeeder>(db, grid, states);
  }

  RetraSynConfig EngineConfig() const {
    RetraSynConfig config;
    config.epsilon = 1.0;
    config.window = 10;
    config.division = DivisionStrategy::kPopulation;
    config.lambda = 12.0;
    config.seed = 6;
    return config;
  }

  Grid grid;
  StateSpace states;
  StreamDatabase db;
  std::unique_ptr<StreamFeeder> feeder;
};

TEST(ReleaseServerTest, LiveAnswersMatchPostHocRelease) {
  // The online server's per-timestamp answers must equal what the post-hoc
  // DensityIndex computes from the finished release — the consistency that
  // makes "query the live view" legitimate.
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const CellStreamSet released = engine.Finish(fx.feeder->num_timestamps());
  const DensityIndex post_hoc(released, fx.grid);

  ASSERT_EQ(server.horizon(), fx.feeder->num_timestamps());
  for (int64_t t = 0; t < server.horizon(); ++t) {
    EXPECT_EQ(server.DensityAt(t), post_hoc.DensityAt(t)) << "t=" << t;
    EXPECT_EQ(server.ActiveAt(t), post_hoc.TotalPointsIn(t, t + 1))
        << "t=" << t;
  }
}

TEST(ReleaseServerTest, RangeCountsMatchPostHoc) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const CellStreamSet released = engine.Finish(fx.feeder->num_timestamps());
  const DensityIndex post_hoc(released, fx.grid);

  Rng qrng(9);
  const auto queries =
      GenerateRandomQueries(fx.grid, server.horizon(), 8, 40, qrng);
  for (const RangeQuery& q : queries) {
    EXPECT_EQ(server.RangeCount(q), post_hoc.Count(q));
  }
}

TEST(ReleaseServerTest, TopHotspotsMatchAggregateDensity) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const CellStreamSet released = engine.Finish(fx.feeder->num_timestamps());
  const DensityIndex post_hoc(released, fx.grid);

  const auto hotspots = server.TopHotspots(10, 30, 5);
  ASSERT_EQ(hotspots.size(), 5u);
  const std::vector<double> agg = post_hoc.AggregateDensity(10, 30);
  // The reported hotspots are sorted by aggregate density.
  for (size_t i = 1; i < hotspots.size(); ++i) {
    EXPECT_GE(agg[hotspots[i - 1]], agg[hotspots[i]]);
  }
  // And the first one is a global maximum.
  for (CellId c = 0; c < fx.grid.NumCells(); ++c) {
    EXPECT_LE(agg[c], agg[hotspots[0]] + 1e-9);
  }
}

TEST(ReleaseServerTest, PreInitializationTimestampsAreZero) {
  // If ingestion starts before the engine's first synthesis round, those
  // timestamps report zero density rather than garbage.
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  server.Ingest(engine);  // before any Observe
  EXPECT_EQ(server.ActiveAt(0), 0u);
  EXPECT_EQ(server.horizon(), 1);
}

TEST(ReleaseServerTest, TrailingMeanActive) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < 20; ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  const double mean5 = server.TrailingMeanActive(5);
  double expected = 0.0;
  for (int64_t t = 15; t < 20; ++t) {
    expected += static_cast<double>(server.ActiveAt(t));
  }
  expected /= 5.0;
  EXPECT_DOUBLE_EQ(mean5, expected);
  // Window larger than history falls back to the full mean.
  EXPECT_GT(server.TrailingMeanActive(1000), 0.0);
}

TEST(ReleaseServerTest, OutOfHorizonQueriesAnswerZero) {
  // Regression: a service client may query timestamps that are negative or
  // not yet ingested; the server must answer zeros, not crash or read out of
  // bounds.
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < 10; ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  ASSERT_EQ(server.horizon(), 10);
  for (int64_t t : {int64_t{-1}, int64_t{-100}, int64_t{10}, int64_t{9999}}) {
    EXPECT_EQ(server.ActiveAt(t), 0u) << "t=" << t;
    const std::vector<uint32_t>& density = server.DensityAt(t);
    ASSERT_EQ(density.size(), fx.grid.NumCells()) << "t=" << t;
    for (uint32_t c : density) EXPECT_EQ(c, 0u) << "t=" << t;
  }
  // In-horizon answers still work.
  EXPECT_GT(server.ActiveAt(9), 0u);
}

TEST(ReleaseServerTest, RangeCountClampsWindowAndGrid) {
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);
  for (int64_t t = 0; t < 10; ++t) {
    engine.Observe(fx.feeder->Batch(t));
    server.Ingest(engine);
  }
  // Full-grid query over the whole horizon.
  RangeQuery all;
  all.row_lo = 0;
  all.row_hi = fx.grid.k() - 1;
  all.col_lo = 0;
  all.col_hi = fx.grid.k() - 1;
  all.t_start = 0;
  all.t_end = server.horizon();
  const uint64_t total = server.RangeCount(all);

  // A wildly over-wide query clamps to the same answer instead of indexing
  // out of bounds.
  RangeQuery wide = all;
  wide.row_hi = 1000;
  wide.col_hi = 1000;
  wide.t_start = -50;
  wide.t_end = server.horizon() + 500;
  EXPECT_EQ(server.RangeCount(wide), total);

  // Fully outside the horizon: zero.
  RangeQuery future = all;
  future.t_start = server.horizon() + 1;
  future.t_end = server.horizon() + 10;
  EXPECT_EQ(server.RangeCount(future), 0u);
  RangeQuery past = all;
  past.t_start = -10;
  past.t_end = 0;
  EXPECT_EQ(server.RangeCount(past), 0u);

  // Degenerate spatial window (lo beyond grid): empty.
  RangeQuery off_grid = all;
  off_grid.row_lo = fx.grid.k();
  off_grid.row_hi = fx.grid.k() + 3;
  EXPECT_EQ(server.RangeCount(off_grid), 0u);
}

TEST(ReleaseServerTest, TrailingMeanActiveHardened) {
  const ServerFixture fx;
  ReleaseServer server(fx.grid);
  // Nothing ingested, nonsensical windows: zero, not a crash.
  EXPECT_EQ(server.TrailingMeanActive(5), 0.0);
  EXPECT_EQ(server.TrailingMeanActive(0), 0.0);
  EXPECT_EQ(server.TrailingMeanActive(-3), 0.0);
}

TEST(ReleaseServerTest, MixedIngestAndOnRoundPathsStayAligned) {
  // Regression: the legacy Ingest() path used to append rows with no
  // timestamp accounting, so interleaving it with OnRound() silently
  // misaligned "round t lands at index t". Both paths now share one
  // next-expected-timestamp ledger.
  const ServerFixture fx;
  RetraSynEngine engine(fx.states, fx.EngineConfig());
  ReleaseServer server(fx.grid);

  engine.Observe(fx.feeder->Batch(0));
  server.Ingest(engine);  // records at t=0
  EXPECT_EQ(server.horizon(), 1);

  RoundRelease round;
  round.t = 3;  // subscribed consumer skipped ahead: backfill 1 and 2
  round.density.assign(fx.grid.NumCells(), 0);
  round.density[5] = 7;
  round.active = 7;
  ASSERT_TRUE(server.OnRound(round).ok());
  EXPECT_EQ(server.horizon(), 4);
  EXPECT_EQ(server.ActiveAt(1), 0u);
  EXPECT_EQ(server.ActiveAt(2), 0u);
  EXPECT_EQ(server.DensityAt(3)[5], 7u);

  engine.Observe(fx.feeder->Batch(1));
  server.Ingest(engine);  // continues at t=4, not on top of round 3
  EXPECT_EQ(server.horizon(), 5);
  EXPECT_EQ(server.DensityAt(3)[5], 7u);  // round 3 is untouched
}

TEST(ReleaseServerTest, OutOfOrderAndDuplicateRoundsRejected) {
  const ServerFixture fx;
  ReleaseServer server(fx.grid);
  RoundRelease round;
  round.t = 2;
  round.density.assign(fx.grid.NumCells(), 1);
  round.active = fx.grid.NumCells();
  ASSERT_TRUE(server.OnRound(round).ok());
  EXPECT_EQ(server.horizon(), 3);

  // Duplicate round: rejected, nothing recorded.
  EXPECT_EQ(server.OnRound(round).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.horizon(), 3);
  // Out-of-order (past) round: rejected.
  round.t = 1;
  EXPECT_EQ(server.OnRound(round).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.horizon(), 3);
  // Density of the wrong cardinality: rejected.
  round.t = 5;
  round.density.resize(fx.grid.NumCells() + 1);
  EXPECT_EQ(server.OnRound(round).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.horizon(), 3);
}

RoundRelease MakeRound(const Grid& grid, int64_t t, uint32_t fill) {
  RoundRelease round;
  round.t = t;
  round.density.assign(grid.NumCells(), fill);
  round.active = static_cast<uint64_t>(fill) * grid.NumCells();
  return round;
}

TEST(ReleaseServerTest, RetentionEvictsOldRoundsAndTheyAnswerZero) {
  // Bounded retention: only the trailing retention_rounds stay queryable;
  // evicted timestamps answer zero/empty exactly like never-ingested ones.
  const Grid grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 2);
  ReleaseServer server(grid, /*retention_rounds=*/5);
  for (int64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(server.OnRound(MakeRound(grid, t, static_cast<uint32_t>(t + 1)))
                    .ok());
  }
  EXPECT_EQ(server.horizon(), 20);
  EXPECT_EQ(server.retention_rounds(), 5);
  EXPECT_EQ(server.first_retained(), 15);
  // Retained rounds answer their recorded values...
  for (int64_t t = 15; t < 20; ++t) {
    EXPECT_EQ(server.DensityAt(t)[0], static_cast<uint32_t>(t + 1));
    EXPECT_EQ(server.ActiveAt(t),
              static_cast<uint64_t>(t + 1) * grid.NumCells());
  }
  // ...evicted and out-of-horizon ones answer zero.
  for (int64_t t : {-1L, 0L, 7L, 14L, 20L, 99L}) {
    EXPECT_EQ(server.ActiveAt(t), 0u) << "t=" << t;
    for (uint32_t c : server.DensityAt(t)) EXPECT_EQ(c, 0u);
  }
}

TEST(ReleaseServerTest, RetentionClampsRangeQueriesAndTrailingMean) {
  const Grid grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 2);
  ReleaseServer server(grid, /*retention_rounds=*/4);
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(server.OnRound(MakeRound(grid, t, 2)).ok());
  }
  ASSERT_EQ(server.first_retained(), 6);
  // A range spanning evicted rounds counts only the retained suffix: rounds
  // [6, 10) x 4 cells x 2 points.
  RangeQuery query;
  query.t_start = 0;
  query.t_end = 10;
  query.row_lo = 0;
  query.row_hi = grid.k() - 1;
  query.col_lo = 0;
  query.col_hi = grid.k() - 1;
  EXPECT_EQ(server.RangeCount(query), 4u * 4u * 2u);
  // A fully evicted range counts zero.
  query.t_end = 5;
  EXPECT_EQ(server.RangeCount(query), 0u);
  // TrailingMeanActive over a window wider than retention averages the
  // retained suffix only (all rounds carry 8 actives here).
  EXPECT_DOUBLE_EQ(server.TrailingMeanActive(100), 8.0);
  // Hotspots aggregate only retained rounds — still well-defined.
  EXPECT_EQ(server.TopHotspots(0, 10, 1).size(), 1u);
}

TEST(ReleaseServerTest, RetentionFastForwardsLargeBackfillGaps) {
  // A server with retention subscribed mid-stream far past its horizon must
  // not materialize a zero row per missed round.
  const Grid grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 2);
  ReleaseServer server(grid, /*retention_rounds=*/8);
  ASSERT_TRUE(server.OnRound(MakeRound(grid, 0, 1)).ok());
  ASSERT_TRUE(server.OnRound(MakeRound(grid, 1000000, 3)).ok());
  EXPECT_EQ(server.horizon(), 1000001);
  EXPECT_GE(server.first_retained(), 1000001 - 8);
  EXPECT_EQ(server.DensityAt(1000000)[0], 3u);
  EXPECT_EQ(server.ActiveAt(0), 0u);        // evicted
  EXPECT_EQ(server.ActiveAt(999999), 0u);   // backfilled zero or evicted
}

TEST(ReleaseServerTest, UnlimitedRetentionKeepsLegacyBehavior) {
  const Grid grid(BoundingBox{0.0, 0.0, 100.0, 100.0}, 2);
  ReleaseServer server(grid);
  for (int64_t t = 0; t < 50; ++t) {
    ASSERT_TRUE(server.OnRound(MakeRound(grid, t, 1)).ok());
  }
  EXPECT_EQ(server.retention_rounds(), 0);
  EXPECT_EQ(server.first_retained(), 0);
  EXPECT_EQ(server.ActiveAt(0), 4u);
}

TEST(PrivacyExtremesTest, WindowOneIsEventLevel) {
  // w = 1 degenerates to event-level LDP (paper SII-B): every user may
  // report at every timestamp under population division.
  const ServerFixture fx;
  RetraSynConfig config = fx.EngineConfig();
  config.window = 1;
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  EXPECT_FALSE(engine.report_tracker().HasViolation());
  // With w = 1 and recycling every timestamp, the engine can use a large
  // share of all observations.
  EXPECT_GT(engine.total_reports(),
            fx.feeder->cell_streams().TotalPoints() / 4);
}

TEST(PrivacyExtremesTest, WindowEqualToHorizonIsUserLevel) {
  // w = stream horizon: each user reports at most once over the whole run —
  // user-level LDP on the finite stream.
  const ServerFixture fx;
  RetraSynConfig config = fx.EngineConfig();
  config.window = static_cast<int>(fx.feeder->num_timestamps());
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  EXPECT_FALSE(engine.report_tracker().HasViolation());
  // No user may appear twice: total reports <= number of users.
  EXPECT_LE(engine.total_reports(), fx.db.streams().size());
}

}  // namespace
}  // namespace retrasyn
