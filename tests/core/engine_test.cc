#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct EngineFixture {
  EngineFixture(int64_t horizon = 60, uint32_t users = 150, uint64_t seed = 7)
      : grid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 4), states(grid) {
    RandomWalkConfig config;
    config.num_timestamps = horizon;
    config.initial_users = users;
    config.mean_arrivals = users / 15.0;
    config.quit_probability = 0.04;
    Rng rng(seed);
    db = GenerateRandomWalkStreams(config, rng);
    feeder = std::make_unique<StreamFeeder>(db, grid, states);
  }

  void Run(RetraSynEngine& engine) const {
    for (int64_t t = 0; t < feeder->num_timestamps(); ++t) {
      engine.Observe(feeder->Batch(t));
    }
  }

  Grid grid;
  StateSpace states;
  StreamDatabase db;
  std::unique_ptr<StreamFeeder> feeder;
};

RetraSynConfig BaseConfig(DivisionStrategy division, AllocationKind kind) {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.division = division;
  config.allocation.kind = kind;
  config.lambda = 12.0;
  config.seed = 3;
  return config;
}

struct StrategyParam {
  DivisionStrategy division;
  AllocationKind allocation;
};

class EngineStrategyTest : public testing::TestWithParam<StrategyParam> {};

TEST_P(EngineStrategyTest, RunsAndProducesValidSynthetic) {
  const EngineFixture fx;
  RetraSynEngine engine(fx.states,
                        BaseConfig(GetParam().division, GetParam().allocation));
  fx.Run(engine);
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  EXPECT_GT(syn.streams().size(), 0u);
  for (const CellStream& s : syn.streams()) {
    EXPECT_GE(s.enter_time, 0);
    EXPECT_LE(s.end_time(), fx.feeder->num_timestamps());
    for (size_t i = 1; i < s.cells.size(); ++i) {
      EXPECT_TRUE(fx.grid.AreNeighbors(s.cells[i - 1], s.cells[i]));
    }
  }
}

TEST_P(EngineStrategyTest, WEventGuaranteeHolds) {
  const EngineFixture fx;
  const RetraSynConfig config =
      BaseConfig(GetParam().division, GetParam().allocation);
  RetraSynEngine engine(fx.states, config);
  fx.Run(engine);
  if (GetParam().division == DivisionStrategy::kBudget) {
    // No sliding window may spend more than epsilon.
    EXPECT_LE(engine.budget_ledger().MaxWindowSpend(), config.epsilon + 1e-9);
  } else {
    // No user may report twice within a window.
    EXPECT_FALSE(engine.report_tracker().HasViolation());
    EXPECT_GT(engine.total_reports(), 0u);
  }
}

TEST_P(EngineStrategyTest, SyntheticSizeTracksRealActiveCounts) {
  const EngineFixture fx;
  RetraSynEngine engine(fx.states,
                        BaseConfig(GetParam().division, GetParam().allocation));
  fx.Run(engine);
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  // With enter/quit modeling on, the active counts must match exactly from
  // the first collection onwards.
  for (int64_t t = 1; t < fx.feeder->num_timestamps(); ++t) {
    EXPECT_EQ(syn.ActiveCount(t), fx.db.ActiveCount(t)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EngineStrategyTest,
    testing::Values(
        StrategyParam{DivisionStrategy::kBudget, AllocationKind::kAdaptive},
        StrategyParam{DivisionStrategy::kBudget, AllocationKind::kUniform},
        StrategyParam{DivisionStrategy::kBudget, AllocationKind::kSample},
        StrategyParam{DivisionStrategy::kPopulation, AllocationKind::kAdaptive},
        StrategyParam{DivisionStrategy::kPopulation, AllocationKind::kUniform},
        StrategyParam{DivisionStrategy::kPopulation, AllocationKind::kSample},
        StrategyParam{DivisionStrategy::kPopulation, AllocationKind::kRandom}),
    [](const testing::TestParamInfo<StrategyParam>& info) {
      return std::string(DivisionStrategyName(info.param.division)) + "_" +
             AllocationKindName(info.param.allocation);
    });

TEST(EngineTest, NamesEncodeVariant) {
  const EngineFixture fx(10, 20);
  {
    RetraSynEngine e(fx.states, BaseConfig(DivisionStrategy::kPopulation,
                                           AllocationKind::kAdaptive));
    EXPECT_EQ(e.name(), "RetraSynp-Adaptive");
  }
  {
    RetraSynConfig c =
        BaseConfig(DivisionStrategy::kBudget, AllocationKind::kUniform);
    c.use_dmu = false;
    RetraSynEngine e(fx.states, c);
    EXPECT_EQ(e.name(), "AllUpdateb-Uniform");
  }
  {
    RetraSynConfig c =
        BaseConfig(DivisionStrategy::kPopulation, AllocationKind::kAdaptive);
    c.use_eq = false;
    RetraSynEngine e(fx.states, c);
    EXPECT_EQ(e.name(), "NoEQp-Adaptive");
  }
}

TEST(EngineTest, NoEqVariantFreezesPopulationAndNeverTerminates) {
  const EngineFixture fx;
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kPopulation, AllocationKind::kAdaptive);
  config.use_eq = false;
  RetraSynEngine engine(fx.states, config);
  fx.Run(engine);
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  // All synthetic streams share one enter time and survive to the horizon.
  ASSERT_GT(syn.streams().size(), 0u);
  const int64_t t0 = syn.streams()[0].enter_time;
  for (const CellStream& s : syn.streams()) {
    EXPECT_EQ(s.enter_time, t0);
    EXPECT_EQ(s.end_time(), fx.feeder->num_timestamps());
  }
}

TEST(EngineTest, AllUpdateVariantStillSatisfiesPrivacyDiscipline) {
  const EngineFixture fx;
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kBudget, AllocationKind::kAdaptive);
  config.use_dmu = false;
  RetraSynEngine engine(fx.states, config);
  fx.Run(engine);
  EXPECT_LE(engine.budget_ledger().MaxWindowSpend(), config.epsilon + 1e-9);
}

TEST(EngineTest, PerUserCollectionModeWorks) {
  const EngineFixture fx(30, 60);
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kPopulation, AllocationKind::kUniform);
  config.collection_mode = CollectionMode::kPerUser;
  RetraSynEngine engine(fx.states, config);
  fx.Run(engine);
  const CellStreamSet syn = engine.Finish(30);
  EXPECT_GT(syn.TotalPoints(), 0u);
  EXPECT_FALSE(engine.report_tracker().HasViolation());
}

TEST(EngineTest, DeterministicGivenSeed) {
  const EngineFixture fx(40, 80);
  auto run_once = [&]() {
    RetraSynEngine engine(fx.states, BaseConfig(DivisionStrategy::kPopulation,
                                                AllocationKind::kAdaptive));
    for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
      engine.Observe(fx.feeder->Batch(t));
    }
    return engine.Finish(fx.feeder->num_timestamps());
  };
  const CellStreamSet a = run_once();
  const CellStreamSet b = run_once();
  ASSERT_EQ(a.streams().size(), b.streams().size());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time);
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells);
  }
}

TEST(EngineTest, ComponentTimesAccumulate) {
  const EngineFixture fx(30, 60);
  RetraSynEngine engine(fx.states, BaseConfig(DivisionStrategy::kPopulation,
                                              AllocationKind::kAdaptive));
  fx.Run(engine);
  const ComponentTimes& times = engine.component_times();
  EXPECT_EQ(times.synthesis.count(), 30);
  EXPECT_GE(times.TotalMeanPerTimestamp(), 0.0);
}

TEST(EngineTest, ReportsNeverExceedOnePerUserPerWindow) {
  // Also exercised with the Sample strategy where all users report at window
  // boundaries -- the recycling path must line up exactly.
  const EngineFixture fx(55, 120);
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kPopulation, AllocationKind::kSample);
  RetraSynEngine engine(fx.states, config);
  fx.Run(engine);
  EXPECT_FALSE(engine.report_tracker().HasViolation());
  EXPECT_GT(engine.total_reports(), 0u);
}

TEST(EngineTest, RandomAllocationRejectedForBudgetDivision) {
  const EngineFixture fx(10, 20);
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kBudget, AllocationKind::kRandom);
  EXPECT_DEATH(RetraSynEngine(fx.states, config),
               "only defined under population division");
}

TimestampBatch QuitBatch(const StateSpace& states, int64_t t, uint32_t index,
                         CellId at) {
  TimestampBatch batch;
  batch.t = t;
  UserObservation obs;
  obs.user_index = index;
  obs.state = states.QuitIndex(at);
  obs.is_quit = true;
  batch.observations.push_back(obs);
  return batch;
}

TimestampBatch EnterBatch(const StateSpace& states, int64_t t, uint32_t index,
                          CellId at) {
  TimestampBatch batch;
  batch.t = t;
  batch.num_active = 1;
  UserObservation obs;
  obs.user_index = index;
  obs.state = states.EnterIndex(at);
  obs.is_enter = true;
  batch.observations.push_back(obs);
  return batch;
}

TEST(EngineTest, RetiresQuitIndexExactlyOneWindowAfterQuit) {
  // Hand-built batches pin the retire boundary: a stream quitting at round q
  // surfaces in retired_last_round() at the batch for q + window, not before.
  const EngineFixture fx(10, 20);
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kPopulation, AllocationKind::kAdaptive);
  config.window = 3;
  RetraSynEngine engine(fx.states, config);
  const CellId cell = fx.grid.Cell(1, 1);

  engine.Observe(EnterBatch(fx.states, 0, 0, cell));
  engine.Observe(QuitBatch(fx.states, 1, 0, cell));
  for (int64_t t = 2; t < 4; ++t) {
    TimestampBatch empty;
    empty.t = t;
    engine.Observe(empty);
    EXPECT_TRUE(engine.retired_last_round().empty()) << "t=" << t;
  }
  TimestampBatch boundary;
  boundary.t = 4;  // quit round 1 + window 3
  engine.Observe(boundary);
  ASSERT_EQ(engine.retired_last_round().size(), 1u);
  EXPECT_EQ(engine.retired_last_round()[0], 0u);
  EXPECT_EQ(engine.total_retired(), 1u);
  // The slot is reusable: a new stream on index 0 is eligible again (it gets
  // registered active and can be chosen), and the dense state never grew
  // past the single slot.
  engine.Observe(EnterBatch(fx.states, 5, 0, cell));
  EXPECT_EQ(engine.dense_user_slots(), 1u);
  EXPECT_FALSE(engine.report_tracker().HasViolation());
}

TEST(EngineTest, RecyclingOffKeepsQuittedSlotsForever) {
  const EngineFixture fx(10, 20);
  RetraSynConfig config =
      BaseConfig(DivisionStrategy::kPopulation, AllocationKind::kAdaptive);
  config.window = 3;
  config.recycle_stream_indices = false;
  RetraSynEngine engine(fx.states, config);
  const CellId cell = fx.grid.Cell(1, 1);
  engine.Observe(EnterBatch(fx.states, 0, 0, cell));
  engine.Observe(QuitBatch(fx.states, 1, 0, cell));
  for (int64_t t = 2; t < 8; ++t) {
    TimestampBatch empty;
    empty.t = t;
    engine.Observe(empty);
    EXPECT_TRUE(engine.retired_last_round().empty()) << "t=" << t;
  }
  EXPECT_EQ(engine.total_retired(), 0u);
}

}  // namespace
}  // namespace retrasyn
