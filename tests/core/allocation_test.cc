#include "core/allocation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

AllocationConfig MakeConfig(AllocationKind kind) {
  AllocationConfig config;
  config.kind = kind;
  return config;
}

TEST(AllocationTest, UniformPortionIsOneOverW) {
  PortionAllocator alloc(MakeConfig(AllocationKind::kUniform), 20, 10);
  for (int64_t t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(alloc.Portion(t), 1.0 / 20.0);
  }
}

TEST(AllocationTest, SampleFiresAtWindowStartsOnly) {
  PortionAllocator alloc(MakeConfig(AllocationKind::kSample), 10, 10);
  for (int64_t t = 0; t < 40; ++t) {
    EXPECT_DOUBLE_EQ(alloc.Portion(t), t % 10 == 0 ? 1.0 : 0.0);
  }
}

TEST(AllocationTest, RandomReturnsZeroPortion) {
  // Random scheduling happens per-user in the engine; the portion is unused.
  PortionAllocator alloc(MakeConfig(AllocationKind::kRandom), 10, 10);
  EXPECT_DOUBLE_EQ(alloc.Portion(5), 0.0);
}

TEST(AllocationTest, AdaptiveFirstRoundIsOneOverW) {
  PortionAllocator alloc(MakeConfig(AllocationKind::kAdaptive), 25, 10);
  EXPECT_DOUBLE_EQ(alloc.Portion(0), 1.0 / 25.0);
}

TEST(AllocationTest, DeviationZeroWithShortHistory) {
  PortionAllocator alloc(MakeConfig(AllocationKind::kAdaptive), 10, 4);
  EXPECT_DOUBLE_EQ(alloc.ComputeDeviation(), 0.0);
  alloc.RecordRound({0.1, 0.2, 0.3, 0.4}, 2);
  EXPECT_DOUBLE_EQ(alloc.ComputeDeviation(), 0.0);  // needs >= 2 snapshots
}

TEST(AllocationTest, DeviationMatchesHandComputation) {
  PortionAllocator alloc(MakeConfig(AllocationKind::kAdaptive), 10, 2);
  alloc.RecordRound({0.5, 0.5}, 0);
  alloc.RecordRound({0.7, 0.1}, 0);
  // Dev = |0.7 - 0.5| + |0.1 - 0.5| = 0.6
  EXPECT_NEAR(alloc.ComputeDeviation(), 0.6, 1e-12);
  alloc.RecordRound({0.6, 0.3}, 0);
  // Prior mean = ((0.5+0.7)/2, (0.5+0.1)/2) = (0.6, 0.3): Dev = 0.
  EXPECT_NEAR(alloc.ComputeDeviation(), 0.0, 1e-12);
}

TEST(AllocationTest, SteadyStreamFallsBackToProbeFloor) {
  // When the model never changes, Dev = 0 and the portion drops to the probe
  // floor 1/(2w) instead of starving collection entirely.
  PortionAllocator alloc(MakeConfig(AllocationKind::kAdaptive), 10, 3);
  for (int i = 0; i < 8; ++i) alloc.RecordRound({0.2, 0.3, 0.5}, 0);
  EXPECT_DOUBLE_EQ(alloc.Portion(8), 0.05);
}

TEST(AllocationTest, ExplicitMinPortionOverridesAuto) {
  AllocationConfig config = MakeConfig(AllocationKind::kAdaptive);
  config.min_portion = 0.0;  // disable the probe floor entirely
  PortionAllocator alloc(config, 10, 3);
  for (int i = 0; i < 8; ++i) alloc.RecordRound({0.2, 0.3, 0.5}, 0);
  EXPECT_DOUBLE_EQ(alloc.Portion(8), 0.0);
}

TEST(AllocationTest, VolatileStreamGetsLargerPortion) {
  PortionAllocator steady(MakeConfig(AllocationKind::kAdaptive), 10, 2);
  PortionAllocator volatile_alloc(MakeConfig(AllocationKind::kAdaptive), 10, 2);
  for (int i = 0; i < 6; ++i) {
    steady.RecordRound({0.5, 0.5}, 0);
    volatile_alloc.RecordRound(
        {i % 2 == 0 ? 0.9 : 0.1, i % 2 == 0 ? 0.1 : 0.9}, 0);
  }
  EXPECT_GT(volatile_alloc.Portion(6), steady.Portion(6));
}

TEST(AllocationTest, PortionCappedAtMaxPortion) {
  AllocationConfig config = MakeConfig(AllocationKind::kAdaptive);
  config.max_portion = 0.6;
  config.alpha = 1000.0;  // would explode without the cap
  PortionAllocator alloc(config, 5, 2);
  alloc.RecordRound({0.0, 1.0}, 0);
  alloc.RecordRound({1.0, 0.0}, 0);
  EXPECT_DOUBLE_EQ(alloc.Portion(2), 0.6);
}

TEST(AllocationTest, HighSignificantRatioShrinksPortion) {
  // Eq. 10's (1 - mean |S*|/|S|) factor: many recent significant transitions
  // signal rapid change ahead, so the portion is reduced to avoid premature
  // exhaustion.
  PortionAllocator low_ratio(MakeConfig(AllocationKind::kAdaptive), 10, 4);
  PortionAllocator high_ratio(MakeConfig(AllocationKind::kAdaptive), 10, 4);
  std::vector<double> a{0.9, 0.1, 0.0, 0.0};
  std::vector<double> b{0.1, 0.9, 0.0, 0.0};
  for (int i = 0; i < 6; ++i) {
    low_ratio.RecordRound(i % 2 == 0 ? a : b, 0);
    high_ratio.RecordRound(i % 2 == 0 ? a : b, 4);
  }
  EXPECT_GT(low_ratio.Portion(6), high_ratio.Portion(6));
  // Ratio 1 zeroes Eq. 10's factor; only the probe floor remains.
  EXPECT_DOUBLE_EQ(high_ratio.Portion(6), 0.05);
}

TEST(AllocationTest, LargerWindowSmallerPortion) {
  PortionAllocator small_w(MakeConfig(AllocationKind::kAdaptive), 10, 2);
  PortionAllocator large_w(MakeConfig(AllocationKind::kAdaptive), 50, 2);
  for (int i = 0; i < 6; ++i) {
    const std::vector<double> f{i % 2 == 0 ? 0.8 : 0.2,
                                i % 2 == 0 ? 0.2 : 0.8};
    small_w.RecordRound(f, 0);
    large_w.RecordRound(f, 0);
  }
  EXPECT_GT(small_w.Portion(6), large_w.Portion(6));
}

TEST(AllocationTest, HistoryBoundedByKappa) {
  AllocationConfig config = MakeConfig(AllocationKind::kAdaptive);
  config.kappa = 3;
  PortionAllocator alloc(config, 10, 1);
  // Ancient history must stop influencing the deviation.
  for (int i = 0; i < 100; ++i) alloc.RecordRound({1.0}, 0);
  for (int i = 0; i < 10; ++i) alloc.RecordRound({0.5}, 0);
  EXPECT_NEAR(alloc.ComputeDeviation(), 0.0, 1e-12);
}

TEST(AllocationTest, MeanSignificantRatio) {
  AllocationConfig config = MakeConfig(AllocationKind::kAdaptive);
  config.kappa = 2;
  PortionAllocator alloc(config, 10, 10);
  alloc.RecordRound(std::vector<double>(10, 0.1), 10);  // evicted later
  alloc.RecordRound(std::vector<double>(10, 0.1), 2);
  alloc.RecordRound(std::vector<double>(10, 0.1), 4);
  // Last kappa=2 ratios: 0.2, 0.4.
  EXPECT_NEAR(alloc.MeanSignificantRatio(), 0.3, 1e-12);
}

TEST(AllocationKindNameTest, Names) {
  EXPECT_STREQ(AllocationKindName(AllocationKind::kAdaptive), "Adaptive");
  EXPECT_STREQ(AllocationKindName(AllocationKind::kUniform), "Uniform");
  EXPECT_STREQ(AllocationKindName(AllocationKind::kSample), "Sample");
  EXPECT_STREQ(AllocationKindName(AllocationKind::kRandom), "Random");
}

}  // namespace
}  // namespace retrasyn
