#include "core/dmu.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ldp/frequency_oracle.h"

namespace retrasyn {
namespace {

TEST(DmuTest, SelectsStatesWithLargeBias) {
  const double eps = 1.0;
  const uint64_t n = 1000;
  const double var = OueFrequencyVariance(eps, n);
  const double big = std::sqrt(var) * 3.0;
  const double small = std::sqrt(var) * 0.3;

  std::vector<double> model{0.1, 0.2, 0.3, 0.4};
  std::vector<double> fresh{0.1 + big, 0.2 + small, 0.3 - big, 0.4};
  const DmuDecision d = SelectSignificantTransitions(model, fresh, eps, n);
  EXPECT_EQ(d.selected, (std::vector<StateId>{0, 2}));
  EXPECT_NEAR(d.update_error, var, 1e-15);
}

TEST(DmuTest, NoSelectionWhenModelMatches) {
  std::vector<double> model{0.25, 0.25, 0.25, 0.25};
  const DmuDecision d =
      SelectSignificantTransitions(model, model, 1.0, 1000);
  EXPECT_TRUE(d.selected.empty());
  EXPECT_DOUBLE_EQ(d.objective, 0.0);
}

TEST(DmuTest, EverythingSelectedWhenNoiseIsTiny) {
  // Huge population -> negligible perturbation variance -> any deviation is
  // worth updating.
  std::vector<double> model{0.0, 0.0, 0.0};
  std::vector<double> fresh{0.1, 0.2, 0.3};
  const DmuDecision d =
      SelectSignificantTransitions(model, fresh, 2.0, 100000000);
  EXPECT_EQ(d.selected.size(), 3u);
}

TEST(DmuTest, NothingSelectedWhenNoiseDominates) {
  // Tiny population -> huge variance -> approximating always wins.
  std::vector<double> model{0.0, 0.5};
  std::vector<double> fresh{0.1, 0.4};
  const DmuDecision d = SelectSignificantTransitions(model, fresh, 0.1, 2);
  EXPECT_TRUE(d.selected.empty());
}

TEST(DmuTest, ObjectiveAccountsBothTerms) {
  const double eps = 1.0;
  const uint64_t n = 500;
  const double var = OueFrequencyVariance(eps, n);
  std::vector<double> model{0.0, 0.0};
  const double big = std::sqrt(var) * 2.0;
  const double small = std::sqrt(var) * 0.5;
  std::vector<double> fresh{big, small};
  const DmuDecision d = SelectSignificantTransitions(model, fresh, eps, n);
  // State 0 selected (cost var), state 1 approximated (cost small^2).
  EXPECT_NEAR(d.objective, var + small * small, 1e-12);
}

TEST(DmuTest, MoreBudgetSelectsMore) {
  // Higher epsilon shrinks Err_upd, so the significant set can only grow.
  Rng rng(1);
  std::vector<double> model(32), fresh(32);
  for (size_t i = 0; i < model.size(); ++i) {
    model[i] = rng.UniformDouble() * 0.1;
    fresh[i] = model[i] + rng.Gaussian(0.0, 0.03);
  }
  const auto lo = SelectSignificantTransitions(model, fresh, 0.5, 500);
  const auto hi = SelectSignificantTransitions(model, fresh, 2.0, 500);
  EXPECT_GE(hi.selected.size(), lo.selected.size());
  // lo's selection is a subset of hi's.
  for (StateId s : lo.selected) {
    EXPECT_TRUE(std::find(hi.selected.begin(), hi.selected.end(), s) !=
                hi.selected.end());
  }
}

class DmuBruteForceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DmuBruteForceTest, SeparableRuleIsExactMinimizer) {
  // Property: the per-state rule must attain the same objective as the
  // exhaustive 2^d search on random instances.
  Rng rng(GetParam());
  const uint32_t d = 10;
  std::vector<double> model(d), fresh(d);
  for (uint32_t i = 0; i < d; ++i) {
    model[i] = rng.UniformDouble() * 0.3;
    fresh[i] = rng.UniformDouble() * 0.3;
  }
  const double eps = 0.5 + rng.UniformDouble() * 1.5;
  const uint64_t n = 50 + rng.UniformInt(uint64_t{2000});
  const DmuDecision fast = SelectSignificantTransitions(model, fresh, eps, n);
  const DmuDecision brute =
      SelectSignificantTransitionsBruteForce(model, fresh, eps, n);
  EXPECT_NEAR(fast.objective, brute.objective, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DmuBruteForceTest,
                         testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace retrasyn
