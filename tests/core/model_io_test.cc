#include "core/model_io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"

namespace retrasyn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

class ModelIoTest : public testing::Test {
 protected:
  ModelIoTest() : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 3), states_(grid_) {}
  Grid grid_;
  StateSpace states_;
};

TEST_F(ModelIoTest, SaveLoadRoundTrip) {
  GlobalMobilityModel model(states_);
  Rng rng(3);
  std::vector<double> f(states_.size());
  for (double& x : f) x = rng.UniformDouble();
  model.ReplaceAll(f);

  const std::string path = TempPath("model_roundtrip.txt");
  ASSERT_TRUE(SaveMobilityModel(model, path).ok());

  GlobalMobilityModel restored(states_);
  ASSERT_TRUE(LoadMobilityModel(path, &restored).ok());
  EXPECT_TRUE(restored.initialized());
  for (StateId s = 0; s < states_.size(); ++s) {
    EXPECT_DOUBLE_EQ(restored.frequency(s), model.frequency(s)) << s;
  }
}

TEST_F(ModelIoTest, UninitializedModelRefusesToSave) {
  GlobalMobilityModel model(states_);
  const Status st = SaveMobilityModel(model, TempPath("never.txt"));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModelIoTest, GeometryMismatchRejected) {
  GlobalMobilityModel model(states_);
  model.ReplaceAll(std::vector<double>(states_.size(), 0.1));
  const std::string path = TempPath("model_geom.txt");
  ASSERT_TRUE(SaveMobilityModel(model, path).ok());

  const Grid other_grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 4);
  const StateSpace other_states(other_grid);
  GlobalMobilityModel target(other_states);
  const Status st = LoadMobilityModel(path, &target);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(target.initialized());
}

TEST_F(ModelIoTest, GarbageFileRejected) {
  const std::string path = TempPath("model_garbage.txt");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a model\n1 2 3\n", f);
  std::fclose(f);
  GlobalMobilityModel model(states_);
  EXPECT_EQ(LoadMobilityModel(path, &model).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, TruncatedFileRejected) {
  GlobalMobilityModel model(states_);
  model.ReplaceAll(std::vector<double>(states_.size(), 0.2));
  const std::string path = TempPath("model_trunc.txt");
  ASSERT_TRUE(SaveMobilityModel(model, path).ok());
  // Chop the file roughly in half.
  std::string content;
  {
    std::ifstream in(path);
    std::string line;
    int keep = static_cast<int>(states_.size()) / 2;
    std::getline(in, line);
    content = line + "\n";
    for (int i = 0; i < keep && std::getline(in, line); ++i) {
      content += line + "\n";
    }
  }
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
  GlobalMobilityModel target(states_);
  EXPECT_EQ(LoadMobilityModel(path, &target).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, MissingFileIsIOError) {
  GlobalMobilityModel model(states_);
  EXPECT_EQ(LoadMobilityModel("/no/such/model.txt", &model).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace retrasyn
