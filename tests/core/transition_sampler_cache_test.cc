// TransitionSamplerCache: the cached O(1) samplers must (a) draw from
// exactly the distributions the model derives linearly, (b) re-derive only
// what a DMU-selective update touched, and (c) rebuild fully on ReplaceAll
// or a collapsed dirty log.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/mobility_model.h"
#include "core/synthesizer.h"
#include "core/transition_sampler_cache.h"
#include "geo/grid.h"
#include "geo/state_space.h"

namespace retrasyn {
namespace {

class TransitionSamplerCacheTest : public testing::Test {
 protected:
  TransitionSamplerCacheTest()
      : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 6),
        states_(grid_),
        model_(states_) {}

  std::vector<double> RandomFrequencies(uint64_t seed) {
    Rng rng(seed);
    std::vector<double> f(states_.size());
    for (double& x : f) x = rng.UniformDouble() * 0.02;
    return f;
  }

  Grid grid_;
  StateSpace states_;
  GlobalMobilityModel model_;
};

TEST_F(TransitionSamplerCacheTest, FirstSyncIsAFullRebuild) {
  model_.ReplaceAll(RandomFrequencies(1));
  TransitionSamplerCache cache(states_);
  EXPECT_FALSE(cache.synced_once());
  cache.Sync(model_);
  EXPECT_TRUE(cache.synced_once());
  EXPECT_EQ(cache.stats().full_rebuilds, 1u);
  EXPECT_EQ(cache.stats().cell_rebuilds, grid_.NumCells());

  // Re-syncing an unchanged model is free.
  cache.Sync(model_);
  cache.Sync(model_);
  EXPECT_EQ(cache.stats().syncs, 1u);
  EXPECT_EQ(cache.stats().full_rebuilds, 1u);
}

TEST_F(TransitionSamplerCacheTest, SelectiveUpdateRebuildsOnlyTouchedCells) {
  model_.ReplaceAll(RandomFrequencies(2));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  const uint64_t cells_after_full = cache.stats().cell_rebuilds;

  // Touch one movement state of cell 7 and the enter state of cell 3.
  const CellId move_cell = 7, enter_cell = 3;
  std::vector<StateId> selected{states_.MoveOffset(move_cell),
                                states_.EnterIndex(enter_cell)};
  std::vector<double> fresh = RandomFrequencies(3);
  model_.UpdateStates(selected, fresh);
  cache.Sync(model_);
  EXPECT_EQ(cache.stats().full_rebuilds, 1u);  // still only the initial one
  EXPECT_EQ(cache.stats().cell_rebuilds, cells_after_full + 1);
  EXPECT_EQ(cache.stats().enter_rebuilds, 2u);
  EXPECT_EQ(cache.stats().quit_rebuilds, 1u);  // no quit state touched

  // A quit-state update re-derives that cell's Eq. 8 term and the global
  // quitting distribution, but not the enter table.
  model_.UpdateStates({states_.QuitIndex(11)}, fresh);
  cache.Sync(model_);
  EXPECT_EQ(cache.stats().cell_rebuilds, cells_after_full + 2);
  EXPECT_EQ(cache.stats().enter_rebuilds, 2u);
  EXPECT_EQ(cache.stats().quit_rebuilds, 2u);
}

TEST_F(TransitionSamplerCacheTest, ReplaceAllForcesFullRebuild) {
  model_.ReplaceAll(RandomFrequencies(4));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  model_.ReplaceAll(RandomFrequencies(5));
  cache.Sync(model_);
  EXPECT_EQ(cache.stats().full_rebuilds, 2u);
}

TEST_F(TransitionSamplerCacheTest, OverflowingDirtyLogCollapsesToFullRebuild) {
  model_.ReplaceAll(RandomFrequencies(6));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  // Push more dirty states than |S| without syncing: the model's log
  // collapses and the next sync is a (single) full rebuild.
  std::vector<StateId> all(states_.size());
  for (StateId s = 0; s < states_.size(); ++s) all[s] = s;
  const std::vector<double> fresh = RandomFrequencies(7);
  model_.UpdateStates(all, fresh);
  model_.UpdateStates(all, fresh);
  cache.Sync(model_);
  EXPECT_EQ(cache.stats().full_rebuilds, 2u);
  EXPECT_EQ(model_.dirty_log().size(), 0u);
}

TEST_F(TransitionSamplerCacheTest, CachedValuesTrackSelectiveUpdates) {
  model_.ReplaceAll(RandomFrequencies(8));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  for (CellId c = 0; c < grid_.NumCells(); ++c) {
    EXPECT_DOUBLE_EQ(cache.QuitProbability(c), model_.QuitProbability(c));
  }
  EXPECT_EQ(cache.QuitDistribution(), model_.QuitDistribution());

  // Selectively zero one cell's quit state; the cached views must follow.
  std::vector<double> fresh = model_.frequencies();
  fresh[states_.QuitIndex(5)] = 0.0;
  model_.UpdateStates({states_.QuitIndex(5)}, fresh);
  cache.Sync(model_);
  for (CellId c = 0; c < grid_.NumCells(); ++c) {
    EXPECT_DOUBLE_EQ(cache.QuitProbability(c), model_.QuitProbability(c));
  }
  EXPECT_EQ(cache.QuitDistribution(), model_.QuitDistribution());
}

TEST_F(TransitionSamplerCacheTest, NextCellSamplerMatchesLinearDistribution) {
  model_.ReplaceAll(RandomFrequencies(9));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  // Chi-square of cached next-cell draws against the exact movement weights
  // for a few representative cells (corner, edge, interior).
  const int n = 120000;
  for (CellId from : {CellId{0}, CellId{3}, CellId{14}}) {
    const auto& nbrs = grid_.Neighbors(from);
    const StateId offset = states_.MoveOffset(from);
    double total = 0.0;
    std::vector<double> weights(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      weights[i] = std::max(0.0, model_.frequency(offset + i));
      total += weights[i];
    }
    ASSERT_GT(total, 0.0);
    Rng rng(200 + from);
    std::vector<int> counts(grid_.NumCells(), 0);
    for (int i = 0; i < n; ++i) ++counts[cache.SampleNextCell(from, rng)];
    double chi2 = 0.0;
    int dof = -1;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const double expected = n * weights[i] / total;
      if (expected == 0.0) continue;
      const int got = counts[nbrs[i]];
      chi2 += (got - expected) * (got - expected) / expected;
      ++dof;
    }
    // 99.9th percentile for dof <= 8 is below 26.1.
    EXPECT_LT(chi2, 26.1) << "cell " << from;
  }
}

TEST_F(TransitionSamplerCacheTest, ZeroMassCellDwellsInPlace) {
  // A model with zero movement mass out of cell 0 must dwell, exactly like
  // the linear path's sentinel fallback.
  std::vector<double> f(states_.size(), 0.01);
  const StateId offset = states_.MoveOffset(0);
  for (size_t i = 0; i < grid_.Neighbors(0).size(); ++i) f[offset + i] = 0.0;
  model_.ReplaceAll(f);
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(cache.SampleNextCell(0, rng), 0u);
}

TEST_F(TransitionSamplerCacheTest, EnterSamplerMatchesEnterDistribution) {
  model_.ReplaceAll(RandomFrequencies(10));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  const std::vector<double> enter = model_.EnterDistribution();
  Rng rng(19);
  const int n = 200000;
  std::vector<int> counts(grid_.NumCells(), 0);
  for (int i = 0; i < n; ++i) {
    const CellId c = cache.SampleEnterCell(rng);
    ASSERT_LT(c, grid_.NumCells());
    ++counts[c];
  }
  double chi2 = 0.0;
  for (CellId c = 0; c < grid_.NumCells(); ++c) {
    const double expected = n * enter[c];
    if (expected < 1.0) continue;
    chi2 += (counts[c] - expected) * (counts[c] - expected) / expected;
  }
  // dof ~ 35; 99.9th percentile ~ 66.6.
  EXPECT_LT(chi2, 66.6);
}

TEST_F(TransitionSamplerCacheTest, NoMassSentinelsMirrorDiscreteContract) {
  // Empty model: every sampler reports "no mass" the way Discrete does, so
  // callers keep their uniform fallbacks.
  model_.ReplaceAll(std::vector<double>(states_.size(), 0.0));
  TransitionSamplerCache cache(states_);
  cache.Sync(model_);
  Rng rng(23);
  EXPECT_EQ(cache.SampleEnterCell(rng), grid_.NumCells());
  EXPECT_EQ(cache.SampleMoveMarginalCell(rng), grid_.NumCells());
  EXPECT_EQ(cache.SampleNextCell(4, rng), 4u);
  for (double q : cache.QuitDistribution()) EXPECT_EQ(q, 0.0);
}

TEST_F(TransitionSamplerCacheTest, SpawnDoesNotRederivePerStream) {
  // Satellite regression: Spawn used to recompute the O(|C|) entering
  // distribution for every spawned stream. With the cache, spawning any
  // number of streams triggers at most the initial full derivation — the
  // enter table is rebuilt once per model change, never per stream.
  model_.ReplaceAll(RandomFrequencies(11));
  SynthesizerConfig config;
  config.lambda = 20.0;
  Synthesizer synthesizer(states_, config);
  Rng rng(29);
  synthesizer.Initialize(model_, 5000, 0, rng);
  EXPECT_EQ(synthesizer.cache_stats().enter_rebuilds, 1u);
  EXPECT_EQ(synthesizer.cache_stats().full_rebuilds, 1u);

  // Steps without model changes derive nothing further, regardless of how
  // many points are sampled.
  for (int64_t t = 1; t <= 5; ++t) {
    synthesizer.Step(model_, 5000, t, rng);
  }
  EXPECT_EQ(synthesizer.cache_stats().enter_rebuilds, 1u);
  EXPECT_EQ(synthesizer.cache_stats().cell_rebuilds, grid_.NumCells());
}

}  // namespace
}  // namespace retrasyn
