#include "core/mobility_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"

namespace retrasyn {
namespace {

// All tests use a 2x2 grid: 4 cells, all mutually adjacent, so each cell has
// 4 movement states; |S| = 16 + 4 + 4 = 24.
class MobilityModelTest : public testing::Test {
 protected:
  MobilityModelTest()
      : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 2), states_(grid_) {}

  std::vector<double> ZeroFreqs() const {
    return std::vector<double>(states_.size(), 0.0);
  }

  Grid grid_;
  StateSpace states_;
};

TEST_F(MobilityModelTest, StartsUninitializedAndZero) {
  GlobalMobilityModel model(states_);
  EXPECT_FALSE(model.initialized());
  for (StateId s = 0; s < states_.size(); ++s) {
    EXPECT_DOUBLE_EQ(model.frequency(s), 0.0);
  }
}

TEST_F(MobilityModelTest, ReplaceAllClampsNegatives) {
  GlobalMobilityModel model(states_);
  std::vector<double> f = ZeroFreqs();
  f[0] = 0.5;
  f[1] = -0.3;
  model.ReplaceAll(f);
  EXPECT_TRUE(model.initialized());
  EXPECT_DOUBLE_EQ(model.frequency(0), 0.5);
  EXPECT_DOUBLE_EQ(model.frequency(1), 0.0);
}

TEST_F(MobilityModelTest, SelectiveUpdateLeavesOthersUntouched) {
  GlobalMobilityModel model(states_);
  std::vector<double> f = ZeroFreqs();
  f[2] = 0.2;
  f[3] = 0.4;
  model.ReplaceAll(f);

  std::vector<double> fresh = ZeroFreqs();
  fresh[2] = 0.9;
  fresh[3] = 0.1;
  model.UpdateStates({2}, fresh);
  EXPECT_DOUBLE_EQ(model.frequency(2), 0.9);
  EXPECT_DOUBLE_EQ(model.frequency(3), 0.4);  // untouched
}

TEST_F(MobilityModelTest, MoveAndQuitDistributionMatchesEquation6) {
  GlobalMobilityModel model(states_);
  std::vector<double> f = ZeroFreqs();
  // Out of cell 0: moves to neighbors {0,1,2,3} with f = .1/.2/.3/0 and
  // quit mass f_0Q = 0.4. Denominator = 0.1+0.2+0.3+0+0.4 = 1.0.
  const auto& nbrs = grid_.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  f[states_.MoveIndex(0, 0)] = 0.1;
  f[states_.MoveIndex(0, 1)] = 0.2;
  f[states_.MoveIndex(0, 2)] = 0.3;
  f[states_.MoveIndex(0, 3)] = 0.0;
  f[states_.QuitIndex(0)] = 0.4;
  model.ReplaceAll(f);

  const auto dist = model.MoveAndQuitDistribution(0);
  ASSERT_EQ(dist.size(), 5u);  // 4 neighbors + quit
  EXPECT_NEAR(dist[0], 0.1, 1e-12);
  EXPECT_NEAR(dist[1], 0.2, 1e-12);
  EXPECT_NEAR(dist[2], 0.3, 1e-12);
  EXPECT_NEAR(dist[3], 0.0, 1e-12);
  EXPECT_NEAR(dist[4], 0.4, 1e-12);
  EXPECT_NEAR(model.QuitProbability(0), 0.4, 1e-12);
}

TEST_F(MobilityModelTest, QuitTermEntersMovementDenominator) {
  // Paper's authenticity modification: Pr(m_ij) denominators include f_iQ.
  GlobalMobilityModel model(states_);
  std::vector<double> f = ZeroFreqs();
  f[states_.MoveIndex(1, 1)] = 0.3;
  f[states_.QuitIndex(1)] = 0.1;
  model.ReplaceAll(f);
  const auto dist = model.MoveAndQuitDistribution(1);
  // Pr(m_11) = 0.3 / (0.3 + 0.1) = 0.75
  double sum = 0.0;
  for (double d : dist) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(model.QuitProbability(1), 0.25, 1e-12);
}

TEST_F(MobilityModelTest, ZeroMassCellYieldsZeroDistribution) {
  GlobalMobilityModel model(states_);
  model.ReplaceAll(ZeroFreqs());
  const auto dist = model.MoveAndQuitDistribution(2);
  for (double d : dist) EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_DOUBLE_EQ(model.QuitProbability(2), 0.0);
}

TEST_F(MobilityModelTest, EnterDistributionNormalizes) {
  GlobalMobilityModel model(states_);
  std::vector<double> f = ZeroFreqs();
  f[states_.EnterIndex(0)] = 0.3;
  f[states_.EnterIndex(1)] = 0.1;
  f[states_.EnterIndex(3)] = -0.5;  // clamped away
  model.ReplaceAll(f);
  const auto enter = model.EnterDistribution();
  ASSERT_EQ(enter.size(), 4u);
  EXPECT_NEAR(enter[0], 0.75, 1e-12);
  EXPECT_NEAR(enter[1], 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(enter[2], 0.0);
  EXPECT_DOUBLE_EQ(enter[3], 0.0);
}

TEST_F(MobilityModelTest, QuitDistributionNormalizes) {
  GlobalMobilityModel model(states_);
  std::vector<double> f = ZeroFreqs();
  f[states_.QuitIndex(2)] = 0.2;
  f[states_.QuitIndex(3)] = 0.6;
  model.ReplaceAll(f);
  const auto quit = model.QuitDistribution();
  EXPECT_NEAR(quit[2], 0.25, 1e-12);
  EXPECT_NEAR(quit[3], 0.75, 1e-12);
}

TEST_F(MobilityModelTest, DistributionsSumToOneUnderRandomMass) {
  GlobalMobilityModel model(states_);
  Rng rng(3);
  std::vector<double> f(states_.size());
  for (double& x : f) x = rng.UniformDouble();
  model.ReplaceAll(f);
  for (CellId c = 0; c < grid_.NumCells(); ++c) {
    const auto dist = model.MoveAndQuitDistribution(c);
    double sum = 0.0;
    for (double d : dist) {
      EXPECT_GE(d, 0.0);
      sum += d;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace retrasyn
