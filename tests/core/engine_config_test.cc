// Tests for engine configuration surfaces added on top of Algorithm 1:
// estimate post-processing, the adaptive probe floor, and the live synthetic
// view used by real-time consumers.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "geo/grid.h"
#include "stream/hotspot_generator.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct Fixture {
  Fixture() : grid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 4), states(grid) {
    RandomWalkConfig config;
    config.num_timestamps = 50;
    config.initial_users = 200;
    config.mean_arrivals = 12.0;
    Rng rng(21);
    db = GenerateRandomWalkStreams(config, rng);
    feeder = std::make_unique<StreamFeeder>(db, grid, states);
  }
  Grid grid;
  StateSpace states;
  StreamDatabase db;
  std::unique_ptr<StreamFeeder> feeder;
};

RetraSynConfig BaseConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 12.0;
  config.seed = 4;
  return config;
}

TEST(EngineConfigTest, PostprocessModesAllRun) {
  const Fixture fx;
  for (Postprocess pp :
       {Postprocess::kNone, Postprocess::kClip, Postprocess::kNormSub}) {
    RetraSynConfig config = BaseConfig();
    config.postprocess = pp;
    RetraSynEngine engine(fx.states, config);
    for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
      engine.Observe(fx.feeder->Batch(t));
    }
    const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
    EXPECT_GT(syn.TotalPoints(), 0u) << static_cast<int>(pp);
  }
}

TEST(EngineConfigTest, NormSubFullReplaceModelMassIsOne) {
  // Under norm-sub every collected round's vector sums to 1; with full
  // replacement (AllUpdate) the model therefore carries exactly unit mass
  // after every collection. (With DMU, states from different rounds mix and
  // the global mass is no longer constrained.)
  const Fixture fx;
  RetraSynConfig config = BaseConfig();
  config.postprocess = Postprocess::kNormSub;
  config.use_dmu = false;
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    if (!engine.model().initialized()) continue;
    double mass = 0.0;
    for (double f : engine.model().frequencies()) mass += f;
    EXPECT_NEAR(mass, 1.0, 1e-6) << "t=" << t;
  }
}

TEST(EngineConfigTest, ClipModelIsNonNegative) {
  const Fixture fx;
  RetraSynConfig config = BaseConfig();
  config.postprocess = Postprocess::kClip;
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  for (double f : engine.model().frequencies()) {
    EXPECT_GE(f, 0.0);
  }
}

TEST(EngineConfigTest, ZeroMinPortionCanStarve) {
  // With the probe floor disabled, the adaptive strategy may legally stop
  // collecting; the engine must stay well-defined (model frozen, synthesis
  // continues).
  const Fixture fx;
  RetraSynConfig config = BaseConfig();
  config.allocation.min_portion = 0.0;
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  EXPECT_GT(syn.streams().size(), 0u);
  EXPECT_FALSE(engine.report_tracker().HasViolation());
}

TEST(EngineConfigTest, LiveViewTracksActivePopulation) {
  const Fixture fx;
  RetraSynEngine engine(fx.states, BaseConfig());
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
    if (!engine.synthesizer().initialized()) continue;
    // Live density sums to the live stream count, which matches the real
    // active population under size adjustment.
    const std::vector<uint32_t> density = engine.synthesizer().LiveDensity();
    uint64_t total = 0;
    for (uint32_t c : density) total += c;
    EXPECT_EQ(total, engine.synthesizer().num_live());
    EXPECT_EQ(engine.synthesizer().num_live(), fx.db.ActiveCount(t));
    // Live streams end at the current timestamp.
    for (const CellStream& s : engine.synthesizer().live_streams()) {
      EXPECT_EQ(s.end_time(), t + 1);
    }
  }
}

TEST(EngineConfigTest, BudgetAdaptiveSurvivesLargeWindowDepletion) {
  // Regression: with a large window the adaptive budget split can drive the
  // remaining window budget toward zero; rounds below the minimum meaningful
  // epsilon must be skipped (historically this produced 0/0 NaN estimates
  // through the vanishing OUE denominator and aborted).
  const Fixture fx;
  RetraSynConfig config = BaseConfig();
  config.division = DivisionStrategy::kBudget;
  config.window = 50;
  RetraSynEngine engine(fx.states, config);
  for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
    engine.Observe(fx.feeder->Batch(t));
  }
  EXPECT_LE(engine.budget_ledger().MaxWindowSpend(), config.epsilon + 1e-9);
  for (double f : engine.model().frequencies()) {
    EXPECT_TRUE(std::isfinite(f));
  }
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  EXPECT_GT(syn.TotalPoints(), 0u);
}

TEST(EngineConfigTest, LambdaControlsSyntheticLengths) {
  // Larger lambda suppresses the Eq. 8 quit probability, yielding longer
  // synthetic streams on data with real churn.
  HotspotGeneratorConfig data_config;
  data_config.num_timestamps = 120;
  data_config.initial_users = 600;
  data_config.mean_arrivals = 45.0;
  Rng rng(31);
  const StreamDatabase db = GenerateHotspotStreams(data_config, rng);
  const Grid grid(db.box(), 4);
  const StateSpace states(grid);
  const StreamFeeder feeder(db, grid, states);

  auto mean_length = [&](double lambda) {
    RetraSynConfig config = BaseConfig();
    config.lambda = lambda;
    RetraSynEngine engine(states, config);
    for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
      engine.Observe(feeder.Batch(t));
    }
    const CellStreamSet syn = engine.Finish(feeder.num_timestamps());
    return static_cast<double>(syn.TotalPoints()) / syn.streams().size();
  };
  EXPECT_LT(mean_length(3.0), mean_length(60.0));
}

TEST(ConfigValidateTest, AcceptsDefaultAndBaseConfigs) {
  EXPECT_TRUE(RetraSynConfig{}.Validate().ok());
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(ConfigValidateTest, RejectsNonPositiveEpsilon) {
  for (double eps : {0.0, -1.0, -0.001}) {
    RetraSynConfig config = BaseConfig();
    config.epsilon = eps;
    const Status st = config.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << eps;
    EXPECT_NE(st.message().find("epsilon"), std::string::npos) << eps;
  }
  RetraSynConfig config = BaseConfig();
  config.epsilon = std::numeric_limits<double>::infinity();
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.epsilon = std::nan("");
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigValidateTest, RejectsWindowBelowOne) {
  for (int w : {0, -1, -20}) {
    RetraSynConfig config = BaseConfig();
    config.window = w;
    const Status st = config.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << w;
    EXPECT_NE(st.message().find("window"), std::string::npos) << w;
  }
}

TEST(ConfigValidateTest, RejectsNonPositiveLambda) {
  for (double lambda : {0.0, -13.61}) {
    RetraSynConfig config = BaseConfig();
    config.lambda = lambda;
    const Status st = config.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << lambda;
    EXPECT_NE(st.message().find("lambda"), std::string::npos) << lambda;
  }
}

TEST(ConfigValidateTest, RejectsRandomAllocationUnderBudgetDivision) {
  RetraSynConfig config = BaseConfig();
  config.division = DivisionStrategy::kBudget;
  config.allocation.kind = AllocationKind::kRandom;
  const Status st = config.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("population"), std::string::npos);
}

TEST(ConfigValidateTest, RejectsOutOfRangePortions) {
  RetraSynConfig config = BaseConfig();
  config.allocation.max_portion = 0.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = BaseConfig();
  config.allocation.max_portion = 1.5;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = BaseConfig();
  config.allocation.min_portion = 2.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  // Negative min_portion means "auto" and stays valid.
  config = BaseConfig();
  config.allocation.min_portion = -1.0;
  EXPECT_TRUE(config.Validate().ok());
  // NaN portions must not slip through the range checks.
  config = BaseConfig();
  config.allocation.max_portion = std::nan("");
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = BaseConfig();
  config.allocation.min_portion = std::nan("");
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace retrasyn
