// Tests for the multi-threaded synthesis path (the paper's future-work
// acceleration): correctness invariants must hold for any thread count, and
// results must be reproducible for a fixed thread count.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/synthesizer.h"
#include "geo/grid.h"

namespace retrasyn {
namespace {

class ParallelSynthesizerTest : public testing::Test {
 protected:
  ParallelSynthesizerTest()
      : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 5),
        states_(grid_),
        model_(states_) {
    std::vector<double> f(states_.size(), 0.0);
    Rng rng(77);
    for (CellId c = 0; c < grid_.NumCells(); ++c) {
      for (StateId s : states_.MoveStatesFrom(c)) {
        f[s] = rng.UniformDouble() * 0.02;
      }
      f[states_.EnterIndex(c)] = rng.UniformDouble() * 0.02;
      f[states_.QuitIndex(c)] = rng.UniformDouble() * 0.004;
    }
    model_.ReplaceAll(f);
  }

  CellStreamSet Run(int num_threads, uint32_t population, int64_t horizon,
                    ThreadPool* pool = nullptr, bool use_cache = true) {
    SynthesizerConfig config;
    config.lambda = 40.0;
    config.num_threads = num_threads;
    config.use_sampler_cache = use_cache;
    Synthesizer synthesizer(states_, config);
    synthesizer.SetThreadPool(pool);
    Rng rng(5);
    synthesizer.Initialize(model_, population, 0, rng);
    for (int64_t t = 1; t < horizon; ++t) {
      synthesizer.Step(model_, population, t, rng);
    }
    return synthesizer.Finish(horizon);
  }

  Grid grid_;
  StateSpace states_;
  GlobalMobilityModel model_;
};

class ThreadCountTest : public ParallelSynthesizerTest,
                        public testing::WithParamInterface<int> {};

TEST_P(ThreadCountTest, InvariantsHoldForAnyThreadCount) {
  // Population large enough to actually engage the parallel path.
  const CellStreamSet out = Run(GetParam(), 12000, 10);
  EXPECT_GT(out.streams().size(), 0u);
  for (const CellStream& s : out.streams()) {
    EXPECT_GE(s.enter_time, 0);
    EXPECT_LE(s.end_time(), 10);
    for (size_t i = 1; i < s.cells.size(); ++i) {
      EXPECT_TRUE(grid_.AreNeighbors(s.cells[i - 1], s.cells[i]));
    }
  }
  // Size adjustment still exact at every timestamp.
  for (int64_t t = 0; t < 10; ++t) {
    EXPECT_EQ(out.ActiveCount(t), 12000u) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest, testing::Values(1, 2, 4, 8));

TEST_F(ParallelSynthesizerTest, DeterministicForFixedThreadCount) {
  const CellStreamSet a = Run(4, 12000, 8);
  const CellStreamSet b = Run(4, 12000, 8);
  ASSERT_EQ(a.streams().size(), b.streams().size());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time);
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells);
  }
}

TEST_F(ParallelSynthesizerTest, PoolAndNoPoolAreByteIdentical) {
  // The determinism contract of the chunked phase: the chunk schedule is a
  // pure function of (seed, num_threads, work size), so executing the chunks
  // on a persistent pool — of any size — must produce the same bytes as
  // executing them inline with no pool at all.
  const CellStreamSet inline_run = Run(4, 12000, 8, /*pool=*/nullptr);
  for (int pool_size : {1, 2, 8}) {
    ThreadPool pool(pool_size);
    const CellStreamSet pooled = Run(4, 12000, 8, &pool);
    ASSERT_EQ(inline_run.streams().size(), pooled.streams().size())
        << "pool size " << pool_size;
    for (size_t i = 0; i < inline_run.streams().size(); ++i) {
      ASSERT_EQ(inline_run.streams()[i].enter_time,
                pooled.streams()[i].enter_time);
      ASSERT_EQ(inline_run.streams()[i].cells, pooled.streams()[i].cells)
          << "stream " << i << " pool size " << pool_size;
    }
  }
}

TEST_F(ParallelSynthesizerTest, PooledRunsDeterministicAcrossRepeats) {
  // Multi-thread determinism pin: fixed seed + fixed num_threads on a live
  // pool, run twice, byte-identical output.
  ThreadPool pool(4);
  const CellStreamSet a = Run(4, 12000, 8, &pool);
  const CellStreamSet b = Run(4, 12000, 8, &pool);
  ASSERT_EQ(a.streams().size(), b.streams().size());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].enter_time, b.streams()[i].enter_time);
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells);
  }
}

TEST_F(ParallelSynthesizerTest, CachedSamplersPreserveStatistics) {
  // The alias-table hot path and the legacy linear scans draw from the same
  // distributions: aggregate cell-visit histograms must agree closely.
  const CellStreamSet cached = Run(1, 20000, 6, nullptr, /*use_cache=*/true);
  const CellStreamSet legacy = Run(1, 20000, 6, nullptr, /*use_cache=*/false);
  std::vector<double> h1(grid_.NumCells(), 0.0), h2(grid_.NumCells(), 0.0);
  for (const CellStream& s : cached.streams()) {
    for (CellId c : s.cells) ++h1[c];
  }
  for (const CellStream& s : legacy.streams()) {
    for (CellId c : s.cells) ++h2[c];
  }
  double t1 = 0, t2 = 0;
  for (size_t c = 0; c < h1.size(); ++c) {
    t1 += h1[c];
    t2 += h2[c];
  }
  ASSERT_GT(t1, 0);
  ASSERT_GT(t2, 0);
  for (size_t c = 0; c < h1.size(); ++c) {
    EXPECT_NEAR(h1[c] / t1, h2[c] / t2, 0.01) << "cell " << c;
  }
}

TEST_F(ParallelSynthesizerTest, SmallPopulationsStaySerial) {
  // Below the per-thread work threshold the serial path is used even when
  // threads are configured; outputs must match the single-threaded run
  // exactly (identical RNG consumption).
  const CellStreamSet serial = Run(1, 500, 10);
  const CellStreamSet configured = Run(8, 500, 10);
  ASSERT_EQ(serial.streams().size(), configured.streams().size());
  for (size_t i = 0; i < serial.streams().size(); ++i) {
    EXPECT_EQ(serial.streams()[i].cells, configured.streams()[i].cells);
  }
}

TEST_F(ParallelSynthesizerTest, ParallelPreservesPopulationStatistics) {
  // The parallel path must sample from the same distributions: compare the
  // aggregate cell-visit histograms of serial vs 4-thread runs.
  const CellStreamSet serial = Run(1, 20000, 6);
  const CellStreamSet parallel = Run(4, 20000, 6);
  std::vector<double> h1(grid_.NumCells(), 0.0), h2(grid_.NumCells(), 0.0);
  for (const CellStream& s : serial.streams()) {
    for (CellId c : s.cells) ++h1[c];
  }
  for (const CellStream& s : parallel.streams()) {
    for (CellId c : s.cells) ++h2[c];
  }
  double t1 = 0, t2 = 0;
  for (size_t c = 0; c < h1.size(); ++c) {
    t1 += h1[c];
    t2 += h2[c];
  }
  ASSERT_GT(t1, 0);
  ASSERT_GT(t2, 0);
  for (size_t c = 0; c < h1.size(); ++c) {
    EXPECT_NEAR(h1[c] / t1, h2[c] / t2, 0.01) << "cell " << c;
  }
}

}  // namespace
}  // namespace retrasyn
