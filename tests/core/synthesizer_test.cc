#include "core/synthesizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"

namespace retrasyn {
namespace {

class SynthesizerTest : public testing::Test {
 protected:
  SynthesizerTest()
      : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 3),
        states_(grid_),
        model_(states_) {}

  // A model where every cell moves uniformly over its neighbors, enters
  // uniformly, and quits with the given per-cell quit mass.
  void FillUniformModel(double quit_mass) {
    std::vector<double> f(states_.size(), 0.0);
    for (CellId c = 0; c < grid_.NumCells(); ++c) {
      for (StateId s : states_.MoveStatesFrom(c)) f[s] = 0.1;
      f[states_.EnterIndex(c)] = 0.1;
      f[states_.QuitIndex(c)] = quit_mass;
    }
    model_.ReplaceAll(f);
  }

  SynthesizerConfig DefaultConfig() const {
    SynthesizerConfig config;
    config.lambda = 10.0;
    return config;
  }

  Grid grid_;
  StateSpace states_;
  GlobalMobilityModel model_;
};

TEST_F(SynthesizerTest, InitializeSpawnsTargetCount) {
  FillUniformModel(0.0);
  Synthesizer syn(states_, DefaultConfig());
  Rng rng(1);
  EXPECT_FALSE(syn.initialized());
  syn.Initialize(model_, 50, 0, rng);
  EXPECT_TRUE(syn.initialized());
  EXPECT_EQ(syn.num_live(), 50u);
  EXPECT_EQ(syn.total_points(), 50u);
}

TEST_F(SynthesizerTest, SizeAdjustmentTracksTargetExactly) {
  FillUniformModel(0.05);
  Synthesizer syn(states_, DefaultConfig());
  Rng rng(2);
  syn.Initialize(model_, 30, 0, rng);
  const uint32_t targets[] = {35, 35, 20, 60, 1, 100};
  int64_t t = 1;
  for (uint32_t target : targets) {
    syn.Step(model_, target, t++, rng);
    EXPECT_EQ(syn.num_live(), target);
  }
}

TEST_F(SynthesizerTest, GeneratedTransitionsRespectAdjacency) {
  FillUniformModel(0.02);
  Synthesizer syn(states_, DefaultConfig());
  Rng rng(3);
  syn.Initialize(model_, 40, 0, rng);
  for (int64_t t = 1; t < 30; ++t) syn.Step(model_, 40, t, rng);
  const CellStreamSet out = syn.Finish(30);
  for (const CellStream& s : out.streams()) {
    for (size_t i = 1; i < s.cells.size(); ++i) {
      EXPECT_TRUE(grid_.AreNeighbors(s.cells[i - 1], s.cells[i]));
    }
  }
}

TEST_F(SynthesizerTest, StartCellsFollowEnterDistribution) {
  // Put all entering mass on cell 4; every spawned stream must start there.
  std::vector<double> f(states_.size(), 0.0);
  for (CellId c = 0; c < grid_.NumCells(); ++c) {
    for (StateId s : states_.MoveStatesFrom(c)) f[s] = 0.1;
  }
  f[states_.EnterIndex(4)] = 1.0;
  model_.ReplaceAll(f);
  Synthesizer syn(states_, DefaultConfig());
  Rng rng(4);
  syn.Initialize(model_, 25, 0, rng);
  const CellStreamSet out = syn.Finish(1);
  for (const CellStream& s : out.streams()) {
    EXPECT_EQ(s.cells.front(), 4u);
  }
}

TEST_F(SynthesizerTest, QuitProbabilityGrowsWithLength) {
  // Eq. 8: with quit mass present, longer streams must terminate more often.
  FillUniformModel(0.2);
  SynthesizerConfig config = DefaultConfig();
  config.lambda = 5.0;
  config.use_size_adjustment = false;  // isolate the quit phase
  Synthesizer syn(states_, config);
  Rng rng(5);
  syn.Initialize(model_, 3000, 0, rng);
  std::vector<uint32_t> live_history{syn.num_live()};
  for (int64_t t = 1; t < 12; ++t) {
    syn.Step(model_, 0, t, rng);
    live_history.push_back(syn.num_live());
  }
  // Monotone shrinking population.
  for (size_t i = 1; i < live_history.size(); ++i) {
    EXPECT_LE(live_history[i], live_history[i - 1]);
  }
  // Per-step hazard must grow over time (longer streams -> higher quit).
  const double early_rate =
      1.0 - static_cast<double>(live_history[2]) / live_history[1];
  const double late_rate =
      1.0 - static_cast<double>(live_history[11]) / live_history[10];
  EXPECT_GT(late_rate, early_rate);
}

TEST_F(SynthesizerTest, NoQuitConfigNeverTerminates) {
  FillUniformModel(0.5);  // heavy quit mass, but disabled
  SynthesizerConfig config = DefaultConfig();
  config.use_quit = false;
  config.use_size_adjustment = false;
  Synthesizer syn(states_, config);
  Rng rng(6);
  syn.Initialize(model_, 20, 0, rng);
  for (int64_t t = 1; t < 50; ++t) syn.Step(model_, 3, t, rng);
  EXPECT_EQ(syn.num_live(), 20u);
  const CellStreamSet out = syn.Finish(50);
  for (const CellStream& s : out.streams()) {
    EXPECT_EQ(s.length(), 50u);
  }
}

TEST_F(SynthesizerTest, RandomInitSpreadsStartCells) {
  // random_init ignores E even when E is a point mass.
  std::vector<double> f(states_.size(), 0.0);
  f[states_.EnterIndex(0)] = 1.0;
  model_.ReplaceAll(f);
  SynthesizerConfig config = DefaultConfig();
  config.random_init = true;
  Synthesizer syn(states_, config);
  Rng rng(7);
  syn.Initialize(model_, 500, 0, rng);
  const CellStreamSet out = syn.Finish(1);
  std::vector<int> starts(grid_.NumCells(), 0);
  for (const CellStream& s : out.streams()) ++starts[s.cells.front()];
  int nonzero = 0;
  for (int c : starts) {
    if (c > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 5);  // definitely not a point mass
}

TEST_F(SynthesizerTest, ZeroMassModelDwellsInPlace) {
  model_.ReplaceAll(std::vector<double>(states_.size(), 0.0));
  SynthesizerConfig config = DefaultConfig();
  config.use_size_adjustment = false;
  Synthesizer syn(states_, config);
  Rng rng(8);
  syn.Initialize(model_, 10, 0, rng);
  for (int64_t t = 1; t < 5; ++t) syn.Step(model_, 10, t, rng);
  const CellStreamSet out = syn.Finish(5);
  for (const CellStream& s : out.streams()) {
    for (size_t i = 1; i < s.cells.size(); ++i) {
      EXPECT_EQ(s.cells[i], s.cells[0]);  // dwell fallback
    }
  }
}

TEST_F(SynthesizerTest, FinishClosesEverythingAndResets) {
  FillUniformModel(0.0);
  Synthesizer syn(states_, DefaultConfig());
  Rng rng(9);
  syn.Initialize(model_, 15, 0, rng);
  syn.Step(model_, 10, 1, rng);  // 5 terminated, 10 live
  const CellStreamSet out = syn.Finish(2);
  EXPECT_EQ(out.streams().size(), 15u);
  EXPECT_FALSE(syn.initialized());
  EXPECT_EQ(syn.num_live(), 0u);
  EXPECT_EQ(out.ActiveCount(0), 15u);
  EXPECT_EQ(out.ActiveCount(1), 10u);
}

TEST_F(SynthesizerTest, SurplusTerminationPrefersQuitDistribution) {
  // Quit mass concentrated on cell 8: streams currently at cell 8 should be
  // terminated first during size adjustment.
  std::vector<double> f(states_.size(), 0.0);
  for (CellId c = 0; c < grid_.NumCells(); ++c) {
    f[states_.MoveIndex(c, c)] = 1.0;  // everyone dwells
  }
  f[states_.QuitIndex(8)] = 1.0;
  f[states_.EnterIndex(0)] = 0.5;
  f[states_.EnterIndex(8)] = 0.5;
  model_.ReplaceAll(f);
  SynthesizerConfig config = DefaultConfig();
  config.use_quit = false;  // only size adjustment may terminate
  Synthesizer syn(states_, config);
  Rng rng(10);
  syn.Initialize(model_, 400, 0, rng);
  syn.Step(model_, 250, 1, rng);
  EXPECT_EQ(syn.num_live(), 250u);
  const CellStreamSet out = syn.Finish(2);
  size_t terminated_at_8 = 0, terminated_elsewhere = 0;
  for (const CellStream& s : out.streams()) {
    if (s.length() == 1) {  // terminated during the adjustment
      if (s.cells.back() == 8) {
        ++terminated_at_8;
      } else {
        ++terminated_elsewhere;
      }
    }
  }
  EXPECT_GT(terminated_at_8, 0u);
  EXPECT_EQ(terminated_elsewhere, 0u);  // all victims were at cell 8
}

}  // namespace
}  // namespace retrasyn
