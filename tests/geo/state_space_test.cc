#include "geo/grid.h"
#include "geo/state_space.h"

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

BoundingBox UnitBox() { return BoundingBox{0.0, 0.0, 1.0, 1.0}; }

TEST(StateSpaceTest, SizeDecomposition) {
  const Grid grid(UnitBox(), 4);
  const StateSpace states(grid);
  size_t moves = 0;
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    moves += grid.Neighbors(c).size();
  }
  EXPECT_EQ(states.num_move_states(), moves);
  EXPECT_EQ(states.size(), moves + 2 * grid.NumCells());
}

TEST(StateSpaceTest, MoveIndexValidOnlyForNeighbors) {
  const Grid grid(UnitBox(), 4);
  const StateSpace states(grid);
  for (CellId a = 0; a < grid.NumCells(); ++a) {
    for (CellId b = 0; b < grid.NumCells(); ++b) {
      const StateId id = states.MoveIndex(a, b);
      if (grid.AreNeighbors(a, b)) {
        ASSERT_NE(id, kInvalidState);
        EXPECT_LT(id, states.num_move_states());
      } else {
        EXPECT_EQ(id, kInvalidState);
      }
    }
  }
}

TEST(StateSpaceTest, KindPredicatesPartitionTheSpace) {
  const Grid grid(UnitBox(), 3);
  const StateSpace states(grid);
  for (StateId s = 0; s < states.size(); ++s) {
    const int kinds = (states.IsMove(s) ? 1 : 0) + (states.IsEnter(s) ? 1 : 0) +
                      (states.IsQuit(s) ? 1 : 0);
    EXPECT_EQ(kinds, 1) << "state " << s;
  }
}

TEST(StateSpaceTest, EnterQuitIndices) {
  const Grid grid(UnitBox(), 3);
  const StateSpace states(grid);
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    const StateId e = states.EnterIndex(c);
    const StateId q = states.QuitIndex(c);
    EXPECT_TRUE(states.IsEnter(e));
    EXPECT_TRUE(states.IsQuit(q));
    EXPECT_EQ(states.Decode(e),
              (TransitionState{StateKind::kEnter, c, c}));
    EXPECT_EQ(states.Decode(q), (TransitionState{StateKind::kQuit, c, c}));
  }
}

TEST(StateSpaceTest, ToStringFormats) {
  const Grid grid(UnitBox(), 2);
  const StateSpace states(grid);
  EXPECT_EQ(states.ToString(states.MoveIndex(0, 1)), "m(0->1)");
  EXPECT_EQ(states.ToString(states.EnterIndex(2)), "e(2)");
  EXPECT_EQ(states.ToString(states.QuitIndex(3)), "q(3)");
}

TEST(StateSpaceTest, MoveStatesFromMatchesNeighbors) {
  const Grid grid(UnitBox(), 4);
  const StateSpace states(grid);
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    const auto ids = states.MoveStatesFrom(c);
    const auto& nbrs = grid.Neighbors(c);
    ASSERT_EQ(ids.size(), nbrs.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      const TransitionState s = states.Decode(ids[i]);
      EXPECT_EQ(s.kind, StateKind::kMove);
      EXPECT_EQ(s.from, c);
      EXPECT_EQ(s.to, nbrs[i]);
    }
  }
}

class StateSpaceSweepTest : public testing::TestWithParam<uint32_t> {};

TEST_P(StateSpaceSweepTest, EncodeDecodeRoundTripForAllStates) {
  const Grid grid(UnitBox(), GetParam());
  const StateSpace states(grid);
  for (StateId s = 0; s < states.size(); ++s) {
    const TransitionState decoded = states.Decode(s);
    EXPECT_EQ(states.Encode(decoded), s) << "state " << s;
  }
}

TEST_P(StateSpaceSweepTest, StateCountIsO9C) {
  const uint32_t k = GetParam();
  const Grid grid(UnitBox(), k);
  const StateSpace states(grid);
  // |S| <= 9|C| + 2|C| = 11|C| (paper SIV-B complexity bound).
  EXPECT_LE(states.size(), 11 * grid.NumCells());
  EXPECT_GE(states.size(), 3 * grid.NumCells());  // >= self-move + enter + quit
}

INSTANTIATE_TEST_SUITE_P(PaperGranularities, StateSpaceSweepTest,
                         testing::Values(1u, 2u, 6u, 10u, 14u, 18u));

}  // namespace
}  // namespace retrasyn
