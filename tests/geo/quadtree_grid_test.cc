// Construction tests for the density-adaptive quadtree: threshold splitting,
// the greedy leaf-budget builder, determinism of the pre-order CellId
// assignment, and the exact dyadic geometry the SpatialGrid property suite
// does not pin down on its own.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/quadtree_grid.h"

namespace retrasyn {
namespace {

const BoundingBox kBox{0.0, 0.0, 400.0, 400.0};

DensitySnapshot UniformDensity(uint32_t k, double value) {
  DensitySnapshot d;
  d.k = k;
  d.counts.assign(static_cast<size_t>(k) * k, value);
  return d;
}

/// All mass in the single probe cell (ix, iy) of a k x k lattice.
DensitySnapshot OneHotDensity(uint32_t k, uint32_t ix, uint32_t iy) {
  DensitySnapshot d = UniformDensity(k, 0.0);
  d.counts[static_cast<size_t>(iy) * k + ix] = 10.0;
  return d;
}

TEST(QuadtreeGridTest, UniformDensitySplitsToFullDepth) {
  QuadtreeConfig config;
  config.max_depth = 2;
  config.split_threshold = 0.0;
  auto grid = QuadtreeGrid::Build(kBox, UniformDensity(2, 1.0), config);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  const QuadtreeGrid& q = *grid.value();
  ASSERT_EQ(q.NumCells(), 16u);
  for (CellId c = 0; c < q.NumCells(); ++c) {
    EXPECT_EQ(q.LeafDepth(c), 2u) << "cell " << c;
    const BoundingBox b = q.CellBounds(c);
    EXPECT_DOUBLE_EQ(b.max_x - b.min_x, kBox.Width() / 4.0);
    EXPECT_DOUBLE_EQ(b.max_y - b.min_y, kBox.Height() / 4.0);
  }
}

TEST(QuadtreeGridTest, AllZeroDensityKeepsTheRootAsTheOnlyCell) {
  QuadtreeConfig config;
  config.max_depth = 3;
  auto grid = QuadtreeGrid::Build(kBox, UniformDensity(4, 0.0), config);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  const QuadtreeGrid& q = *grid.value();
  EXPECT_EQ(q.NumCells(), 1u);
  EXPECT_EQ(q.LeafDepth(0), 0u);
  EXPECT_EQ(q.Locate(Point{1.0, 399.0}), 0u);
  EXPECT_EQ(q.Neighbors(0), std::vector<CellId>{0});
  EXPECT_EQ(q.Distance(0, 0), 0.0);
}

TEST(QuadtreeGridTest, ThresholdBuildRefinesOnlyWhereTheMassIs) {
  // All mass in the SW-most probe cell of an 8x8 lattice with max_depth 3:
  // every level splits exactly the one massy quadrant, leaving 3 empty
  // siblings behind, so the leaf count is 3 * depth + 1.
  QuadtreeConfig config;
  config.max_depth = 3;
  auto grid = QuadtreeGrid::Build(kBox, OneHotDensity(8, 0, 0), config);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  const QuadtreeGrid& q = *grid.value();
  ASSERT_EQ(q.NumCells(), 10u);
  // The massy corner sits under the deepest leaf; the opposite corner under
  // a depth-1 leaf spanning a full quadrant.
  const CellId hot = q.Locate(Point{1.0, 1.0});
  const CellId cold = q.Locate(Point{399.0, 399.0});
  EXPECT_EQ(q.LeafDepth(hot), 3u);
  EXPECT_EQ(q.LeafDepth(cold), 1u);
  // Pre-order numbering walks the SW subtree first: the hot corner leaf is
  // cell 0, a pure function of the split structure.
  EXPECT_EQ(hot, 0u);
}

TEST(QuadtreeGridTest, WithTargetLeavesHitsReachableBudgetsExactly) {
  const DensitySnapshot density = SyntheticTwoBumpDensity();
  // Leaves grow 3 at a time from 1, so budgets ≡ 1 (mod 3) are exact.
  for (uint32_t target : {1u, 4u, 16u, 49u}) {
    auto grid = QuadtreeGrid::WithTargetLeaves(kBox, density, target, 6);
    ASSERT_TRUE(grid.ok()) << grid.status().ToString();
    EXPECT_EQ(grid.value()->NumCells(), target) << "target " << target;
  }
  // Unreachable budgets land on the closest count below.
  auto six = QuadtreeGrid::WithTargetLeaves(kBox, density, 6, 6);
  ASSERT_TRUE(six.ok());
  EXPECT_EQ(six.value()->NumCells(), 4u);
  // A shallow depth caps the expansion regardless of the budget.
  auto capped = QuadtreeGrid::WithTargetLeaves(kBox, density, 100, 1);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.value()->NumCells(), 4u);
}

TEST(QuadtreeGridTest, GreedyBuilderFollowsTheDensity) {
  // With the two-bump density, the downtown bump must end up in a deeper
  // (smaller) leaf than the empty corner at the same leaf budget.
  auto grid =
      QuadtreeGrid::WithTargetLeaves(kBox, SyntheticTwoBumpDensity(), 49, 5);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  const QuadtreeGrid& q = *grid.value();
  const Point downtown{0.3 * 400.0, 0.35 * 400.0};
  const Point empty_corner{0.97 * 400.0, 0.03 * 400.0};
  EXPECT_GT(q.LeafDepth(q.Locate(downtown)),
            q.LeafDepth(q.Locate(empty_corner)));
}

TEST(QuadtreeGridTest, IdenticalInputsBuildIdenticalStructures) {
  const DensitySnapshot density = SyntheticTwoBumpDensity();
  auto a = QuadtreeGrid::WithTargetLeaves(kBox, density, 16, 4);
  auto b = QuadtreeGrid::WithTargetLeaves(kBox, density, 16, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->Describe(), b.value()->Describe());
  EXPECT_EQ(a.value()->ToString(), b.value()->ToString());
  // Cell geometry agrees cell by cell, not just structurally.
  ASSERT_EQ(a.value()->NumCells(), b.value()->NumCells());
  for (CellId c = 0; c < a.value()->NumCells(); ++c) {
    EXPECT_EQ(a.value()->LeafDepth(c), b.value()->LeafDepth(c));
    EXPECT_EQ(a.value()->CellCenter(c).x, b.value()->CellCenter(c).x);
    EXPECT_EQ(a.value()->CellCenter(c).y, b.value()->CellCenter(c).y);
  }
}

TEST(QuadtreeGridTest, DifferentSplitsDescribeDifferentlyAtEqualCellCount) {
  // Same backend, same box, same leaf count — but the mass sits in opposite
  // corners, so the split structures (and therefore Describe()) differ. This
  // is exactly the case a cell-count-only fingerprint would miss.
  QuadtreeConfig config;
  config.max_depth = 3;
  auto sw = QuadtreeGrid::Build(kBox, OneHotDensity(8, 0, 0), config);
  auto ne = QuadtreeGrid::Build(kBox, OneHotDensity(8, 7, 7), config);
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(ne.ok());
  ASSERT_EQ(sw.value()->NumCells(), ne.value()->NumCells());
  EXPECT_NE(sw.value()->Describe(), ne.value()->Describe());
  // And neither collides with a uniform grid of the same cell count.
  const UniformGrid uniform(kBox, 4);
  auto sixteen =
      QuadtreeGrid::WithTargetLeaves(kBox, SyntheticTwoBumpDensity(), 16, 4);
  ASSERT_TRUE(sixteen.ok());
  ASSERT_EQ(sixteen.value()->NumCells(), uniform.NumCells());
  EXPECT_NE(sixteen.value()->Describe(), uniform.Describe());
}

TEST(QuadtreeGridTest, NoisyNegativeCountsClampToZeroMass) {
  // A density of strictly negative noise is all-zero mass: no splits.
  QuadtreeConfig config;
  config.max_depth = 3;
  auto grid = QuadtreeGrid::Build(kBox, UniformDensity(4, -2.5), config);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  EXPECT_EQ(grid.value()->NumCells(), 1u);
}

TEST(QuadtreeGridTest, AdjacencySpansResolutionBoundaries) {
  // A depth-1 leaf next to depth-3 leaves: the coarse leaf must list every
  // fine leaf touching its edge, and vice versa (the property suite checks
  // symmetry generically; this pins the cross-resolution case specifically).
  QuadtreeConfig config;
  config.max_depth = 3;
  auto grid = QuadtreeGrid::Build(kBox, OneHotDensity(8, 0, 0), config);
  ASSERT_TRUE(grid.ok());
  const QuadtreeGrid& q = *grid.value();
  const CellId hot = q.Locate(Point{1.0, 1.0});         // depth 3, SW corner
  const CellId east = q.Locate(Point{399.0, 1.0});      // depth 1, SE quadrant
  const CellId far_ne = q.Locate(Point{399.0, 399.0});  // depth 1, NE quadrant
  ASSERT_EQ(q.LeafDepth(hot), 3u);
  ASSERT_EQ(q.LeafDepth(east), 1u);
  // The hot corner leaf does not reach across half the box.
  EXPECT_FALSE(q.AreNeighbors(hot, east));
  EXPECT_GT(q.Distance(hot, east), 0.0);
  // But its depth-3 siblings touch the depth-2 and depth-1 leaves around
  // them; spot-check one cross-resolution contact via the lattice gap.
  const CellId hot_e = q.Locate(Point{51.0, 1.0});  // depth 3 east sibling
  ASSERT_EQ(q.LeafDepth(hot_e), 3u);
  EXPECT_TRUE(q.AreNeighbors(hot, hot_e));
  EXPECT_EQ(q.Distance(hot, hot_e), 0.0);
  EXPECT_FALSE(q.AreNeighbors(hot, far_ne));
  // Distance is the Chebyshev lattice gap in finest-lattice units: the SE
  // and NE quadrants are both 3 fine cells past the hot corner leaf.
  EXPECT_EQ(q.Distance(hot, east), 3.0);
  EXPECT_EQ(q.Distance(hot, far_ne), 3.0);
}

TEST(QuadtreeGridTest, InvalidInputsAreRejected) {
  const DensitySnapshot density = UniformDensity(4, 1.0);
  QuadtreeConfig config;

  config.max_depth = 0;
  EXPECT_EQ(QuadtreeGrid::Build(kBox, density, config).status().code(),
            StatusCode::kInvalidArgument);
  config.max_depth = QuadtreeConfig::kMaxDepth + 1;
  EXPECT_EQ(QuadtreeGrid::Build(kBox, density, config).status().code(),
            StatusCode::kInvalidArgument);
  config.max_depth = 3;
  config.split_threshold = -1.0;
  EXPECT_EQ(QuadtreeGrid::Build(kBox, density, config).status().code(),
            StatusCode::kInvalidArgument);
  config.split_threshold = 0.0;

  DensitySnapshot bad = density;
  bad.k = 0;
  EXPECT_EQ(QuadtreeGrid::Build(kBox, bad, config).status().code(),
            StatusCode::kInvalidArgument);
  bad = density;
  bad.counts.pop_back();
  EXPECT_EQ(QuadtreeGrid::Build(kBox, bad, config).status().code(),
            StatusCode::kInvalidArgument);
  bad = density;
  bad.counts[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(QuadtreeGrid::Build(kBox, bad, config).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(
      QuadtreeGrid::WithTargetLeaves(kBox, density, 0, 3).status().code(),
      StatusCode::kInvalidArgument);
  const BoundingBox flat{0.0, 0.0, 400.0, 0.0};
  EXPECT_EQ(QuadtreeGrid::Build(flat, density, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace retrasyn
