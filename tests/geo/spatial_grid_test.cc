// Property tests for the SpatialGrid contract, run against every backend:
// whatever discretization is plugged in, Locate must be total and consistent
// with the cell geometry, the precomputed reachability lists must be sorted /
// deduped / self-inclusive / symmetric, Distance must behave like a cell-units
// metric, ClampToReachable must minimize it over the neighbor set, and
// Describe() must be a deterministic structural identity. The service stack
// relies on exactly these properties — not on any uniform-grid arithmetic.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "geo/grid_factory.h"
#include "geo/quadtree_grid.h"
#include "geo/spatial_grid.h"

namespace retrasyn {
namespace {

// An asymmetric box (non-zero origin, width != height) so coordinate
// transforms cannot hide behind zeros.
const BoundingBox kBox{-50.0, 25.0, 350.0, 325.0};

struct NamedGrid {
  std::string name;
  std::unique_ptr<SpatialGrid> grid;
};

std::vector<NamedGrid> AllBackends() {
  std::vector<NamedGrid> grids;
  grids.push_back({"uniform k=6", std::make_unique<UniformGrid>(kBox, 6)});
  {
    auto quad = MakeSpatialGrid(kBox, 7, GridBackend::kQuadtree);
    EXPECT_TRUE(quad.ok()) << quad.status().ToString();
    grids.push_back({"quadtree target=49", std::move(quad).value()});
  }
  {
    QuadtreeConfig config;
    config.max_depth = 3;
    config.split_threshold = 40.0;
    auto quad = QuadtreeGrid::Build(kBox, SyntheticTwoBumpDensity(), config);
    EXPECT_TRUE(quad.ok()) << quad.status().ToString();
    grids.push_back({"quadtree threshold=40", std::move(quad).value()});
  }
  return grids;
}

TEST(SpatialGridPropertyTest, CellGeometryAndLocateAgree) {
  for (const NamedGrid& g : AllBackends()) {
    const SpatialGrid& grid = *g.grid;
    ASSERT_GE(grid.NumCells(), 1u) << g.name;
    for (CellId c = 0; c < grid.NumCells(); ++c) {
      const BoundingBox b = grid.CellBounds(c);
      ASSERT_GT(b.max_x, b.min_x) << g.name << " cell " << c;
      ASSERT_GT(b.max_y, b.min_y) << g.name << " cell " << c;
      // Bounds stay inside the domain box (up to rounding).
      EXPECT_GE(b.min_x, kBox.min_x - 1e-9) << g.name << " cell " << c;
      EXPECT_GE(b.min_y, kBox.min_y - 1e-9) << g.name << " cell " << c;
      EXPECT_LE(b.max_x, kBox.max_x + 1e-9) << g.name << " cell " << c;
      EXPECT_LE(b.max_y, kBox.max_y + 1e-9) << g.name << " cell " << c;

      const Point center = grid.CellCenter(c);
      EXPECT_GT(center.x, b.min_x) << g.name << " cell " << c;
      EXPECT_LT(center.x, b.max_x) << g.name << " cell " << c;
      EXPECT_GT(center.y, b.min_y) << g.name << " cell " << c;
      EXPECT_LT(center.y, b.max_y) << g.name << " cell " << c;
      EXPECT_EQ(grid.Locate(center), c) << g.name << " cell " << c;

      // Every strictly-interior sample of the cell's bounds locates back to
      // the cell (edges are tie-broken to exactly one owner; interior points
      // must never be ambiguous).
      for (double fx : {0.1, 0.5, 0.9}) {
        for (double fy : {0.1, 0.5, 0.9}) {
          const Point p{b.min_x + fx * (b.max_x - b.min_x),
                        b.min_y + fy * (b.max_y - b.min_y)};
          EXPECT_EQ(grid.Locate(p), c)
              << g.name << " cell " << c << " at (" << p.x << ", " << p.y
              << ")";
        }
      }
    }
  }
}

TEST(SpatialGridPropertyTest, LocateIsTotalAndClampsToBorderCells) {
  for (const NamedGrid& g : AllBackends()) {
    const SpatialGrid& grid = *g.grid;
    const std::vector<Point> outside = {
        {kBox.min_x - 100.0, kBox.min_y + 10.0},  // west
        {kBox.max_x + 100.0, kBox.min_y + 10.0},  // east
        {kBox.min_x + 10.0, kBox.min_y - 100.0},  // south
        {kBox.min_x + 10.0, kBox.max_y + 100.0},  // north
        {kBox.min_x - 100.0, kBox.min_y - 100.0},  // SW corner
        {kBox.max_x + 100.0, kBox.max_y + 100.0},  // NE corner
    };
    for (const Point& p : outside) {
      const CellId c = grid.Locate(p);
      ASSERT_LT(c, grid.NumCells()) << g.name;
      // The owning cell agrees with locating the clamped point, and its
      // bounds touch every box border the point overshoots.
      EXPECT_EQ(c, grid.Locate(kBox.Clamp(p))) << g.name;
      const BoundingBox b = grid.CellBounds(c);
      if (p.x < kBox.min_x) {
        EXPECT_DOUBLE_EQ(b.min_x, kBox.min_x) << g.name;
      }
      if (p.x > kBox.max_x) {
        EXPECT_DOUBLE_EQ(b.max_x, kBox.max_x) << g.name;
      }
      if (p.y < kBox.min_y) {
        EXPECT_DOUBLE_EQ(b.min_y, kBox.min_y) << g.name;
      }
      if (p.y > kBox.max_y) {
        EXPECT_DOUBLE_EQ(b.max_y, kBox.max_y) << g.name;
      }
    }
  }
}

TEST(SpatialGridPropertyTest, NeighborListsAreSortedDedupedSelfInclusive) {
  for (const NamedGrid& g : AllBackends()) {
    const SpatialGrid& grid = *g.grid;
    for (CellId c = 0; c < grid.NumCells(); ++c) {
      const std::vector<CellId>& nbrs = grid.Neighbors(c);
      ASSERT_FALSE(nbrs.empty()) << g.name << " cell " << c;
      // Strictly ascending implies deduped.
      for (size_t i = 1; i < nbrs.size(); ++i) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]) << g.name << " cell " << c;
      }
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), c))
          << g.name << " cell " << c << " must be its own neighbor";
      for (CellId n : nbrs) {
        ASSERT_LT(n, grid.NumCells()) << g.name;
        // Symmetry: membership both ways, through both query surfaces.
        EXPECT_TRUE(grid.AreNeighbors(c, n)) << g.name;
        EXPECT_TRUE(grid.AreNeighbors(n, c)) << g.name;
        const std::vector<CellId>& back = grid.Neighbors(n);
        EXPECT_TRUE(std::binary_search(back.begin(), back.end(), c))
            << g.name << " " << c << " <-> " << n;
      }
    }
  }
}

TEST(SpatialGridPropertyTest, AreNeighborsMatchesListMembershipForAllPairs) {
  for (const NamedGrid& g : AllBackends()) {
    const SpatialGrid& grid = *g.grid;
    for (CellId a = 0; a < grid.NumCells(); ++a) {
      const std::vector<CellId>& nbrs = grid.Neighbors(a);
      for (CellId b = 0; b < grid.NumCells(); ++b) {
        const bool in_list = std::binary_search(nbrs.begin(), nbrs.end(), b);
        EXPECT_EQ(grid.AreNeighbors(a, b), in_list)
            << g.name << " pair (" << a << ", " << b << ")";
      }
    }
  }
}

TEST(SpatialGridPropertyTest, DistanceIsACellUnitsMetric) {
  for (const NamedGrid& g : AllBackends()) {
    const SpatialGrid& grid = *g.grid;
    for (CellId a = 0; a < grid.NumCells(); ++a) {
      EXPECT_EQ(grid.Distance(a, a), 0.0) << g.name;
      for (CellId b = 0; b < grid.NumCells(); ++b) {
        const double d = grid.Distance(a, b);
        EXPECT_GE(d, 0.0) << g.name;
        EXPECT_EQ(d, grid.Distance(b, a)) << g.name;
        if (a != b && d == 0.0) {
          EXPECT_TRUE(grid.AreNeighbors(a, b))
              << g.name << ": distinct cells at distance 0 must be neighbors";
        }
      }
    }
  }
}

TEST(SpatialGridPropertyTest, ClampToReachableMinimizesDistanceOverNeighbors) {
  for (const NamedGrid& g : AllBackends()) {
    const SpatialGrid& grid = *g.grid;
    for (CellId from = 0; from < grid.NumCells(); ++from) {
      const std::vector<CellId>& nbrs = grid.Neighbors(from);
      for (CellId to = 0; to < grid.NumCells(); ++to) {
        const CellId r = grid.ClampToReachable(from, to);
        ASSERT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), r))
            << g.name << ": clamp must land in Neighbors(from)";
        if (grid.AreNeighbors(from, to)) {
          EXPECT_EQ(r, to) << g.name << ": reachable targets pass through";
        } else {
          for (CellId n : nbrs) {
            EXPECT_LE(grid.Distance(r, to), grid.Distance(n, to))
                << g.name << " from=" << from << " to=" << to;
          }
        }
      }
    }
  }
}

TEST(SpatialGridPropertyTest, DescribeIsDeterministicAndStructural) {
  // Rebuilding a backend from identical inputs yields identical Describe()
  // bytes (the journal/checkpoint fingerprint depends on this), and no two
  // distinct structures in the panel collide.
  std::vector<NamedGrid> first = AllBackends();
  std::vector<NamedGrid> second = AllBackends();
  ASSERT_EQ(first.size(), second.size());
  std::vector<std::string> blobs;
  for (size_t i = 0; i < first.size(); ++i) {
    const std::string a = first[i].grid->Describe();
    EXPECT_EQ(a, second[i].grid->Describe()) << first[i].name;
    EXPECT_FALSE(first[i].grid->ToString().empty());
    // The leading byte is the backend tag.
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(static_cast<uint8_t>(a[0]),
              static_cast<uint8_t>(first[i].grid->backend()));
    blobs.push_back(a);
  }
  std::sort(blobs.begin(), blobs.end());
  EXPECT_EQ(std::unique(blobs.begin(), blobs.end()), blobs.end())
      << "distinct structures must describe differently";
}

TEST(SpatialGridPropertyTest, UniformViewIsGatedByBackend) {
  for (const NamedGrid& g : AllBackends()) {
    if (g.grid->backend() == GridBackend::kUniform) {
      ASSERT_NE(g.grid->AsUniform(), nullptr) << g.name;
      EXPECT_EQ(g.grid->AsUniform(), g.grid.get()) << g.name;
    } else {
      EXPECT_EQ(g.grid->AsUniform(), nullptr) << g.name;
    }
  }
}

}  // namespace
}  // namespace retrasyn
