#include "geo/grid.h"

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

BoundingBox UnitBox() { return BoundingBox{0.0, 0.0, 1.0, 1.0}; }

TEST(BoundingBoxTest, ContainsAndClamp) {
  BoundingBox box{0.0, 0.0, 10.0, 5.0};
  EXPECT_TRUE(box.Contains(Point{5.0, 2.5}));
  EXPECT_TRUE(box.Contains(Point{0.0, 0.0}));
  EXPECT_FALSE(box.Contains(Point{10.1, 2.0}));
  const Point clamped = box.Clamp(Point{-3.0, 7.0});
  EXPECT_DOUBLE_EQ(clamped.x, 0.0);
  EXPECT_DOUBLE_EQ(clamped.y, 5.0);
}

TEST(BoundingBoxTest, Extend) {
  BoundingBox box{1.0, 1.0, 2.0, 2.0};
  box.Extend(Point{0.0, 3.0});
  EXPECT_DOUBLE_EQ(box.min_x, 0.0);
  EXPECT_DOUBLE_EQ(box.max_y, 3.0);
  EXPECT_DOUBLE_EQ(box.max_x, 2.0);
}

TEST(GridTest, LocateCenterOfEachCell) {
  const Grid grid(UnitBox(), 4);
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    EXPECT_EQ(grid.Locate(grid.CellCenter(c)), c);
  }
}

TEST(GridTest, LocateBoundaryPoints) {
  const Grid grid(UnitBox(), 4);
  // The far corner folds into the last cell.
  EXPECT_EQ(grid.Locate(Point{1.0, 1.0}), grid.Cell(3, 3));
  EXPECT_EQ(grid.Locate(Point{0.0, 0.0}), grid.Cell(0, 0));
  // Out-of-box points clamp to border cells.
  EXPECT_EQ(grid.Locate(Point{-5.0, 0.5}), grid.Cell(2, 0));
  EXPECT_EQ(grid.Locate(Point{2.0, 2.0}), grid.Cell(3, 3));
}

TEST(GridTest, NeighborCountsByPosition) {
  const Grid grid(UnitBox(), 5);
  // Corners have 4 neighbors (incl. self), edges 6, interior 9.
  EXPECT_EQ(grid.Neighbors(grid.Cell(0, 0)).size(), 4u);
  EXPECT_EQ(grid.Neighbors(grid.Cell(0, 4)).size(), 4u);
  EXPECT_EQ(grid.Neighbors(grid.Cell(4, 0)).size(), 4u);
  EXPECT_EQ(grid.Neighbors(grid.Cell(4, 4)).size(), 4u);
  EXPECT_EQ(grid.Neighbors(grid.Cell(0, 2)).size(), 6u);
  EXPECT_EQ(grid.Neighbors(grid.Cell(2, 0)).size(), 6u);
  EXPECT_EQ(grid.Neighbors(grid.Cell(2, 2)).size(), 9u);
}

TEST(GridTest, NeighborsIncludeSelfAndAreSorted) {
  const Grid grid(UnitBox(), 6);
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    const auto& nbrs = grid.Neighbors(c);
    bool has_self = false;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == c) has_self = true;
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]);
      }
    }
    EXPECT_TRUE(has_self);
  }
}

TEST(GridTest, AreNeighborsMatchesNeighborLists) {
  const Grid grid(UnitBox(), 5);
  for (CellId a = 0; a < grid.NumCells(); ++a) {
    for (CellId b = 0; b < grid.NumCells(); ++b) {
      const auto& nbrs = grid.Neighbors(a);
      const bool in_list =
          std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
      EXPECT_EQ(grid.AreNeighbors(a, b), in_list)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(GridTest, CellBoundsTileTheBox) {
  const Grid grid(BoundingBox{-2.0, 3.0, 6.0, 7.0}, 4);
  double area = 0.0;
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    const BoundingBox b = grid.CellBounds(c);
    area += b.Width() * b.Height();
    EXPECT_TRUE(grid.box().Contains(Point{b.min_x, b.min_y}));
  }
  EXPECT_NEAR(area, grid.box().Width() * grid.box().Height(), 1e-9);
}

TEST(GridTest, ChebyshevDistance) {
  const Grid grid(UnitBox(), 8);
  EXPECT_EQ(grid.ChebyshevDistance(grid.Cell(0, 0), grid.Cell(0, 0)), 0u);
  EXPECT_EQ(grid.ChebyshevDistance(grid.Cell(0, 0), grid.Cell(1, 1)), 1u);
  EXPECT_EQ(grid.ChebyshevDistance(grid.Cell(2, 3), grid.Cell(7, 1)), 5u);
}

TEST(GridTest, SingleCellGrid) {
  const Grid grid(UnitBox(), 1);
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_EQ(grid.Neighbors(0).size(), 1u);
  EXPECT_EQ(grid.Locate(Point{0.5, 0.5}), 0u);
}

class GridSweepTest : public testing::TestWithParam<uint32_t> {};

TEST_P(GridSweepTest, RowColRoundTrip) {
  const uint32_t k = GetParam();
  const Grid grid(UnitBox(), k);
  EXPECT_EQ(grid.NumCells(), k * k);
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    EXPECT_EQ(grid.Cell(grid.Row(c), grid.Col(c)), c);
    EXPECT_LT(grid.Row(c), k);
    EXPECT_LT(grid.Col(c), k);
  }
}

TEST_P(GridSweepTest, TotalNeighborCountFormula) {
  const uint32_t k = GetParam();
  const Grid grid(UnitBox(), k);
  size_t total = 0;
  for (CellId c = 0; c < grid.NumCells(); ++c) {
    total += grid.Neighbors(c).size();
  }
  // 9 per interior, 6 per border edge, 4 per corner.
  size_t expected;
  if (k == 1) {
    expected = 1;
  } else {
    const size_t interior = (k - 2) * (k - 2);
    const size_t edges = 4 * (k - 2);
    expected = 9 * interior + 6 * edges + 4 * 4;
  }
  EXPECT_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(PaperGranularities, GridSweepTest,
                         testing::Values(1u, 2u, 6u, 10u, 14u, 18u));

}  // namespace
}  // namespace retrasyn
