// Shared driver + canonical serializer for the golden-bytes regression: the
// exact same scripted workload and byte format are used (a) by the one-shot
// generator that captured tests/golden/*.golden from the pre-refactor tree
// and (b) by service_golden_release_test forever after. Do not change either
// the workload script or the serialization — the committed golden files pin
// the released bytes of uniform-grid deployments across refactors.

#ifndef RETRASYN_TESTS_GOLDEN_GOLDEN_PIPELINE_H_
#define RETRASYN_TESTS_GOLDEN_GOLDEN_PIPELINE_H_

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/release_server.h"
#include "geo/state_space.h"
#include "service/trajectory_service.h"
#include "stream/cell_stream.h"

namespace retrasyn {
namespace golden {

struct GoldenTrace {
  int64_t enter_time = 0;
  std::vector<Point> points;
};

inline constexpr int64_t kGoldenHorizon = 24;

/// The scripted device fleet: identical to the recovery-test workload shape,
/// pinned here at seed 11 / 60 devices over a 400x400 box.
inline std::vector<GoldenTrace> GoldenWorkload() {
  const BoundingBox box{0.0, 0.0, 400.0, 400.0};
  Rng rng(11);
  std::vector<GoldenTrace> traces;
  for (int i = 0; i < 60; ++i) {
    GoldenTrace trace;
    trace.enter_time = static_cast<int64_t>(rng.UniformInt(kGoldenHorizon - 2));
    const int64_t max_len = kGoldenHorizon - trace.enter_time;
    const int64_t len =
        1 + static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(std::min<int64_t>(max_len, 10))));
    Point p{box.min_x + rng.UniformDouble() * box.Width(),
            box.min_y + rng.UniformDouble() * box.Height()};
    for (int64_t k = 0; k < len; ++k) {
      trace.points.push_back(p);
      p = box.Clamp(Point{p.x + (rng.UniformDouble() - 0.5) * 80.0,
                          p.y + (rng.UniformDouble() - 0.5) * 80.0});
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

/// The pinned engine configuration (journal/sync knobs are layered on by the
/// individual scenarios; they must not change the released bytes).
inline RetraSynConfig GoldenConfig() {
  RetraSynConfig config;
  config.epsilon = 1.0;
  config.window = 8;
  config.division = DivisionStrategy::kPopulation;
  config.lambda = 6.0;
  config.seed = 7;
  return config;
}

/// Feeds rounds [from, to) of the scripted workload into the session.
/// Returns false on the first rejected event/Tick (the caller asserts).
inline bool DriveGoldenRounds(IngestSession& session,
                              const std::vector<GoldenTrace>& traces,
                              int64_t from, int64_t to) {
  for (int64_t t = from; t < to; ++t) {
    for (uint64_t id = 0; id < traces.size(); ++id) {
      const GoldenTrace& trace = traces[id];
      const int64_t end =
          trace.enter_time + static_cast<int64_t>(trace.points.size());
      Status status = Status::OK();
      if (t == trace.enter_time) {
        status = session.Enter(id, trace.points.front());
      } else if (t > trace.enter_time && t < end) {
        status = session.Move(id, trace.points[t - trace.enter_time]);
      } else if (t == end && end < kGoldenHorizon) {
        status = session.Quit(id);
      }
      if (!status.ok()) return false;
    }
    if (!session.Tick().ok()) return false;
  }
  return true;
}

/// Canonical byte serialization of one full run: every released round (from
/// the subscribed ReleaseServer) plus the final snapshot, in a stable text
/// format. Any behavioral drift in collection, synthesis, sink delivery, or
/// snapshot stitching changes these bytes.
inline std::string SerializeGoldenRelease(const ReleaseServer& server,
                                          const CellStreamSet& snapshot) {
  std::string out = "retrasyn-golden-release v1\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rounds %" PRId64 "\n", server.horizon());
  out += buf;
  for (int64_t t = 0; t < server.horizon(); ++t) {
    std::snprintf(buf, sizeof(buf), "round %" PRId64 " %" PRIu64, t,
                  server.ActiveAt(t));
    out += buf;
    for (uint32_t d : server.DensityAt(t)) {
      std::snprintf(buf, sizeof(buf), " %u", d);
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof(buf), "timestamps %" PRId64 "\n",
                snapshot.num_timestamps());
  out += buf;
  std::snprintf(buf, sizeof(buf), "streams %zu\n", snapshot.streams().size());
  out += buf;
  for (const CellStream& s : snapshot.streams()) {
    std::snprintf(buf, sizeof(buf), "stream %" PRId64, s.enter_time);
    out += buf;
    for (CellId c : s.cells) {
      std::snprintf(buf, sizeof(buf), " %u", c);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace golden
}  // namespace retrasyn

#endif  // RETRASYN_TESTS_GOLDEN_GOLDEN_PIPELINE_H_
