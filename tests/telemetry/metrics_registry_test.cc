// MetricsRegistry: identity/dedupe semantics, histogram bucket boundaries
// and percentile pinning, round-trace ring behavior, and — under TSan — the
// N-writers-plus-concurrent-snapshot-reader stress the registry's lock-free
// hot path must survive.

#include "telemetry/metrics_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "telemetry/round_trace.h"
#include "telemetry/telemetry.h"

namespace retrasyn {
namespace {

TEST(MetricsRegistryTest, CounterAddAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total", "help");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(MetricsRegistryTest, RegistrationDedupesOnNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("events_total", "help");
  Counter* b = registry.GetCounter("events_total", "help");
  EXPECT_EQ(a, b);  // same (name, labels) -> same object

  Counter* shard0 =
      registry.GetCounter("events_total", "help", {{"shard", "0"}});
  Counter* shard1 =
      registry.GetCounter("events_total", "help", {{"shard", "1"}});
  EXPECT_NE(shard0, shard1);
  EXPECT_NE(shard0, a);
  EXPECT_EQ(shard0,
            registry.GetCounter("events_total", "help", {{"shard", "0"}}));

  // Shared identity is what aggregates shard journals: both writers Add into
  // the same counter.
  shard0->Add(3);
  registry.GetCounter("events_total", "help", {{"shard", "0"}})->Add(4);
  EXPECT_EQ(shard0->Value(), 7u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x", "help"), nullptr);
  EXPECT_EQ(registry.GetGauge("x", "help"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x", "help"), nullptr);
}

TEST(MetricsRegistryTest, GaugeSetAddAndSetMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("depth", "help");
  g->Set(5);
  EXPECT_EQ(g->Value(), 5);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 3);
  g->SetMax(10);
  EXPECT_EQ(g->Value(), 10);
  g->SetMax(7);  // never regresses
  EXPECT_EQ(g->Value(), 10);
}

TEST(MetricsRegistryTest, CollectPreservesRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("b_total", "second-registered-first");
  registry.GetGauge("a_gauge", "registered second");
  registry.GetHistogram("c_seconds", "registered third");
  std::vector<MetricSample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "b_total");
  EXPECT_EQ(samples[0].kind, MetricKind::kCounter);
  EXPECT_EQ(samples[1].name, "a_gauge");
  EXPECT_EQ(samples[1].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[2].name, "c_seconds");
  EXPECT_EQ(samples[2].kind, MetricKind::kHistogram);
}

// --- Histogram bucket boundaries -----------------------------------------

TEST(LatencyHistogramTest, BucketBoundariesArePinned) {
  // Bucket 0 holds exactly zero; bucket b >= 1 holds [2^(b-1), 2^b) ns.
  LatencyHistogram h;
  h.RecordNanos(0);
  h.RecordNanos(1);     // bucket 1: [1, 2)
  h.RecordNanos(2);     // bucket 2: [2, 4)
  h.RecordNanos(3);     // bucket 2
  h.RecordNanos(4);     // bucket 3: [4, 8)
  h.RecordNanos(1023);  // bucket 10: [512, 1024)
  h.RecordNanos(1024);  // bucket 11: [1024, 2048)
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_EQ(s.buckets[11], 1u);
  EXPECT_EQ(s.count, 7u);

  EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperSeconds(1), 2e-9);
  EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperSeconds(11), 2048e-9);
}

TEST(LatencyHistogramTest, NegativeAndNaNClampToZeroBucket) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::nan(""));
  h.Record(0.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 3u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum_seconds, 0.0);
}

TEST(LatencyHistogramTest, PercentilesLandInTheRightBucket) {
  LatencyHistogram h;
  // 90 samples at ~1us (bucket [512, 1024) ns) and 10 at ~1ms.
  for (int i = 0; i < 90; ++i) h.Record(600e-9);
  for (int i = 0; i < 10; ++i) h.Record(1e-3);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);

  const double p50 = s.Percentile(0.50);
  EXPECT_GE(p50, 512e-9);
  EXPECT_LE(p50, 1024e-9);

  const double p95 = s.Percentile(0.95);
  // 1e-3 s = 1,000,000 ns lands in [2^19, 2^20) ns.
  EXPECT_GE(p95, 524288e-9);
  EXPECT_LE(p95, 1048576e-9);

  EXPECT_NEAR(s.MeanSeconds(), (90 * 600e-9 + 10 * 1e-3) / 100.0, 2e-6);
  // q=0 pins to the lower edge of the first non-empty bucket.
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 512e-9);
  EXPECT_LE(s.Percentile(1.0), 1048576e-9);
}

TEST(LatencyHistogramTest, EmptyPercentileIsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().MeanSeconds(), 0.0);
}

// --- Round trace ----------------------------------------------------------

TEST(RoundTraceTest, PhasesAccumulateByRoundAndEvictOldSlots) {
  RoundTrace trace(4);
  trace.RecordPhase(0, RoundPhase::kSeal, 0.5);
  trace.RecordPhase(0, RoundPhase::kSeal, 0.25);  // same phase accumulates
  trace.RecordPhase(0, RoundPhase::kClose, 1.0);
  for (int64_t r = 1; r <= 5; ++r) {
    trace.RecordPhase(r, RoundPhase::kClose, static_cast<double>(r));
  }
  // Capacity 4: rounds 2..5 survive; a late phase for evicted round 0 drops.
  trace.RecordPhase(0, RoundPhase::kCheckpoint, 9.0);
  std::vector<RoundSpanSnapshot> rounds = trace.Snapshot();
  ASSERT_EQ(rounds.size(), 4u);
  EXPECT_EQ(rounds.front().round, 2);
  EXPECT_EQ(rounds.back().round, 5);
  EXPECT_DOUBLE_EQ(
      rounds.back().phase_seconds[static_cast<size_t>(RoundPhase::kClose)],
      5.0);
}

TEST(TelemetryTest, RecordFailureIsFirstOnly) {
  Telemetry telemetry;
  telemetry.RecordFailure("journal", Status::OK());  // ignored
  EXPECT_FALSE(telemetry.first_failure().failed);
  telemetry.RecordFailure("journal", Status::IOError("disk gone"), 7);
  telemetry.RecordFailure("checkpoint", Status::Internal("later"), 9);
  FirstFailure f = telemetry.first_failure();
  EXPECT_TRUE(f.failed);
  EXPECT_EQ(f.component, "journal");
  EXPECT_EQ(f.code, StatusCode::kIOError);
  EXPECT_EQ(f.round, 7);
  EXPECT_NE(f.message.find("disk gone"), std::string::npos);
}

// --- Concurrency (exercised 3x under TSan via the CI stress regex) --------

TEST(MetricsRegistryTest, ConcurrentWritersAndSnapshotReader) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress_total", "help");
  Gauge* gauge = registry.GetGauge("stress_gauge", "help");
  LatencyHistogram* hist = registry.GetHistogram("stress_seconds", "help");

  constexpr int kWriters = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};

  // A reader snapshotting concurrently with the writers: values must be
  // torn-free (each cell read atomically) and Collect must never crash or
  // deadlock against registration of new labeled series.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<MetricSample> samples = registry.Collect();
      for (const MetricSample& s : samples) {
        if (s.kind == MetricKind::kHistogram) {
          uint64_t from_buckets = 0;
          for (uint64_t b : s.histogram.buckets) from_buckets += b;
          EXPECT_LE(from_buckets, static_cast<uint64_t>(kWriters) * kIters);
        }
      }
      (void)hist->Snapshot().Percentile(0.99);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer also registers its own labeled series mid-flight,
      // racing the reader's Collect against FindOrCreate.
      Counter* own = registry.GetCounter("stress_total", "help",
                                         {{"writer", std::to_string(w)}});
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        own->Increment();
        gauge->Set(i);
        gauge->SetMax(i);
        hist->RecordNanos(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kWriters) * kIters);
  EXPECT_EQ(hist->Count(), static_cast<uint64_t>(kWriters) * kIters);
  EXPECT_EQ(gauge->Value(), kIters - 1);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(registry
                  .GetCounter("stress_total", "help",
                              {{"writer", std::to_string(w)}})
                  ->Value(),
              static_cast<uint64_t>(kIters));
  }
}

TEST(RoundTraceTest, ConcurrentPhaseRecording) {
  Telemetry telemetry;
  RoundTrace& trace = telemetry.trace();
  constexpr int kThreads = 4;
  constexpr int64_t kRounds = 2000;
  std::vector<std::thread> threads;
  for (int p = 0; p < kThreads; ++p) {
    threads.emplace_back([&trace, p] {
      for (int64_t r = 0; r < kRounds; ++r) {
        trace.RecordPhase(r, static_cast<RoundPhase>(p % kNumRoundPhases),
                          1e-6);
      }
    });
  }
  std::thread failures([&telemetry] {
    for (int i = 0; i < 100; ++i) {
      telemetry.RecordFailure("closer", Status::Internal("x"), i);
      (void)telemetry.Snapshot();
    }
  });
  for (std::thread& t : threads) t.join();
  failures.join();
  std::vector<RoundSpanSnapshot> rounds = trace.Snapshot();
  ASSERT_FALSE(rounds.empty());
  EXPECT_EQ(rounds.back().round, kRounds - 1);
  EXPECT_EQ(telemetry.first_failure().round, 0);
}

}  // namespace
}  // namespace retrasyn
