// Prometheus text-format (0.0.4) exposition: exact golden-text pinning of
// header dedup, label rendering/escaping, cumulative histogram buckets, the
// synthetic round-trace gauges, and the sticky first-failure gauge.

#include "telemetry/prometheus_writer.h"

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "telemetry/telemetry.h"

namespace retrasyn {
namespace {

TEST(PrometheusWriterTest, EscapeLabelValue) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(PrometheusWriterTest, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(PrometheusText(TelemetrySnapshot()), "");
}

TEST(PrometheusWriterTest, GoldenText) {
  Telemetry telemetry;
  MetricsRegistry& registry = telemetry.registry();

  // Two series of one counter family: the # HELP/# TYPE header must appear
  // exactly once.
  registry.GetCounter("retrasyn_test_events_total", "Events admitted",
                      {{"shard", "0"}})->Add(3);
  registry.GetCounter("retrasyn_test_events_total", "Events admitted",
                      {{"shard", "1"}})->Add(4);
  registry.GetGauge("retrasyn_test_depth", "Queue depth")->Set(-2);

  // Known bucket landings: 0 ns -> bucket 0 (le="0"), 1 ns -> bucket 1
  // (le = 2 ns), 3 ns -> bucket 2 (le = 4 ns), 1 ms -> bucket 20
  // (le = 2^20 ns = 0.001048576 s). Empty buckets are skipped; the emitted
  // ones are cumulative.
  LatencyHistogram* hist =
      registry.GetHistogram("retrasyn_test_latency_seconds", "Step latency");
  hist->RecordNanos(0);
  hist->RecordNanos(1);
  hist->RecordNanos(3);
  hist->RecordNanos(1000000);

  registry.GetCounter("retrasyn_test_escape", "Label escaping",
                      {{"path", "a\\b\"c\nd"}})->Increment();

  telemetry.trace().RecordPhase(7, RoundPhase::kClose, 0.5);
  telemetry.trace().RecordPhase(7, RoundPhase::kJournal, 0.25);
  telemetry.RecordFailure("journal", Status::IOError("disk gone"), 3);

  TelemetrySnapshot snap = telemetry.Snapshot();
  // The failure timestamp is wall clock; pin it for the golden comparison.
  snap.first_failure.unix_seconds = 12345.5;

  const std::string expected =
      R"(# HELP retrasyn_test_events_total Events admitted
# TYPE retrasyn_test_events_total counter
retrasyn_test_events_total{shard="0"} 3
retrasyn_test_events_total{shard="1"} 4
# HELP retrasyn_test_depth Queue depth
# TYPE retrasyn_test_depth gauge
retrasyn_test_depth -2
# HELP retrasyn_test_latency_seconds Step latency
# TYPE retrasyn_test_latency_seconds histogram
retrasyn_test_latency_seconds_bucket{le="0"} 1
retrasyn_test_latency_seconds_bucket{le="2e-09"} 2
retrasyn_test_latency_seconds_bucket{le="4e-09"} 3
retrasyn_test_latency_seconds_bucket{le="0.001048576"} 4
retrasyn_test_latency_seconds_bucket{le="+Inf"} 4
retrasyn_test_latency_seconds_sum 0.001000004
retrasyn_test_latency_seconds_count 4
# HELP retrasyn_test_escape Label escaping
# TYPE retrasyn_test_escape counter
retrasyn_test_escape{path="a\\b\"c\nd"} 1
# HELP retrasyn_round_trace_last_round Most recent round with a recorded lifecycle trace
# TYPE retrasyn_round_trace_last_round gauge
retrasyn_round_trace_last_round 7
# HELP retrasyn_round_phase_seconds Per-phase duration of the most recent traced round
# TYPE retrasyn_round_phase_seconds gauge
retrasyn_round_phase_seconds{phase="admit"} 0
retrasyn_round_phase_seconds{phase="seal"} 0
retrasyn_round_phase_seconds{phase="merge"} 0
retrasyn_round_phase_seconds{phase="close"} 0.5
retrasyn_round_phase_seconds{phase="deliver"} 0
retrasyn_round_phase_seconds{phase="journal"} 0.25
retrasyn_round_phase_seconds{phase="commit"} 0
retrasyn_round_phase_seconds{phase="checkpoint"} 0
# HELP retrasyn_first_failure_timestamp_seconds Wall-clock time of the first recorded background failure
# TYPE retrasyn_first_failure_timestamp_seconds gauge
retrasyn_first_failure_timestamp_seconds{component="journal",code="IOError",round="3"} 12345.5
)";
  EXPECT_EQ(PrometheusText(snap), expected);
}

TEST(PrometheusWriterTest, FailureWithoutRoundOmitsRoundLabel) {
  TelemetrySnapshot snap;
  snap.first_failure.failed = true;
  snap.first_failure.component = "closer";
  snap.first_failure.code = StatusCode::kInternal;
  snap.first_failure.unix_seconds = 2.0;
  const std::string text = PrometheusText(snap);
  EXPECT_NE(text.find("retrasyn_first_failure_timestamp_seconds"
                      "{component=\"closer\",code=\"Internal\"} 2\n"),
            std::string::npos);
  EXPECT_EQ(text.find("round="), std::string::npos);
}

}  // namespace
}  // namespace retrasyn
