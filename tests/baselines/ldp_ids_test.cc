#include "baselines/ldp_ids.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

struct BaselineFixture {
  BaselineFixture(int64_t horizon = 80, uint32_t users = 200)
      : grid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 4), states(grid) {
    RandomWalkConfig config;
    config.num_timestamps = horizon;
    config.initial_users = users;
    config.mean_arrivals = users / 20.0;
    config.quit_probability = 0.03;
    Rng rng(11);
    db = GenerateRandomWalkStreams(config, rng);
    feeder = std::make_unique<StreamFeeder>(db, grid, states);
  }

  void Run(LdpIdsEngine& engine) const {
    for (int64_t t = 0; t < feeder->num_timestamps(); ++t) {
      engine.Observe(feeder->Batch(t));
    }
  }

  Grid grid;
  StateSpace states;
  StreamDatabase db;
  std::unique_ptr<StreamFeeder> feeder;
};

LdpIdsConfig MakeConfig(LdpIdsMethod method) {
  LdpIdsConfig config;
  config.epsilon = 1.0;
  config.window = 10;
  config.method = method;
  config.seed = 5;
  return config;
}

class LdpIdsMethodTest : public testing::TestWithParam<LdpIdsMethod> {};

TEST_P(LdpIdsMethodTest, RunsAndProducesSynthetic) {
  const BaselineFixture fx;
  LdpIdsEngine engine(fx.states, MakeConfig(GetParam()));
  fx.Run(engine);
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  EXPECT_GT(syn.streams().size(), 0u);
  EXPECT_GT(engine.num_publications(), 0);
  for (const CellStream& s : syn.streams()) {
    for (size_t i = 1; i < s.cells.size(); ++i) {
      EXPECT_TRUE(fx.grid.AreNeighbors(s.cells[i - 1], s.cells[i]));
    }
  }
}

TEST_P(LdpIdsMethodTest, FrozenPopulationNeverTerminates) {
  // The adaptation drops enter/quit modeling: one cohort, full horizon.
  const BaselineFixture fx;
  LdpIdsEngine engine(fx.states, MakeConfig(GetParam()));
  fx.Run(engine);
  const CellStreamSet syn = engine.Finish(fx.feeder->num_timestamps());
  ASSERT_GT(syn.streams().size(), 0u);
  const int64_t t0 = syn.streams()[0].enter_time;
  for (const CellStream& s : syn.streams()) {
    EXPECT_EQ(s.enter_time, t0);
    EXPECT_EQ(s.end_time(), fx.feeder->num_timestamps());
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, LdpIdsMethodTest,
                         testing::Values(LdpIdsMethod::kLBD,
                                         LdpIdsMethod::kLBA,
                                         LdpIdsMethod::kLPD,
                                         LdpIdsMethod::kLPA),
                         [](const testing::TestParamInfo<LdpIdsMethod>& info) {
                           return LdpIdsMethodName(info.param);
                         });

TEST(LdpIdsBudgetTest, LbdWindowBudgetWithinEpsilon) {
  const BaselineFixture fx;
  const LdpIdsConfig config = MakeConfig(LdpIdsMethod::kLBD);
  LdpIdsEngine engine(fx.states, config);
  fx.Run(engine);
  EXPECT_LE(engine.budget_ledger().MaxWindowSpend(), config.epsilon + 1e-9);
}

TEST(LdpIdsBudgetTest, LbaWindowBudgetWithinEpsilon) {
  const BaselineFixture fx;
  const LdpIdsConfig config = MakeConfig(LdpIdsMethod::kLBA);
  LdpIdsEngine engine(fx.states, config);
  fx.Run(engine);
  EXPECT_LE(engine.budget_ledger().MaxWindowSpend(), config.epsilon + 1e-9);
}

TEST(LdpIdsPopulationTest, NoUserReportsTwicePerWindow) {
  for (LdpIdsMethod method : {LdpIdsMethod::kLPD, LdpIdsMethod::kLPA}) {
    const BaselineFixture fx;
    LdpIdsEngine engine(fx.states, MakeConfig(method));
    fx.Run(engine);
    EXPECT_FALSE(engine.report_tracker().HasViolation())
        << LdpIdsMethodName(method);
    EXPECT_GT(engine.report_tracker().num_reports(), 0);
  }
}

TEST(LdpIdsTest, SteadyStreamPublishesRarely) {
  // A dissimilarity-driven mechanism should approximate most timestamps on a
  // (statistically) stationary stream.
  const BaselineFixture fx(100, 400);
  LdpIdsEngine engine(fx.states, MakeConfig(LdpIdsMethod::kLPD));
  fx.Run(engine);
  EXPECT_LT(engine.num_publications(), 100);
}

TEST(LdpIdsTest, Names) {
  const BaselineFixture fx(10, 20);
  EXPECT_EQ(LdpIdsEngine(fx.states, MakeConfig(LdpIdsMethod::kLBD)).name(),
            "LBD");
  EXPECT_EQ(LdpIdsEngine(fx.states, MakeConfig(LdpIdsMethod::kLPA)).name(),
            "LPA");
}

TEST(LdpIdsTest, DeterministicGivenSeed) {
  const BaselineFixture fx(40, 100);
  auto run_once = [&]() {
    LdpIdsEngine engine(fx.states, MakeConfig(LdpIdsMethod::kLPA));
    for (int64_t t = 0; t < fx.feeder->num_timestamps(); ++t) {
      engine.Observe(fx.feeder->Batch(t));
    }
    return engine.Finish(fx.feeder->num_timestamps());
  };
  const CellStreamSet a = run_once();
  const CellStreamSet b = run_once();
  ASSERT_EQ(a.streams().size(), b.streams().size());
  for (size_t i = 0; i < a.streams().size(); ++i) {
    EXPECT_EQ(a.streams()[i].cells, b.streams()[i].cells);
  }
}

}  // namespace
}  // namespace retrasyn
