#include "stream/stream_database.h"

#include <gtest/gtest.h>

#include "stream/cell_stream.h"

namespace retrasyn {
namespace {

BoundingBox UnitBox() { return BoundingBox{0.0, 0.0, 1.0, 1.0}; }

UserStream MakeStream(uint64_t id, int64_t enter, size_t length) {
  UserStream s;
  s.user_id = id;
  s.enter_time = enter;
  s.points.assign(length, Point{0.5, 0.5});
  return s;
}

TEST(UserStreamTest, TimeAccessors) {
  const UserStream s = MakeStream(1, 3, 4);
  EXPECT_EQ(s.end_time(), 7);
  EXPECT_FALSE(s.ActiveAt(2));
  EXPECT_TRUE(s.ActiveAt(3));
  EXPECT_TRUE(s.ActiveAt(6));
  EXPECT_FALSE(s.ActiveAt(7));
}

TEST(StreamDatabaseTest, ActiveCountsAndTotals) {
  StreamDatabase db(UnitBox(), 10);
  db.Add(MakeStream(0, 0, 5)).CheckOK();   // active 0..4
  db.Add(MakeStream(1, 3, 4)).CheckOK();   // active 3..6
  db.Add(MakeStream(2, 8, 2)).CheckOK();   // active 8..9
  EXPECT_EQ(db.TotalPoints(), 11u);
  EXPECT_NEAR(db.AverageLength(), 11.0 / 3.0, 1e-12);
  EXPECT_EQ(db.ActiveCount(0), 1u);
  EXPECT_EQ(db.ActiveCount(3), 2u);
  EXPECT_EQ(db.ActiveCount(4), 2u);
  EXPECT_EQ(db.ActiveCount(5), 1u);
  EXPECT_EQ(db.ActiveCount(7), 0u);
  EXPECT_EQ(db.ActiveCount(9), 1u);
  EXPECT_EQ(db.ActiveCount(-1), 0u);
  EXPECT_EQ(db.ActiveCount(10), 0u);
}

TEST(StreamDatabaseTest, SubsampleKeepsApproximateFraction) {
  StreamDatabase db(UnitBox(), 5);
  for (int i = 0; i < 2000; ++i) db.Add(MakeStream(i, 0, 3)).CheckOK();
  Rng rng(77);
  const StreamDatabase half = db.Subsample(0.5, rng);
  EXPECT_NEAR(half.streams().size(), 1000.0, 80.0);
  EXPECT_EQ(half.num_timestamps(), 5);
}

TEST(StreamDatabaseTest, SubsampleExtremes) {
  StreamDatabase db(UnitBox(), 5);
  for (int i = 0; i < 100; ++i) db.Add(MakeStream(i, 0, 2)).CheckOK();
  Rng rng(78);
  EXPECT_EQ(db.Subsample(0.0, rng).streams().size(), 0u);
  EXPECT_EQ(db.Subsample(1.0, rng).streams().size(), 100u);
}

TEST(CellStreamTest, Accessors) {
  CellStream s;
  s.enter_time = 2;
  s.cells = {4, 5, 5};
  EXPECT_EQ(s.end_time(), 5);
  EXPECT_TRUE(s.ActiveAt(4));
  EXPECT_FALSE(s.ActiveAt(5));
  EXPECT_EQ(s.At(3), 5u);
  EXPECT_EQ(s.length(), 3u);
}

TEST(CellStreamSetTest, ActiveCountsAndDensity) {
  CellStreamSet set(6);
  CellStream a;
  a.enter_time = 0;
  a.cells = {0, 1, 2};
  set.Add(a).CheckOK();
  CellStream b;
  b.enter_time = 1;
  b.cells = {1, 1};
  set.Add(b).CheckOK();
  EXPECT_EQ(set.TotalPoints(), 5u);
  EXPECT_EQ(set.ActiveCount(0), 1u);
  EXPECT_EQ(set.ActiveCount(1), 2u);
  EXPECT_EQ(set.ActiveCount(2), 2u);
  EXPECT_EQ(set.ActiveCount(3), 0u);
  const auto density = set.DensityCounts(4, 1);
  EXPECT_EQ(density[1], 2u);  // stream a at cell 1, stream b at cell 1
  EXPECT_EQ(density[0], 0u);
}

TEST(StreamDatabaseTest, AddRejectsMalformedStreamsWithoutAborting) {
  // A bad input file must surface as a Status a long-running service can
  // refuse — never a process abort.
  StreamDatabase db(UnitBox(), 10);
  EXPECT_EQ(db.Add(MakeStream(0, 0, 0)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Add(MakeStream(0, -1, 3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Add(MakeStream(0, 8, 3)).code(), StatusCode::kInvalidArgument);
  // The failed adds left nothing behind.
  EXPECT_TRUE(db.streams().empty());
  EXPECT_EQ(db.TotalPoints(), 0u);
  EXPECT_TRUE(db.Add(MakeStream(0, 7, 3)).ok());  // [7, 10) just fits
  EXPECT_EQ(db.streams().size(), 1u);
}

TEST(CellStreamSetTest, AddRejectsMalformedStreamsWithoutAborting) {
  CellStreamSet set(5);
  CellStream empty;
  EXPECT_EQ(set.Add(empty).code(), StatusCode::kInvalidArgument);
  CellStream negative;
  negative.enter_time = -2;
  negative.cells = {0};
  EXPECT_EQ(set.Add(negative).code(), StatusCode::kInvalidArgument);
  CellStream overflow;
  overflow.enter_time = 3;
  overflow.cells = {0, 1, 2};
  EXPECT_EQ(set.Add(overflow).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(set.streams().empty());
  EXPECT_EQ(set.TotalPoints(), 0u);
  overflow.enter_time = 2;
  EXPECT_TRUE(set.Add(overflow).ok());  // [2, 5) just fits
}

}  // namespace
}  // namespace retrasyn
