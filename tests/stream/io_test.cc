#include "stream/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "geo/grid.h"

namespace retrasyn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
}

TEST(IoTest, LoadBasicStreams) {
  const std::string path = TempPath("basic.csv");
  WriteFile(path,
            "user_id,timestamp,x,y\n"
            "1,0,0.1,0.1\n"
            "1,1,0.2,0.2\n"
            "1,2,0.3,0.3\n"
            "2,1,0.9,0.9\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value().streams().size(), 2u);
  EXPECT_EQ(db.value().num_timestamps(), 3);
  EXPECT_EQ(db.value().TotalPoints(), 4u);
}

TEST(IoTest, GapSplitsIntoMultipleStreams) {
  const std::string path = TempPath("gaps.csv");
  WriteFile(path,
            "7,0,0.0,0.0\n"
            "7,1,0.1,0.1\n"
            "7,5,0.5,0.5\n"   // gap: 2,3,4 missing
            "7,6,0.6,0.6\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db.value().streams().size(), 2u);
  const auto& s0 = db.value().streams()[0];
  const auto& s1 = db.value().streams()[1];
  EXPECT_EQ(s0.enter_time, 0);
  EXPECT_EQ(s0.points.size(), 2u);
  EXPECT_EQ(s1.enter_time, 5);
  EXPECT_EQ(s1.points.size(), 2u);
  EXPECT_NE(s0.user_id, s1.user_id);
}

TEST(IoTest, DuplicateTimestampsKeepFirst) {
  const std::string path = TempPath("dups.csv");
  WriteFile(path,
            "1,0,0.1,0.1\n"
            "1,1,0.2,0.2\n"
            "1,1,0.9,0.9\n"
            "1,2,0.3,0.3\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db.value().streams().size(), 1u);
  EXPECT_EQ(db.value().streams()[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(db.value().streams()[0].points[1].x, 0.2);
}

TEST(IoTest, UnsortedInputIsSorted) {
  const std::string path = TempPath("unsorted.csv");
  WriteFile(path,
            "1,2,0.3,0.3\n"
            "1,0,0.1,0.1\n"
            "1,1,0.2,0.2\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db.value().streams().size(), 1u);
  EXPECT_DOUBLE_EQ(db.value().streams()[0].points[0].x, 0.1);
  EXPECT_DOUBLE_EQ(db.value().streams()[0].points[2].x, 0.3);
}

TEST(IoTest, ExplicitBoxAndHorizonOverride) {
  const std::string path = TempPath("opts.csv");
  WriteFile(path, "1,0,5.0,5.0\n1,1,6.0,6.0\n");
  ImportOptions options;
  options.box = BoundingBox{0.0, 0.0, 10.0, 10.0};
  options.num_timestamps = 8;
  auto db = LoadStreamDatabaseCsv(path, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().num_timestamps(), 8);
  EXPECT_DOUBLE_EQ(db.value().box().max_x, 10.0);
}

TEST(IoTest, RowsBeyondHorizonDropped) {
  const std::string path = TempPath("beyond.csv");
  WriteFile(path, "1,0,1.0,1.0\n1,1,2.0,2.0\n1,2,3.0,3.0\n");
  ImportOptions options;
  options.num_timestamps = 2;
  auto db = LoadStreamDatabaseCsv(path, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().TotalPoints(), 2u);
}

TEST(IoTest, MalformedRowRejected) {
  const std::string path = TempPath("bad.csv");
  WriteFile(path, "1,0,oops,0.1\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoTest, ShortRowRejected) {
  const std::string path = TempPath("short.csv");
  WriteFile(path, "1,0,0.5\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_FALSE(db.ok());
}

TEST(IoTest, NegativeTimestampRejected) {
  const std::string path = TempPath("negt.csv");
  WriteFile(path, "1,-2,0.5,0.5\n");
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_FALSE(db.ok());
}

TEST(IoTest, MissingFileIsIOError) {
  auto db = LoadStreamDatabaseCsv("/no/such/file.csv");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIOError);
}

TEST(IoTest, WriteThenLoadRoundTrip) {
  StreamDatabase db(BoundingBox{0.0, 0.0, 1.0, 1.0}, 4);
  UserStream s;
  s.user_id = 9;
  s.enter_time = 1;
  s.points = {Point{0.25, 0.75}, Point{0.5, 0.5}};
  db.Add(s).CheckOK();
  const std::string path = TempPath("export.csv");
  ASSERT_TRUE(WriteStreamDatabaseCsv(db, path).ok());

  ImportOptions options;
  options.num_timestamps = 4;
  auto loaded = LoadStreamDatabaseCsv(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().streams().size(), 1u);
  EXPECT_EQ(loaded.value().streams()[0].enter_time, 1);
  EXPECT_NEAR(loaded.value().streams()[0].points[0].x, 0.25, 1e-6);
  EXPECT_NEAR(loaded.value().streams()[0].points[1].y, 0.5, 1e-6);
}

TEST(IoTest, WriteCellStreams) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 2);
  CellStreamSet set(3);
  CellStream s;
  s.enter_time = 0;
  s.cells = {0, 3};
  set.Add(s).CheckOK();
  const std::string path = TempPath("cells.csv");
  ASSERT_TRUE(WriteCellStreamsCsv(set, grid, path).ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);  // header + 2 points
  EXPECT_EQ(rows.value()[1][2], "0");
  EXPECT_EQ(rows.value()[2][2], "3");
}

}  // namespace
}  // namespace retrasyn
