#include "geo/grid.h"
#include "stream/feeder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {
namespace {

// 2x2 grid over the unit box: cells 0..3, every pair of cells adjacent.
class FeederTest : public testing::Test {
 protected:
  FeederTest()
      : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 2), states_(grid_) {}

  Point CellPoint(CellId c) const { return grid_.CellCenter(c); }

  Grid grid_;
  StateSpace states_;
};

TEST_F(FeederTest, ObservationsPerTimestamp) {
  StreamDatabase db(grid_.box(), 5);
  // User 0: cells 0 -> 1 -> 3 over t = 0..2, then quits (observed at t=3).
  UserStream u0;
  u0.user_id = 0;
  u0.enter_time = 0;
  u0.points = {CellPoint(0), CellPoint(1), CellPoint(3)};
  db.Add(u0).CheckOK();
  // User 1: enters at t=2 at cell 2, survives to the horizon (no quit event).
  UserStream u1;
  u1.user_id = 1;
  u1.enter_time = 2;
  u1.points = {CellPoint(2), CellPoint(2), CellPoint(0)};
  db.Add(u1).CheckOK();

  const StreamFeeder feeder(db, grid_, states_);
  ASSERT_EQ(feeder.num_timestamps(), 5);

  // t = 0: user 0 enters at cell 0.
  {
    const TimestampBatch& b = feeder.Batch(0);
    ASSERT_EQ(b.observations.size(), 1u);
    EXPECT_TRUE(b.observations[0].is_enter);
    EXPECT_EQ(b.observations[0].state, states_.EnterIndex(0));
    EXPECT_EQ(b.num_active, 1u);
  }
  // t = 1: user 0 moves 0 -> 1.
  {
    const TimestampBatch& b = feeder.Batch(1);
    ASSERT_EQ(b.observations.size(), 1u);
    EXPECT_FALSE(b.observations[0].is_enter);
    EXPECT_FALSE(b.observations[0].is_quit);
    EXPECT_EQ(b.observations[0].state, states_.MoveIndex(0, 1));
  }
  // t = 2: user 0 moves 1 -> 3; user 1 enters at cell 2.
  {
    const TimestampBatch& b = feeder.Batch(2);
    ASSERT_EQ(b.observations.size(), 2u);
    EXPECT_EQ(b.num_active, 2u);
  }
  // t = 3: user 0 quits (final location cell 3); user 1 dwells 2 -> 2.
  {
    const TimestampBatch& b = feeder.Batch(3);
    ASSERT_EQ(b.observations.size(), 2u);
    bool saw_quit = false, saw_move = false;
    for (const auto& obs : b.observations) {
      if (obs.is_quit) {
        saw_quit = true;
        EXPECT_EQ(obs.state, states_.QuitIndex(3));
        EXPECT_EQ(obs.user_index, 0u);
      } else {
        saw_move = true;
        EXPECT_EQ(obs.state, states_.MoveIndex(2, 2));
      }
    }
    EXPECT_TRUE(saw_quit);
    EXPECT_TRUE(saw_move);
    EXPECT_EQ(b.num_active, 1u);
  }
  // t = 4: user 1 moves 2 -> 0; no quit for user 1 (horizon end).
  {
    const TimestampBatch& b = feeder.Batch(4);
    ASSERT_EQ(b.observations.size(), 1u);
    EXPECT_EQ(b.observations[0].state, states_.MoveIndex(2, 0));
  }
}

TEST_F(FeederTest, CellStreamsMatchDiscretization) {
  StreamDatabase db(grid_.box(), 3);
  UserStream u;
  u.user_id = 0;
  u.enter_time = 0;
  u.points = {CellPoint(1), CellPoint(3), CellPoint(2)};
  db.Add(u).CheckOK();
  const StreamFeeder feeder(db, grid_, states_);
  const CellStreamSet& cells = feeder.cell_streams();
  ASSERT_EQ(cells.streams().size(), 1u);
  EXPECT_EQ(cells.streams()[0].cells, (std::vector<CellId>{1, 3, 2}));
}

TEST(FeederClampTest, NonAdjacentMovementsAreClamped) {
  // 5x5 grid; a jump from cell (0,0) to (0,4) violates adjacency and must be
  // clamped to a neighbor of the source.
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 5);
  const StateSpace states(grid);
  StreamDatabase db(grid.box(), 2);
  UserStream u;
  u.user_id = 0;
  u.enter_time = 0;
  u.points = {grid.CellCenter(grid.Cell(0, 0)),
              grid.CellCenter(grid.Cell(0, 4))};
  db.Add(u).CheckOK();
  const StreamFeeder feeder(db, grid, states);
  const TimestampBatch& b = feeder.Batch(1);
  ASSERT_EQ(b.observations.size(), 1u);
  ASSERT_NE(b.observations[0].state, kInvalidState);
  const TransitionState s = states.Decode(b.observations[0].state);
  EXPECT_EQ(s.kind, StateKind::kMove);
  EXPECT_EQ(s.from, grid.Cell(0, 0));
  EXPECT_TRUE(grid.AreNeighbors(s.from, s.to));
  // Clamped toward the target: the chosen neighbor is (0,1).
  EXPECT_EQ(s.to, grid.Cell(0, 1));
  // The ground-truth cell stream reflects the clamp too.
  EXPECT_EQ(feeder.cell_streams().streams()[0].cells[1], grid.Cell(0, 1));
}

TEST(FeederStressTest, EveryObservationEncodable) {
  const Grid grid(BoundingBox{0.0, 0.0, 1000.0, 1000.0}, 6);
  const StateSpace states(grid);
  Rng rng(5);
  RandomWalkConfig config;
  config.num_timestamps = 40;
  config.initial_users = 50;
  const StreamDatabase db = GenerateRandomWalkStreams(config, rng);
  const StreamFeeder feeder(db, grid, states);
  size_t total_obs = 0;
  for (int64_t t = 0; t < feeder.num_timestamps(); ++t) {
    for (const auto& obs : feeder.Batch(t).observations) {
      ASSERT_NE(obs.state, kInvalidState);
      ASSERT_LT(obs.state, states.size());
      ++total_obs;
    }
    EXPECT_EQ(feeder.Batch(t).num_active, db.ActiveCount(t));
  }
  // points + quit events, quits = streams that end before the horizon.
  size_t expected_quits = 0;
  for (const auto& s : db.streams()) {
    if (s.end_time() < db.num_timestamps()) ++expected_quits;
  }
  EXPECT_EQ(total_obs, db.TotalPoints() + expected_quits);
}

}  // namespace
}  // namespace retrasyn
