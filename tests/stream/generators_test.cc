#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "geo/grid.h"
#include "stream/hotspot_generator.h"
#include "stream/network_generator.h"
#include "stream/random_walk_generator.h"
#include "stream/road_network.h"

namespace retrasyn {
namespace {

TEST(RoadNetworkTest, GeneratedNetworkIsConnected) {
  Rng rng(1);
  RoadNetworkConfig config;
  config.grid_dim = 10;
  config.edge_keep_prob = 0.7;  // aggressive pruning, must still connect
  const RoadNetwork net = RoadNetwork::Generate(config, rng);
  EXPECT_TRUE(net.IsConnected());
  EXPECT_EQ(net.num_nodes(), 100u);
  EXPECT_GT(net.num_edges(), 0u);
}

TEST(RoadNetworkTest, NodesInsideBox) {
  Rng rng(2);
  RoadNetworkConfig config;
  config.grid_dim = 8;
  const RoadNetwork net = RoadNetwork::Generate(config, rng);
  for (uint32_t v = 0; v < net.num_nodes(); ++v) {
    EXPECT_TRUE(config.box.Contains(net.NodePosition(v)));
  }
}

TEST(RoadNetworkTest, EdgesHaveValidSpeedAndLength) {
  Rng rng(3);
  RoadNetworkConfig config;
  const RoadNetwork net = RoadNetwork::Generate(config, rng);
  for (uint32_t v = 0; v < net.num_nodes(); ++v) {
    for (const auto& e : net.EdgesFrom(v)) {
      EXPECT_LT(e.to, net.num_nodes());
      EXPECT_GT(e.length, 0.0);
      EXPECT_TRUE(std::find(config.speed_classes.begin(),
                            config.speed_classes.end(),
                            e.speed) != config.speed_classes.end());
    }
  }
}

TEST(RoadNetworkTest, ShortestPathEndsCorrectAndUsesEdges) {
  Rng rng(4);
  RoadNetworkConfig config;
  config.grid_dim = 9;
  const RoadNetwork net = RoadNetwork::Generate(config, rng);
  Rng pick(5);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t src =
        static_cast<uint32_t>(pick.UniformInt(uint64_t{net.num_nodes()}));
    const uint32_t dst =
        static_cast<uint32_t>(pick.UniformInt(uint64_t{net.num_nodes()}));
    const auto path = net.ShortestPath(src, dst);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      bool edge_exists = false;
      for (const auto& e : net.EdgesFrom(path[i])) {
        if (e.to == path[i + 1]) edge_exists = true;
      }
      EXPECT_TRUE(edge_exists) << "hop " << i;
    }
  }
}

TEST(RoadNetworkTest, ShortestPathToSelf) {
  Rng rng(6);
  const RoadNetwork net = RoadNetwork::Generate(RoadNetworkConfig{}, rng);
  const auto path = net.ShortestPath(5, 5);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 5u);
}

TEST(NetworkGeneratorTest, PopulationSchedule) {
  Rng rng(7);
  NetworkGeneratorConfig config;
  config.num_timestamps = 30;
  config.initial_objects = 100;
  config.arrivals_per_timestamp = 10;
  config.network.grid_dim = 6;
  const StreamDatabase db = GenerateNetworkStreams(config, rng);
  // Total streams = initial + arrivals at each of t = 1..29.
  EXPECT_EQ(db.streams().size(), 100u + 29u * 10u);
  // Everyone entering at t=0 is active there.
  EXPECT_EQ(db.ActiveCount(0), 100u);
  size_t entered_at_0 = 0;
  for (const auto& s : db.streams()) {
    EXPECT_GE(s.enter_time, 0);
    EXPECT_LE(s.end_time(), config.num_timestamps);
    EXPECT_TRUE(config.network.box.Contains(s.points.front()));
    if (s.enter_time == 0) ++entered_at_0;
  }
  EXPECT_EQ(entered_at_0, 100u);
}

TEST(NetworkGeneratorTest, QuittingBoundsLifetimes) {
  Rng rng(8);
  NetworkGeneratorConfig config;
  config.num_timestamps = 200;
  config.initial_objects = 500;
  config.arrivals_per_timestamp = 0;
  config.quit_probability = 0.10;
  config.trip_chain_probability = 1.0;  // never quit by arrival
  config.network.grid_dim = 6;
  const StreamDatabase db = GenerateNetworkStreams(config, rng);
  // Mean lifetime should be near 1/0.10 = 10 reports.
  EXPECT_NEAR(db.AverageLength(), 10.0, 2.0);
}

TEST(NetworkGeneratorTest, MovementRespectsSpeedBound) {
  Rng rng(9);
  NetworkGeneratorConfig config;
  config.num_timestamps = 50;
  config.initial_objects = 100;
  config.arrivals_per_timestamp = 5;
  const StreamDatabase db = GenerateNetworkStreams(config, rng);
  const double max_speed = *std::max_element(
      config.network.speed_classes.begin(), config.network.speed_classes.end());
  const double max_step = max_speed * config.timestamp_interval_seconds;
  for (const auto& s : db.streams()) {
    for (size_t i = 1; i < s.points.size(); ++i) {
      // Straight-line displacement can't exceed along-network distance.
      EXPECT_LE(EuclideanDistance(s.points[i - 1], s.points[i]),
                max_step + 1e-6);
    }
  }
}

TEST(HotspotGeneratorTest, HorizonAndBoxRespected) {
  Rng rng(10);
  HotspotGeneratorConfig config;
  config.num_timestamps = 100;
  config.initial_users = 200;
  config.mean_arrivals = 20.0;
  const StreamDatabase db = GenerateHotspotStreams(config, rng);
  EXPECT_EQ(db.num_timestamps(), 100);
  EXPECT_EQ(db.ActiveCount(0), 200u);
  for (const auto& s : db.streams()) {
    EXPECT_LE(s.end_time(), 100);
    for (const auto& p : s.points) {
      EXPECT_TRUE(config.box.Contains(p));
    }
  }
}

TEST(HotspotGeneratorTest, AverageLengthTracksQuitProbability) {
  Rng rng(11);
  HotspotGeneratorConfig config;
  config.num_timestamps = 400;
  config.initial_users = 1500;
  config.mean_arrivals = 0.0;
  config.quit_probability = 1.0 / 13.61;  // paper's average length
  const StreamDatabase db = GenerateHotspotStreams(config, rng);
  EXPECT_NEAR(db.AverageLength(), 13.61, 2.0);
}

TEST(HotspotGeneratorTest, SpatialSkewExists) {
  // Hotspot data must be far from uniform: the busiest of 36 cells should
  // hold well over the uniform share of points.
  Rng rng(12);
  HotspotGeneratorConfig config;
  config.num_timestamps = 80;
  config.initial_users = 500;
  config.mean_arrivals = 30.0;
  const StreamDatabase db = GenerateHotspotStreams(config, rng);
  const Grid grid(config.box, 6);
  std::vector<uint64_t> counts(grid.NumCells(), 0);
  uint64_t total = 0;
  for (const auto& s : db.streams()) {
    for (const auto& p : s.points) {
      ++counts[grid.Locate(p)];
      ++total;
    }
  }
  const uint64_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count * 36, total * 2);  // > 2x uniform share
}

TEST(RandomWalkGeneratorTest, BasicValidity) {
  Rng rng(13);
  RandomWalkConfig config;
  config.num_timestamps = 60;
  config.initial_users = 100;
  const StreamDatabase db = GenerateRandomWalkStreams(config, rng);
  EXPECT_GT(db.streams().size(), 100u);  // initial + arrivals
  for (const auto& s : db.streams()) {
    EXPECT_FALSE(s.points.empty());
    EXPECT_LE(s.end_time(), 60);
  }
}

TEST(GeneratorDeterminismTest, SameSeedSameData) {
  RandomWalkConfig config;
  config.num_timestamps = 30;
  Rng a(99), b(99);
  const StreamDatabase da = GenerateRandomWalkStreams(config, a);
  const StreamDatabase db = GenerateRandomWalkStreams(config, b);
  ASSERT_EQ(da.streams().size(), db.streams().size());
  EXPECT_EQ(da.TotalPoints(), db.TotalPoints());
  for (size_t i = 0; i < da.streams().size(); ++i) {
    EXPECT_EQ(da.streams()[i].enter_time, db.streams()[i].enter_time);
    ASSERT_EQ(da.streams()[i].points.size(), db.streams()[i].points.size());
    EXPECT_EQ(da.streams()[i].points[0], db.streams()[i].points[0]);
  }
}

}  // namespace
}  // namespace retrasyn
