// Alias-table correctness: the O(1) sampler must draw from exactly the same
// distribution as the linear Rng::Discrete scan it replaces in the synthesis
// hot path, and keep its zero-mass / negative-weight contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/alias_table.h"
#include "common/rng.h"

namespace retrasyn {
namespace {

/// Chi-square statistic of observed counts against the exact proportions of
/// \p weights (negatives count as zero); returns the degrees of freedom via
/// \p dof_out.
double ChiSquare(const std::vector<int>& counts,
                 const std::vector<double>& weights, int n, int* dof_out) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  double chi2 = 0.0;
  int dof = -1;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    const double expected = n * w / total;
    if (expected == 0.0) {
      EXPECT_EQ(counts[i], 0) << "index " << i << " has zero mass";
      continue;
    }
    chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
    ++dof;
  }
  *dof_out = dof;
  return chi2;
}

TEST(AliasTableTest, EmptyAndZeroMass) {
  AliasTable table;
  EXPECT_FALSE(table.has_mass());
  EXPECT_EQ(table.size(), 0u);

  table.Build(std::vector<double>{});
  EXPECT_FALSE(table.has_mass());

  table.Build({0.0, 0.0, 0.0});
  EXPECT_FALSE(table.has_mass());
  EXPECT_EQ(table.size(), 3u);

  table.Build({-1.0, -2.5});
  EXPECT_FALSE(table.has_mass());
  EXPECT_DOUBLE_EQ(table.total_mass(), 0.0);
}

TEST(AliasTableTest, SingleAndDegenerateColumns) {
  AliasTable table;
  table.Build({4.2});
  ASSERT_TRUE(table.has_mass());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);

  // All mass on one column among zeros.
  table.Build({0.0, 0.0, 9.0, 0.0});
  ASSERT_TRUE(table.has_mass());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(rng), 2u);
}

TEST(AliasTableTest, NegativeWeightsActAsZero) {
  AliasTable table;
  table.Build({-5.0, 1.0, -2.0, 3.0});
  ASSERT_TRUE(table.has_mass());
  EXPECT_DOUBLE_EQ(table.total_mass(), 4.0);
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[table.Sample(rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 40000.0, 0.25, 0.01);
  EXPECT_NEAR(counts[3] / 40000.0, 0.75, 0.01);
}

TEST(AliasTableTest, MatchesLinearDiscreteDistribution) {
  // The satellite acceptance check: chi-square goodness of fit of alias
  // sampling against the exact weights Rng::Discrete draws from, on several
  // shapes (uniform, skewed, sparse, random).
  Rng weight_rng(7);
  std::vector<std::vector<double>> cases;
  cases.push_back(std::vector<double>(9, 1.0));            // uniform degree-9
  cases.push_back({100.0, 1.0, 1.0, 1.0, 0.0, 0.5});       // heavy head
  std::vector<double> sparse(64, 0.0);
  sparse[3] = 1.0;
  sparse[31] = 2.0;
  sparse[63] = 5.0;
  cases.push_back(sparse);
  std::vector<double> random(256);
  for (double& w : random) w = weight_rng.UniformDouble();
  cases.push_back(random);

  // 99.9th-percentile chi-square critical values by dof, indexed sparsely.
  auto critical = [](int dof) {
    if (dof <= 10) return 29.6;
    if (dof <= 64) return 110.0;
    return 320.0;  // dof ~255
  };
  const int n = 300000;
  for (size_t k = 0; k < cases.size(); ++k) {
    AliasTable table;
    table.Build(cases[k]);
    ASSERT_TRUE(table.has_mass());
    Rng rng(100 + static_cast<uint64_t>(k));
    std::vector<int> counts(cases[k].size(), 0);
    for (int i = 0; i < n; ++i) {
      const size_t s = table.Sample(rng);
      ASSERT_LT(s, cases[k].size());
      ++counts[s];
    }
    int dof = 0;
    const double chi2 = ChiSquare(counts, cases[k], n, &dof);
    EXPECT_LT(chi2, critical(dof)) << "case " << k << " dof " << dof;
  }
}

TEST(AliasTableTest, RebuildReusesAndReplacesDistribution) {
  AliasTable table;
  table.Build({1.0, 1.0, 1.0, 1.0});
  Rng rng(11);
  for (int i = 0; i < 100; ++i) ASSERT_LT(table.Sample(rng), 4u);

  // Rebuild with a different size and shape in place.
  table.Build({0.0, 10.0});
  ASSERT_EQ(table.size(), 2u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(rng), 1u);

  // Back to zero mass.
  table.Build({0.0});
  EXPECT_FALSE(table.has_mass());
}

TEST(AliasTableTest, SampleConsumesExactlyOneDraw) {
  // The synthesis determinism contract counts RNG draws per point; alias
  // sampling must consume exactly one.
  AliasTable table;
  table.Build({1.0, 2.0, 3.0});
  Rng a(13), b(13);
  for (int i = 0; i < 50; ++i) {
    (void)table.Sample(a);
    (void)b();
  }
  EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace retrasyn
