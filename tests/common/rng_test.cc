#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t v = rng.UniformInt(static_cast<uint64_t>(7));
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BinomialMeanAndVariance) {
  Rng rng(23);
  const uint64_t n = 200;
  const double p = 0.35;
  const int trials = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double x = static_cast<double>(rng.Binomial(n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  EXPECT_NEAR(mean, n * p, 0.5);
  EXPECT_NEAR(var, n * p * (1 - p), 3.0);
}

TEST(RngTest, BinomialSmallNPathMatches) {
  // The n <= 32 Bernoulli-sum path must also match the binomial moments.
  Rng rng(29);
  const uint64_t n = 16;
  const double p = 0.5;
  double sum = 0.0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t x = rng.Binomial(n, p);
    ASSERT_LE(x, n);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / trials, 8.0, 0.1);
}

TEST(RngTest, BinomialDegenerate) {
  Rng rng(31);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(sum_sq / n - mean * mean, 9.0, 0.3);
}

TEST(RngTest, DiscreteProportionalSampling) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const size_t s = rng.Discrete(weights);
    ASSERT_LT(s, weights.size());
    ++counts[s];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, DiscreteZeroMassSignalsFallback) {
  Rng rng(43);
  EXPECT_EQ(rng.Discrete({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.Discrete({-1.0, -2.0}), 2u);
  EXPECT_EQ(rng.Discrete({}), 0u);
}

TEST(RngTest, DiscreteNegativeWeightsIgnored) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.Discrete({-5.0, 1.0, -2.0}), 1u);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(53);
  for (uint32_t n : {10u, 100u, 1000u}) {
    for (uint32_t k : {0u, 1u, n / 3, n}) {
      const std::vector<uint32_t> sample = rng.SampleWithoutReplacement(n, k);
      ASSERT_EQ(sample.size(), k);
      std::set<uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (uint32_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Each element should appear in a size-k sample with probability k/n.
  Rng rng(59);
  const uint32_t n = 20, k = 5;
  std::vector<int> counts(n, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    for (uint32_t v : rng.SampleWithoutReplacement(n, k)) ++counts[v];
  }
  for (uint32_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), 0.25, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  // The child must be deterministic given the parent state, but different
  // from the parent's continued stream.
  Rng parent2(61);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child(), child2());
  }
}

// --- One-pass Discrete vs the former two-pass scan -------------------------
//
// Discrete was rewritten from sum-then-walk (two passes, with an explicit
// floating-point-slack fallback) to a single weighted-reservoir pass. The
// reference below is the former implementation verbatim; the new one must
// keep its contract on every edge case and draw from the same distribution.

size_t DiscreteTwoPassReference(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = rng.UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    target -= w;
    if (target < 0.0) return i;
  }
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size();
}

TEST(RngTest, DiscreteEdgeCasesMatchTwoPassReference) {
  const std::vector<std::vector<double>> cases = {
      {},                            // empty -> size() == 0
      {0.0},                         // single zero -> sentinel
      {0.0, 0.0, 0.0},               // all zero -> sentinel
      {-1.0, -2.0},                  // all negative -> sentinel
      {-5.0, 0.0, -0.5},             // mixed nonpositive -> sentinel
      {7.0},                         // single positive -> index 0
      {-3.0, 4.0, -1.0},             // one positive among negatives
      {0.0, 0.0, 1e-308},            // subnormal-scale mass still selectable
      {1e308, 1e308},                // overflowing total: degenerates to a
                                     // deterministic positive-weight pick
                                     // (documented; old impl degenerated too)
  };
  for (const auto& weights : cases) {
    Rng a(101), b(101);
    const size_t got = a.Discrete(weights);
    const size_t want = DiscreteTwoPassReference(b, weights);
    // Degenerate cases have a deterministic answer; require exact agreement.
    size_t positive = 0, last_positive = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] > 0.0) {
        ++positive;
        last_positive = i;
      }
    }
    if (positive <= 1) {
      EXPECT_EQ(got, want) << "case size " << weights.size();
      if (positive == 1) {
        EXPECT_EQ(got, last_positive);
      }
    } else {
      ASSERT_LT(got, weights.size());
      EXPECT_GT(weights[got], 0.0);  // never lands on zero/negative mass
    }
  }
}

TEST(RngTest, DiscreteFloatingPointSlackNeverFallsOffTheEnd) {
  // Weights engineered so the old walk could exhaust the vector on rounding
  // slack: a long run of tiny tail weights after a dominant head. The
  // one-pass pick must always return a positive-weight index.
  std::vector<double> weights(1000, 1e-18);
  weights[0] = 1.0;
  Rng rng(103);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = rng.Discrete(weights);
    ASSERT_LT(s, weights.size());
    ASSERT_GT(weights[s], 0.0);
  }
}

TEST(RngTest, DiscreteMatchesTwoPassDistribution) {
  // Chi-square goodness of fit of the one-pass sampler against the exact
  // weight proportions (the distribution the two-pass scan draws from).
  const std::vector<double> weights{0.5, 2.5, 0.0, 4.0, 1.0, -3.0, 2.0};
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  Rng rng(107);
  for (int i = 0; i < n; ++i) {
    const size_t s = rng.Discrete(weights);
    ASSERT_LT(s, weights.size());
    ++counts[s];
  }
  double chi2 = 0.0;
  int dof = -1;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    const double expected = n * w / total;
    if (expected == 0.0) {
      EXPECT_EQ(counts[i], 0);
      continue;
    }
    chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
    ++dof;
  }
  // 99.9th percentile of chi-square with 4 dof is ~18.5.
  EXPECT_EQ(dof, 4);
  EXPECT_LT(chi2, 18.5);
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  // Regression pin: splitmix64(0) first output is the well-known constant.
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace retrasyn
