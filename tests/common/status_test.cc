#include "common/status.h"

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesError) {
  const Status st = Status::IOError("disk gone");
  const Status copy = st;  // shared rep
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    RETRASYN_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  const Status st = outer();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ResultTest, ReturnNotOkMacroPassesThroughOk) {
  auto inner = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    RETRASYN_RETURN_NOT_OK(inner());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace retrasyn
