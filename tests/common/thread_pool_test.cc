// ThreadPool contract tests: every chunk runs exactly once, the pool is
// reusable across many invocations (the per-round pattern of the engine),
// concurrent submitters serialize safely, and a pool of one executes inline.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace retrasyn {
namespace {

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kChunks = 97;  // deliberately not a multiple of the pool size
  std::vector<std::atomic<int>> hits(kChunks);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kChunks, [&](int c) { hits[c].fetch_add(1); });
  for (int c = 0; c < kChunks; ++c) {
    EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyInvocations) {
  // The engine submits two+ jobs per round for thousands of rounds; the pool
  // must not leak generations or wedge between jobs.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  for (int round = 0; round < 500; ++round) {
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(8, [&](int c) { hits[c].fetch_add(1); });
    for (int c = 0; c < 8; ++c) ASSERT_EQ(hits[c].load(), 1) << round;
  }
}

TEST(ThreadPoolTest, ChunkResultsIndependentOfScheduling) {
  // Chunks writing disjoint slots must produce the same result no matter
  // which worker claims which chunk — the determinism contract the
  // synthesizer relies on.
  ThreadPool pool(4);
  constexpr int kChunks = 64;
  std::vector<uint64_t> out_a(kChunks), out_b(kChunks);
  auto work = [](int c) {
    uint64_t x = static_cast<uint64_t>(c) + 1;
    for (int i = 0; i < 1000; ++i) x = x * 6364136223846793005ULL + 1;
    return x;
  };
  pool.ParallelFor(kChunks, [&](int c) { out_a[c] = work(c); });
  pool.ParallelFor(kChunks, [&](int c) { out_b[c] = work(c); });
  EXPECT_EQ(out_a, out_b);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(5);
  pool.ParallelFor(5, [&](int c) { ids[c] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroAndOneChunkShortCircuit) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int c) {
    EXPECT_EQ(c, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerializeSafely) {
  // Multi-tenant sharing: several sessions submitting rounds into one pool.
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 50;
  std::vector<std::atomic<long>> sums(kSubmitters);
  for (auto& s : sums) s.store(0);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s]() {
      for (int j = 0; j < kJobsEach; ++j) {
        pool.ParallelFor(16, [&, s](int c) { sums[s].fetch_add(c); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  const long expected = kJobsEach * (15 * 16 / 2);
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(sums[s].load(), expected) << "submitter " << s;
  }
}

TEST(ThreadPoolTest, DestructionWithIdleWorkersIsClean) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(3);
    std::atomic<int> n{0};
    pool.ParallelFor(6, [&](int) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 6);
    // Destructor joins workers that are back in their wait loop.
  }
}

}  // namespace
}  // namespace retrasyn
