#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/flags.h"

namespace retrasyn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, SplitBasic) {
  const auto fields = SplitCsvLine("a, b ,c,,d");
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
  EXPECT_EQ(fields[3], "");
  EXPECT_EQ(fields[4], "d");
}

TEST(CsvTest, SplitSingleField) {
  const auto fields = SplitCsvLine("solo");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "solo");
}

TEST(CsvTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.csv");
  {
    auto writer = CsvWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    CsvWriter w = std::move(writer).value();
    w.WriteRow({"h1", "h2"});
    w.WriteRow({"1", "2.5"});
    w.WriteRow({"3", "x"});
    ASSERT_TRUE(w.Close().ok());
  }
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[1][1], "2.5");
  EXPECT_EQ(rows.value()[2][1], "x");
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.csv");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n\n1,2\n   \n3,4\n", f);
  std::fclose(f);
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
}

TEST(CsvTest, MissingFileIsIOError) {
  auto rows = ReadCsvFile("/nonexistent/dir/missing.csv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIOError);
}

TEST(FlagsTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--epsilon=1.5", "--name=tdrive"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 0.0), 1.5);
  EXPECT_EQ(flags.GetString("name", ""), "tdrive");
}

TEST(FlagsTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--window", "30"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("window", 0), 30);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 17), 17);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 0.25), 0.25);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "input.csv", "--k=6", "more"};
  Flags flags = Flags::Parse(4, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "more");
  EXPECT_EQ(flags.GetInt("k", 0), 6);
}

TEST(FlagsTest, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

}  // namespace
}  // namespace retrasyn
