// Mutex/MutexLock/CondVar semantics: exclusion under contention, TryLock,
// timed waits, and notify delivery. The contention tests double as the TSan
// stress for the wrapper layer — the full suite runs under
// -DRETRASYN_SANITIZE_THREAD=ON in CI, so a wrapper that dropped an acquire
// or leaked ownership through CondVar's adopt-lock dance would surface here
// as a race or a deadlock, not a flaky counter.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

namespace retrasyn {
namespace {

TEST(MutexTest, ExclusionUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Mutex mu;
  int64_t counter GUARDED_BY(mu) = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread contender([&]() { acquired = mu.TryLock(); });
  contender.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, ManualLockPairsAcrossReleaseWindow) {
  // The worker-loop shape: hold across iterations, drop mid-scope to do
  // unlocked work, re-acquire.
  Mutex mu;
  int value GUARDED_BY(mu) = 0;
  mu.Lock();
  value = 1;
  mu.Unlock();
  // <- release window: another thread can observe value == 1 here.
  std::thread observer([&]() {
    MutexLock lock(mu);
    EXPECT_EQ(value, 1);
  });
  observer.join();
  mu.Lock();
  value = 2;
  EXPECT_EQ(value, 2);
  mu.Unlock();
}

TEST(CondVarTest, ProducerConsumerTransfersEverything) {
  constexpr int kItems = 5000;
  Mutex mu;
  CondVar cv;
  std::deque<int> queue GUARDED_BY(mu);
  bool done GUARDED_BY(mu) = false;
  int64_t consumed_sum = 0;

  std::thread consumer([&]() {
    for (;;) {
      mu.Lock();
      while (queue.empty() && !done) cv.Wait(mu);
      if (queue.empty() && done) {
        mu.Unlock();
        return;
      }
      const int item = queue.front();
      queue.pop_front();
      mu.Unlock();
      consumed_sum += item;
    }
  });

  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(mu);
      queue.push_back(i);
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed_sum, static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(CondVarTest, WaitForTimesOutWhenNobodyNotifies) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(20)));
}

TEST(CondVarTest, WaitForObservesSignaledPredicate) {
  Mutex mu;
  CondVar cv;
  bool flag GUARDED_BY(mu) = false;
  std::thread signaler([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      MutexLock lock(mu);
      flag = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    // Predicate loop as the header prescribes; the deadline only bounds the
    // test, it is not part of the protocol.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!flag && std::chrono::steady_clock::now() < deadline) {
      cv.WaitFor(mu, std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(flag);
  }
  signaler.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 6;
  Mutex mu;
  CondVar cv;
  bool go GUARDED_BY(mu) = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&]() {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(MutexTest, StressManyThreadsManyMutexes) {
  // Cross-thread, cross-mutex churn: each thread round-robins over every
  // mutex, mixing MutexLock scopes with TryLock opportunism.
  constexpr int kThreads = 8;
  constexpr int kMutexes = 4;
  constexpr int kRounds = 4000;
  Mutex mus[kMutexes];
  int64_t counters[kMutexes] = {0, 0, 0, 0};
  std::atomic<int64_t> try_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRounds; ++i) {
        const int m = (t + i) % kMutexes;
        if (i % 3 == 0 && mus[m].TryLock()) {
          ++counters[m];
          try_hits.fetch_add(1, std::memory_order_relaxed);
          mus[m].Unlock();
        } else {
          MutexLock lock(mus[m]);
          ++counters[m];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (int m = 0; m < kMutexes; ++m) {
    MutexLock lock(mus[m]);
    total += counters[m];
  }
  EXPECT_EQ(total, static_cast<int64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace retrasyn
