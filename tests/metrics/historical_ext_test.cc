// Tests for the extended historical metrics (diameter error) and the
// raw-time import alignment.

#include <cstdio>

#include <gtest/gtest.h>

#include "geo/grid.h"
#include "metrics/historical.h"
#include "stream/io.h"

namespace retrasyn {
namespace {

constexpr double kLn2 = 0.6931471805599453;

CellStream MakeStream(std::vector<CellId> cells, int64_t enter = 0) {
  CellStream s;
  s.enter_time = enter;
  s.cells = std::move(cells);
  return s;
}

TEST(DiameterErrorTest, IdenticalSetsAreZero) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 4);
  CellStreamSet set(5);
  set.Add(MakeStream({0, 1, 2, 3})).CheckOK();
  set.Add(MakeStream({5, 5, 5})).CheckOK();
  EXPECT_DOUBLE_EQ(DiameterError(set, set, grid), 0.0);
}

TEST(DiameterErrorTest, StationaryVsCrossingIsMaximal) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 4);
  CellStreamSet stay(5), cross(5);
  for (int i = 0; i < 20; ++i) {
    stay.Add(MakeStream({5, 5, 5})).CheckOK();  // diameter 0
    // Corner-to-corner walkers: diameter = full diagonal.
    cross.Add(MakeStream({grid.Cell(0, 0), grid.Cell(1, 1), grid.Cell(2, 2),
                          grid.Cell(3, 3)})).CheckOK();
  }
  EXPECT_NEAR(DiameterError(stay, cross, grid), kLn2, 1e-9);
}

TEST(DiameterErrorTest, DiameterUsesMaxPairNotBoundingBoxCorners) {
  // A diamond-shaped visit set: the bbox diagonal would overestimate the
  // true max pairwise distance. Both sets have the same true diameter, so
  // the error must be 0.
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 5);
  CellStreamSet diamond(5), straight(5);
  for (int i = 0; i < 10; ++i) {
    diamond.Add(MakeStream({grid.Cell(0, 2), grid.Cell(2, 0), grid.Cell(2, 4),
                            grid.Cell(4, 2)})).CheckOK();
    // Straight horizontal walk with the same max pairwise distance (4 cells).
    straight.Add(MakeStream({grid.Cell(2, 0), grid.Cell(2, 2),
                             grid.Cell(2, 4)})).CheckOK();
  }
  EXPECT_NEAR(DiameterError(diamond, straight, grid), 0.0, 1e-9);
}

TEST(ImportAlignmentTest, GranularityBinsTimestamps) {
  const std::string path = testing::TempDir() + "/align_gran.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // Reports every 600 "seconds": bins 0,1,2 with a duplicate in bin 1.
  std::fputs("1,0,0.1,0.1\n1,650,0.2,0.2\n1,700,0.9,0.9\n1,1250,0.3,0.3\n",
             f);
  std::fclose(f);
  ImportOptions options;
  options.time_granularity = 600;
  auto db = LoadStreamDatabaseCsv(path, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db.value().streams().size(), 1u);
  const UserStream& s = db.value().streams()[0];
  EXPECT_EQ(s.enter_time, 0);
  ASSERT_EQ(s.points.size(), 3u);
  // Earliest report per bin wins: bin 1 keeps (0.2, 0.2).
  EXPECT_DOUBLE_EQ(s.points[1].x, 0.2);
  EXPECT_EQ(db.value().num_timestamps(), 3);
}

TEST(ImportAlignmentTest, AlignToZeroShiftsEpochTimes) {
  const std::string path = testing::TempDir() + "/align_epoch.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // Epoch-like large timestamps, 600 s granularity.
  std::fputs(
      "7,1700000000,1.0,1.0\n"
      "7,1700000600,2.0,2.0\n"
      "7,1700001800,3.0,3.0\n",  // gap of one bin -> split
      f);
  std::fclose(f);
  ImportOptions options;
  options.time_granularity = 600;
  options.align_to_zero = true;
  auto db = LoadStreamDatabaseCsv(path, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db.value().streams().size(), 2u);  // gap split
  EXPECT_EQ(db.value().streams()[0].enter_time, 0);
  EXPECT_EQ(db.value().streams()[1].enter_time, 3);
  EXPECT_EQ(db.value().num_timestamps(), 4);
}

TEST(ImportAlignmentTest, GranularityOneIsIdentity) {
  const std::string path = testing::TempDir() + "/align_id.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1,3,0.5,0.5\n1,4,0.6,0.6\n", f);
  std::fclose(f);
  auto db = LoadStreamDatabaseCsv(path);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().streams()[0].enter_time, 3);
}

TEST(ImportAlignmentTest, InvalidGranularityRejected) {
  const std::string path = testing::TempDir() + "/align_bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1,0,0.5,0.5\n", f);
  std::fclose(f);
  ImportOptions options;
  options.time_granularity = 0;
  auto db = LoadStreamDatabaseCsv(path, options);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace retrasyn
