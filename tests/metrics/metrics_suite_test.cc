// Cross-cutting sanity properties of the full metric suite: identical
// synthetic data must score perfectly, disjoint data must score at the
// worst-case bounds, and every metric must react in the right direction to a
// controlled degradation.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid.h"
#include "metrics/historical.h"
#include "metrics/queries.h"
#include "metrics/streaming.h"

namespace retrasyn {
namespace {

constexpr double kLn2 = 0.6931471805599453;

class MetricsSuiteTest : public testing::Test {
 protected:
  MetricsSuiteTest()
      : grid_(BoundingBox{0.0, 0.0, 1.0, 1.0}, 4), states_(grid_) {}

  // A structured stream set: walkers snake across the grid rows.
  CellStreamSet MakeStructuredSet(uint64_t seed, int num_streams,
                                  int64_t horizon) const {
    Rng rng(seed);
    CellStreamSet set(horizon);
    for (int i = 0; i < num_streams; ++i) {
      CellStream s;
      s.enter_time = rng.UniformInt(int64_t{0}, horizon / 2);
      CellId at = static_cast<CellId>(
          rng.UniformInt(uint64_t{grid_.NumCells()}));
      const int64_t len =
          1 + rng.UniformInt(int64_t{0}, horizon - s.enter_time - 1);
      for (int64_t j = 0; j < len; ++j) {
        s.cells.push_back(at);
        const auto& nbrs = grid_.Neighbors(at);
        at = nbrs[rng.UniformInt(uint64_t{nbrs.size()})];
      }
      set.Add(std::move(s)).CheckOK();
    }
    return set;
  }

  StreamingMetricsConfig Config() const {
    StreamingMetricsConfig config;
    config.phi = 5;
    config.num_queries = 40;
    config.num_hotspot_ranges = 20;
    config.num_pattern_ranges = 20;
    return config;
  }

  Grid grid_;
  StateSpace states_;
};

TEST_F(MetricsSuiteTest, IdenticalSetsScorePerfectly) {
  const CellStreamSet set = MakeStructuredSet(1, 300, 40);
  const DensityIndex d(set, grid_);
  const TransitionIndex tr(set, states_);
  EXPECT_DOUBLE_EQ(AverageDensityError(d, d), 0.0);
  EXPECT_DOUBLE_EQ(AverageTransitionError(tr, tr), 0.0);
  Rng r1(1);
  EXPECT_DOUBLE_EQ(AverageQueryError(d, d, grid_, Config(), r1), 0.0);
  Rng r2(2);
  EXPECT_NEAR(AverageHotspotNdcg(d, d, Config(), r2), 1.0, 1e-9);
  Rng r3(3);
  EXPECT_NEAR(AveragePatternF1(set, set, Config(), r3), 1.0, 1e-9);
  EXPECT_NEAR(CellPopularityKendallTau(set, set, grid_.NumCells()), 1.0,
              1e-9);
  EXPECT_DOUBLE_EQ(TripError(set, set, grid_.NumCells()), 0.0);
  EXPECT_DOUBLE_EQ(LengthError(set, set), 0.0);
}

TEST_F(MetricsSuiteTest, SpatiallyDisjointSetsScoreWorst) {
  // Original confined to cell 0; synthetic confined to cell 15.
  CellStreamSet orig(10), syn(10);
  for (int i = 0; i < 50; ++i) {
    CellStream a;
    a.enter_time = 0;
    a.cells.assign(5, 0);
    orig.Add(std::move(a)).CheckOK();
    CellStream b;
    b.enter_time = 0;
    b.cells.assign(10, 15);
    syn.Add(std::move(b)).CheckOK();
  }
  const DensityIndex od(orig, grid_), sd(syn, grid_);
  EXPECT_NEAR(AverageDensityError(od, sd), kLn2, 1e-9);
  EXPECT_NEAR(TripError(orig, syn, grid_.NumCells()), kLn2, 1e-9);
  EXPECT_NEAR(LengthError(orig, syn), kLn2, 1e-9);
  Rng r(4);
  EXPECT_NEAR(AveragePatternF1(orig, syn, Config(), r), 0.0, 1e-9);
}

TEST_F(MetricsSuiteTest, DegradedCopyScoresBetweenExtremes) {
  const CellStreamSet orig = MakeStructuredSet(5, 400, 40);
  // "Degraded": an independent draw from the same generator (same marginal
  // process, different realization) should be much better than disjoint data
  // but imperfect.
  const CellStreamSet resampled = MakeStructuredSet(6, 400, 40);
  const DensityIndex od(orig, grid_), rd(resampled, grid_);
  const double density = AverageDensityError(od, rd);
  EXPECT_GT(density, 0.0);
  EXPECT_LT(density, kLn2 * 0.8);
  const double tau =
      CellPopularityKendallTau(orig, resampled, grid_.NumCells());
  EXPECT_GT(tau, 0.2);
}

TEST_F(MetricsSuiteTest, QueryErrorReactsToScaleMismatch) {
  // Halving the synthetic population must produce a clearly nonzero query
  // error even though the shape matches.
  CellStreamSet orig(10), syn(10);
  for (int i = 0; i < 100; ++i) {
    CellStream s;
    s.enter_time = 0;
    s.cells.assign(10, static_cast<CellId>(i % 16));
    orig.Add(std::move(s)).CheckOK();
    if (i % 2 == 0) {
      CellStream h;
      h.enter_time = 0;
      h.cells.assign(10, static_cast<CellId>(i % 16));
      syn.Add(std::move(h)).CheckOK();
    }
  }
  const DensityIndex od(orig, grid_), sd(syn, grid_);
  Rng r(7);
  const double err = AverageQueryError(od, sd, grid_, Config(), r);
  EXPECT_NEAR(err, 0.5, 0.05);  // |o - o/2| / o
}

TEST_F(MetricsSuiteTest, TransitionErrorSeesDirectionFlip) {
  // Original always moves right; synthetic always moves left. Densities can
  // agree while the transition distributions are disjoint.
  CellStreamSet orig(3), syn(3);
  for (int i = 0; i < 60; ++i) {
    CellStream a;
    a.enter_time = 0;
    a.cells = {grid_.Cell(1, 0), grid_.Cell(1, 1), grid_.Cell(1, 2)};
    orig.Add(std::move(a)).CheckOK();
    CellStream b;
    b.enter_time = 0;
    b.cells = {grid_.Cell(1, 2), grid_.Cell(1, 1), grid_.Cell(1, 0)};
    syn.Add(std::move(b)).CheckOK();
  }
  const TransitionIndex ot(orig, states_), st(syn, states_);
  EXPECT_NEAR(AverageTransitionError(ot, st), kLn2, 1e-9);
}

TEST_F(MetricsSuiteTest, HotspotNdcgPenalizesWrongRanking) {
  // Original hotspots: cells 0 (100 pts) and 5 (50 pts). Synthetic inverts
  // the popularity and adds mass elsewhere.
  CellStreamSet orig(4), syn(4);
  auto add_streams = [&](CellStreamSet& set, CellId cell, int count) {
    for (int i = 0; i < count; ++i) {
      CellStream s;
      s.enter_time = 0;
      s.cells.assign(4, cell);
      set.Add(std::move(s)).CheckOK();
    }
  };
  add_streams(orig, 0, 100);
  add_streams(orig, 5, 50);
  add_streams(syn, 10, 100);
  add_streams(syn, 5, 50);
  add_streams(syn, 0, 10);
  const DensityIndex od(orig, grid_), sd(syn, grid_);
  StreamingMetricsConfig config = Config();
  config.hotspot_k = 2;
  Rng r(8);
  const double ndcg = AverageHotspotNdcg(od, sd, config, r);
  EXPECT_LT(ndcg, 1.0);
  EXPECT_GT(ndcg, 0.0);
}

TEST_F(MetricsSuiteTest, LengthErrorSeparatesLengthScales) {
  CellStreamSet short_set(100), long_set(100);
  for (int i = 0; i < 50; ++i) {
    CellStream s;
    s.enter_time = 0;
    s.cells.assign(3, 0);
    short_set.Add(std::move(s)).CheckOK();
    CellStream l;
    l.enter_time = 0;
    l.cells.assign(100, 0);
    long_set.Add(std::move(l)).CheckOK();
  }
  // All-short vs all-long lands in disjoint buckets: exactly ln 2, the value
  // the never-terminating baselines record in the paper's Table III.
  EXPECT_NEAR(LengthError(short_set, long_set), kLn2, 1e-9);
}

}  // namespace
}  // namespace retrasyn
