#include "metrics/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

constexpr double kLn2 = 0.6931471805599453;

TEST(JsdTest, IdenticalDistributionsAreZero) {
  EXPECT_DOUBLE_EQ(
      JensenShannonDivergence(std::vector<double>{0.5, 0.3, 0.2},
                              std::vector<double>{0.5, 0.3, 0.2}),
      0.0);
}

TEST(JsdTest, ScaleInvariant) {
  const std::vector<double> p{1.0, 2.0, 3.0};
  const std::vector<double> q{10.0, 20.0, 30.0};
  EXPECT_NEAR(JensenShannonDivergence(p, q), 0.0, 1e-12);
}

TEST(JsdTest, DisjointSupportsHitLn2) {
  EXPECT_NEAR(JensenShannonDivergence(std::vector<double>{1.0, 0.0},
                                      std::vector<double>{0.0, 1.0}),
              kLn2, 1e-12);
}

TEST(JsdTest, EmptyMassConventions) {
  EXPECT_DOUBLE_EQ(JensenShannonDivergence(std::vector<double>{0.0, 0.0},
                                           std::vector<double>{0.0, 0.0}),
                   0.0);
  EXPECT_NEAR(JensenShannonDivergence(std::vector<double>{1.0, 1.0},
                                      std::vector<double>{0.0, 0.0}),
              kLn2, 1e-12);
}

TEST(JsdTest, KnownHalfMixValue) {
  // JSD({1,0},{1/2,1/2}) = ln2 - (3/4)ln... compute directly:
  // M = {3/4, 1/4}; JSD = 0.5*KL(P||M) + 0.5*KL(Q||M)
  // KL(P||M) = 1*ln(1/(3/4)) = ln(4/3)
  // KL(Q||M) = 0.5*ln((1/2)/(3/4)) + 0.5*ln((1/2)/(1/4))
  //          = 0.5*ln(2/3) + 0.5*ln(2)
  const double expected =
      0.5 * std::log(4.0 / 3.0) + 0.5 * (0.5 * std::log(2.0 / 3.0) +
                                         0.5 * std::log(2.0));
  EXPECT_NEAR(JensenShannonDivergence(std::vector<double>{1.0, 0.0},
                                      std::vector<double>{0.5, 0.5}),
              expected, 1e-12);
}

TEST(JsdTest, SymmetricAndBounded) {
  const std::vector<double> p{0.7, 0.1, 0.2};
  const std::vector<double> q{0.2, 0.5, 0.3};
  const double pq = JensenShannonDivergence(p, q);
  const double qp = JensenShannonDivergence(q, p);
  EXPECT_NEAR(pq, qp, 1e-12);
  EXPECT_GT(pq, 0.0);
  EXPECT_LT(pq, kLn2);
}

TEST(JsdTest, NegativeEntriesTreatedAsZero) {
  EXPECT_NEAR(JensenShannonDivergence(std::vector<double>{1.0, -5.0},
                                      std::vector<double>{1.0, 0.0}),
              0.0, 1e-12);
}

TEST(JsdTest, CountOverloadMatches) {
  const std::vector<uint32_t> p{3, 1};
  const std::vector<uint32_t> q{1, 3};
  EXPECT_NEAR(JensenShannonDivergence(p, q),
              JensenShannonDivergence(std::vector<double>{0.75, 0.25},
                                      std::vector<double>{0.25, 0.75}),
              1e-12);
}

TEST(KendallTest, PerfectAgreement) {
  EXPECT_DOUBLE_EQ(KendallTauB({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
}

TEST(KendallTest, PerfectDisagreement) {
  EXPECT_DOUBLE_EQ(KendallTauB({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
}

TEST(KendallTest, KnownMixedCase) {
  // Pairs: (1,1),(2,3),(3,2): concordant = (1,2),(1,3); discordant = (2,3).
  EXPECT_NEAR(KendallTauB({1, 2, 3}, {1, 3, 2}), 1.0 / 3.0, 1e-12);
}

TEST(KendallTest, ConstantVectorIsZero) {
  EXPECT_DOUBLE_EQ(KendallTauB({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauB({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauB({5.0}, {2.0}), 0.0);
}

TEST(KendallTest, TieCorrection) {
  // With ties in one vector, tau-b uses the sqrt correction. Verify against a
  // hand computation: a = {1,1,2}, b = {1,2,3}.
  // Pairs: (a1,a2) tie in a; (a1,a3) concordant; (a2,a3) concordant.
  // n0 = 2, ties_a = 1, ties_b = 0 -> tau = 2 / sqrt(3 * 2).
  EXPECT_NEAR(KendallTauB({1, 1, 2}, {1, 2, 3}), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(TopKTest, OrderingAndTieBreaks) {
  const std::vector<double> scores{0.1, 0.9, 0.5, 0.9, 0.2};
  const auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie with 3, lower index wins
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(TopKTest, KLargerThanSize) {
  const auto top = TopKIndices({0.3, 0.1}, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const std::vector<double> rel{0.0, 10.0, 5.0, 1.0};
  const std::vector<uint32_t> ranking{1, 2, 3};
  EXPECT_NEAR(NdcgAtK(rel, ranking, 3), 1.0, 1e-12);
}

TEST(NdcgTest, WorstRankingBelowOne) {
  const std::vector<double> rel{0.0, 10.0, 5.0, 1.0};
  const std::vector<uint32_t> good{1, 2, 3};
  const std::vector<uint32_t> bad{0, 3, 2};
  EXPECT_LT(NdcgAtK(rel, bad, 3), NdcgAtK(rel, good, 3));
}

TEST(NdcgTest, HandComputedValue) {
  const std::vector<double> rel{3.0, 2.0, 1.0};
  const std::vector<uint32_t> ranking{1, 0, 2};  // rel 2, 3, 1
  const double dcg = 2.0 / std::log2(2.0) + 3.0 / std::log2(3.0) +
                     1.0 / std::log2(4.0);
  const double idcg = 3.0 / std::log2(2.0) + 2.0 / std::log2(3.0) +
                      1.0 / std::log2(4.0);
  EXPECT_NEAR(NdcgAtK(rel, ranking, 3), dcg / idcg, 1e-12);
}

TEST(NdcgTest, ZeroRelevanceIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({0.0, 0.0}, {0, 1}, 2), 0.0);
}

}  // namespace
}  // namespace retrasyn
