#include "geo/grid.h"
#include "metrics/queries.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace retrasyn {
namespace {

CellStreamSet MakeSet(int64_t horizon,
                      std::vector<std::pair<int64_t, std::vector<CellId>>>
                          specs) {
  CellStreamSet set(horizon);
  for (auto& [enter, cells] : specs) {
    CellStream s;
    s.enter_time = enter;
    s.cells = std::move(cells);
    set.Add(std::move(s)).CheckOK();
  }
  return set;
}

TEST(DensityIndexTest, PerTimestampCounts) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 2);
  const CellStreamSet set =
      MakeSet(3, {{0, {0, 1, 1}}, {1, {1, 3}}, {2, {2}}});
  const DensityIndex index(set, grid);
  EXPECT_EQ(index.DensityAt(0)[0], 1u);
  EXPECT_EQ(index.DensityAt(1)[1], 2u);
  EXPECT_EQ(index.DensityAt(2)[1], 1u);
  EXPECT_EQ(index.DensityAt(2)[3], 1u);
  EXPECT_EQ(index.DensityAt(2)[2], 1u);
}

TEST(DensityIndexTest, AggregateDensitySumsRange) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 2);
  const CellStreamSet set = MakeSet(3, {{0, {0, 0, 0}}, {0, {1, 1, 1}}});
  const DensityIndex index(set, grid);
  const auto agg = index.AggregateDensity(0, 2);
  EXPECT_DOUBLE_EQ(agg[0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1], 2.0);
  EXPECT_DOUBLE_EQ(agg[2], 0.0);
}

TEST(DensityIndexTest, CountMatchesBruteForce) {
  // Property check: prefix-sum rectangle counts equal the naive scan.
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 6);
  Rng rng(3);
  CellStreamSet set(20);
  for (int i = 0; i < 150; ++i) {
    CellStream s;
    s.enter_time = rng.UniformInt(int64_t{0}, int64_t{15});
    const int len = 1 + static_cast<int>(rng.UniformInt(uint64_t{5}));
    for (int j = 0; j < len && s.enter_time + j < 20; ++j) {
      s.cells.push_back(
          static_cast<CellId>(rng.UniformInt(uint64_t{grid.NumCells()})));
    }
    if (!s.cells.empty()) set.Add(std::move(s)).CheckOK();
  }
  const DensityIndex index(set, grid);
  Rng qrng(4);
  const auto queries = GenerateRandomQueries(grid, 20, 5, 50, qrng);
  for (const RangeQuery& q : queries) {
    uint64_t brute = 0;
    for (const CellStream& s : set.streams()) {
      for (int64_t t = std::max(q.t_start, s.enter_time);
           t < std::min(q.t_end, s.end_time()); ++t) {
        const CellId c = s.At(t);
        const uint32_t r = grid.Row(c), col = grid.Col(c);
        if (r >= q.row_lo && r <= q.row_hi && col >= q.col_lo &&
            col <= q.col_hi) {
          ++brute;
        }
      }
    }
    EXPECT_EQ(index.Count(q), brute);
  }
}

TEST(DensityIndexTest, TotalPointsInRange) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 2);
  const CellStreamSet set = MakeSet(4, {{0, {0, 1}}, {2, {3, 3}}});
  const DensityIndex index(set, grid);
  EXPECT_EQ(index.TotalPointsIn(0, 4), 4u);
  EXPECT_EQ(index.TotalPointsIn(0, 2), 2u);
  EXPECT_EQ(index.TotalPointsIn(3, 10), 1u);  // clamped at horizon
}

TEST(QueryGenerationTest, BoundsRespected) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 10);
  Rng rng(5);
  const auto queries = GenerateRandomQueries(grid, 100, 10, 200, rng);
  ASSERT_EQ(queries.size(), 200u);
  for (const RangeQuery& q : queries) {
    EXPECT_LE(q.row_lo, q.row_hi);
    EXPECT_LE(q.col_lo, q.col_hi);
    EXPECT_LT(q.row_hi, 10u);
    EXPECT_LT(q.col_hi, 10u);
    EXPECT_LE(q.row_hi - q.row_lo + 1, 5u);  // edges at most K/2
    EXPECT_GE(q.t_start, 0);
    EXPECT_EQ(q.t_end - q.t_start, 10);
    EXPECT_LE(q.t_end, 100);
  }
}

TEST(QueryGenerationTest, PhiLargerThanHorizonStillValid) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 4);
  Rng rng(6);
  const auto queries = GenerateRandomQueries(grid, 5, 50, 10, rng);
  for (const RangeQuery& q : queries) {
    EXPECT_EQ(q.t_start, 0);
  }
}

TEST(QueryGenerationTest, DeterministicGivenSeed) {
  const Grid grid(BoundingBox{0.0, 0.0, 1.0, 1.0}, 8);
  Rng a(7), b(7);
  const auto qa = GenerateRandomQueries(grid, 50, 5, 20, a);
  const auto qb = GenerateRandomQueries(grid, 50, 5, 20, b);
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].row_lo, qb[i].row_lo);
    EXPECT_EQ(qa[i].col_hi, qb[i].col_hi);
    EXPECT_EQ(qa[i].t_start, qb[i].t_start);
  }
}

}  // namespace
}  // namespace retrasyn
