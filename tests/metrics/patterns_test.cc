#include "metrics/patterns.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace retrasyn {
namespace {

TEST(PatternPackTest, RoundTrip) {
  for (int len = 2; len <= kMaxPatternLength; ++len) {
    std::vector<CellId> cells;
    for (int i = 0; i < len; ++i) {
      cells.push_back(static_cast<CellId>((i * 37 + 11) % kMaxPatternCells));
    }
    const PatternKey key = PackPattern(cells.data(), len);
    EXPECT_EQ(UnpackPattern(key), cells);
  }
}

TEST(PatternPackTest, DistinctPatternsDistinctKeys) {
  const CellId a[] = {1, 2};
  const CellId b[] = {2, 1};
  const CellId c[] = {1, 2, 0};
  EXPECT_NE(PackPattern(a, 2), PackPattern(b, 2));
  EXPECT_NE(PackPattern(a, 2), PackPattern(c, 3));
}

TEST(PatternPackTest, ZeroCellsStillUnambiguous) {
  const CellId z2[] = {0, 0};
  const CellId z3[] = {0, 0, 0};
  EXPECT_NE(PackPattern(z2, 2), PackPattern(z3, 3));
  EXPECT_EQ(UnpackPattern(PackPattern(z2, 2)).size(), 2u);
  EXPECT_EQ(UnpackPattern(PackPattern(z3, 3)).size(), 3u);
}

CellStreamSet RepeatedPatternSet() {
  // 10 streams walking 1->2->3, 3 streams walking 4->5.
  CellStreamSet set(10);
  for (int i = 0; i < 10; ++i) {
    CellStream s;
    s.enter_time = 0;
    s.cells = {1, 2, 3};
    set.Add(std::move(s)).CheckOK();
  }
  for (int i = 0; i < 3; ++i) {
    CellStream s;
    s.enter_time = 0;
    s.cells = {4, 5};
    set.Add(std::move(s)).CheckOK();
  }
  return set;
}

TEST(TopPatternsTest, MostFrequentFirst) {
  const CellStreamSet set = RepeatedPatternSet();
  const auto top = TopPatterns(set, 0, 10, 2, 3, 10);
  // Patterns: (1,2) x10, (2,3) x10, (1,2,3) x10, (4,5) x3.
  ASSERT_EQ(top.size(), 4u);
  const CellId p45[] = {4, 5};
  EXPECT_EQ(top.back(), PackPattern(p45, 2));
  // The three frequency-10 patterns occupy the first three slots.
  const CellId p12[] = {1, 2};
  EXPECT_TRUE(std::find(top.begin(), top.begin() + 3, PackPattern(p12, 2)) !=
              top.begin() + 3);
}

TEST(TopPatternsTest, TimeWindowRestricts) {
  CellStreamSet set(10);
  CellStream s;
  s.enter_time = 0;
  s.cells = {1, 2, 3, 4, 5};
  set.Add(std::move(s)).CheckOK();
  // Window [2, 5) only sees cells 3,4,5.
  const auto top = TopPatterns(set, 2, 5, 2, 2, 10);
  const CellId p34[] = {3, 4};
  const CellId p45[] = {4, 5};
  const CellId p12[] = {1, 2};
  EXPECT_TRUE(std::find(top.begin(), top.end(), PackPattern(p34, 2)) !=
              top.end());
  EXPECT_TRUE(std::find(top.begin(), top.end(), PackPattern(p45, 2)) !=
              top.end());
  EXPECT_TRUE(std::find(top.begin(), top.end(), PackPattern(p12, 2)) ==
              top.end());
}

TEST(TopPatternsTest, TopNTruncates) {
  const CellStreamSet set = RepeatedPatternSet();
  const auto top = TopPatterns(set, 0, 10, 2, 3, 2);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopPatternsTest, ShortStreamsSkipped) {
  CellStreamSet set(5);
  CellStream s;
  s.enter_time = 0;
  s.cells = {7};  // too short for any pattern
  set.Add(std::move(s)).CheckOK();
  EXPECT_TRUE(TopPatterns(set, 0, 5, 2, 3, 10).empty());
}

TEST(PatternF1Test, IdenticalSetsAreOne) {
  const CellStreamSet set = RepeatedPatternSet();
  const auto a = TopPatterns(set, 0, 10, 2, 3, 10);
  EXPECT_DOUBLE_EQ(PatternSetF1(a, a), 1.0);
}

TEST(PatternF1Test, DisjointSetsAreZero) {
  const CellId p12[] = {1, 2};
  const CellId p34[] = {3, 4};
  EXPECT_DOUBLE_EQ(PatternSetF1({PackPattern(p12, 2)}, {PackPattern(p34, 2)}),
                   0.0);
}

TEST(PatternF1Test, PartialOverlap) {
  const CellId a[] = {1, 2};
  const CellId b[] = {3, 4};
  const CellId c[] = {5, 6};
  // A = {a, b}, B = {b, c}: precision = recall = 1/2 -> F1 = 1/2.
  EXPECT_DOUBLE_EQ(PatternSetF1({PackPattern(a, 2), PackPattern(b, 2)},
                                {PackPattern(b, 2), PackPattern(c, 2)}),
                   0.5);
}

TEST(PatternF1Test, EmptyConventions) {
  const CellId a[] = {1, 2};
  EXPECT_DOUBLE_EQ(PatternSetF1({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(PatternSetF1({PackPattern(a, 2)}, {}), 0.0);
}

}  // namespace
}  // namespace retrasyn
