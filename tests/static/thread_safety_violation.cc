// Deliberate thread-safety violations. NEVER linked into anything — the name
// avoids the tests/*_test.cc glob on purpose. CMake registers two checks over
// this file when the compiler is clang:
//
//   static_thread_safety_gate_fires    compiles it WITH -Werror=thread-safety
//                                      and passes only if compilation FAILS
//                                      (WILL_FAIL) — proving the CI gate
//                                      actually rejects guarded-state abuse,
//                                      i.e. the annotations are not silently
//                                      expanding to nothing.
//   static_thread_safety_control       compiles it WITHOUT the warning flags
//                                      and must succeed — proving the gate
//                                      test fails for the right reason (the
//                                      analysis) and not a stray syntax error.
//
// Keep every violation on the list below in sync with the code; each is a
// distinct diagnostic class the gate must catch.

#include "common/mutex.h"

namespace retrasyn {

class Account {
 public:
  // Violation 1: reads a GUARDED_BY member without holding its mutex.
  int UnguardedRead() { return balance_; }

  // Violation 2: writes a GUARDED_BY member without holding its mutex.
  void UnguardedWrite(int v) { balance_ = v; }

  // Violation 3: returns with the mutex still held (unbalanced ACQUIRE).
  void LockLeak() { mu_.Lock(); }

  // Violation 4: calls a REQUIRES function without the capability.
  void CallsLockedHelperNaked() { AddLocked(1); }

  // Violation 5: double-acquires a non-reentrant mutex.
  void DoubleLock() {
    MutexLock outer(mu_);
    MutexLock inner(mu_);  // self-deadlock at runtime
    balance_ = 0;
  }

 private:
  void AddLocked(int v) REQUIRES(mu_) { balance_ += v; }

  Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

// Anchor so the file is not "empty" under -fsyntax-only optimizations.
int Touch(Account& a) {
  a.UnguardedWrite(1);
  return a.UnguardedRead();
}

}  // namespace retrasyn
