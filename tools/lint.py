#!/usr/bin/env python3
"""Repo-specific static lint gates, run by ctest and the CI static-analysis job.

Three checks, all over src/ (tests and benches may use what they like):

  1. No naked synchronization primitives. Every mutex in src/ must be the
     annotated retrasyn::Mutex from common/mutex.h; a raw std::mutex is
     invisible to clang's thread-safety analysis, so one naked lock silently
     exempts whatever it guards from the -Werror=thread-safety gate.
  2. No wall-clock or libc randomness. Determinism is a core contract
     (byte-identical releases across shardings and replays); rand()/time()
     style calls are how nondeterminism sneaks in. Monotonic steady_clock
     timing and the seeded common/rng.h are the sanctioned alternatives.
  3. No heap allocation in functions marked `// HOT PATH`. The marker is a
     reviewed claim that a function is allocation-free at steady state; this
     check keeps the claim true as the function evolves.

Comments and string/char literals are stripped before matching, so prose like
"time (rush hours)" or a banned token inside an error message never trips a
check. Exit status: 0 clean, 1 findings (one `path:line: message` per line).

Usage: python3 tools/lint.py [repo_root]
"""

import os
import re
import sys

# Files allowed to hold the naked primitives they wrap.
MUTEX_ALLOWLIST = {
    os.path.join("src", "common", "mutex.h"),
    os.path.join("src", "common", "thread_annotations.h"),
}

NAKED_SYNC = [
    (re.compile(r"\bstd::mutex\b"), "naked std::mutex (use retrasyn::Mutex)"),
    (re.compile(r"\bstd::recursive_mutex\b"),
     "std::recursive_mutex (re-entrancy hides lock-order bugs; restructure)"),
    (re.compile(r"\bstd::shared_mutex\b"),
     "naked std::shared_mutex (wrap it in common/mutex.h first)"),
    (re.compile(r"\bstd::lock_guard\b"),
     "naked std::lock_guard (use retrasyn::MutexLock)"),
    (re.compile(r"\bstd::scoped_lock\b"),
     "naked std::scoped_lock (use retrasyn::MutexLock)"),
    (re.compile(r"\bstd::unique_lock\b"),
     "naked std::unique_lock (use MutexLock, or Lock/Unlock in worker loops)"),
    (re.compile(r"\bstd::condition_variable\b"),
     "naked std::condition_variable (use retrasyn::CondVar)"),
    (re.compile(r"#\s*include\s*<mutex>"),
     "direct <mutex> include (include common/mutex.h)"),
    (re.compile(r"#\s*include\s*<condition_variable>"),
     "direct <condition_variable> include (include common/mutex.h)"),
]

NONDETERMINISM = [
    (re.compile(r"\brand\s*\("), "rand() (use the seeded common/rng.h)"),
    (re.compile(r"\bsrand\s*\("), "srand() (use the seeded common/rng.h)"),
    (re.compile(r"\bdrand48\s*\("), "drand48() (use the seeded common/rng.h)"),
    (re.compile(r"\btime\s*\("),
     "time() (wall clock; use std::chrono::steady_clock for durations)"),
    (re.compile(r"\bgettimeofday\s*\("),
     "gettimeofday() (wall clock; use std::chrono::steady_clock)"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device (unseeded entropy breaks replay determinism)"),
]

# Allocation vocabulary banned inside `// HOT PATH` functions. Word-ish
# boundaries keep e.g. "renew" or "news_" from matching.
HOT_PATH_ALLOC = [
    (re.compile(r"\bnew\b"), "new"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    (re.compile(r"\bcalloc\s*\("), "calloc"),
    (re.compile(r"\brealloc\s*\("), "realloc"),
    (re.compile(r"\bmake_unique\b"), "make_unique"),
    (re.compile(r"\bmake_shared\b"), "make_shared"),
    (re.compile(r"\.push_back\s*\("), "push_back"),
    (re.compile(r"\.emplace_back\s*\("), "emplace_back"),
    (re.compile(r"\.resize\s*\("), "resize"),
    (re.compile(r"\.reserve\s*\("), "reserve"),
]

HOT_PATH_MARKER = re.compile(r"//\s*HOT PATH")


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal *contents* with spaces. The
    result is the same length as the input (newlines kept in place), so
    offsets and line numbers in the stripped text map 1:1 to the original."""
    out = []
    i = 0
    n = len(text)

    def blank(upto):
        nonlocal i
        while i < upto:
            out.append("\n" if text[i] == "\n" else " ")
            i += 1

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            blank(n if end < 0 else end)
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            blank(n if end < 0 else end + 2)
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] not in (quote, "\n"):
                # \n: unterminated (raw string etc.) — bail at end of line
                step = 2 if text[i] == "\\" and i + 1 < n else 1
                blank(min(i + step, n))
            if i < n and text[i] == quote:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def hot_path_regions(original, stripped):
    """Yields (start, end) offsets of the brace-balanced body following each
    `// HOT PATH` marker (markers live in comments, so scan the original)."""
    for m in HOT_PATH_MARKER.finditer(original):
        open_brace = stripped.find("{", m.end())
        if open_brace < 0:
            continue
        depth = 0
        for i in range(open_brace, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    yield open_brace, i + 1
                    break


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        original = f.read()
    stripped = strip_comments_and_strings(original)

    if rel not in MUTEX_ALLOWLIST:
        for pattern, message in NAKED_SYNC:
            for m in pattern.finditer(stripped):
                findings.append((rel, line_of(stripped, m.start()), message))
    for pattern, message in NONDETERMINISM:
        for m in pattern.finditer(stripped):
            findings.append((rel, line_of(stripped, m.start()), message))
    for start, end in hot_path_regions(original, stripped):
        body = stripped[start:end]
        for pattern, token in HOT_PATH_ALLOC:
            for m in pattern.finditer(body):
                findings.append(
                    (rel, line_of(stripped, start + m.start()),
                     token + " in a // HOT PATH function (allocation-free "
                     "contract)"))
    return findings


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []
    num_files = 0
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            num_files += 1
            lint_file(root, rel, findings)
    findings.sort()
    for rel, line, message in findings:
        print(f"{rel}:{line}: {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s) in {num_files} files",
              file=sys.stderr)
        return 1
    print(f"lint: {num_files} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
