#include <cstdio>
#include <cstring>
#include <utility>

#include "checkpoint/checkpoint_format.h"
#include "common/crc32c.h"
#include "common/file_io.h"
#include "journal/event_codec.h"

namespace retrasyn {

namespace {

void PutFixed64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t GetFixed64(const char* data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

void PutFixed32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t GetFixed32(const char* data) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

void PutDouble(double value, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(bits, out);
}

void PutSigned(int64_t value, std::string* out) {
  PutVarint64(ZigzagEncode(value), out);
}

void PutBool(bool value, std::string* out) {
  out->push_back(value ? 1 : 0);
}

void PutStreams(const std::vector<CellStream>& streams, std::string* out) {
  PutVarint64(streams.size(), out);
  for (const CellStream& s : streams) {
    PutSigned(s.enter_time, out);
    PutVarint64(s.cells.size(), out);
    for (CellId cell : s.cells) PutVarint64(cell, out);
  }
}

void PutBuckets(const std::deque<std::pair<int64_t, std::vector<uint32_t>>>&
                    buckets,
                std::string* out) {
  PutVarint64(buckets.size(), out);
  for (const auto& [round, indices] : buckets) {
    PutSigned(round, out);
    PutVarint64(indices.size(), out);
    for (uint32_t index : indices) PutVarint64(index, out);
  }
}

/// Bounds-checked reader over a decoded body. Every getter returns false on
/// truncation or a value that cannot fit its destination; the caller folds
/// any false into one kIOError.
struct Cursor {
  const char* data;
  size_t size;
  size_t offset = 0;

  bool GetVarint(uint64_t* value) {
    return GetVarint64(data, size, &offset, value);
  }
  bool GetSigned(int64_t* value) {
    uint64_t raw = 0;
    if (!GetVarint(&raw)) return false;
    *value = ZigzagDecode(raw);
    return true;
  }
  bool GetBool(bool* value) {
    if (offset >= size) return false;
    const unsigned char b = static_cast<unsigned char>(data[offset++]);
    if (b > 1) return false;
    *value = (b == 1);
    return true;
  }
  bool GetByte(uint8_t* value) {
    if (offset >= size) return false;
    *value = static_cast<uint8_t>(data[offset++]);
    return true;
  }
  bool GetDouble(double* value) {
    if (size - offset < 8) return false;
    const uint64_t bits = GetFixed64(data + offset);
    offset += 8;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }
  bool GetFixedU64(uint64_t* value) {
    if (size - offset < 8) return false;
    *value = GetFixed64(data + offset);
    offset += 8;
    return true;
  }
  /// A count that must leave at least `min_bytes_per_item` bytes each —
  /// rejects absurd counts before any allocation can balloon.
  bool GetCount(size_t min_bytes_per_item, uint64_t* count) {
    if (!GetVarint(count)) return false;
    return min_bytes_per_item == 0 ||
           *count <= (size - offset) / min_bytes_per_item;
  }
  bool GetU32(uint32_t* value) {
    uint64_t raw = 0;
    if (!GetVarint(&raw) || raw > UINT32_MAX) return false;
    *value = static_cast<uint32_t>(raw);
    return true;
  }

  bool GetStreams(std::vector<CellStream>* streams) {
    uint64_t n = 0;
    if (!GetCount(2, &n)) return false;
    streams->clear();
    streams->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      CellStream s;
      uint64_t len = 0;
      if (!GetSigned(&s.enter_time) || !GetCount(1, &len)) return false;
      s.cells.reserve(len);
      for (uint64_t j = 0; j < len; ++j) {
        uint32_t cell = 0;
        if (!GetU32(&cell)) return false;
        s.cells.push_back(cell);
      }
      streams->push_back(std::move(s));
    }
    return true;
  }

  bool GetBuckets(
      std::deque<std::pair<int64_t, std::vector<uint32_t>>>* buckets) {
    uint64_t n = 0;
    if (!GetCount(2, &n)) return false;
    buckets->clear();
    for (uint64_t i = 0; i < n; ++i) {
      int64_t round = 0;
      uint64_t m = 0;
      if (!GetSigned(&round) || !GetCount(1, &m)) return false;
      std::vector<uint32_t> indices;
      indices.reserve(m);
      for (uint64_t j = 0; j < m; ++j) {
        uint32_t index = 0;
        if (!GetU32(&index)) return false;
        indices.push_back(index);
      }
      buckets->emplace_back(round, std::move(indices));
    }
    return true;
  }
};

}  // namespace

std::string CheckpointFileName(int64_t round) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "checkpoint-%08lld.ckpt",
                static_cast<long long>(round));
  return buf;
}

std::string HistoryFileName(int64_t round) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "history-%08lld.hst",
                static_cast<long long>(round));
  return buf;
}

namespace {

bool ParseRoundedName(const std::string& name, const char* prefix,
                      const char* suffix, int64_t* round) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() < prefix_len + 8 + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  int64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + (name[i] - '0');
  }
  *round = value;
  return true;
}

}  // namespace

bool ParseCheckpointFileName(const std::string& name, int64_t* round) {
  return ParseRoundedName(name, "checkpoint-", ".ckpt", round);
}

bool ParseHistoryFileName(const std::string& name, int64_t* round) {
  return ParseRoundedName(name, "history-", ".hst", round);
}

void EncodeCheckpointBody(const CheckpointState& state, std::string* out) {
  PutSigned(state.round, out);
  PutVarint64(state.grid_describe.size(), out);
  out->append(state.grid_describe);

  const EngineCheckpointState& e = state.engine;
  for (uint64_t word : e.rng_state) PutFixed64(word, out);
  PutBool(e.collected_once, out);
  PutVarint64(e.total_reports, out);
  PutVarint64(e.model_freq.size(), out);
  for (double f : e.model_freq) PutDouble(f, out);
  PutBool(e.model_initialized, out);
  PutStreams(e.live, out);
  PutStreams(e.finished, out);
  PutVarint64(e.total_points, out);
  PutBool(e.synth_initialized, out);
  PutSigned(e.allocator_rounds_recorded, out);
  PutVarint64(e.allocator_freq_history.size(), out);
  for (const std::vector<double>& freqs : e.allocator_freq_history) {
    PutVarint64(freqs.size(), out);
    for (double f : freqs) PutDouble(f, out);
  }
  PutVarint64(e.allocator_ratio_history.size(), out);
  for (double r : e.allocator_ratio_history) PutDouble(r, out);
  PutVarint64(e.ledger_spends.size(), out);
  for (const auto& [t, eps] : e.ledger_spends) {
    PutSigned(t, out);
    PutDouble(eps, out);
  }
  PutDouble(e.ledger_window_sum, out);
  PutSigned(e.ledger_last_t, out);
  PutDouble(e.ledger_max_window_spend, out);
  PutVarint64(e.tracker_last_report.size(), out);
  for (const auto& [user, t] : e.tracker_last_report) {
    PutVarint64(user, out);
    PutSigned(t, out);
  }
  PutBool(e.tracker_violation, out);
  PutSigned(e.tracker_num_reports, out);
  PutVarint64(e.status.size(), out);
  out->append(reinterpret_cast<const char*>(e.status.data()), e.status.size());
  PutVarint64(e.report_slot.size(), out);
  for (int64_t slot : e.report_slot) PutSigned(slot, out);
  PutBuckets(e.reported_at, out);
  PutBuckets(e.quitted_at, out);
  PutVarint64(e.total_retired, out);

  const SessionCheckpointState& s = state.session;
  PutSigned(s.open_round, out);
  PutVarint64(s.next_stream_index, out);
  PutVarint64(s.active.size(), out);
  for (const SessionCheckpointState::ActiveEntry& a : s.active) {
    PutVarint64(a.user, out);
    PutVarint64(a.stream_index, out);
    PutVarint64(a.last_cell, out);
  }
  PutBuckets(s.quitted_at, out);
  PutVarint64(s.free_indices.size(), out);
  for (uint32_t index : s.free_indices) PutVarint64(index, out);

  PutVarint64(state.spill_rounds.size(), out);
  for (int64_t round : state.spill_rounds) PutSigned(round, out);
}

Status DecodeCheckpointBody(const char* data, size_t size,
                            CheckpointState* state) {
  Cursor c{data, size};
  EngineCheckpointState& e = state->engine;
  SessionCheckpointState& s = state->session;
  uint64_t n = 0;
  bool ok = c.GetSigned(&state->round);
  ok = ok && c.GetCount(1, &n);
  if (ok) {
    state->grid_describe.assign(c.data + c.offset, n);
    c.offset += n;
  }
  for (int i = 0; ok && i < 4; ++i) ok = c.GetFixedU64(&e.rng_state[i]);
  ok = ok && c.GetBool(&e.collected_once) && c.GetVarint(&e.total_reports);
  ok = ok && c.GetCount(8, &n);
  if (ok) {
    e.model_freq.resize(n);
    for (uint64_t i = 0; ok && i < n; ++i) ok = c.GetDouble(&e.model_freq[i]);
  }
  ok = ok && c.GetBool(&e.model_initialized);
  ok = ok && c.GetStreams(&e.live) && c.GetStreams(&e.finished);
  ok = ok && c.GetVarint(&e.total_points) && c.GetBool(&e.synth_initialized);
  ok = ok && c.GetSigned(&e.allocator_rounds_recorded);
  ok = ok && c.GetCount(1, &n);
  if (ok) {
    e.allocator_freq_history.clear();
    for (uint64_t i = 0; ok && i < n; ++i) {
      uint64_t m = 0;
      ok = c.GetCount(8, &m);
      std::vector<double> freqs(ok ? m : 0);
      for (uint64_t j = 0; ok && j < m; ++j) ok = c.GetDouble(&freqs[j]);
      if (ok) e.allocator_freq_history.push_back(std::move(freqs));
    }
  }
  ok = ok && c.GetCount(8, &n);
  if (ok) {
    e.allocator_ratio_history.clear();
    for (uint64_t i = 0; ok && i < n; ++i) {
      double r = 0.0;
      ok = c.GetDouble(&r);
      if (ok) e.allocator_ratio_history.push_back(r);
    }
  }
  ok = ok && c.GetCount(9, &n);
  if (ok) {
    e.ledger_spends.clear();
    for (uint64_t i = 0; ok && i < n; ++i) {
      int64_t t = 0;
      double eps = 0.0;
      ok = c.GetSigned(&t) && c.GetDouble(&eps);
      if (ok) e.ledger_spends.emplace_back(t, eps);
    }
  }
  ok = ok && c.GetDouble(&e.ledger_window_sum) &&
       c.GetSigned(&e.ledger_last_t) &&
       c.GetDouble(&e.ledger_max_window_spend);
  ok = ok && c.GetCount(2, &n);
  if (ok) {
    e.tracker_last_report.clear();
    e.tracker_last_report.reserve(n);
    for (uint64_t i = 0; ok && i < n; ++i) {
      uint64_t user = 0;
      int64_t t = 0;
      ok = c.GetVarint(&user) && c.GetSigned(&t);
      if (ok) e.tracker_last_report.emplace_back(user, t);
    }
  }
  ok = ok && c.GetBool(&e.tracker_violation) &&
       c.GetSigned(&e.tracker_num_reports);
  ok = ok && c.GetCount(1, &n);
  if (ok) {
    e.status.assign(
        reinterpret_cast<const unsigned char*>(c.data + c.offset),
        reinterpret_cast<const unsigned char*>(c.data + c.offset + n));
    c.offset += n;
  }
  ok = ok && c.GetCount(1, &n);
  if (ok) {
    e.report_slot.resize(n);
    for (uint64_t i = 0; ok && i < n; ++i) ok = c.GetSigned(&e.report_slot[i]);
  }
  ok = ok && c.GetBuckets(&e.reported_at) && c.GetBuckets(&e.quitted_at);
  ok = ok && c.GetVarint(&e.total_retired);

  ok = ok && c.GetSigned(&s.open_round) && c.GetU32(&s.next_stream_index);
  ok = ok && c.GetCount(3, &n);
  if (ok) {
    s.active.clear();
    s.active.reserve(n);
    for (uint64_t i = 0; ok && i < n; ++i) {
      SessionCheckpointState::ActiveEntry a;
      ok = c.GetVarint(&a.user) && c.GetU32(&a.stream_index) &&
           c.GetU32(&a.last_cell);
      if (ok) s.active.push_back(a);
    }
  }
  ok = ok && c.GetBuckets(&s.quitted_at);
  ok = ok && c.GetCount(1, &n);
  if (ok) {
    s.free_indices.clear();
    for (uint64_t i = 0; ok && i < n; ++i) {
      uint32_t index = 0;
      ok = c.GetU32(&index);
      if (ok) s.free_indices.push_back(index);
    }
  }
  ok = ok && c.GetCount(1, &n);
  if (ok) {
    state->spill_rounds.clear();
    state->spill_rounds.reserve(n);
    for (uint64_t i = 0; ok && i < n; ++i) {
      int64_t round = 0;
      ok = c.GetSigned(&round);
      if (ok) state->spill_rounds.push_back(round);
    }
  }
  if (!ok || c.offset != c.size) {
    return Status::IOError("checkpoint body is truncated or malformed");
  }
  return Status::OK();
}

void EncodeHistoryBody(const std::vector<CellStream>& streams,
                       std::string* out) {
  PutStreams(streams, out);
}

Status DecodeHistoryBody(const char* data, size_t size,
                         std::vector<CellStream>* streams) {
  Cursor c{data, size};
  if (!c.GetStreams(streams) || c.offset != c.size) {
    return Status::IOError("history spill body is truncated or malformed");
  }
  return Status::OK();
}

Status WriteFramedFile(const std::string& dir, const std::string& name,
                       const char magic[8], uint64_t fingerprint,
                       const std::string& body) {
  std::string framed;
  framed.reserve(kCheckpointHeaderSize + body.size() + 4);
  framed.append(magic, 8);
  framed.push_back(static_cast<char>(kCheckpointFormatVersion));
  PutFixed64(fingerprint, &framed);
  PutFixed64(body.size(), &framed);
  framed.append(body);
  PutFixed32(Crc32c(body.data(), body.size()), &framed);

  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  {
    auto file = AppendableFile::Open(tmp_path);
    if (!file.ok()) return file.status();
    AppendableFile tmp = std::move(file).value();
    RETRASYN_RETURN_NOT_OK(tmp.Append(framed));
    RETRASYN_RETURN_NOT_OK(tmp.Sync());
    RETRASYN_RETURN_NOT_OK(tmp.Close());
  }
  RETRASYN_RETURN_NOT_OK(RenameFile(tmp_path, final_path));
  return SyncDir(dir);
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   const char magic[8], uint64_t* fingerprint) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::string data = std::move(contents).value();
  if (data.size() < kCheckpointHeaderSize + 4) {
    return Status::IOError(path + " is shorter than a framed-file header");
  }
  if (std::memcmp(data.data(), magic, 8) != 0) {
    return Status::IOError(path + " has a bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(data[8]);
  if (version != kCheckpointFormatVersion) {
    return Status::IOError(path + " has unsupported format version " +
                           std::to_string(version));
  }
  *fingerprint = GetFixed64(data.data() + 9);
  const uint64_t body_len = GetFixed64(data.data() + 17);
  if (data.size() != kCheckpointHeaderSize + body_len + 4) {
    return Status::IOError(
        path + " has " + std::to_string(data.size()) +
        " bytes but its header declares a " + std::to_string(body_len) +
        "-byte body (torn or truncated write)");
  }
  const char* body = data.data() + kCheckpointHeaderSize;
  const uint32_t stored_crc = GetFixed32(body + body_len);
  if (Crc32c(body, body_len) != stored_crc) {
    return Status::IOError(path + " fails its body checksum");
  }
  return data.substr(kCheckpointHeaderSize, body_len);
}

}  // namespace retrasyn
