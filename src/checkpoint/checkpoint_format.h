// Versioned binary format for service checkpoints and spilled history.
//
// A checkpoint captures everything recovery needs to reconstruct the service
// at a round boundary without replaying the journal prefix behind it: the
// engine's full dense state (RNG, model, synthesizer, allocation histories,
// budget audit, per-index bookkeeping), the ingest session's index-lifecycle
// state, and the manifest of history spill files holding closed synthetic
// streams that were moved out of memory. Both checkpoint and spill files use
// the same CRC-framed single-record layout (the journal's framing idiom,
// inflated to one record per file):
//
//   +--------+---------+-------------+----------+--------+-----------------+
//   | magic  | version | fingerprint | body_len | body   | CRC32C(body)    |
//   | 8 B    | 1 B     | 8 B, LE     | 8 B, LE  |        | 4 B, LE         |
//   +--------+---------+-------------+----------+--------+-----------------+
//
// A reader requires the file size to be exactly header + body_len + 4: a
// torn write (crash mid-append of the tmp file) can never pass, and the
// atomic tmp + rename + directory-fsync publication means a file under its
// final name is either complete or absent. The fingerprint is the same
// deployment hash the journal stamps into its segment headers — a checkpoint
// is only loadable into the deployment that wrote it.
//
// Bodies encode through the journal codec's primitives: varints for counts
// and indices, zigzag varints for signed timestamps, and raw IEEE-754 bit
// patterns for doubles — recovery must reinstate the *identical* double to
// stay byte-identical with full replay.

#ifndef RETRASYN_CHECKPOINT_CHECKPOINT_FORMAT_H_
#define RETRASYN_CHECKPOINT_CHECKPOINT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "service/ingest_session.h"
#include "stream/cell_stream.h"

namespace retrasyn {

/// \brief A complete checkpoint: the service's state after `round` closed
/// rounds (== the session's open round at capture).
struct CheckpointState {
  int64_t round = 0;
  /// The canonical SpatialGrid::Describe() bytes of the grid the checkpoint
  /// was captured under, round-tripped exactly (v2+). Recovery refuses a
  /// checkpoint whose grid differs from the running deployment's — the dense
  /// engine state is meaningless under any other cell layout.
  std::string grid_describe;
  EngineCheckpointState engine;
  SessionCheckpointState session;
  /// Rounds whose history spill files this checkpoint references, ascending.
  /// SnapshotRelease after recovery serves closed-stream history from these
  /// files; a referenced file that is missing makes the checkpoint unusable.
  std::vector<int64_t> spill_rounds;
};

inline constexpr char kCheckpointMagic[8] = {'R', 'S', 'Y', 'N',
                                             'C', 'K', 'P', 'T'};
inline constexpr char kHistoryMagic[8] = {'R', 'S', 'Y', 'N',
                                          'H', 'I', 'S', 'T'};
// v2: the body opens with the grid's Describe() bytes (see CheckpointState).
inline constexpr uint8_t kCheckpointFormatVersion = 2;
/// magic + version + fingerprint + body_len.
inline constexpr size_t kCheckpointHeaderSize = sizeof(kCheckpointMagic) + 1 +
                                                8 + 8;

/// `checkpoint-%08lld.ckpt` for the state after \p round closed rounds.
std::string CheckpointFileName(int64_t round);
bool ParseCheckpointFileName(const std::string& name, int64_t* round);

/// `history-%08lld.hst` for the streams spilled at checkpoint \p round.
std::string HistoryFileName(int64_t round);
bool ParseHistoryFileName(const std::string& name, int64_t* round);

// --- body codecs ------------------------------------------------------------

void EncodeCheckpointBody(const CheckpointState& state, std::string* out);
/// kIOError on truncated or malformed bytes (the CRC already passed, so
/// damage here means a format bug or silent rot — either way unusable).
Status DecodeCheckpointBody(const char* data, size_t size,
                            CheckpointState* state);

void EncodeHistoryBody(const std::vector<CellStream>& streams,
                       std::string* out);
Status DecodeHistoryBody(const char* data, size_t size,
                         std::vector<CellStream>* streams);

// --- framed file I/O --------------------------------------------------------

/// \brief Atomically publishes `<dir>/<name>` with the framed layout above:
/// writes `<dir>/<name>.tmp`, fsyncs it, renames over the final name, and
/// fsyncs the directory.
Status WriteFramedFile(const std::string& dir, const std::string& name,
                       const char magic[8], uint64_t fingerprint,
                       const std::string& body);

/// \brief Reads and structurally verifies a framed file, returning its body.
/// kIOError on any damage (size mismatch, bad magic/version, CRC failure).
/// The stored fingerprint is returned through \p fingerprint for the caller
/// to police — a fingerprint mismatch is a *deployment* error, not file
/// damage, and deserves a different failure mode than corruption.
Result<std::string> ReadFramedFile(const std::string& path,
                                   const char magic[8], uint64_t* fingerprint);

}  // namespace retrasyn

#endif  // RETRASYN_CHECKPOINT_CHECKPOINT_FORMAT_H_
