// Periodic checkpoint writer + journal compactor.
//
// The manager turns the unbounded-replay recovery model (PR 4) into an
// O(window) one: every `every_rounds` closed rounds it captures the full
// service state — engine and ingest session — on the threads that own them,
// pairs the two halves by round, and hands them to a single background
// worker that:
//
//   1. spills the engine's closed synthetic streams to a `history-*.hst`
//      file (when spill_history is on), so steady-state RSS stays flat while
//      SnapshotRelease still serves the complete history;
//   2. writes `checkpoint-*.ckpt` atomically (tmp + fsync + rename + dir
//      fsync) — a crash never leaves a half-written checkpoint under its
//      final name;
//   3. prunes checkpoints beyond the retention count; and
//   4. retires journal segments that ended at or before the oldest retained
//      checkpoint's round minus the w-window, through the BASE declaration
//      of journal_compaction.h — recovery then replays only the suffix.
//
// Capture happens at round boundaries on the owning threads (the session
// half on the ingest thread via the round-commit hook, the engine half on
// the round-closing thread right after Observe), so the worker never touches
// live state; it serializes privately owned copies. The first I/O failure
// poisons the manager exactly like JournalWriter: status() turns sticky,
// later captures are dropped, and the service surfaces the error on the
// next Tick — the journal itself is unaffected, so nothing durable is lost.

#ifndef RETRASYN_CHECKPOINT_CHECKPOINT_MANAGER_H_
#define RETRASYN_CHECKPOINT_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint_format.h"
#include "common/mutex.h"
#include "common/status.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "stream/cell_stream.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

struct CheckpointOptions {
  /// Directory for checkpoint and history spill files. Owned by the service
  /// that owns the journal (the journal LOCK covers both).
  std::string dir;
  /// Write a checkpoint every N closed rounds; 0 disables checkpointing.
  int64_t every_rounds = 0;
  /// Newest checkpoints kept on disk; older ones are pruned. At least 1 —
  /// two by default, so a checkpoint corrupted in place still leaves a
  /// bounded-replay recovery path.
  int retain = 2;
  /// Move closed synthetic streams out of memory into history spill files at
  /// every checkpoint; SnapshotRelease reads them back on demand.
  bool spill_history = true;
  /// Deployment fingerprint stamped into every file (same hash the journal
  /// carries); a checkpoint only loads into the deployment that wrote it.
  uint64_t fingerprint = 0;
  /// The grid's canonical Describe() bytes, stored verbatim in every
  /// checkpoint body so recovery can verify the discretization exactly (the
  /// fingerprint above already hashes them; the copy makes the refusal
  /// message precise and the format self-describing).
  std::string grid_describe;
  /// The w-event window; journal retirement keeps a full window of rounds
  /// behind the oldest retained checkpoint.
  int window = 0;
  /// The journal directories compaction retires segments from — one per
  /// ingest shard (a single entry for unsharded deployments); empty disables
  /// retirement (checkpoints still bound recovery *time*, not disk). Every
  /// shard journal carries one boundary record per round, so one cutoff
  /// round drives retirement in all of them independently.
  std::vector<std::string> journal_dirs;

  Status Validate() const;
};

class CheckpointManager {
 public:
  /// Scans \p dir, removing orphaned `*.tmp` files, and opens a manager.
  /// With \p require_fresh (Service::Create), any existing checkpoint or
  /// history file fails with FailedPrecondition — a fresh service must never
  /// silently shadow recoverable state.
  static Result<std::unique_ptr<CheckpointManager>> Open(
      const CheckpointOptions& options, bool require_fresh);

  /// Loads the newest usable checkpoint for recovery: tries checkpoints
  /// newest-first, skipping (and deleting) corrupt ones — torn frame, CRC
  /// failure, malformed body, missing referenced spill file — and returns
  /// the first that loads. A checkpoint that is structurally VALID but
  /// carries a different deployment fingerprint fails loudly with
  /// FailedPrecondition instead of falling back: silently replaying the full
  /// journal under a changed deployment is exactly the divergence the
  /// fingerprint exists to prevent. kNotFound when no checkpoint exists.
  /// On success \p surviving_rounds holds the retained checkpoint rounds
  /// (for retention seeding) and unreferenced history files are deleted.
  /// \p corrupt_skipped (optional) counts the corrupt checkpoints the
  /// newest-first ladder deleted before finding a usable one — the
  /// recovery fallback depth surfaced in telemetry.
  static Result<CheckpointState> LoadForRecovery(
      const std::string& dir, uint64_t fingerprint,
      std::vector<int64_t>* surviving_rounds,
      int* corrupt_skipped = nullptr);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;
  ~CheckpointManager();

  /// The journals whose sealed segments retirement may delete (not owned),
  /// one per entry of options.journal_dirs, in the same order; an empty
  /// vector detaches — retirement then only considers recovery-seeded
  /// segments.
  void AttachJournals(std::vector<JournalWriter*> journals);

  /// Seeds post-recovery bookkeeping: the recovered checkpoint's spill
  /// manifest (served file-backed from day one), the surviving checkpoint
  /// rounds (retention), and the scanned journal segments — one vector per
  /// entry of options.journal_dirs — as retirement candidates whose suffix
  /// the new writers continue.
  Status SeedRecovered(
      const CheckpointState& state, std::vector<int64_t> surviving_rounds,
      const std::vector<std::vector<ScannedSegment>>& segments_per_journal);

  /// True when a checkpoint is due at the round boundary that sealed round
  /// \p t — i.e. every `every_rounds` closed rounds.
  bool DueAt(int64_t sealed_round) const {
    return options_.every_rounds > 0 &&
           (sealed_round + 1) % options_.every_rounds == 0;
  }

  /// Engine half, from the round-closing thread right after Observe(t).
  /// \p spilled holds the closed streams taken from the engine this round
  /// (empty when spill_history is off); they are servable from memory
  /// immediately and from their spill file once the worker persists them.
  void OnRoundClosed(int64_t sealed_round, EngineCheckpointState engine,
                     std::vector<CellStream> spilled);

  /// Session half, from the ingest thread's round-commit hook.
  void OnRoundCommitted(int64_t sealed_round, SessionCheckpointState session);

  /// Appends every spilled stream to \p out in spill order (ascending
  /// checkpoint round, original order within). The caller appends the
  /// engine's in-memory snapshot after — the concatenation reproduces the
  /// no-spill snapshot byte-for-byte.
  Status AppendSpilledHistory(CellStreamSet* out) const
      EXCLUDES(spill_mu_);
  bool has_spilled_history() const EXCLUDES(spill_mu_);

  /// Registers this manager's metrics in \p telemetry (not owned; null
  /// detaches). Call before the first captured round — the worker reads the
  /// pointers without a lock. Observation-only: no effect on what is
  /// written, pruned, or retired.
  void AttachTelemetry(Telemetry* telemetry);

  /// Sticky first failure (OK while healthy).
  Status status() const EXCLUDES(mu_);

  /// Blocks until the worker has drained every ready checkpoint; returns
  /// status(). Used by Drain and tests for deterministic error surfacing.
  Status WaitIdle() EXCLUDES(mu_);

  uint64_t checkpoints_written() const EXCLUDES(mu_);
  uint64_t segments_retired() const EXCLUDES(mu_);
  uint64_t streams_spilled() const EXCLUDES(spill_mu_);
  /// The newest durable checkpoint's round; -1 before the first one.
  int64_t last_checkpoint_round() const EXCLUDES(mu_);

  const CheckpointOptions& options() const { return options_; }

 private:
  /// A spilled batch of closed streams: memory-backed until its file is
  /// durable, file-backed after.
  struct SpillEntry {
    int64_t round = 0;
    uint64_t count = 0;
    bool file_backed = false;
    std::vector<CellStream> streams;  ///< empty once file_backed
  };

  /// The two capture halves of one due round, paired by round.
  struct PendingCapture {
    bool have_engine = false;
    bool have_session = false;
    EngineCheckpointState engine;
    SessionCheckpointState session;
  };

  /// Per-journal retirement bookkeeping, one per options.journal_dirs entry.
  struct JournalRetireState {
    std::string dir;
    JournalWriter* writer = nullptr;  ///< not owned; null = detached
    // Worker-only once the worker owns it.
    std::vector<SealedSegment> candidates;  ///< sorted by index
    uint64_t first_live = 0;   ///< lowest journal index not retired
    bool first_live_known = false;
    int64_t retired_base_round = 0;  ///< rounds summarized by retired prefix
  };

  explicit CheckpointManager(CheckpointOptions options);

  void WorkerLoop() EXCLUDES(mu_);
  /// One full checkpoint: spill file, checkpoint file, pruning, retirement.
  /// Runs on the worker with mu_ released (file I/O must not block captures);
  /// takes mu_/spill_mu_ briefly for the shared touches inside.
  Status WriteCheckpoint(int64_t round, EngineCheckpointState engine,
                         SessionCheckpointState session)
      EXCLUDES(mu_, spill_mu_);
  Status PruneCheckpoints();
  Status RetireJournalPrefix() EXCLUDES(mu_);
  void MaybeEnqueueLocked(int64_t round) REQUIRES(mu_);

  const CheckpointOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::thread worker_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool busy_ GUARDED_BY(mu_) = false;
  Status error_ GUARDED_BY(mu_);  ///< first failure; sticky
  /// Halves awaiting their pair.
  std::map<int64_t, PendingCapture> pending_ GUARDED_BY(mu_);
  /// Fully captured rounds.
  std::deque<int64_t> ready_ GUARDED_BY(mu_);

  // Handoff-owned retirement state, deliberately NOT mutex-guarded: after
  // Open (pre-worker) and SeedRecovered (which verifies the worker is idle
  // under mu_ — no busy_, no ready_, no pending_ — before touching it),
  // journals_' candidates/first_live/retired_base_round and retained_rounds_
  // are owned exclusively by the worker thread, which mutates them with file
  // I/O interleaved and must not hold mu_ across that. The one exception is
  // each JournalRetireState::writer pointer, which AttachJournals swaps and
  // the worker reads — both under mu_ (GUARDED_BY cannot name the outer
  // class's mu_ from a nested struct; see docs/concurrency.md).
  std::vector<JournalRetireState> journals_;
  std::vector<int64_t> retained_rounds_;       ///< on-disk checkpoints, asc

  /// Leaf lock, ordered after mu_ (SeedRecovered nests mu_ -> spill_mu_;
  /// never the reverse).
  mutable Mutex spill_mu_ ACQUIRED_AFTER(mu_);
  /// Ascending by round.
  std::vector<SpillEntry> spills_ GUARDED_BY(spill_mu_);
  uint64_t streams_spilled_ GUARDED_BY(spill_mu_) = 0;

  uint64_t checkpoints_written_ GUARDED_BY(mu_) = 0;
  uint64_t segments_retired_ GUARDED_BY(mu_) = 0;
  int64_t last_checkpoint_round_ GUARDED_BY(mu_) = -1;

  // Telemetry (all null when detached). Set once before the first capture;
  // read by the worker and capture threads without a lock.
  Telemetry* telemetry_ = nullptr;
  Counter* writes_metric_ = nullptr;
  Counter* bytes_metric_ = nullptr;
  Counter* prunes_metric_ = nullptr;
  Counter* segments_retired_metric_ = nullptr;
  Counter* spills_metric_ = nullptr;
  Counter* poisonings_metric_ = nullptr;
  Gauge* last_round_metric_ = nullptr;
  LatencyHistogram* write_hist_ = nullptr;
  RoundTrace* trace_ = nullptr;
};

}  // namespace retrasyn

#endif  // RETRASYN_CHECKPOINT_CHECKPOINT_MANAGER_H_
