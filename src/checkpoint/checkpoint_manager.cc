#include "checkpoint/checkpoint_manager.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "journal/journal_compaction.h"

namespace retrasyn {

namespace {

bool IsTempFileName(const std::string& name) {
  constexpr char kSuffix[] = ".tmp";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  return name.size() >= kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

/// Lists \p dir, deletes orphaned tmp files, and splits the rest into
/// checkpoint and history rounds (ascending). A missing directory yields
/// empty lists.
Status ScanCheckpointDir(const std::string& dir,
                         std::vector<int64_t>* checkpoints,
                         std::vector<int64_t>* histories) {
  auto names = ListDirectory(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return Status::OK();
    return names.status();
  }
  bool cleaned = false;
  for (const std::string& name : names.value()) {
    if (IsTempFileName(name)) {
      RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
      cleaned = true;
      continue;
    }
    int64_t round = 0;
    if (ParseCheckpointFileName(name, &round)) {
      checkpoints->push_back(round);
    } else if (ParseHistoryFileName(name, &round)) {
      histories->push_back(round);
    }
  }
  if (cleaned) RETRASYN_RETURN_NOT_OK(SyncDir(dir));
  std::sort(checkpoints->begin(), checkpoints->end());
  std::sort(histories->begin(), histories->end());
  return Status::OK();
}

}  // namespace

Status CheckpointOptions::Validate() const {
  if (every_rounds < 0) {
    return Status::InvalidArgument("checkpoint every_rounds must be >= 0");
  }
  if (every_rounds == 0) return Status::OK();
  if (dir.empty()) {
    return Status::InvalidArgument(
        "checkpointing requires a checkpoint directory");
  }
  if (retain < 1) {
    return Status::InvalidArgument(
        "checkpoint retention must keep at least one checkpoint");
  }
  if (window < 0) {
    return Status::InvalidArgument("checkpoint window must be >= 0");
  }
  return Status::OK();
}

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {
  journals_.resize(options_.journal_dirs.size());
  for (size_t i = 0; i < journals_.size(); ++i) {
    journals_[i].dir = options_.journal_dirs[i];
  }
}

Result<std::unique_ptr<CheckpointManager>> CheckpointManager::Open(
    const CheckpointOptions& options, bool require_fresh) {
  RETRASYN_RETURN_NOT_OK(options.Validate());
  RETRASYN_RETURN_NOT_OK(CreateDirIfMissing(options.dir));
  std::vector<int64_t> checkpoints;
  std::vector<int64_t> histories;
  RETRASYN_RETURN_NOT_OK(
      ScanCheckpointDir(options.dir, &checkpoints, &histories));
  if (require_fresh && (!checkpoints.empty() || !histories.empty())) {
    return Status::FailedPrecondition(
        "checkpoint directory " + options.dir +
        " already holds checkpoints; Recover the existing deployment or "
        "point the new one elsewhere");
  }
  std::unique_ptr<CheckpointManager> manager(new CheckpointManager(options));
  manager->retained_rounds_ = std::move(checkpoints);
  if (!manager->retained_rounds_.empty()) {
    // No concurrency yet (the worker starts below), but last_checkpoint_round_
    // is guarded state; take the lock so the seeding is analysis-clean.
    MutexLock l(manager->mu_);
    manager->last_checkpoint_round_ = manager->retained_rounds_.back();
  }
  manager->worker_ = std::thread([m = manager.get()] { m->WorkerLoop(); });
  return manager;
}

CheckpointManager::~CheckpointManager() {
  {
    MutexLock l(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

void CheckpointManager::AttachTelemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    writes_metric_ = nullptr;
    bytes_metric_ = nullptr;
    prunes_metric_ = nullptr;
    segments_retired_metric_ = nullptr;
    spills_metric_ = nullptr;
    poisonings_metric_ = nullptr;
    last_round_metric_ = nullptr;
    write_hist_ = nullptr;
    trace_ = nullptr;
    return;
  }
  MetricsRegistry& registry = telemetry_->registry();
  writes_metric_ = registry.GetCounter(
      "retrasyn_checkpoint_writes_total",
      "Checkpoints made durable (tmp + fsync + rename)");
  bytes_metric_ = registry.GetCounter(
      "retrasyn_checkpoint_bytes_written_total",
      "Body bytes written to checkpoint and history spill files");
  prunes_metric_ = registry.GetCounter(
      "retrasyn_checkpoint_prunes_total",
      "Checkpoints deleted by retention pruning");
  segments_retired_metric_ = registry.GetCounter(
      "retrasyn_checkpoint_segments_retired_total",
      "Journal segments retired by compaction");
  spills_metric_ = registry.GetCounter(
      "retrasyn_checkpoint_streams_spilled_total",
      "Closed synthetic streams moved from memory into history spill files");
  poisonings_metric_ = registry.GetCounter(
      "retrasyn_checkpoint_poisonings_total",
      "Sticky checkpoint-worker failures");
  last_round_metric_ = registry.GetGauge(
      "retrasyn_checkpoint_last_round",
      "Closed-round count of the newest durable checkpoint (-1 before the "
      "first)");
  last_round_metric_->Set(last_checkpoint_round());
  write_hist_ = registry.GetHistogram(
      "retrasyn_checkpoint_write_seconds",
      "Full checkpoint duration on the worker (spill + write + prune + "
      "retire)");
  trace_ = &telemetry_->trace();
}

void CheckpointManager::AttachJournals(std::vector<JournalWriter*> journals) {
  MutexLock l(mu_);
  if (journals.empty()) {
    for (JournalRetireState& j : journals_) j.writer = nullptr;
    return;
  }
  RETRASYN_CHECK_MSG(journals.size() == journals_.size(),
                     "AttachJournals needs one writer per journal_dirs entry");
  for (size_t i = 0; i < journals_.size(); ++i) {
    journals_[i].writer = journals[i];
  }
}

Status CheckpointManager::SeedRecovered(
    const CheckpointState& state, std::vector<int64_t> surviving_rounds,
    const std::vector<std::vector<ScannedSegment>>& segments_per_journal) {
  MutexLock l(mu_);
  if (busy_ || !ready_.empty() || !pending_.empty()) {
    return Status::FailedPrecondition(
        "SeedRecovered must run before the first captured round");
  }
  if (segments_per_journal.size() != journals_.size()) {
    return Status::InvalidArgument(
        "SeedRecovered needs one segment list per journal_dirs entry");
  }
  MutexLock sl(spill_mu_);  // mu_ -> spill_mu_, the documented order
  spills_.clear();
  for (int64_t round : state.spill_rounds) {
    SpillEntry entry;
    entry.round = round;
    entry.file_backed = true;
    spills_.push_back(std::move(entry));
  }
  retained_rounds_ = std::move(surviving_rounds);
  std::sort(retained_rounds_.begin(), retained_rounds_.end());
  if (!retained_rounds_.empty()) {
    last_checkpoint_round_ = retained_rounds_.back();
  }
  for (size_t i = 0; i < journals_.size(); ++i) {
    JournalRetireState& j = journals_[i];
    j.candidates.clear();
    for (const ScannedSegment& segment : segments_per_journal[i]) {
      j.candidates.push_back(SealedSegment{segment.index, segment.end_round});
    }
    if (!j.candidates.empty()) {
      j.first_live = j.candidates.front().index;
      j.first_live_known = true;
    }
  }
  return Status::OK();
}

void CheckpointManager::OnRoundClosed(int64_t sealed_round,
                                      EngineCheckpointState engine,
                                      std::vector<CellStream> spilled) {
  // Register spilled streams unconditionally: they have already left the
  // engine, so the spill registry is their only home from here on — even
  // when a poisoned manager will never write their file (they then simply
  // stay memory-backed, and snapshots stay complete).
  if (!spilled.empty()) {
    MutexLock l(spill_mu_);
    SpillEntry entry;
    entry.round = sealed_round + 1;
    entry.count = spilled.size();
    entry.streams = std::move(spilled);
    streams_spilled_ += entry.count;
    if (spills_metric_ != nullptr) spills_metric_->Add(entry.count);
    spills_.push_back(std::move(entry));
  }
  MutexLock l(mu_);
  if (stop_ || !error_.ok()) return;
  PendingCapture& capture = pending_[sealed_round];
  capture.engine = std::move(engine);
  capture.have_engine = true;
  MaybeEnqueueLocked(sealed_round);
}

void CheckpointManager::OnRoundCommitted(int64_t sealed_round,
                                         SessionCheckpointState session) {
  MutexLock l(mu_);
  if (stop_ || !error_.ok()) return;
  PendingCapture& capture = pending_[sealed_round];
  capture.session = std::move(session);
  capture.have_session = true;
  MaybeEnqueueLocked(sealed_round);
}

void CheckpointManager::MaybeEnqueueLocked(int64_t round) {
  auto it = pending_.find(round);
  if (it == pending_.end() || !it->second.have_engine ||
      !it->second.have_session) {
    return;
  }
  ready_.push_back(round);
  cv_.NotifyAll();
}

void CheckpointManager::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (!stop_ && (ready_.empty() || !error_.ok())) cv_.Wait(mu_);
    if (stop_) break;
    const int64_t round = ready_.front();
    ready_.pop_front();
    auto it = pending_.find(round);
    RETRASYN_DCHECK(it != pending_.end());
    PendingCapture capture = std::move(it->second);
    pending_.erase(it);
    busy_ = true;
    mu_.Unlock();
    Stopwatch write_watch;
    Status st = WriteCheckpoint(round, std::move(capture.engine),
                                std::move(capture.session));
    const double write_seconds = write_watch.ElapsedSeconds();
    if (write_hist_ != nullptr) write_hist_->Record(write_seconds);
    if (trace_ != nullptr) {
      trace_->RecordPhase(round, RoundPhase::kCheckpoint, write_seconds);
    }
    mu_.Lock();
    busy_ = false;
    if (!st.ok() && error_.ok()) {
      // Sticky poisoning, RoundCloser-style: drop everything queued — the
      // service surfaces the error on its next Tick and stops feeding us.
      error_ = st;
      ready_.clear();
      pending_.clear();
      if (poisonings_metric_ != nullptr) poisonings_metric_->Increment();
      if (telemetry_ != nullptr) {
        telemetry_->RecordFailure("checkpoint", st, round);
      }
    }
    cv_.NotifyAll();
  }
  mu_.Unlock();
}

Status CheckpointManager::WriteCheckpoint(int64_t sealed_round,
                                          EngineCheckpointState engine,
                                          SessionCheckpointState session) {
  const int64_t round = sealed_round + 1;  // closed-round count at capture

  // 1. Make this round's spill durable before the checkpoint that will
  //    reference it; older entries are already file-backed (their write
  //    preceded their checkpoint, and a failure would have poisoned us).
  std::vector<CellStream> to_write;
  bool have_spill = false;
  {
    MutexLock l(spill_mu_);
    for (const SpillEntry& entry : spills_) {
      if (entry.round == round && !entry.file_backed) {
        to_write = entry.streams;  // copy: the entry must stay servable
        have_spill = true;
        break;
      }
    }
  }
  if (have_spill) {
    std::string body;
    EncodeHistoryBody(to_write, &body);
    RETRASYN_RETURN_NOT_OK(WriteFramedFile(options_.dir,
                                           HistoryFileName(round),
                                           kHistoryMagic, options_.fingerprint,
                                           body));
    if (bytes_metric_ != nullptr) bytes_metric_->Add(body.size());
    MutexLock l(spill_mu_);
    for (SpillEntry& entry : spills_) {
      if (entry.round == round) {
        entry.file_backed = true;
        entry.streams.clear();
        entry.streams.shrink_to_fit();
        break;
      }
    }
  }

  // 2. The checkpoint itself, referencing every spill file it relies on.
  CheckpointState state;
  state.round = round;
  state.grid_describe = options_.grid_describe;
  state.engine = std::move(engine);
  state.session = std::move(session);
  {
    MutexLock l(spill_mu_);
    for (const SpillEntry& entry : spills_) {
      if (entry.round <= round) state.spill_rounds.push_back(entry.round);
    }
    std::sort(state.spill_rounds.begin(), state.spill_rounds.end());
  }
  std::string body;
  EncodeCheckpointBody(state, &body);
  RETRASYN_RETURN_NOT_OK(WriteFramedFile(options_.dir,
                                         CheckpointFileName(round),
                                         kCheckpointMagic,
                                         options_.fingerprint, body));
  if (bytes_metric_ != nullptr) bytes_metric_->Add(body.size());
  retained_rounds_.push_back(round);
  {
    MutexLock l(mu_);
    ++checkpoints_written_;
    last_checkpoint_round_ = round;
  }
  if (writes_metric_ != nullptr) writes_metric_->Increment();
  if (last_round_metric_ != nullptr) last_round_metric_->Set(round);

  // 3. Retention, then journal compaction against the new oldest survivor.
  RETRASYN_RETURN_NOT_OK(PruneCheckpoints());
  return RetireJournalPrefix();
}

Status CheckpointManager::PruneCheckpoints() {
  bool removed = false;
  while (retained_rounds_.size() > static_cast<size_t>(options_.retain)) {
    // History spill files are deliberately NOT pruned with their checkpoint:
    // newer checkpoints reference the full cumulative manifest.
    RETRASYN_RETURN_NOT_OK(RemoveFile(
        options_.dir + "/" + CheckpointFileName(retained_rounds_.front())));
    retained_rounds_.erase(retained_rounds_.begin());
    removed = true;
    if (prunes_metric_ != nullptr) prunes_metric_->Increment();
  }
  return removed ? SyncDir(options_.dir) : Status::OK();
}

Status CheckpointManager::RetireJournalPrefix() {
  if (journals_.empty() || retained_rounds_.empty()) {
    return Status::OK();
  }
  // Recovery may fall back to the OLDEST retained checkpoint, and its replay
  // suffix must reach back a full window behind that round; everything a
  // sealed segment holds at or before the cutoff is unreachable. The cutoff
  // is global; each shard journal's segments retire against it
  // independently (every shard journal closes every round).
  const int64_t cutoff =
      retained_rounds_.front() - static_cast<int64_t>(options_.window);
  uint64_t retired_now = 0;
  for (JournalRetireState& j : journals_) {
    {
      MutexLock l(mu_);
      if (j.writer != nullptr) {
        for (SealedSegment segment : j.writer->TakeSealedSegments()) {
          j.candidates.push_back(segment);
        }
      }
    }
    std::sort(j.candidates.begin(), j.candidates.end(),
              [](const SealedSegment& a, const SealedSegment& b) {
                return a.index < b.index;
              });
    if (!j.first_live_known && !j.candidates.empty()) {
      j.first_live = j.candidates.front().index;
      j.first_live_known = true;
    }
    uint64_t journal_retired = 0;
    int64_t base_round = 0;
    while (!j.candidates.empty() && j.candidates.front().index == j.first_live &&
           j.candidates.front().end_round <= cutoff) {
      base_round = j.candidates.front().end_round;
      j.first_live = j.candidates.front().index + 1;
      j.candidates.erase(j.candidates.begin());
      ++journal_retired;
    }
    if (journal_retired == 0) continue;
    RETRASYN_RETURN_NOT_OK(
        RetireJournalSegments(j.dir, j.first_live, base_round));
    j.retired_base_round = base_round;
    retired_now += journal_retired;
  }
  if (retired_now == 0) return Status::OK();
  if (segments_retired_metric_ != nullptr) {
    segments_retired_metric_->Add(retired_now);
  }
  MutexLock l(mu_);
  segments_retired_ += retired_now;
  return Status::OK();
}

Status CheckpointManager::AppendSpilledHistory(CellStreamSet* out) const {
  MutexLock l(spill_mu_);
  for (const SpillEntry& entry : spills_) {
    if (entry.file_backed) {
      const std::string path =
          options_.dir + "/" + HistoryFileName(entry.round);
      uint64_t fingerprint = 0;
      auto body = ReadFramedFile(path, kHistoryMagic, &fingerprint);
      if (!body.ok()) return body.status();
      if (fingerprint != options_.fingerprint) {
        return Status::IOError(path +
                               " carries a different deployment fingerprint");
      }
      std::vector<CellStream> streams;
      RETRASYN_RETURN_NOT_OK(
          DecodeHistoryBody(body.value().data(), body.value().size(),
                            &streams));
      for (CellStream& s : streams) {
        RETRASYN_RETURN_NOT_OK(out->Add(std::move(s)));
      }
    } else {
      for (const CellStream& s : entry.streams) {
        RETRASYN_RETURN_NOT_OK(out->Add(s));
      }
    }
  }
  return Status::OK();
}

bool CheckpointManager::has_spilled_history() const {
  MutexLock l(spill_mu_);
  return !spills_.empty();
}

Status CheckpointManager::status() const {
  MutexLock l(mu_);
  return error_;
}

Status CheckpointManager::WaitIdle() {
  MutexLock l(mu_);
  while (!stop_ && error_.ok() && (!ready_.empty() || busy_)) cv_.Wait(mu_);
  return error_;
}

uint64_t CheckpointManager::checkpoints_written() const {
  MutexLock l(mu_);
  return checkpoints_written_;
}

uint64_t CheckpointManager::segments_retired() const {
  MutexLock l(mu_);
  return segments_retired_;
}

uint64_t CheckpointManager::streams_spilled() const {
  MutexLock l(spill_mu_);
  return streams_spilled_;
}

int64_t CheckpointManager::last_checkpoint_round() const {
  MutexLock l(mu_);
  return last_checkpoint_round_;
}

Result<CheckpointState> CheckpointManager::LoadForRecovery(
    const std::string& dir, uint64_t fingerprint,
    std::vector<int64_t>* surviving_rounds, int* corrupt_skipped) {
  surviving_rounds->clear();
  if (corrupt_skipped != nullptr) *corrupt_skipped = 0;
  std::vector<int64_t> checkpoints;
  std::vector<int64_t> histories;
  RETRASYN_RETURN_NOT_OK(ScanCheckpointDir(dir, &checkpoints, &histories));

  CheckpointState chosen;
  bool found = false;
  bool removed = false;
  // Newest first; a structurally damaged checkpoint is deleted and the next
  // older one tried. A *valid* checkpoint from a different deployment fails
  // loudly instead — see the header contract.
  for (size_t i = checkpoints.size(); i-- > 0 && !found;) {
    const int64_t round = checkpoints[i];
    const std::string path = dir + "/" + CheckpointFileName(round);
    uint64_t stored_fingerprint = 0;
    auto body = ReadFramedFile(path, kCheckpointMagic, &stored_fingerprint);
    Status usable = body.status();
    if (usable.ok() && stored_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          path +
          " was written by a different deployment (grid, config, or engine "
          "changed); refusing to recover into a mismatched service");
    }
    CheckpointState state;
    if (usable.ok()) {
      usable = DecodeCheckpointBody(body.value().data(), body.value().size(),
                                    &state);
    }
    if (usable.ok() && state.round != round) {
      usable = Status::IOError(path + " declares round " +
                               std::to_string(state.round) +
                               " under a mismatching file name");
    }
    if (usable.ok()) {
      // Every referenced spill file must exist; checking sizes (not
      // contents) keeps recovery O(window) — AppendSpilledHistory verifies
      // checksums lazily when a snapshot actually reads the history.
      for (int64_t spill_round : state.spill_rounds) {
        auto size = FileSize(dir + "/" + HistoryFileName(spill_round));
        if (!size.ok() || size.value() <= 0) {
          usable = Status::IOError(
              path + " references the missing history spill file " +
              HistoryFileName(spill_round));
          break;
        }
      }
    }
    if (!usable.ok()) {
      RETRASYN_RETURN_NOT_OK(RemoveFile(path));
      removed = true;
      if (corrupt_skipped != nullptr) ++*corrupt_skipped;
      checkpoints.erase(checkpoints.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    chosen = std::move(state);
    found = true;
  }
  if (!found) {
    // No usable checkpoint at all: any history files are unreferenced.
    for (int64_t round : histories) {
      RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + HistoryFileName(round)));
      removed = true;
    }
    if (removed) RETRASYN_RETURN_NOT_OK(SyncDir(dir));
    return Status::NotFound("no usable checkpoint under " + dir);
  }
  // Prune history files the chosen manifest does not reference (a spill
  // whose checkpoint never became durable). Older retained checkpoints
  // reference prefixes of the same cumulative manifest, so this never
  // strands them.
  std::unordered_set<int64_t> referenced(chosen.spill_rounds.begin(),
                                         chosen.spill_rounds.end());
  for (int64_t round : histories) {
    if (referenced.count(round) == 0) {
      RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + HistoryFileName(round)));
      removed = true;
    }
  }
  if (removed) RETRASYN_RETURN_NOT_OK(SyncDir(dir));
  *surviving_rounds = std::move(checkpoints);
  return chosen;
}

}  // namespace retrasyn
