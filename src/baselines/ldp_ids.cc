#include "baselines/ldp_ids.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ldp/frequency_oracle.h"

namespace retrasyn {

const char* LdpIdsMethodName(LdpIdsMethod method) {
  switch (method) {
    case LdpIdsMethod::kLBD:
      return "LBD";
    case LdpIdsMethod::kLBA:
      return "LBA";
    case LdpIdsMethod::kLPD:
      return "LPD";
    case LdpIdsMethod::kLPA:
      return "LPA";
  }
  return "?";
}

LdpIdsEngine::LdpIdsEngine(const StateSpace& states,
                           const LdpIdsConfig& config)
    : states_(&states),
      config_(config),
      rng_(config.seed),
      collector_(states.num_move_states(), config.collection_mode),
      model_(states),
      // Baselines never terminate synthetic streams and keep the population
      // frozen at its initial size (SV-A: "without considering the
      // entering/quitting of users").
      synthesizer_(states, SynthesizerConfig{/*lambda=*/1.0, /*use_quit=*/false,
                                             /*use_size_adjustment=*/false,
                                             /*random_init=*/true}),
      ledger_(config.window, config.epsilon),
      tracker_(config.window),
      release_(states.num_move_states(), 0.0) {
  RETRASYN_CHECK(config.epsilon > 0.0);
  RETRASYN_CHECK(config.window >= 1);
}

std::string LdpIdsEngine::name() const {
  return LdpIdsMethodName(config_.method);
}

double LdpIdsEngine::EstimateDissimilarity(const std::vector<double>& fresh,
                                           double fresh_variance) const {
  RETRASYN_DCHECK(fresh.size() == release_.size());
  double mse = 0.0;
  for (uint32_t s = 0; s < fresh.size(); ++s) {
    const double d = fresh[s] - release_[s];
    mse += d * d;
  }
  mse /= static_cast<double>(fresh.size());
  // The fresh estimate itself is noisy; subtract its variance so the
  // dissimilarity is an (approximately) unbiased estimate of the true
  // mean-squared deviation.
  return std::max(0.0, mse - fresh_variance);
}

void LdpIdsEngine::PublishRelease(const std::vector<double>& estimates) {
  RETRASYN_DCHECK(estimates.size() == release_.size());
  release_ = estimates;
  // Pad movement-domain estimates to the full state space (enter/quit mass
  // stays zero: the baselines never observe those states).
  std::vector<double> padded(states_->size(), 0.0);
  std::copy(estimates.begin(), estimates.end(), padded.begin());
  model_.ReplaceAll(padded);
  has_release_ = true;
  ++num_publications_;
}

std::vector<uint32_t> LdpIdsEngine::PrepareEligible(
    const TimestampBatch& batch) {
  const int64_t t = batch.t;
  for (const UserObservation& obs : batch.observations) {
    if (obs.is_enter) {
      status_[obs.user_index] = UserStatus::kActive;
    } else if (obs.is_quit) {
      status_[obs.user_index] = UserStatus::kQuitted;
    }
  }
  while (!reported_at_.empty() &&
         reported_at_.front().first <= t - config_.window) {
    for (uint32_t user : reported_at_.front().second) {
      auto it = status_.find(user);
      if (it != status_.end() && it->second == UserStatus::kInactive) {
        it->second = UserStatus::kActive;
      }
    }
    reported_at_.pop_front();
  }
  std::vector<uint32_t> eligible;
  eligible.reserve(batch.observations.size());
  for (uint32_t i = 0; i < batch.observations.size(); ++i) {
    const UserObservation& obs = batch.observations[i];
    if (obs.is_enter || obs.is_quit) continue;  // movement states only
    auto it = status_.find(obs.user_index);
    if (it == status_.end() || it->second != UserStatus::kActive) continue;
    eligible.push_back(i);
  }
  return eligible;
}

void LdpIdsEngine::Observe(const TimestampBatch& batch) {
  const int64_t t = batch.t;
  const int w = config_.window;
  const double eps = config_.epsilon;

  if (IsBudgetDivision()) {
    // Every movement observation reports in both phases (budget division
    // splits epsilon, not users).
    std::vector<StateId> move_states;
    move_states.reserve(batch.observations.size());
    for (const UserObservation& obs : batch.observations) {
      if (!obs.is_enter && !obs.is_quit) move_states.push_back(obs.state);
    }
    const double eps1 = eps / (2.0 * w);
    double spent = 0.0;
    CollectionResult dis_result;
    if (!move_states.empty()) {
      dis_result = collector_.Collect(move_states, eps1, rng_);
      ApplyPostprocess(config_.postprocess, dis_result.frequencies, 1.0);
      spent += eps1;
    }

    // Candidate publication budget.
    double eps2 = 0.0;
    if (IsDistribution()) {  // LBD
      while (!pub_spends_.empty() &&
             pub_spends_.front().first < t - w + 1) {
        pub_spends_.pop_front();
      }
      double pub_in_window = 0.0;
      for (const auto& [ts, e] : pub_spends_) pub_in_window += e;
      eps2 = (eps / 2.0 - pub_in_window) / 2.0;
    } else {  // LBA
      if (t > lba_nullified_until_) lba_bank_ += eps / (2.0 * w);
      eps2 = std::min(lba_bank_, eps / 2.0);
    }

    bool publish = false;
    // Publications below this budget would be numerically explosive noise
    // (see kMinRoundEpsilon in engine.cc); skip and let allowances recover.
    if (!move_states.empty() && eps2 >= 1e-4) {
      if (!has_release_) {
        publish = true;  // nothing to approximate from yet
      } else {
        const double dis = EstimateDissimilarity(
            dis_result.frequencies,
            OueFrequencyVariance(eps1, dis_result.num_reports));
        publish = dis > OueFrequencyVariance(eps2, move_states.size());
      }
    }
    if (publish) {
      CollectionResult pub = collector_.Collect(move_states, eps2, rng_);
      ApplyPostprocess(config_.postprocess, pub.frequencies, 1.0);
      PublishRelease(pub.frequencies);
      spent += eps2;
      if (IsDistribution()) {
        pub_spends_.emplace_back(t, eps2);
      } else {
        const double unit = eps / (2.0 * w);
        const int64_t absorbed =
            std::max<int64_t>(1, std::llround(lba_bank_ / unit));
        lba_bank_ = 0.0;
        // Absorbing k allowances nullifies the next k - 1 timestamps.
        lba_nullified_until_ = t + absorbed - 1;
      }
    }
    ledger_.Record(t, spent);
  } else {
    // Population division: dissimilarity and publication consume disjoint
    // user samples, each reporting once per window with the full epsilon.
    std::vector<uint32_t> eligible = PrepareEligible(batch);
    std::vector<uint32_t> reported_users;

    // Phase 1: dissimilarity sample (|eligible| / 2w users).
    const uint64_t m1 = std::min<uint64_t>(
        eligible.size(),
        std::max<uint64_t>(
            eligible.empty() ? 0 : 1,
            static_cast<uint64_t>(std::llround(
                static_cast<double>(eligible.size()) / (2.0 * w)))));
    std::vector<uint32_t> dis_members;
    if (m1 > 0) {
      std::vector<uint32_t> picks = rng_.SampleWithoutReplacement(
          static_cast<uint32_t>(eligible.size()), static_cast<uint32_t>(m1));
      // Move picked entries to dis_members; keep the rest in `eligible`.
      std::sort(picks.rbegin(), picks.rend());
      for (uint32_t p : picks) {
        dis_members.push_back(eligible[p]);
        eligible[p] = eligible.back();
        eligible.pop_back();
      }
    }
    CollectionResult dis_result;
    if (!dis_members.empty()) {
      std::vector<StateId> dis_states;
      dis_states.reserve(dis_members.size());
      for (uint32_t i : dis_members) {
        dis_states.push_back(batch.observations[i].state);
        reported_users.push_back(batch.observations[i].user_index);
      }
      dis_result = collector_.Collect(dis_states, eps, rng_);
      ApplyPostprocess(config_.postprocess, dis_result.frequencies, 1.0);
    }

    // Phase 2: candidate publication sample size.
    const double total_eligible =
        static_cast<double>(eligible.size() + dis_members.size());
    uint64_t m2 = 0;
    if (IsDistribution()) {  // LPD
      while (!pub_users_.empty() && pub_users_.front().first < t - w + 1) {
        pub_users_.pop_front();
      }
      uint64_t consumed = 0;
      for (const auto& [ts, m] : pub_users_) consumed += m;
      const double remaining = total_eligible / 2.0 - consumed;
      m2 = remaining > 0.0 ? static_cast<uint64_t>(remaining / 2.0) : 0;
    } else {  // LPA
      if (t > lpa_nullified_until_) {
        lpa_bank_ += total_eligible / (2.0 * w);
        ++lpa_accrual_count_;
      }
      m2 = static_cast<uint64_t>(lpa_bank_);
    }
    m2 = std::min<uint64_t>(m2, eligible.size());

    bool publish = false;
    if (m2 >= 1) {
      if (!has_release_) {
        publish = true;
      } else if (dis_result.num_reports > 0) {
        const double dis = EstimateDissimilarity(
            dis_result.frequencies,
            OueFrequencyVariance(eps, dis_result.num_reports));
        publish = dis > OueFrequencyVariance(eps, m2);
      }
    }
    if (publish) {
      std::vector<uint32_t> picks = rng_.SampleWithoutReplacement(
          static_cast<uint32_t>(eligible.size()), static_cast<uint32_t>(m2));
      std::vector<StateId> pub_states;
      pub_states.reserve(picks.size());
      for (uint32_t p : picks) {
        pub_states.push_back(batch.observations[eligible[p]].state);
        reported_users.push_back(batch.observations[eligible[p]].user_index);
      }
      CollectionResult pub = collector_.Collect(pub_states, eps, rng_);
      ApplyPostprocess(config_.postprocess, pub.frequencies, 1.0);
      PublishRelease(pub.frequencies);
      if (IsDistribution()) {
        pub_users_.emplace_back(t, m2);
      } else {
        const int64_t absorbed = std::max<int64_t>(1, lpa_accrual_count_);
        lpa_bank_ = 0.0;
        lpa_accrual_count_ = 0;
        lpa_nullified_until_ = t + absorbed - 1;
      }
    }

    // Status commit: all reporters become inactive until recycled.
    for (uint32_t user : reported_users) {
      status_[user] = UserStatus::kInactive;
      tracker_.RecordReport(user, t);
    }
    if (!reported_users.empty()) {
      reported_at_.emplace_back(t, std::move(reported_users));
    }
    ledger_.Record(t, 0.0);
  }

  // Synthesis: identical Markov generation, frozen population.
  if (model_.initialized()) {
    if (!synthesizer_.initialized()) {
      synthesizer_.Initialize(model_, batch.num_active, t, rng_);
    } else {
      synthesizer_.Step(model_, batch.num_active, t, rng_);
    }
  }
}

CellStreamSet LdpIdsEngine::SnapshotRelease(int64_t num_timestamps) const {
  return synthesizer_.Snapshot(num_timestamps);
}

std::vector<uint32_t> LdpIdsEngine::LiveDensity() const {
  return synthesizer_.LiveDensity();  // all zeros before initialization
}

CellStreamSet LdpIdsEngine::Finish(int64_t num_timestamps) {
  return synthesizer_.Finish(num_timestamps);
}

}  // namespace retrasyn
