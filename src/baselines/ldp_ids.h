// LDP-IDS baselines (Ren et al., SIGMOD 2022), adapted to trajectory streams
// exactly as the paper's experimental section describes (SV-A "Baselines"):
// the two-phase private mechanism (per-timestamp dissimilarity estimation +
// publish-or-approximate decision) collects users' movement transition
// states, builds the same Markov mobility model, and generates new points
// with the same synthesizer — but without entering/quitting modeling and
// without size adjustment.
//
// Four strategies:
//  * LBD — budget distribution: eps/2 reserved for dissimilarity (eps/2w per
//          timestamp); publications spend half of the remaining publication
//          budget in the window (exponential decay).
//  * LBA — budget absorption: uniform eps/2w publication allowances;
//          allowances of approximated timestamps are absorbed by the next
//          publication, which then nullifies an equal number of subsequent
//          allowances (Kellaris et al.'s budget absorption discipline).
//  * LPD / LPA — the population-division analogues: user counts take the
//          role of budget and every report uses the full eps.
//
// The publish/approximate rule follows LDP-IDS: publish when the (unbiased)
// estimated dissimilarity between the fresh statistics and the last release
// exceeds the variance a publication with the candidate budget/users would
// introduce. All dimensions share one global decision — precisely the
// coarseness RetraSyn's per-state DMU improves upon.

#ifndef RETRASYN_BASELINES_LDP_IDS_H_
#define RETRASYN_BASELINES_LDP_IDS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/mobility_model.h"
#include "core/synthesizer.h"
#include "geo/state_space.h"
#include "ldp/aggregate.h"
#include "ldp/budget.h"

namespace retrasyn {

enum class LdpIdsMethod { kLBD, kLBA, kLPD, kLPA };

const char* LdpIdsMethodName(LdpIdsMethod method);

struct LdpIdsConfig {
  double epsilon = 1.0;
  int window = 20;
  LdpIdsMethod method = LdpIdsMethod::kLPD;
  CollectionMode collection_mode = CollectionMode::kAggregateSim;
  /// Same consistency post-processing as the RetraSyn engine, for a fair
  /// comparison (every reporter holds exactly one movement state, so the
  /// movement-domain frequencies also sum to 1).
  Postprocess postprocess = Postprocess::kClip;
  uint64_t seed = 1;
};

class LdpIdsEngine : public StreamReleaseEngine {
 public:
  LdpIdsEngine(const StateSpace& states, const LdpIdsConfig& config);

  void Observe(const TimestampBatch& batch) override;
  CellStreamSet SnapshotRelease(int64_t num_timestamps) const override;
  std::vector<uint32_t> LiveDensity() const override;
  CellStreamSet Finish(int64_t num_timestamps) override;
  std::string name() const override;

  const LdpIdsConfig& config() const { return config_; }
  const BudgetLedger& budget_ledger() const { return ledger_; }
  const ReportWindowTracker& report_tracker() const { return tracker_; }
  /// Number of timestamps on which a fresh publication happened.
  int64_t num_publications() const { return num_publications_; }

 private:
  bool IsBudgetDivision() const {
    return config_.method == LdpIdsMethod::kLBD ||
           config_.method == LdpIdsMethod::kLBA;
  }
  bool IsDistribution() const {
    return config_.method == LdpIdsMethod::kLBD ||
           config_.method == LdpIdsMethod::kLPD;
  }

  /// Registers arrivals / recycles / returns indices of eligible movement
  /// observations (population division status discipline).
  std::vector<uint32_t> PrepareEligible(const TimestampBatch& batch);

  /// Unbiased mean-squared deviation between fresh estimates and the current
  /// release, floored at zero.
  double EstimateDissimilarity(const std::vector<double>& fresh,
                               double fresh_variance) const;

  void PublishRelease(const std::vector<double>& estimates);

  const StateSpace* states_;
  LdpIdsConfig config_;
  Rng rng_;
  TransitionCollector collector_;  ///< movement-state domain only
  GlobalMobilityModel model_;
  Synthesizer synthesizer_;
  BudgetLedger ledger_;
  ReportWindowTracker tracker_;

  /// Last released movement-state frequencies (the "release" the dissimilarity
  /// phase compares against).
  std::vector<double> release_;
  bool has_release_ = false;
  int64_t num_publications_ = 0;

  // Budget-division bookkeeping.
  std::deque<std::pair<int64_t, double>> pub_spends_;   // LBD window history
  double lba_bank_ = 0.0;                               // LBA absorbed budget
  int64_t lba_nullified_until_ = -1;                    // LBA downtime end

  // Population-division bookkeeping.
  enum class UserStatus : uint8_t { kActive, kInactive, kQuitted };
  std::unordered_map<uint32_t, UserStatus> status_;
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> reported_at_;
  std::deque<std::pair<int64_t, uint64_t>> pub_users_;  // LPD window history
  double lpa_bank_ = 0.0;                               // LPA absorbed users
  int64_t lpa_accrual_count_ = 0;  // allowances banked since last publication
  int64_t lpa_nullified_until_ = -1;
};

}  // namespace retrasyn

#endif  // RETRASYN_BASELINES_LDP_IDS_H_
