#include "stream/road_network.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace retrasyn {

void RoadNetwork::AddBidirectionalEdge(uint32_t a, uint32_t b, double speed) {
  if (a == b) return;
  const double length = EuclideanDistance(nodes_[a], nodes_[b]);
  adjacency_[a].push_back(Edge{b, length, speed});
  adjacency_[b].push_back(Edge{a, length, speed});
  ++num_edges_;
}

RoadNetwork RoadNetwork::Generate(const RoadNetworkConfig& config, Rng& rng) {
  RETRASYN_CHECK(config.grid_dim >= 2);
  RETRASYN_CHECK(config.speed_classes.size() == config.speed_weights.size());
  RoadNetwork net;
  net.box_ = config.box;
  const uint32_t g = config.grid_dim;
  const double sx = config.box.Width() / (g - 1);
  const double sy = config.box.Height() / (g - 1);

  net.nodes_.reserve(static_cast<size_t>(g) * g);
  for (uint32_t r = 0; r < g; ++r) {
    for (uint32_t c = 0; c < g; ++c) {
      Point p{config.box.min_x + c * sx, config.box.min_y + r * sy};
      p.x += rng.UniformDouble(-config.jitter, config.jitter) * sx;
      p.y += rng.UniformDouble(-config.jitter, config.jitter) * sy;
      net.nodes_.push_back(config.box.Clamp(p));
    }
  }
  net.adjacency_.resize(net.nodes_.size());

  auto node_at = [g](uint32_t r, uint32_t c) { return r * g + c; };
  auto pick_speed = [&]() {
    const size_t idx = rng.Discrete(config.speed_weights);
    return config.speed_classes[idx < config.speed_classes.size() ? idx : 0];
  };

  for (uint32_t r = 0; r < g; ++r) {
    for (uint32_t c = 0; c < g; ++c) {
      if (c + 1 < g && rng.Bernoulli(config.edge_keep_prob)) {
        net.AddBidirectionalEdge(node_at(r, c), node_at(r, c + 1), pick_speed());
      }
      if (r + 1 < g && rng.Bernoulli(config.edge_keep_prob)) {
        net.AddBidirectionalEdge(node_at(r, c), node_at(r + 1, c), pick_speed());
      }
      if (r + 1 < g && c + 1 < g && rng.Bernoulli(config.diagonal_prob)) {
        net.AddBidirectionalEdge(node_at(r, c), node_at(r + 1, c + 1),
                                 pick_speed());
      }
    }
  }

  // Patch connectivity: BFS-label components, then chain every secondary
  // component to the main one through its lexicographically first node's
  // nearest main-component node.
  std::vector<int32_t> component(net.nodes_.size(), -1);
  int32_t num_components = 0;
  for (uint32_t start = 0; start < net.nodes_.size(); ++start) {
    if (component[start] != -1) continue;
    const int32_t label = num_components++;
    std::queue<uint32_t> frontier;
    frontier.push(start);
    component[start] = label;
    while (!frontier.empty()) {
      const uint32_t u = frontier.front();
      frontier.pop();
      for (const Edge& e : net.adjacency_[u]) {
        if (component[e.to] == -1) {
          component[e.to] = label;
          frontier.push(e.to);
        }
      }
    }
  }
  for (int32_t label = 1; label < num_components; ++label) {
    uint32_t member = 0;
    while (component[member] != label) ++member;
    uint32_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t v = 0; v < net.nodes_.size(); ++v) {
      if (component[v] != 0) continue;
      const double d = EuclideanDistance(net.nodes_[member], net.nodes_[v]);
      if (d < best) {
        best = d;
        nearest = v;
      }
    }
    net.AddBidirectionalEdge(member, nearest, pick_speed());
    // Relabel the absorbed component as main.
    for (uint32_t v = 0; v < net.nodes_.size(); ++v) {
      if (component[v] == label) component[v] = 0;
    }
  }
  RETRASYN_CHECK(net.IsConnected());
  return net;
}

std::vector<uint32_t> RoadNetwork::ShortestPath(uint32_t src,
                                                uint32_t dst) const {
  RETRASYN_DCHECK(src < num_nodes() && dst < num_nodes());
  if (src == dst) return {src};
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(num_nodes(), kInf);
  std::vector<uint32_t> parent(num_nodes(), UINT32_MAX);
  using QueueEntry = std::pair<double, uint32_t>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const Edge& e : adjacency_[u]) {
      const double nd = d + e.travel_time();
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        parent[e.to] = u;
        pq.emplace(nd, e.to);
      }
    }
  }
  if (dist[dst] == kInf) return {};
  std::vector<uint32_t> path;
  for (uint32_t v = dst; v != UINT32_MAX; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  RETRASYN_DCHECK(path.front() == src);
  return path;
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<uint32_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  size_t count = 1;
  while (!frontier.empty()) {
    const uint32_t u = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[u]) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        ++count;
        frontier.push(e.to);
      }
    }
  }
  return count == nodes_.size();
}

}  // namespace retrasyn
