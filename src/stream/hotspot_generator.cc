#include "stream/hotspot_generator.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace retrasyn {

namespace {

struct Hotspot {
  Point center;
  double base_weight;
  double amplitude;  ///< strength of the daily modulation
  double phase;      ///< fraction of a day by which the peak is shifted
};

/// Attractiveness of hotspot \p h at timestamp \p t.
double WeightAt(const Hotspot& h, int64_t t, int64_t day_length) {
  const double day_fraction =
      static_cast<double>(t % day_length) / static_cast<double>(day_length);
  const double cycle = std::sin(2.0 * M_PI * (day_fraction - h.phase));
  return h.base_weight * std::max(0.05, 1.0 + h.amplitude * cycle);
}

struct Taxi {
  Point position;
  Point destination;
  bool dwelling = false;
  UserStream stream;
};

}  // namespace

StreamDatabase GenerateHotspotStreams(const HotspotGeneratorConfig& config,
                                      Rng& rng) {
  RETRASYN_CHECK(config.num_hotspots >= 2);
  StreamDatabase db(config.box, config.num_timestamps);

  // Lay hotspots out with distinct phases: roughly half peak in the morning
  // (residential origins), half in the evening (business districts), so the
  // global transition distribution swings over the day like commuter traffic.
  std::vector<Hotspot> hotspots;
  hotspots.reserve(config.num_hotspots);
  for (uint32_t h = 0; h < config.num_hotspots; ++h) {
    Hotspot spot;
    spot.center = Point{
        rng.UniformDouble(config.box.min_x + 0.1 * config.box.Width(),
                          config.box.max_x - 0.1 * config.box.Width()),
        rng.UniformDouble(config.box.min_y + 0.1 * config.box.Height(),
                          config.box.max_y - 0.1 * config.box.Height())};
    spot.base_weight = rng.UniformDouble(0.5, 1.5);
    spot.amplitude = rng.UniformDouble(0.3, 0.9);
    spot.phase = (h % 2 == 0) ? rng.UniformDouble(0.25, 0.4)    // day peak
                              : rng.UniformDouble(0.75, 0.95);  // night peak
    hotspots.push_back(spot);
  }

  auto sample_near_hotspot = [&](int64_t t) {
    std::vector<double> weights(hotspots.size());
    for (size_t h = 0; h < hotspots.size(); ++h) {
      weights[h] = WeightAt(hotspots[h], t, config.day_length);
    }
    size_t h = rng.Discrete(weights);
    if (h >= hotspots.size()) h = 0;
    const Point p{
        hotspots[h].center.x + rng.Gaussian(0.0, config.hotspot_sigma),
        hotspots[h].center.y + rng.Gaussian(0.0, config.hotspot_sigma)};
    return config.box.Clamp(p);
  };

  std::vector<Taxi> live;
  uint64_t next_id = 0;

  auto spawn = [&](int64_t t) {
    Taxi taxi;
    taxi.position = sample_near_hotspot(t);
    taxi.destination = sample_near_hotspot(t);
    taxi.stream.user_id = next_id++;
    taxi.stream.enter_time = t;
    taxi.stream.points.push_back(taxi.position);
    live.push_back(std::move(taxi));
  };

  for (uint32_t i = 0; i < config.initial_users; ++i) spawn(0);

  for (int64_t t = 1; t < config.num_timestamps; ++t) {
    std::vector<Taxi> survivors;
    survivors.reserve(live.size());
    for (Taxi& taxi : live) {
      if (rng.Bernoulli(config.quit_probability)) {
        db.Add(std::move(taxi.stream)).CheckOK();
        continue;
      }
      if (taxi.dwelling) {
        taxi.dwelling = false;
        taxi.destination = sample_near_hotspot(t);
      } else {
        const double dist = EuclideanDistance(taxi.position, taxi.destination);
        const double step = rng.UniformDouble(config.min_step, config.max_step);
        if (dist <= step) {
          taxi.position = taxi.destination;
          if (rng.Bernoulli(config.dwell_probability)) {
            taxi.dwelling = true;
          } else {
            taxi.destination = sample_near_hotspot(t);
          }
        } else {
          // Step toward the destination with perpendicular noise.
          const double ux = (taxi.destination.x - taxi.position.x) / dist;
          const double uy = (taxi.destination.y - taxi.position.y) / dist;
          const double noise = rng.Gaussian(0.0, config.route_noise);
          taxi.position = config.box.Clamp(
              Point{taxi.position.x + ux * step - uy * noise,
                    taxi.position.y + uy * step + ux * noise});
        }
      }
      taxi.stream.points.push_back(taxi.position);
      survivors.push_back(std::move(taxi));
    }
    live = std::move(survivors);

    // Arrivals follow the same daily cycle as hotspot demand (more taxis in
    // daytime).
    const double day_fraction = static_cast<double>(t % config.day_length) /
                                static_cast<double>(config.day_length);
    const double modulation =
        1.0 + 0.6 * std::sin(2.0 * M_PI * (day_fraction - 0.3));
    const double lambda = std::max(0.0, config.mean_arrivals * modulation);
    const uint64_t arrivals = rng.Binomial(
        static_cast<uint64_t>(std::ceil(lambda * 2.0)), 0.5);  // ~Poisson
    for (uint64_t i = 0; i < arrivals; ++i) spawn(t);
  }
  for (Taxi& taxi : live) db.Add(std::move(taxi.stream)).CheckOK();
  return db;
}

}  // namespace retrasyn
