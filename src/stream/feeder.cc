#include "stream/feeder.h"

#include "common/logging.h"

namespace retrasyn {

StreamFeeder::StreamFeeder(const StreamDatabase& db, const SpatialGrid& grid,
                           const StateSpace& states)
    : cell_streams_(db.num_timestamps()) {
  const int64_t horizon = db.num_timestamps();
  batches_.resize(horizon);
  for (int64_t t = 0; t < horizon; ++t) {
    batches_[t].t = t;
    batches_[t].num_active = db.ActiveCount(t);
  }
  num_users_ = static_cast<uint32_t>(db.streams().size());

  for (uint32_t idx = 0; idx < db.streams().size(); ++idx) {
    const UserStream& s = db.streams()[idx];
    // Discretize.
    CellStream cs;
    cs.enter_time = s.enter_time;
    cs.cells.reserve(s.points.size());
    for (const Point& p : s.points) cs.cells.push_back(grid.Locate(p));

    // Enter observation.
    {
      UserObservation obs;
      obs.user_index = idx;
      obs.state = states.EnterIndex(cs.cells.front());
      obs.is_enter = true;
      batches_[s.enter_time].observations.push_back(obs);
    }
    // Movement observations. If a raw movement violates the adjacency
    // constraint (possible for very fast objects or coarse grids), it is
    // clamped to the nearest reachable neighbor cell -- the protocol can only
    // encode feasible transitions.
    for (int64_t t = s.enter_time + 1; t < s.end_time(); ++t) {
      const CellId prev = cs.cells[t - 1 - s.enter_time];
      CellId cur = grid.ClampToReachable(prev, cs.cells[t - s.enter_time]);
      cs.cells[t - s.enter_time] = cur;
      UserObservation obs;
      obs.user_index = idx;
      obs.state = states.MoveIndex(prev, cur);
      RETRASYN_DCHECK(obs.state != kInvalidState);
      batches_[t].observations.push_back(obs);
    }
    // Quit observation at end_time (if within horizon).
    if (s.end_time() < horizon) {
      UserObservation obs;
      obs.user_index = idx;
      obs.state = states.QuitIndex(cs.cells.back());
      obs.is_quit = true;
      batches_[s.end_time()].observations.push_back(obs);
    }
    cell_streams_.Add(std::move(cs)).CheckOK();
  }
}

}  // namespace retrasyn
