// Trajectory stream data model (paper SII-C, Def. 4).
//
// A UserStream is one user's run of consecutive location reports: it enters
// at some timestamp and reports exactly one continuous point per timestamp
// until it quits. Streams with reporting gaps are represented as several
// UserStreams (the importer splits them, matching the paper's preprocessing:
// "for trajectories including non-adjacent timestamps, we add quitting events
// and split them into multiple streams").

#ifndef RETRASYN_STREAM_STREAM_DATABASE_H_
#define RETRASYN_STREAM_STREAM_DATABASE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geo/point.h"

namespace retrasyn {

struct UserStream {
  uint64_t user_id = 0;
  int64_t enter_time = 0;      ///< timestamp of the first report
  std::vector<Point> points;   ///< one point per timestamp from enter_time

  /// One past the last reporting timestamp.
  int64_t end_time() const {
    return enter_time + static_cast<int64_t>(points.size());
  }
  bool ActiveAt(int64_t t) const { return t >= enter_time && t < end_time(); }
  const Point& At(int64_t t) const { return points[t - enter_time]; }
};

/// \brief A collection of user trajectory streams over a fixed horizon.
class StreamDatabase {
 public:
  StreamDatabase() = default;
  StreamDatabase(const BoundingBox& box, int64_t num_timestamps);

  /// Adds a stream. Returns InvalidArgument (without aborting) when the
  /// stream is empty or does not fit within [0, num_timestamps) — malformed
  /// input files and journals must never kill a long-running service.
  /// Internal callers whose streams are valid by construction CheckOK();
  /// nodiscard keeps a dropped stream from passing silently.
  [[nodiscard]] Status Add(UserStream stream);

  const std::vector<UserStream>& streams() const { return streams_; }
  const BoundingBox& box() const { return box_; }
  int64_t num_timestamps() const { return num_timestamps_; }

  uint64_t TotalPoints() const { return total_points_; }
  double AverageLength() const {
    return streams_.empty()
               ? 0.0
               : static_cast<double>(total_points_) / streams_.size();
  }
  /// Number of streams reporting a location at timestamp \p t.
  uint32_t ActiveCount(int64_t t) const;

  /// Uniformly keeps approximately \p fraction of the streams (used by the
  /// scalability experiment, Fig. 7). Deterministic given the RNG state.
  StreamDatabase Subsample(double fraction, Rng& rng) const;

 private:
  BoundingBox box_;
  int64_t num_timestamps_ = 0;
  std::vector<UserStream> streams_;
  std::vector<uint32_t> active_count_;
  uint64_t total_points_ = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_STREAM_DATABASE_H_
