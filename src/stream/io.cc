#include "stream/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"

namespace retrasyn {

namespace {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

}  // namespace

Result<StreamDatabase> LoadStreamDatabaseCsv(const std::string& path,
                                             const ImportOptions& options) {
  auto rows_result = ReadCsvFile(path);
  if (!rows_result.ok()) return rows_result.status();
  const auto& rows = rows_result.value();
  if (rows.empty()) return Status::InvalidArgument("empty trajectory CSV: " + path);

  if (options.time_granularity < 1) {
    return Status::InvalidArgument("time_granularity must be >= 1");
  }

  struct Report {
    int64_t t;
    Point p;
  };
  std::map<int64_t, std::vector<Report>> per_user;
  BoundingBox inferred;
  bool first_point = true;
  int64_t min_raw_t = INT64_MAX;

  size_t start_row = 0;
  {
    double unused;
    const bool header = options.skip_header ||
                        (!rows[0].empty() && !ParseDouble(rows[0][0], &unused));
    if (header) start_row = 1;
  }

  for (size_t r = start_row; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < 4) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     ": expected user_id,timestamp,x,y");
    }
    int64_t user, t;
    double x, y;
    if (!ParseInt(row[0], &user) || !ParseInt(row[1], &t) ||
        !ParseDouble(row[2], &x) || !ParseDouble(row[3], &y)) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     ": unparsable field");
    }
    if (t < 0 && !options.align_to_zero) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     ": negative timestamp");
    }
    const Point p{x, y};
    if (first_point) {
      inferred = BoundingBox{x, y, x, y};
      first_point = false;
    } else {
      inferred.Extend(p);
    }
    min_raw_t = std::min(min_raw_t, t);
    per_user[user].push_back(Report{t, p});
  }

  // Raw-time alignment and discretization (paper SV-A preprocessing). Sorting
  // by raw time first makes "earliest report per bin wins" well-defined.
  const int64_t offset = options.align_to_zero ? min_raw_t : 0;
  int64_t max_t = -1;
  for (auto& [user, reports] : per_user) {
    std::sort(reports.begin(), reports.end(),
              [](const Report& a, const Report& b) { return a.t < b.t; });
    for (Report& rep : reports) {
      rep.t = (rep.t - offset) / options.time_granularity;
      max_t = std::max(max_t, rep.t);
    }
  }

  BoundingBox box = options.box.value_or(inferred);
  if (box.Width() <= 0.0) box.max_x = box.min_x + 1.0;
  if (box.Height() <= 0.0) box.max_y = box.min_y + 1.0;
  const int64_t horizon = options.num_timestamps.value_or(max_t + 1);
  if (horizon < 1) return Status::InvalidArgument("empty time horizon");

  StreamDatabase db(box, horizon);
  uint64_t next_id = 0;
  for (auto& [user, reports] : per_user) {
    std::stable_sort(reports.begin(), reports.end(),
                     [](const Report& a, const Report& b) { return a.t < b.t; });
    UserStream current;
    current.user_id = next_id;
    for (const Report& rep : reports) {
      if (rep.t >= horizon) break;
      if (current.points.empty()) {
        current.enter_time = rep.t;
        current.points.push_back(rep.p);
        continue;
      }
      const int64_t expected = current.end_time();
      if (rep.t == expected - 1) continue;  // duplicate timestamp: keep first
      if (rep.t == expected) {
        current.points.push_back(rep.p);
        continue;
      }
      // Gap: close the current run as its own stream and start a new one.
      RETRASYN_RETURN_NOT_OK(db.Add(std::move(current)));
      current = UserStream{};
      current.user_id = ++next_id;
      current.enter_time = rep.t;
      current.points.push_back(rep.p);
    }
    if (!current.points.empty()) {
      RETRASYN_RETURN_NOT_OK(db.Add(std::move(current)));
    }
    ++next_id;
  }
  return db;
}

Status WriteStreamDatabaseCsv(const StreamDatabase& db,
                              const std::string& path) {
  auto writer_result = CsvWriter::Open(path);
  if (!writer_result.ok()) return writer_result.status();
  CsvWriter writer = std::move(writer_result).value();
  writer.WriteRow({"user_id", "timestamp", "x", "y"});
  for (const UserStream& s : db.streams()) {
    for (int64_t t = s.enter_time; t < s.end_time(); ++t) {
      const Point& p = s.At(t);
      writer.WriteRow({std::to_string(s.user_id), std::to_string(t),
                       std::to_string(p.x), std::to_string(p.y)});
    }
  }
  return writer.Close();
}

Status WriteCellStreamsCsv(const CellStreamSet& set, const SpatialGrid& grid,
                           const std::string& path) {
  auto writer_result = CsvWriter::Open(path);
  if (!writer_result.ok()) return writer_result.status();
  CsvWriter writer = std::move(writer_result).value();
  writer.WriteRow({"stream_id", "timestamp", "cell", "center_x", "center_y"});
  for (size_t i = 0; i < set.streams().size(); ++i) {
    const CellStream& s = set.streams()[i];
    for (int64_t t = s.enter_time; t < s.end_time(); ++t) {
      const CellId c = s.At(t);
      const Point center = grid.CellCenter(c);
      writer.WriteRow({std::to_string(i), std::to_string(t), std::to_string(c),
                       std::to_string(center.x), std::to_string(center.y)});
    }
  }
  return writer.Close();
}

}  // namespace retrasyn
