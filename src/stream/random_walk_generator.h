// Minimal Gaussian random-walk stream generator. Used by tests (fast,
// structure-free data) and as the simplest example workload; the paper-shaped
// workloads live in hotspot_generator.h and network_generator.h.

#ifndef RETRASYN_STREAM_RANDOM_WALK_GENERATOR_H_
#define RETRASYN_STREAM_RANDOM_WALK_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "stream/stream_database.h"

namespace retrasyn {

struct RandomWalkConfig {
  BoundingBox box{0.0, 0.0, 1000.0, 1000.0};
  int64_t num_timestamps = 100;
  uint32_t initial_users = 200;
  double mean_arrivals = 10.0;
  double quit_probability = 0.05;
  /// Standard deviation of each coordinate step (distance units).
  double step_sigma = 40.0;
};

StreamDatabase GenerateRandomWalkStreams(const RandomWalkConfig& config,
                                         Rng& rng);

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_RANDOM_WALK_GENERATOR_H_
