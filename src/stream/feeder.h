// Turns a StreamDatabase into the per-timestamp view the collection engines
// consume: for each timestamp, the set of users eligible to report and the
// transition state each would report (paper SIII-B, Fig. 2 step 1).
//
// Eligibility at timestamp t:
//  * a stream entering at t reports e_{c_t};
//  * a stream active at both t-1 and t reports m_{c_{t-1}, c_t};
//  * a stream whose final report was at t-1 reports q_{c_{t-1}} at t
//    (Def. 5: the quit transition carries the final reported location).
//
// The feeder also exposes the discretized original streams, which the metrics
// take as ground truth.

#ifndef RETRASYN_STREAM_FEEDER_H_
#define RETRASYN_STREAM_FEEDER_H_

#include <cstdint>
#include <vector>

#include "geo/state_space.h"
#include "stream/cell_stream.h"
#include "stream/stream_database.h"

namespace retrasyn {

/// \brief Hard cap on engine-facing stream indices (valid indices are
/// [0, kMaxStreamIndex)). The engine's per-user bookkeeping is dense over
/// these indices, so the cap turns a miskeyed device id (which would silently
/// allocate gigabytes) into an immediate, diagnosable failure while leaving
/// ample headroom over paper-scale populations. IngestSession::Tick() refuses
/// to mint an index at the cap with kResourceExhausted; with index recycling
/// (RetraSynConfig::recycle_stream_indices) the cap is only reachable at
/// ~1.07B streams live or retained inside one w-window.
constexpr uint32_t kMaxStreamIndex = 1u << 30;

struct UserObservation {
  uint32_t user_index = 0;  ///< index into StreamDatabase::streams()
  StateId state = kInvalidState;
  bool is_quit = false;  ///< true when this is the user's final (quit) report
  bool is_enter = false; ///< true when this is the user's first report
};

struct TimestampBatch {
  int64_t t = 0;
  std::vector<UserObservation> observations;
  /// Number of streams reporting an actual location at t (quit reports are
  /// not locations). This is the target for synthetic size adjustment.
  uint32_t num_active = 0;
};

class StreamFeeder {
 public:
  StreamFeeder(const StreamDatabase& db, const SpatialGrid& grid,
               const StateSpace& states);

  int64_t num_timestamps() const {
    return static_cast<int64_t>(batches_.size());
  }
  const TimestampBatch& Batch(int64_t t) const { return batches_[t]; }

  /// Original streams mapped to grid cells (metrics ground truth).
  const CellStreamSet& cell_streams() const { return cell_streams_; }

  uint32_t num_users() const { return num_users_; }

 private:
  std::vector<TimestampBatch> batches_;
  CellStreamSet cell_streams_;
  uint32_t num_users_ = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_FEEDER_H_
