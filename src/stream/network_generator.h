// Network-constrained moving-object stream generator in the style of
// Brinkhoff's framework (GeoInformatica 2002), which the paper uses to create
// its Oldenburg and SanJoaquin datasets (SV-A):
//   * an initial cohort of objects exists at t = 0;
//   * a fixed number of new objects arrives at every timestamp;
//   * each object picks a random source and destination node and follows the
//     fastest route, advancing by (edge speed x timestamp interval) per step;
//   * objects may randomly stop sharing their location (quit) at any step,
//     and quit upon reaching their destination (or, with some probability,
//     chain a new trip).
//
// Presets matching the paper's configurations are provided in
// eval/datasets.h (Oldenburg-like: 10k initial + 500/ts over 500 ts;
// SanJoaquin-like: 10k initial + 1000/ts over 1000 ts; ~15 s per timestamp).

#ifndef RETRASYN_STREAM_NETWORK_GENERATOR_H_
#define RETRASYN_STREAM_NETWORK_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "stream/road_network.h"
#include "stream/stream_database.h"

namespace retrasyn {

struct NetworkGeneratorConfig {
  RoadNetworkConfig network;
  int64_t num_timestamps = 500;
  uint32_t initial_objects = 10000;
  uint32_t arrivals_per_timestamp = 500;
  /// Seconds between consecutive timestamps (paper: ~15 s).
  double timestamp_interval_seconds = 15.0;
  /// Per-timestamp probability that an object stops reporting.
  double quit_probability = 0.02;
  /// Probability that an object starts a new trip after reaching its
  /// destination instead of quitting.
  double trip_chain_probability = 0.35;
  /// Lower bound on route length in nodes, to avoid degenerate trips.
  uint32_t min_route_nodes = 3;
};

/// \brief Generates a stream database of network-constrained objects.
StreamDatabase GenerateNetworkStreams(const NetworkGeneratorConfig& config,
                                      Rng& rng);

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_NETWORK_GENERATOR_H_
