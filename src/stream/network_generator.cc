#include "stream/network_generator.h"

#include <vector>

#include "common/logging.h"

namespace retrasyn {

namespace {

/// A moving object's route-following state.
struct MovingObject {
  std::vector<uint32_t> route;  ///< node sequence
  size_t edge_index = 0;        ///< index into route of the edge's source node
  double along = 0.0;           ///< distance progressed on the current edge
  bool done = false;

  /// Current continuous position, interpolated along the active edge.
  Point PositionOn(const RoadNetwork& net) const {
    const Point& a = net.NodePosition(route[edge_index]);
    if (edge_index + 1 >= route.size()) return a;
    const Point& b = net.NodePosition(route[edge_index + 1]);
    const double len = EuclideanDistance(a, b);
    const double f = len <= 0.0 ? 0.0 : along / len;
    return Point{a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
  }
};

/// Looks up the edge (speed/length) between consecutive route nodes.
const RoadNetwork::Edge* FindEdge(const RoadNetwork& net, uint32_t from,
                                  uint32_t to) {
  for (const auto& e : net.EdgesFrom(from)) {
    if (e.to == to) return &e;
  }
  return nullptr;
}

/// Advances the object by `seconds` of travel time; sets done when the route
/// end is reached.
void Advance(MovingObject& obj, const RoadNetwork& net, double seconds) {
  double budget = seconds;
  while (budget > 0.0 && obj.edge_index + 1 < obj.route.size()) {
    const RoadNetwork::Edge* edge =
        FindEdge(net, obj.route[obj.edge_index], obj.route[obj.edge_index + 1]);
    RETRASYN_DCHECK(edge != nullptr);
    const double remaining = edge->length - obj.along;
    const double step = edge->speed * budget;
    if (step < remaining) {
      obj.along += step;
      budget = 0.0;
    } else {
      budget -= remaining / edge->speed;
      ++obj.edge_index;
      obj.along = 0.0;
    }
  }
  if (obj.edge_index + 1 >= obj.route.size()) obj.done = true;
}

/// Samples a route with at least min_nodes nodes (retry a few times, then
/// accept whatever Dijkstra returns).
std::vector<uint32_t> SampleRoute(const RoadNetwork& net, uint32_t min_nodes,
                                  Rng& rng, uint32_t start_node = UINT32_MAX) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const uint32_t src = start_node != UINT32_MAX
                             ? start_node
                             : static_cast<uint32_t>(rng.UniformInt(
                                   static_cast<uint64_t>(net.num_nodes())));
    uint32_t dst = static_cast<uint32_t>(
        rng.UniformInt(static_cast<uint64_t>(net.num_nodes())));
    if (dst == src) continue;
    std::vector<uint32_t> route = net.ShortestPath(src, dst);
    if (route.size() >= min_nodes) return route;
  }
  // Fall back to any non-trivial route.
  const uint32_t src = start_node != UINT32_MAX ? start_node : 0;
  for (uint32_t dst = 0; dst < net.num_nodes(); ++dst) {
    if (dst == src) continue;
    std::vector<uint32_t> route = net.ShortestPath(src, dst);
    if (route.size() >= 2) return route;
  }
  return {src};
}

}  // namespace

StreamDatabase GenerateNetworkStreams(const NetworkGeneratorConfig& config,
                                      Rng& rng) {
  const RoadNetwork net = RoadNetwork::Generate(config.network, rng);
  StreamDatabase db(config.network.box, config.num_timestamps);

  struct LiveStream {
    MovingObject object;
    UserStream stream;
  };
  std::vector<LiveStream> live;
  uint64_t next_id = 0;

  auto spawn = [&](int64_t t) {
    LiveStream ls;
    ls.object.route = SampleRoute(net, config.min_route_nodes, rng);
    ls.stream.user_id = next_id++;
    ls.stream.enter_time = t;
    ls.stream.points.push_back(ls.object.PositionOn(net));
    live.push_back(std::move(ls));
  };

  for (uint32_t i = 0; i < config.initial_objects; ++i) spawn(0);

  for (int64_t t = 1; t < config.num_timestamps; ++t) {
    // Advance every live object and decide quitting.
    std::vector<LiveStream> survivors;
    survivors.reserve(live.size());
    for (LiveStream& ls : live) {
      Advance(ls.object, net, config.timestamp_interval_seconds);
      bool quits = rng.Bernoulli(config.quit_probability);
      if (ls.object.done && !quits) {
        if (rng.Bernoulli(config.trip_chain_probability)) {
          // Chain a new trip from the reached destination.
          const uint32_t here = ls.object.route.back();
          ls.object = MovingObject{};
          ls.object.route =
              SampleRoute(net, config.min_route_nodes, rng, here);
          if (ls.object.route.size() < 2) quits = true;
        } else {
          quits = true;
        }
      }
      if (quits) {
        db.Add(std::move(ls.stream)).CheckOK();
      } else {
        ls.stream.points.push_back(ls.object.PositionOn(net));
        survivors.push_back(std::move(ls));
      }
    }
    live = std::move(survivors);
    for (uint32_t i = 0; i < config.arrivals_per_timestamp; ++i) spawn(t);
  }
  for (LiveStream& ls : live) db.Add(std::move(ls.stream)).CheckOK();
  return db;
}

}  // namespace retrasyn
