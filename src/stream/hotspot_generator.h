// Hotspot gravity-model taxi-stream generator: the stand-in for the real
// T-Drive dataset (paper SV-A: 10,357 Beijing taxis over one week, mapped to
// 886 timestamps at 10-minute granularity inside the 5th ring road).
//
// The generator reproduces the statistical features the algorithms consume:
//  * a small set of spatial hotspots (business districts, residential areas,
//    transport hubs) whose attractiveness varies over a daily cycle, so the
//    transition distribution drifts over time (rush hours);
//  * taxis travel between hotspots in noisy straight lines with realistic
//    per-timestamp displacement, then dwell and re-target;
//  * enter/quit churn with geometric stream lifetimes calibrated to the
//    paper's average stream length (13.61 reports).

#ifndef RETRASYN_STREAM_HOTSPOT_GENERATOR_H_
#define RETRASYN_STREAM_HOTSPOT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "stream/stream_database.h"

namespace retrasyn {

struct HotspotGeneratorConfig {
  BoundingBox box{0.0, 0.0, 30000.0, 30000.0};
  int64_t num_timestamps = 886;
  /// Timestamps per synthetic "day" (10-minute granularity -> 144).
  int64_t day_length = 144;
  uint32_t num_hotspots = 6;
  /// Spatial spread of demand around each hotspot (distance units). Kept
  /// tight so the transition distribution is strongly concentrated, like
  /// downtown Beijing taxi traffic at K = 6 (a handful of heavy cells and
  /// self-transitions carry most of the mass).
  double hotspot_sigma = 1500.0;
  /// Streams alive at t = 0.
  uint32_t initial_users = 2500;
  /// Mean arrivals per timestamp (modulated by the daily cycle).
  double mean_arrivals = 180.0;
  /// Per-timestamp quit probability (geometric lifetime; 1/13.61 matches the
  /// paper's average stream length).
  double quit_probability = 1.0 / 13.61;
  /// Per-timestamp displacement while en route (distance units). Beijing
  /// taxis average well under half a 5 km cell per 10-minute timestamp, so
  /// self-transitions dominate, as in the real data.
  double min_step = 800.0;
  double max_step = 3500.0;
  /// Perpendicular route noise (distance units).
  double route_noise = 500.0;
  /// Probability of dwelling (staying in place) at a reached destination for
  /// one timestamp before re-targeting.
  double dwell_probability = 0.6;
};

/// \brief Generates a T-Drive-like taxi stream database.
StreamDatabase GenerateHotspotStreams(const HotspotGeneratorConfig& config,
                                      Rng& rng);

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_HOTSPOT_GENERATOR_H_
