// Synthetic road network: the substrate for the Brinkhoff-style
// network-constrained moving-object generator (paper SV-A uses Brinkhoff's
// generator on the Oldenburg and San Joaquin road maps; we generate a random
// planar road graph with the same structural properties instead — see
// DESIGN.md "Substitutions").
//
// Construction: nodes are placed on a jittered g x g lattice over the region;
// lattice edges are kept with a configurable probability and a few diagonals
// are added; every edge gets a speed class (residential / arterial /
// highway). The graph is then patched to be strongly connected (edges are
// bidirectional) so every source/destination pair admits a route.

#ifndef RETRASYN_STREAM_ROAD_NETWORK_H_
#define RETRASYN_STREAM_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/point.h"

namespace retrasyn {

struct RoadNetworkConfig {
  BoundingBox box{0.0, 0.0, 10000.0, 10000.0};
  /// Nodes form a grid_dim x grid_dim jittered lattice.
  uint32_t grid_dim = 16;
  /// Fraction of a lattice spacing by which node positions are jittered.
  double jitter = 0.3;
  /// Probability of keeping each lattice edge.
  double edge_keep_prob = 0.92;
  /// Probability of adding each diagonal shortcut.
  double diagonal_prob = 0.12;
  /// Speed classes in distance-units per second (defaults ~30/50/90 km/h in
  /// meters); each edge is assigned one class at random with the given
  /// weights.
  std::vector<double> speed_classes{8.3, 13.9, 25.0};
  std::vector<double> speed_weights{0.5, 0.35, 0.15};
};

class RoadNetwork {
 public:
  struct Edge {
    uint32_t to = 0;
    double length = 0.0;  ///< euclidean length in distance units
    double speed = 0.0;   ///< distance units per second
    double travel_time() const { return length / speed; }
  };

  /// Generates a random connected network per \p config.
  static RoadNetwork Generate(const RoadNetworkConfig& config, Rng& rng);

  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  const Point& NodePosition(uint32_t node) const { return nodes_[node]; }
  const std::vector<Edge>& EdgesFrom(uint32_t node) const {
    return adjacency_[node];
  }
  const BoundingBox& box() const { return box_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Fastest route (Dijkstra over travel time) from \p src to \p dst as a
  /// node sequence including both endpoints. Empty only if src == dst is
  /// false and no route exists, which Generate() precludes.
  std::vector<uint32_t> ShortestPath(uint32_t src, uint32_t dst) const;

  /// True when an undirected BFS from node 0 reaches every node.
  bool IsConnected() const;

 private:
  void AddBidirectionalEdge(uint32_t a, uint32_t b, double speed);

  BoundingBox box_;
  std::vector<Point> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  uint64_t num_edges_ = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_ROAD_NETWORK_H_
