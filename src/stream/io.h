// Trajectory-stream import/export.
//
// On-disk format: CSV rows `user_id,timestamp,x,y` (header optional, lines
// starting with '#' ignored). The importer performs the paper's preprocessing
// (SV-A): reports are grouped per user, sorted by timestamp, de-duplicated,
// and runs separated by timestamp gaps are split into independent streams
// with quit/enter events at the seams.

#ifndef RETRASYN_STREAM_IO_H_
#define RETRASYN_STREAM_IO_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "geo/spatial_grid.h"
#include "stream/cell_stream.h"
#include "stream/stream_database.h"

namespace retrasyn {

struct ImportOptions {
  /// When set, overrides the bounding box inferred from the data.
  std::optional<BoundingBox> box;
  /// When set, overrides the horizon inferred as (max timestamp + 1).
  std::optional<int64_t> num_timestamps;
  /// Whether the first row is a header to skip (auto-detected when the first
  /// field of the first row is not numeric).
  bool skip_header = false;
  /// Raw-time discretization: timestamps are divided by this value to form
  /// collection timestamps — the paper's T-Drive preprocessing ("transform
  /// the time dimension into 886 timestamps with a granularity of 10
  /// minutes" = 600 with epoch-second inputs). 1 keeps timestamps as-is.
  /// When several reports of one user land in the same bin, the earliest is
  /// kept.
  int64_t time_granularity = 1;
  /// Subtract the smallest observed timestamp before discretization, so
  /// absolute epoch times map to a zero-based horizon.
  bool align_to_zero = false;
};

/// \brief Loads a stream database from CSV, splitting on reporting gaps.
Result<StreamDatabase> LoadStreamDatabaseCsv(const std::string& path,
                                             const ImportOptions& options = {});

/// \brief Writes a stream database as `user_id,timestamp,x,y` rows.
Status WriteStreamDatabaseCsv(const StreamDatabase& db,
                              const std::string& path);

/// \brief Writes discretized (e.g. synthetic) streams as
/// `stream_id,timestamp,cell,center_x,center_y` rows.
Status WriteCellStreamsCsv(const CellStreamSet& set, const SpatialGrid& grid,
                           const std::string& path);

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_IO_H_
