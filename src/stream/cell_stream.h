// Discretized trajectory streams: the representation both the original data
// (after grid mapping) and the synthetic database share, and the one all
// utility metrics consume.

#ifndef RETRASYN_STREAM_CELL_STREAM_H_
#define RETRASYN_STREAM_CELL_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "geo/grid.h"

namespace retrasyn {

struct CellStream {
  int64_t enter_time = 0;
  std::vector<CellId> cells;  ///< one cell per timestamp from enter_time

  int64_t end_time() const {
    return enter_time + static_cast<int64_t>(cells.size());
  }
  bool ActiveAt(int64_t t) const { return t >= enter_time && t < end_time(); }
  CellId At(int64_t t) const { return cells[t - enter_time]; }
  size_t length() const { return cells.size(); }
};

/// \brief A set of discretized streams over a fixed horizon, with O(1)
/// active-count lookups.
class CellStreamSet {
 public:
  CellStreamSet() = default;
  explicit CellStreamSet(int64_t num_timestamps)
      : num_timestamps_(num_timestamps) {
    RETRASYN_CHECK(num_timestamps >= 1);
    active_count_.assign(num_timestamps, 0);
  }

  /// Adds a stream. Returns InvalidArgument (without aborting) when the
  /// stream is empty or lies outside [0, num_timestamps) — malformed inputs
  /// must never kill a long-running service. Internal callers whose streams
  /// are valid by construction (the synthesizer, the feeder) CheckOK();
  /// nodiscard keeps a dropped stream from passing silently.
  [[nodiscard]] Status Add(CellStream stream) {
    if (stream.cells.empty()) {
      return Status::InvalidArgument("cell stream must cover >= 1 timestamp");
    }
    if (stream.enter_time < 0) {
      return Status::InvalidArgument(
          "cell stream enters at negative timestamp " +
          std::to_string(stream.enter_time));
    }
    if (stream.end_time() > num_timestamps_) {
      return Status::InvalidArgument(
          "cell stream [" + std::to_string(stream.enter_time) + ", " +
          std::to_string(stream.end_time()) + ") exceeds the horizon of " +
          std::to_string(num_timestamps_) + " timestamps");
    }
    total_points_ += stream.cells.size();
    for (int64_t t = stream.enter_time; t < stream.end_time(); ++t) {
      ++active_count_[t];
    }
    streams_.push_back(std::move(stream));
    return Status::OK();
  }

  const std::vector<CellStream>& streams() const { return streams_; }
  int64_t num_timestamps() const { return num_timestamps_; }
  uint64_t TotalPoints() const { return total_points_; }

  uint32_t ActiveCount(int64_t t) const {
    if (t < 0 || t >= num_timestamps_) return 0;
    return active_count_[t];
  }

  /// Per-cell point counts at timestamp \p t.
  std::vector<uint32_t> DensityCounts(uint32_t num_cells, int64_t t) const {
    std::vector<uint32_t> counts(num_cells, 0);
    for (const CellStream& s : streams_) {
      if (s.ActiveAt(t)) ++counts[s.At(t)];
    }
    return counts;
  }

 private:
  int64_t num_timestamps_ = 0;
  std::vector<CellStream> streams_;
  std::vector<uint32_t> active_count_;
  uint64_t total_points_ = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_STREAM_CELL_STREAM_H_
