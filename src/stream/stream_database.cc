#include "stream/stream_database.h"

#include <string>

#include "common/logging.h"

namespace retrasyn {

StreamDatabase::StreamDatabase(const BoundingBox& box, int64_t num_timestamps)
    : box_(box), num_timestamps_(num_timestamps) {
  RETRASYN_CHECK(num_timestamps >= 1);
  active_count_.assign(num_timestamps, 0);
}

Status StreamDatabase::Add(UserStream stream) {
  if (stream.points.empty()) {
    return Status::InvalidArgument("stream must report at least one point");
  }
  if (stream.enter_time < 0) {
    return Status::InvalidArgument("stream enters at negative timestamp " +
                                   std::to_string(stream.enter_time));
  }
  if (stream.end_time() > num_timestamps_) {
    return Status::InvalidArgument(
        "stream [" + std::to_string(stream.enter_time) + ", " +
        std::to_string(stream.end_time()) + ") exceeds the horizon of " +
        std::to_string(num_timestamps_) + " timestamps");
  }
  total_points_ += stream.points.size();
  for (int64_t t = stream.enter_time; t < stream.end_time(); ++t) {
    ++active_count_[t];
  }
  streams_.push_back(std::move(stream));
  return Status::OK();
}

uint32_t StreamDatabase::ActiveCount(int64_t t) const {
  if (t < 0 || t >= num_timestamps_) return 0;
  return active_count_[t];
}

StreamDatabase StreamDatabase::Subsample(double fraction, Rng& rng) const {
  StreamDatabase out(box_, num_timestamps_);
  for (const UserStream& s : streams_) {
    if (rng.Bernoulli(fraction)) out.Add(s).CheckOK();
  }
  return out;
}

}  // namespace retrasyn
