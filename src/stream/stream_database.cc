#include "stream/stream_database.h"

#include "common/logging.h"

namespace retrasyn {

StreamDatabase::StreamDatabase(const BoundingBox& box, int64_t num_timestamps)
    : box_(box), num_timestamps_(num_timestamps) {
  RETRASYN_CHECK(num_timestamps >= 1);
  active_count_.assign(num_timestamps, 0);
}

void StreamDatabase::Add(UserStream stream) {
  RETRASYN_CHECK(!stream.points.empty());
  RETRASYN_CHECK(stream.enter_time >= 0);
  RETRASYN_CHECK(stream.end_time() <= num_timestamps_);
  total_points_ += stream.points.size();
  for (int64_t t = stream.enter_time; t < stream.end_time(); ++t) {
    ++active_count_[t];
  }
  streams_.push_back(std::move(stream));
}

uint32_t StreamDatabase::ActiveCount(int64_t t) const {
  if (t < 0 || t >= num_timestamps_) return 0;
  return active_count_[t];
}

StreamDatabase StreamDatabase::Subsample(double fraction, Rng& rng) const {
  StreamDatabase out(box_, num_timestamps_);
  for (const UserStream& s : streams_) {
    if (rng.Bernoulli(fraction)) out.Add(s);
  }
  return out;
}

}  // namespace retrasyn
