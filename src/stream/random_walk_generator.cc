#include "stream/random_walk_generator.h"

#include <cmath>
#include <vector>

namespace retrasyn {

StreamDatabase GenerateRandomWalkStreams(const RandomWalkConfig& config,
                                         Rng& rng) {
  StreamDatabase db(config.box, config.num_timestamps);

  struct Walker {
    Point position;
    UserStream stream;
  };
  std::vector<Walker> live;
  uint64_t next_id = 0;

  auto spawn = [&](int64_t t) {
    Walker w;
    w.position = Point{rng.UniformDouble(config.box.min_x, config.box.max_x),
                       rng.UniformDouble(config.box.min_y, config.box.max_y)};
    w.stream.user_id = next_id++;
    w.stream.enter_time = t;
    w.stream.points.push_back(w.position);
    live.push_back(std::move(w));
  };

  for (uint32_t i = 0; i < config.initial_users; ++i) spawn(0);

  for (int64_t t = 1; t < config.num_timestamps; ++t) {
    std::vector<Walker> survivors;
    survivors.reserve(live.size());
    for (Walker& w : live) {
      if (rng.Bernoulli(config.quit_probability)) {
        db.Add(std::move(w.stream)).CheckOK();
        continue;
      }
      w.position = config.box.Clamp(
          Point{w.position.x + rng.Gaussian(0.0, config.step_sigma),
                w.position.y + rng.Gaussian(0.0, config.step_sigma)});
      w.stream.points.push_back(w.position);
      survivors.push_back(std::move(w));
    }
    live = std::move(survivors);
    const uint64_t arrivals = rng.Binomial(
        static_cast<uint64_t>(std::ceil(config.mean_arrivals * 2.0)), 0.5);
    for (uint64_t i = 0; i < arrivals; ++i) spawn(t);
  }
  for (Walker& w : live) db.Add(std::move(w.stream)).CheckOK();
  return db;
}

}  // namespace retrasyn
