// Configuration surface of the event journal — split from journal_writer.h
// so RetraSynConfig (core/engine.h) can name the fsync policy and segment
// knobs without dragging the writer's worker-thread machinery into every
// translation unit that sees the engine.

#ifndef RETRASYN_JOURNAL_JOURNAL_OPTIONS_H_
#define RETRASYN_JOURNAL_JOURNAL_OPTIONS_H_

#include <cstdint>

#include "common/status.h"

namespace retrasyn {

/// \brief When the journal fsyncs (docs/durability.md has the trade-offs and
/// measured throughput per policy).
enum class FsyncPolicy {
  kNever = 0,
  kEveryRound = 1,
  kEveryRecord = 2,
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryRound;
  /// Rotation threshold: a new segment starts at the first round boundary
  /// after the current segment crosses this size.
  int64_t segment_bytes = 64 << 20;
  /// Deployment fingerprint stamped into every segment header. The service
  /// layer hashes the state space + engine config into it so recovery under
  /// a different configuration fails loudly instead of silently diverging
  /// (replay would still *accept* most events — just resolve them to
  /// different cells). 0 = unchecked.
  uint64_t fingerprint = 0;

  static constexpr int64_t kMinSegmentBytes = 4096;

  Status Validate() const;
};

}  // namespace retrasyn

#endif  // RETRASYN_JOURNAL_JOURNAL_OPTIONS_H_
