#include "journal/event_codec.h"

#include <cstring>

#include "common/crc32c.h"

namespace retrasyn {

namespace {

// Payloads are tiny (type byte + at most one varint and two doubles); any
// framed length beyond this is garbage, not a record to skip over.
constexpr uint64_t kMaxPayloadBytes = 1 << 10;

void PutFixed32(uint32_t value, std::string* out) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xFF);
  buf[1] = static_cast<char>((value >> 8) & 0xFF);
  buf[2] = static_cast<char>((value >> 16) & 0xFF);
  buf[3] = static_cast<char>((value >> 24) & 0xFF);
  out->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

void PutDouble(double value, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
  }
  out->append(buf, 8);
}

bool GetDouble(const char* data, size_t size, size_t* offset, double* value) {
  if (size - *offset < 8) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(
                static_cast<uint8_t>(data[*offset + i]))
            << (8 * i);
  }
  *offset += 8;
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

}  // namespace

const char* JournalEventTypeName(JournalEventType type) {
  switch (type) {
    case JournalEventType::kEnter:
      return "Enter";
    case JournalEventType::kMove:
      return "Move";
    case JournalEventType::kQuit:
      return "Quit";
    case JournalEventType::kTick:
      return "Tick";
    case JournalEventType::kAdvanceTo:
      return "AdvanceTo";
  }
  return "Unknown";
}

void AppendSegmentHeader(uint64_t fingerprint, std::string* out) {
  out->append(kJournalMagic, sizeof(kJournalMagic));
  out->push_back(static_cast<char>(kJournalFormatVersion));
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((fingerprint >> (8 * i)) & 0xFF);
  }
  out->append(buf, 8);
}

Status CheckSegmentHeader(const char* data, size_t size, size_t* offset,
                          uint64_t* fingerprint) {
  if (size - *offset < kSegmentHeaderSize) {
    return Status::OutOfRange("segment ends inside the header");
  }
  if (std::memcmp(data + *offset, kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return Status::InvalidArgument("bad journal segment magic");
  }
  const uint8_t version =
      static_cast<uint8_t>(data[*offset + sizeof(kJournalMagic)]);
  if (version != kJournalFormatVersion) {
    return Status::InvalidArgument("unsupported journal format version " +
                                   std::to_string(version));
  }
  uint64_t fp = 0;
  const char* p = data + *offset + sizeof(kJournalMagic) + 1;
  for (int i = 0; i < 8; ++i) {
    fp |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *fingerprint = fp;
  *offset += kSegmentHeaderSize;
  return Status::OK();
}

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(const char* data, size_t size, size_t* offset,
                 uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (*offset >= size) return false;
    const uint8_t byte = static_cast<uint8_t>(data[(*offset)++]);
    if (shift == 63 && byte > 1) return false;  // overflows 64 bits
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

void EncodeRecord(const JournalEvent& event, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(event.type));
  switch (event.type) {
    case JournalEventType::kEnter:
    case JournalEventType::kMove:
      PutVarint64(event.user, &payload);
      PutDouble(event.location.x, &payload);
      PutDouble(event.location.y, &payload);
      break;
    case JournalEventType::kQuit:
      PutVarint64(event.user, &payload);
      break;
    case JournalEventType::kTick:
      break;
    case JournalEventType::kAdvanceTo:
      PutVarint64(ZigzagEncode(event.target_t), &payload);
      break;
  }
  PutVarint64(payload.size(), out);
  out->append(payload);
  PutFixed32(Crc32c(payload.data(), payload.size()), out);
}

Status DecodeRecord(const char* data, size_t size, size_t* offset,
                    JournalEvent* event) {
  size_t pos = *offset;
  uint64_t payload_len = 0;
  if (!GetVarint64(data, size, &pos, &payload_len)) {
    return Status::OutOfRange("record ends inside the length varint");
  }
  if (payload_len == 0 || payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("implausible record length " +
                                   std::to_string(payload_len));
  }
  if (size - pos < payload_len + 4) {
    return Status::OutOfRange("record ends inside payload or checksum");
  }
  const char* payload = data + pos;
  const uint32_t expected = GetFixed32(payload + payload_len);
  const uint32_t actual = Crc32c(payload, payload_len);
  if (actual != expected) {
    return Status::IOError("record checksum mismatch");
  }

  // The frame is intact; anything wrong below is well-framed garbage.
  size_t p = 0;
  JournalEvent out;
  const uint8_t type_byte = static_cast<uint8_t>(payload[p++]);
  switch (static_cast<JournalEventType>(type_byte)) {
    case JournalEventType::kEnter:
    case JournalEventType::kMove: {
      out.type = static_cast<JournalEventType>(type_byte);
      if (!GetVarint64(payload, payload_len, &p, &out.user) ||
          !GetDouble(payload, payload_len, &p, &out.location.x) ||
          !GetDouble(payload, payload_len, &p, &out.location.y)) {
        return Status::InvalidArgument("short Enter/Move payload");
      }
      break;
    }
    case JournalEventType::kQuit:
      out.type = JournalEventType::kQuit;
      if (!GetVarint64(payload, payload_len, &p, &out.user)) {
        return Status::InvalidArgument("short Quit payload");
      }
      break;
    case JournalEventType::kTick:
      out.type = JournalEventType::kTick;
      break;
    case JournalEventType::kAdvanceTo: {
      out.type = JournalEventType::kAdvanceTo;
      uint64_t zigzag = 0;
      if (!GetVarint64(payload, payload_len, &p, &zigzag)) {
        return Status::InvalidArgument("short AdvanceTo payload");
      }
      out.target_t = ZigzagDecode(zigzag);
      break;
    }
    default:
      return Status::InvalidArgument("unknown journal event type " +
                                     std::to_string(type_byte));
  }
  if (p != payload_len) {
    return Status::InvalidArgument("trailing bytes in record payload");
  }
  *event = out;
  *offset = pos + payload_len + 4;
  return Status::OK();
}

}  // namespace retrasyn
