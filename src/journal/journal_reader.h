// Scanning side of the event journal: reads every segment in order and
// returns the decoded event sequence, tolerating a torn tail in the final
// segment only.
//
// Recovery contract (docs/durability.md):
//  * Segments must be contiguously numbered; a missing segment is data loss
//    and fails the scan (kIOError).
//  * Inside every segment but the last, each record must decode cleanly and
//    the segment must end exactly on a record boundary — the writer rotates
//    only after durable round boundaries, so anything else is corruption.
//  * In the LAST segment, the first incomplete record, checksum mismatch, or
//    well-framed garbage marks the torn tail: events before it are kept, the
//    scan reports the valid byte prefix (`valid_tail_size`) so the caller can
//    physically truncate the file, and everything after is discarded.
//
// An empty or missing directory scans to zero events (a fresh deployment).

#ifndef RETRASYN_JOURNAL_JOURNAL_READER_H_
#define RETRASYN_JOURNAL_JOURNAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "journal/event_codec.h"

namespace retrasyn {

/// \brief One scanned segment and the absolute closed-round count at its
/// end (base_round + every boundary decoded up to and including it). The
/// checkpoint manager seeds its compaction bookkeeping from these.
struct ScannedSegment {
  uint64_t index = 0;
  int64_t end_round = 0;
};

/// \brief The result of scanning a journal directory.
struct JournalScan {
  std::vector<JournalEvent> events;  ///< decoded, in append order
  uint64_t num_segments = 0;
  uint64_t bytes_scanned = 0;
  /// Absolute closed rounds summarized by a compacted-away prefix (from the
  /// BASE file; 0 when the journal was never compacted). The decoded events
  /// continue round numbering from here.
  int64_t base_round = 0;
  /// The surviving segments in index order, each with its absolute end
  /// round. Empty for an empty/missing journal.
  std::vector<ScannedSegment> segments;
  /// Orphaned `*.tmp` files (a crash mid atomic write) and segments below
  /// the BASE that a crashed compaction left behind, deleted by the scan.
  uint64_t files_cleaned = 0;
  /// Deployment fingerprint from the segment headers (all segments must
  /// agree; mismatching segments fail the scan). Meaningless unless
  /// has_fingerprint — a journal of only empty segments carries none.
  uint64_t fingerprint = 0;
  bool has_fingerprint = false;

  /// True when the last segment ended in a torn/corrupt tail that was
  /// logically truncated. `torn_segment` is that file's path and
  /// `valid_tail_size` the byte length of its valid prefix — truncating the
  /// file to that size makes the on-disk journal fully clean again.
  bool torn = false;
  std::string torn_segment;
  int64_t valid_tail_size = 0;

  /// Path of the segment holding the final decoded record and the byte
  /// offset where that record starts. Sharded recovery's handle for
  /// dropping a trailing round boundary that a sibling shard's journal
  /// never got (a crash or I/O failure mid-boundary): truncating
  /// `last_record_segment` to `last_record_offset` removes exactly that
  /// record. Meaningful only when `events` is non-empty.
  std::string last_record_segment;
  int64_t last_record_offset = 0;
};

class JournalReader {
 public:
  /// Scans every segment under \p dir. See the header comment for the
  /// tolerance rules. Also performs the journal's crash janitor duties:
  /// deletes orphaned `*.tmp` files (an atomic write that never renamed)
  /// and segments a durable BASE file has declared dead (a compaction that
  /// crashed between its BASE write and its unlinks). Callers that mutate
  /// the journal afterwards must hold the `<dir>/LOCK` before scanning.
  static Result<JournalScan> ScanDir(const std::string& dir);
};

}  // namespace retrasyn

#endif  // RETRASYN_JOURNAL_JOURNAL_READER_H_
