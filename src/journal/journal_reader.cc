#include "journal/journal_reader.h"

#include <algorithm>
#include <utility>

#include "common/file_io.h"
#include "journal/journal_writer.h"

namespace retrasyn {

Result<JournalScan> JournalReader::ScanDir(const std::string& dir) {
  JournalScan scan;
  auto names = ListDirectory(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return scan;
    return names.status();
  }

  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names.value()) {
    uint64_t index = 0;
    if (JournalWriter::ParseSegmentFileName(name, &index)) {
      segments.emplace_back(index, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  if (segments.empty()) return scan;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first != segments[0].first + i) {
      return Status::IOError("journal segment gap: " + segments[i].second +
                             " does not follow " + segments[i - 1].second);
    }
  }

  for (size_t i = 0; i < segments.size(); ++i) {
    const bool last = (i + 1 == segments.size());
    const std::string path = dir + "/" + segments[i].second;
    auto contents = ReadFileToString(path);
    if (!contents.ok()) return contents.status();
    const std::string& data = contents.value();
    ++scan.num_segments;
    scan.bytes_scanned += data.size();

    // A zero-length segment is clean-empty wherever it appears: a crash
    // between file creation and the header flush leaves one behind, tail
    // truncation can legally cut a segment back to nothing, and recovery
    // then continues in a fresh segment *after* it — so an old 0-byte file
    // can end up mid-journal. No acknowledged record can be lost this way:
    // a segment gets bytes before its successor is ever created.
    if (data.empty()) continue;

    size_t offset = 0;
    uint64_t fingerprint = 0;
    Status st =
        CheckSegmentHeader(data.data(), data.size(), &offset, &fingerprint);
    if (st.ok()) {
      if (!scan.has_fingerprint) {
        scan.fingerprint = fingerprint;
        scan.has_fingerprint = true;
      } else if (fingerprint != scan.fingerprint) {
        return Status::IOError("journal segment " + path +
                               " carries a different deployment fingerprint "
                               "than its predecessors");
      }
    }
    if (st.ok()) {
      JournalEvent event;
      while (offset < data.size()) {
        st = DecodeRecord(data.data(), data.size(), &offset, &event);
        if (!st.ok()) break;
        scan.events.push_back(event);
      }
    }
    if (!st.ok()) {
      if (!last) {
        return Status::IOError("corrupt journal segment " + path +
                               " before the final one: " + st.message());
      }
      // Torn tail: keep the valid prefix, report the truncation point.
      // A header that never finished writing truncates to an empty file.
      scan.torn = true;
      scan.torn_segment = path;
      scan.valid_tail_size =
          static_cast<int64_t>(offset < kSegmentHeaderSize ? 0 : offset);
    }
  }
  return scan;
}

}  // namespace retrasyn
