#include "journal/journal_reader.h"

#include <algorithm>
#include <utility>

#include "common/file_io.h"
#include "journal/journal_compaction.h"
#include "journal/journal_writer.h"

namespace retrasyn {

namespace {

bool IsTempFileName(const std::string& name) {
  constexpr char kSuffix[] = ".tmp";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  return name.size() >= kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

}  // namespace

Result<JournalScan> JournalReader::ScanDir(const std::string& dir) {
  JournalScan scan;
  auto names = ListDirectory(dir);
  if (!names.ok()) {
    if (names.status().code() == StatusCode::kNotFound) return scan;
    return names.status();
  }

  // Compaction summary first: it decides which segment files are data and
  // which are corpses a crashed retirement left behind.
  auto base = ReadJournalBase(dir);
  uint64_t first_surviving_index = 0;
  if (base.ok()) {
    first_surviving_index = base.value().first_surviving_index;
    scan.base_round = base.value().base_round;
  } else if (base.status().code() != StatusCode::kNotFound) {
    return base.status();
  }

  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names.value()) {
    // Orphaned tmp files are atomic writes that never renamed; the write
    // they belonged to never happened, so they are garbage under any name.
    if (IsTempFileName(name)) {
      RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
      ++scan.files_cleaned;
      continue;
    }
    uint64_t index = 0;
    if (JournalWriter::ParseSegmentFileName(name, &index)) {
      if (index < first_surviving_index) {
        // Durably declared dead by BASE; the unlink just never finished.
        RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
        ++scan.files_cleaned;
        continue;
      }
      segments.emplace_back(index, name);
    }
  }
  if (scan.files_cleaned > 0) RETRASYN_RETURN_NOT_OK(SyncDir(dir));
  std::sort(segments.begin(), segments.end());
  if (segments.empty()) {
    if (first_surviving_index > 0) {
      // BASE promises a surviving suffix that is not there: the compacted
      // prefix is unreplayable, so this is data loss, not a fresh journal.
      return Status::IOError(
          "journal BASE declares surviving segments from " +
          JournalWriter::SegmentFileName(first_surviving_index) +
          " but the directory holds none");
    }
    return scan;
  }
  if (first_surviving_index > 0 && segments[0].first != first_surviving_index) {
    return Status::IOError(
        "journal BASE declares " +
        JournalWriter::SegmentFileName(first_surviving_index) +
        " as the first surviving segment but the scan found " +
        segments[0].second);
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first != segments[0].first + i) {
      return Status::IOError("journal segment gap: " + segments[i].second +
                             " does not follow " + segments[i - 1].second);
    }
  }

  // Absolute closed-round cursor across segments, continuing from the
  // compacted-away prefix.
  int64_t round_cursor = scan.base_round;
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool last = (i + 1 == segments.size());
    const std::string path = dir + "/" + segments[i].second;
    auto contents = ReadFileToString(path);
    if (!contents.ok()) return contents.status();
    const std::string& data = contents.value();
    ++scan.num_segments;
    scan.bytes_scanned += data.size();

    // A zero-length segment is clean-empty wherever it appears: a crash
    // between file creation and the header flush leaves one behind, tail
    // truncation can legally cut a segment back to nothing, and recovery
    // then continues in a fresh segment *after* it — so an old 0-byte file
    // can end up mid-journal. No acknowledged record can be lost this way:
    // a segment gets bytes before its successor is ever created.
    if (data.empty()) {
      scan.segments.push_back(ScannedSegment{segments[i].first, round_cursor});
      continue;
    }

    size_t offset = 0;
    uint64_t fingerprint = 0;
    Status st =
        CheckSegmentHeader(data.data(), data.size(), &offset, &fingerprint);
    if (st.ok()) {
      if (!scan.has_fingerprint) {
        scan.fingerprint = fingerprint;
        scan.has_fingerprint = true;
      } else if (fingerprint != scan.fingerprint) {
        return Status::IOError("journal segment " + path +
                               " carries a different deployment fingerprint "
                               "than its predecessors");
      }
    }
    if (st.ok()) {
      JournalEvent event;
      size_t last_record_start = 0;
      bool any_records = false;
      while (offset < data.size()) {
        const size_t record_start = offset;
        st = DecodeRecord(data.data(), data.size(), &offset, &event);
        if (!st.ok()) break;
        last_record_start = record_start;
        any_records = true;
        if (event.type == JournalEventType::kTick) {
          ++round_cursor;
        } else if (event.type == JournalEventType::kAdvanceTo) {
          round_cursor = std::max(round_cursor, event.target_t);
        }
        scan.events.push_back(event);
      }
      if (any_records) {
        scan.last_record_segment = path;
        scan.last_record_offset = static_cast<int64_t>(last_record_start);
      }
    }
    if (!st.ok()) {
      if (!last) {
        return Status::IOError("corrupt journal segment " + path +
                               " before the final one: " + st.message());
      }
      // Torn tail: keep the valid prefix, report the truncation point.
      // A header that never finished writing truncates to an empty file.
      scan.torn = true;
      scan.torn_segment = path;
      scan.valid_tail_size =
          static_cast<int64_t>(offset < kSegmentHeaderSize ? 0 : offset);
    }
    scan.segments.push_back(ScannedSegment{segments[i].first, round_cursor});
  }
  return scan;
}

}  // namespace retrasyn
