#include "journal/journal_writer.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/stopwatch.h"

namespace retrasyn {

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kEveryRound:
      return "every_round";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
  }
  return "unknown";
}

Status JournalOptions::Validate() const {
  switch (fsync) {
    case FsyncPolicy::kNever:
    case FsyncPolicy::kEveryRound:
    case FsyncPolicy::kEveryRecord:
      break;
    default:
      return Status::InvalidArgument("unknown fsync policy");
  }
  if (segment_bytes < kMinSegmentBytes) {
    return Status::InvalidArgument(
        "journal segment_bytes must be >= " + std::to_string(kMinSegmentBytes) +
        ", got " + std::to_string(segment_bytes));
  }
  return Status::OK();
}

std::string JournalWriter::SegmentFileName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "journal-%08llu.wal",
                static_cast<unsigned long long>(index));
  return buf;
}

bool JournalWriter::ParseSegmentFileName(const std::string& name,
                                         uint64_t* index) {
  // journal-NNNNNNNN.wal, at least 8 digits.
  constexpr char kPrefix[] = "journal-";
  constexpr char kSuffix[] = ".wal";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (name.size() < kPrefixLen + 8 + kSuffixLen) return false;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefixLen; i < name.size() - kSuffixLen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *index = value;
  return true;
}

std::string ShardJournalDirName(int shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03d", shard);
  return buf;
}

bool ParseShardJournalDirName(const std::string& name, int* shard) {
  // shard-NNN, at least 3 digits.
  constexpr char kPrefix[] = "shard-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() < kPrefixLen + 3) return false;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  int value = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + (name[i] - '0');
  }
  *shard = value;
  return true;
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& dir, const JournalOptions& options) {
  RETRASYN_RETURN_NOT_OK(CreateDirIfMissing(dir));
  auto lock = FileLock::Acquire(dir + "/" + kLockFileName);
  if (!lock.ok()) return lock.status();
  return OpenLocked(dir, options, std::move(lock).value());
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::OpenLocked(
    const std::string& dir, const JournalOptions& options, FileLock lock) {
  RETRASYN_RETURN_NOT_OK(options.Validate());
  if (!lock.held()) {
    return Status::InvalidArgument("OpenLocked requires a held journal lock");
  }
  RETRASYN_RETURN_NOT_OK(CreateDirIfMissing(dir));
  auto names = ListDirectory(dir);
  if (!names.ok()) return names.status();
  uint64_t next_index = 0;
  for (const std::string& name : names.value()) {
    uint64_t index = 0;
    if (ParseSegmentFileName(name, &index) && index + 1 > next_index) {
      next_index = index + 1;
    }
  }
  std::unique_ptr<JournalWriter> writer(
      new JournalWriter(dir, options, next_index));
  writer->lock_ = std::move(lock);
  RETRASYN_RETURN_NOT_OK(writer->RotateSegment());
  return writer;
}

void JournalWriter::AttachTelemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    records_metric_ = nullptr;
    rounds_metric_ = nullptr;
    bytes_metric_ = nullptr;
    segments_metric_ = nullptr;
    fsyncs_metric_ = nullptr;
    poisonings_metric_ = nullptr;
    fsync_hist_ = nullptr;
    return;
  }
  MetricsRegistry& registry = telemetry_->registry();
  records_metric_ = registry.GetCounter(
      "retrasyn_journal_records_appended_total",
      "Framed records appended across all shard journals");
  rounds_metric_ = registry.GetCounter(
      "retrasyn_journal_rounds_appended_total",
      "Durable round-boundary records appended");
  bytes_metric_ = registry.GetCounter(
      "retrasyn_journal_bytes_appended_total",
      "Framed bytes appended (segment headers excluded)");
  segments_metric_ = registry.GetCounter(
      "retrasyn_journal_segments_created_total",
      "Segment files opened (rotations + initial segments)");
  fsyncs_metric_ = registry.GetCounter(
      "retrasyn_journal_fsyncs_total",
      "fdatasync/fsync calls issued (foreground + presync worker)");
  poisonings_metric_ = registry.GetCounter(
      "retrasyn_journal_poisonings_total",
      "Writers poisoned by a first I/O failure");
  fsync_hist_ = registry.GetHistogram(
      "retrasyn_journal_fsync_seconds",
      "Latency of journal fdatasync/fsync calls");
}

Status JournalWriter::SyncDataTimed() {
  if (fsync_hist_ == nullptr) return segment_.SyncData();
  Stopwatch watch;
  Status st = segment_.SyncData();
  fsync_hist_->Record(watch.ElapsedSeconds());
  fsyncs_metric_->Increment();
  return st;
}

void JournalWriter::NotePoison(const Status& st) {
  if (telemetry_ == nullptr || st.ok()) return;
  poisonings_metric_->Increment();
  telemetry_->RecordFailure("journal", st,
                            base_round_ + static_cast<int64_t>(rounds_appended_));
}

JournalWriter::~JournalWriter() {
  Close();
  if (presync_thread_.joinable()) {
    {
      MutexLock l(presync_mu_);
      presync_stop_ = true;
    }
    presync_cv_.NotifyAll();
    presync_thread_.join();
  }
}

void JournalWriter::PresyncLoop() {
  presync_mu_.Lock();
  while (true) {
    while (!presync_requested_ && !presync_stop_) presync_cv_.Wait(presync_mu_);
    if (presync_stop_) break;
    const int fd = presync_fd_;
    presync_mu_.Unlock();
    Stopwatch watch;
    const int rc = ::fdatasync(fd);
    const int err = errno;
    if (fsync_hist_ != nullptr) {
      fsync_hist_->Record(watch.ElapsedSeconds());
      fsyncs_metric_->Increment();
    }
    presync_mu_.Lock();
    if (rc != 0 && presync_error_.ok()) {
      presync_error_ =
          Status::IOError(std::string("background fdatasync: ") +
                          std::strerror(err));
    }
    presync_requested_ = false;
    presync_cv_.NotifyAll();
  }
  presync_mu_.Unlock();
}

void JournalWriter::BeginRoundSync() {
  if (options_.fsync != FsyncPolicy::kEveryRound || closed_ || !error_.ok() ||
      !segment_.is_open()) {
    return;
  }
  // Push the stdio buffer to the page cache so the worker sees every byte;
  // a flush failure is a real write failure and poisons the writer.
  Status flushed = segment_.Flush();
  if (!flushed.ok()) {
    error_ = flushed;
    NotePoison(flushed);
    return;
  }
  MutexLock l(presync_mu_);
  if (presync_requested_) return;  // previous round's presync still running
  presync_fd_ = segment_.fd();
  presync_requested_ = true;
  if (!presync_thread_.joinable()) {
    presync_thread_ = std::thread([this] { PresyncLoop(); });
  }
  presync_cv_.NotifyAll();
}

Status JournalWriter::WaitForPresync() {
  if (!presync_thread_.joinable()) return Status::OK();
  MutexLock l(presync_mu_);
  while (presync_requested_) presync_cv_.Wait(presync_mu_);
  if (!presync_error_.ok() && error_.ok()) {
    error_ = presync_error_;
    NotePoison(error_);
  }
  return error_;
}

Status JournalWriter::RotateSegment() {
  if (segment_.is_open()) {
    // Sync the finished segment before its successor exists — under every
    // policy, kNever included. Without this the OS may persist segment N+1
    // before segment N's tail, leaving a torn record in a non-final segment,
    // which recovery rightly treats as unrecoverable corruption rather than
    // the graceful suffix loss kNever promises. One fdatasync per
    // segment_bytes is noise.
    RETRASYN_RETURN_NOT_OK(SyncDataTimed());
    RETRASYN_RETURN_NOT_OK(segment_.Close());
  }
  const std::string path = dir_ + "/" + SegmentFileName(next_segment_index_);
  auto file = AppendableFile::Open(path);
  if (!file.ok()) return file.status();
  segment_ = std::move(file).value();
  ++next_segment_index_;
  ++segments_created_;
  if (segments_metric_ != nullptr) segments_metric_->Increment();
  segment_size_ = 0;
  scratch_.clear();
  AppendSegmentHeader(options_.fingerprint, &scratch_);
  RETRASYN_RETURN_NOT_OK(segment_.Append(scratch_));
  segment_size_ = static_cast<int64_t>(scratch_.size());
  // Make the header and the new file's directory entry durable before any
  // record lands (the entry is metadata of the *directory*, not the file:
  // file fsync alone cannot keep a crash from forgetting the segment ever
  // existed). kNever explicitly leaves all durability to the OS.
  if (options_.fsync != FsyncPolicy::kNever) {
    RETRASYN_RETURN_NOT_OK(SyncDataTimed());
    RETRASYN_RETURN_NOT_OK(SyncDir(dir_));
  }
  return Status::OK();
}

Status JournalWriter::Append(const JournalEvent& event) {
  RETRASYN_RETURN_NOT_OK(error_);
  if (closed_) {
    return Status::FailedPrecondition("append to a closed journal writer");
  }
  RETRASYN_RETURN_NOT_OK(WaitForPresync());
  scratch_.clear();
  EncodeRecord(event, &scratch_);
  const uint64_t record_bytes = scratch_.size();

  Status st = segment_.Append(scratch_);
  if (st.ok()) segment_size_ += static_cast<int64_t>(record_bytes);
  // fdatasync, not fsync: an append's data plus the size metadata needed to
  // read it back is exactly what fdatasync covers; mtime can lag.
  if (st.ok() && options_.fsync == FsyncPolicy::kEveryRecord) {
    st = SyncDataTimed();
  }
  if (st.ok() && event.is_round_boundary()) {
    if (options_.fsync == FsyncPolicy::kEveryRound) st = SyncDataTimed();
    if (st.ok()) {
      ++rounds_appended_;
      if (rounds_metric_ != nullptr) rounds_metric_->Increment();
      // Rotate only at a durable round boundary: every finished segment ends
      // on a closed round, so a torn tail can only live in the last one.
      if (segment_size_ >= options_.segment_bytes) {
        {
          MutexLock l(sealed_mu_);
          sealed_.push_back(SealedSegment{
              next_segment_index_ - 1,
              base_round_ + static_cast<int64_t>(rounds_appended_)});
        }
        st = RotateSegment();
      }
    }
  }
  if (!st.ok()) {
    error_ = st;
    NotePoison(st);
    return st;
  }
  ++records_appended_;
  bytes_appended_ += record_bytes;
  if (records_metric_ != nullptr) {
    records_metric_->Increment();
    bytes_metric_->Add(record_bytes);
  }
  return Status::OK();
}

std::vector<SealedSegment> JournalWriter::TakeSealedSegments() {
  MutexLock l(sealed_mu_);
  std::vector<SealedSegment> taken = std::move(sealed_);
  sealed_.clear();
  return taken;
}

Status JournalWriter::Sync() {
  RETRASYN_RETURN_NOT_OK(error_);
  if (closed_) {
    return Status::FailedPrecondition("sync of a closed journal writer");
  }
  RETRASYN_RETURN_NOT_OK(WaitForPresync());
  Stopwatch watch;
  Status st = segment_.Sync();
  if (fsync_hist_ != nullptr) {
    fsync_hist_->Record(watch.ElapsedSeconds());
    fsyncs_metric_->Increment();
  }
  if (!st.ok()) {
    error_ = st;
    NotePoison(st);
  }
  return st;
}

Status JournalWriter::Close() {
  if (closed_) return error_;
  WaitForPresync();
  closed_ = true;
  Status st = segment_.is_open() ? segment_.Close() : Status::OK();
  if (!st.ok() && error_.ok()) {
    error_ = st;
    NotePoison(st);
  }
  lock_.Release();
  return error_;
}

}  // namespace retrasyn
