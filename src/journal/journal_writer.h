// Segmented append-only writer for the ingestion event journal.
//
// A journal is a directory of numbered segment files
// (`journal-00000000.wal`, `journal-00000001.wal`, ...), each starting with
// the versioned header of event_codec.h and followed by framed records.
// Segments rotate when the current one crosses `segment_bytes`, and only at
// round boundaries (Tick/AdvanceTo records) — so every segment except the
// last ends on a closed round, and only the final segment can ever hold a
// torn tail after a crash.
//
// Durability knob (FsyncPolicy):
//   kNever       appends are buffered; the OS decides when bytes hit disk.
//                Fastest; a crash can lose any suffix of the journal.
//   kEveryRound  fsync once per round-boundary record. A crash loses at most
//                the open (uncommitted) round — the default, matching the
//                session's unit of atomicity.
//   kEveryRecord fsync after every record. A crash loses at most the one
//                event being appended. Strongest and slowest.
//
// Open() always starts a NEW segment (it never appends into an existing
// file), so a writer opened over a recovered journal cannot be corrupted by
// a stale tail, and it takes an exclusive flock on `<dir>/LOCK` held for
// the writer's lifetime — a second writer (another process racing a
// supervisor restart, or a misconfigured replica sharing the directory)
// fails fast with FailedPrecondition instead of interleaving appends into
// the same segment. The first I/O failure poisons the writer: every later
// Append/Sync returns the same sticky error, mirroring the service layer's
// poisoned-pipeline semantics.

#ifndef RETRASYN_JOURNAL_JOURNAL_WRITER_H_
#define RETRASYN_JOURNAL_JOURNAL_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"
#include "common/mutex.h"
#include "common/status.h"
#include "journal/event_codec.h"
#include "journal/journal_options.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

/// \brief A finished (rotated-away) segment: its file index and the absolute
/// closed-round count at its end. The checkpoint manager uses end_round to
/// decide when a whole segment has left the retention horizon and can be
/// deleted by compaction.
struct SealedSegment {
  uint64_t index = 0;
  int64_t end_round = 0;
};

class JournalWriter {
 public:
  /// Creates \p dir if missing, takes the exclusive `<dir>/LOCK`, and opens
  /// a fresh segment numbered after the highest existing one. Fails with
  /// FailedPrecondition while another writer holds the lock.
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& dir, const JournalOptions& options);

  /// Like Open, but adopts a `<dir>/LOCK` the caller already holds — for
  /// recovery, which must take the lock *before* its destructive scan and
  /// tail truncation, not merely before appending.
  static Result<std::unique_ptr<JournalWriter>> OpenLocked(
      const std::string& dir, const JournalOptions& options, FileLock lock);

  /// The lock-file name; never parsed as a segment.
  static constexpr char kLockFileName[] = "LOCK";

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one framed record, fsyncing and rotating per the options.
  Status Append(const JournalEvent& event);

  /// Starts making the records appended so far durable on a background
  /// presync worker (kEveryRound only; no-op otherwise). Cheap and
  /// non-blocking: the caller overlaps it with the round-closing work so
  /// the boundary record's fsync finds the round's event data already on
  /// disk and pays only for the boundary bytes. Making events durable
  /// *early* is always safe — the boundary record is what commits the
  /// round. Errors surface, sticky, on the next Append/Sync.
  void BeginRoundSync();

  /// Forces the appended records to disk regardless of the fsync policy.
  Status Sync();

  /// Flushes and closes the current segment; the writer is unusable after.
  Status Close();

  /// The sticky first I/O failure (OK while healthy). Callers that must not
  /// proceed on a poisoned journal (e.g. IngestSession::Tick) check this
  /// before doing work the failure would strand.
  Status status() const { return error_; }

  /// Registers this writer's metrics in \p telemetry (not owned; null
  /// detaches). Sharded sessions attach every shard's writer to the same
  /// bundle: the counters are shared by (name, labels) identity, so journal
  /// metrics aggregate across shards. Call right after Open/OpenLocked,
  /// before the first Append. Observation-only — no effect on bytes.
  void AttachTelemetry(Telemetry* telemetry);

  /// Seeds the absolute closed-round count this writer's rounds continue
  /// from: recovery passes the number of rounds already in the journal, a
  /// fresh deployment passes 0 (the default). Call right after
  /// Open/OpenLocked, before the first Append, so sealed segments carry
  /// absolute end rounds.
  void set_base_round(int64_t base) { base_round_ = base; }

  /// Drains the segments sealed (rotated away) since the last call, each
  /// tagged with the absolute closed-round count at its end. Thread-safe:
  /// the checkpoint manager's worker drains while the ingest thread appends.
  std::vector<SealedSegment> TakeSealedSegments() EXCLUDES(sealed_mu_);

  const std::string& dir() const { return dir_; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t rounds_appended() const { return rounds_appended_; }
  uint64_t segments_created() const { return segments_created_; }
  /// Total framed bytes appended across all segments (headers excluded).
  uint64_t bytes_appended() const { return bytes_appended_; }

  /// `journal-%08llu.wal` for segment \p index.
  static std::string SegmentFileName(uint64_t index);
  /// Parses a segment file name back into its index; false for other files.
  static bool ParseSegmentFileName(const std::string& name, uint64_t* index);

 private:
  JournalWriter(std::string dir, const JournalOptions& options,
                uint64_t next_segment_index)
      : dir_(std::move(dir)),
        options_(options),
        next_segment_index_(next_segment_index) {}

  /// Closes the current segment (if any) and starts the next one.
  Status RotateSegment();

  /// segment_.SyncData() with fsync count + latency recording attached.
  Status SyncDataTimed();
  /// Marks the sticky-error transition in telemetry (poisoning counter +
  /// first-failure record). Call where error_ flips from OK to non-OK.
  void NotePoison(const Status& st);

  /// Blocks until the presync worker is idle, folding its error (if any)
  /// into the sticky writer error. Every file-touching entry point calls
  /// this first, so the worker only ever runs while the writer is quiescent.
  Status WaitForPresync() EXCLUDES(presync_mu_);
  void PresyncLoop() EXCLUDES(presync_mu_);

  // Owner-thread state. The writer has exactly one driving thread (the
  // ingest thread, or a shard producer holding that shard's lock); nothing
  // below this comment is touched by the presync or checkpoint workers, so
  // it is thread-confined rather than mutex-guarded. The two cross-thread
  // surfaces are sealed_ (under sealed_mu_) and the presync_* block (under
  // presync_mu_); WaitForPresync() quiesces the worker before any owner
  // access to segment_/error_ it could race with.
  const std::string dir_;
  const JournalOptions options_;
  FileLock lock_;  ///< exclusive <dir>/LOCK, held for the writer's lifetime
  uint64_t next_segment_index_ = 0;

  AppendableFile segment_;  ///< closed until the first RotateSegment
  int64_t segment_size_ = 0;
  std::string scratch_;

  uint64_t records_appended_ = 0;
  uint64_t rounds_appended_ = 0;
  uint64_t segments_created_ = 0;
  uint64_t bytes_appended_ = 0;
  int64_t base_round_ = 0;  ///< absolute rounds preceding this writer's first
  Status error_;  ///< first I/O failure; sticky
  bool closed_ = false;

  // Telemetry (null when detached). The metric objects live in the service's
  // registry and are shared across shard writers.
  Telemetry* telemetry_ = nullptr;
  Counter* records_metric_ = nullptr;
  Counter* rounds_metric_ = nullptr;
  Counter* bytes_metric_ = nullptr;
  Counter* segments_metric_ = nullptr;
  Counter* fsyncs_metric_ = nullptr;
  Counter* poisonings_metric_ = nullptr;
  LatencyHistogram* fsync_hist_ = nullptr;

  /// Segments rotated away and not yet drained by TakeSealedSegments().
  Mutex sealed_mu_;
  std::vector<SealedSegment> sealed_ GUARDED_BY(sealed_mu_);

  // Background data presync (kEveryRound): one worker, started lazily on
  // the first BeginRoundSync, fdatasync-ing the current segment while the
  // ingest thread runs the round-closing work.
  std::thread presync_thread_;
  Mutex presync_mu_;
  CondVar presync_cv_;
  bool presync_requested_ GUARDED_BY(presync_mu_) = false;
  bool presync_stop_ GUARDED_BY(presync_mu_) = false;
  int presync_fd_ GUARDED_BY(presync_mu_) = -1;
  Status presync_error_ GUARDED_BY(presync_mu_);
};

/// `shard-%03d` — the per-shard journal subdirectory under the configured
/// journal_dir when ingest_shards > 1. Each subdirectory is a complete
/// journal in its own right (LOCK, segments, BASE); the flat layout is
/// reserved for single-shard deployments, so a layout mismatch between the
/// on-disk journal and the configured shard count is detectable before any
/// record is read.
std::string ShardJournalDirName(int shard);
/// Parses a shard subdirectory name back into its shard index; false for
/// other names.
bool ParseShardJournalDirName(const std::string& name, int* shard);

}  // namespace retrasyn

#endif  // RETRASYN_JOURNAL_JOURNAL_WRITER_H_
