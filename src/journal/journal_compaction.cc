#include "journal/journal_compaction.h"

#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "common/file_io.h"
#include "journal/journal_writer.h"

namespace retrasyn {

namespace {

void PutFixed64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t GetFixed64(const char* data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

void PutFixed32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t GetFixed32(const char* data) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

Status WriteJournalBase(const std::string& dir, const JournalBase& base) {
  std::string payload;
  payload.append(kJournalBaseMagic, sizeof(kJournalBaseMagic));
  payload.push_back(static_cast<char>(kJournalBaseFormatVersion));
  PutFixed64(base.first_surviving_index, &payload);
  PutFixed64(static_cast<uint64_t>(base.base_round), &payload);
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  PutFixed32(crc, &payload);

  const std::string final_path = dir + "/" + kJournalBaseFileName;
  const std::string tmp_path = final_path + ".tmp";
  {
    auto file = AppendableFile::Open(tmp_path);
    if (!file.ok()) return file.status();
    AppendableFile tmp = std::move(file).value();
    RETRASYN_RETURN_NOT_OK(tmp.Append(payload));
    RETRASYN_RETURN_NOT_OK(tmp.Sync());
    RETRASYN_RETURN_NOT_OK(tmp.Close());
  }
  RETRASYN_RETURN_NOT_OK(RenameFile(tmp_path, final_path));
  return SyncDir(dir);
}

Result<JournalBase> ReadJournalBase(const std::string& dir) {
  const std::string path = dir + "/" + kJournalBaseFileName;
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = contents.value();
  if (data.size() != kJournalBaseFileSize) {
    return Status::IOError("journal BASE file " + path + " has " +
                           std::to_string(data.size()) +
                           " bytes, expected exactly " +
                           std::to_string(kJournalBaseFileSize));
  }
  if (std::memcmp(data.data(), kJournalBaseMagic, sizeof(kJournalBaseMagic)) !=
      0) {
    return Status::IOError("journal BASE file " + path + " has a bad magic");
  }
  const uint8_t version =
      static_cast<uint8_t>(data[sizeof(kJournalBaseMagic)]);
  if (version != kJournalBaseFormatVersion) {
    return Status::IOError("journal BASE file " + path +
                           " has unsupported format version " +
                           std::to_string(version));
  }
  const size_t payload_size = kJournalBaseFileSize - 4;
  const uint32_t stored_crc = GetFixed32(data.data() + payload_size);
  if (Crc32c(data.data(), payload_size) != stored_crc) {
    return Status::IOError("journal BASE file " + path +
                           " fails its checksum");
  }
  JournalBase base;
  base.first_surviving_index = GetFixed64(data.data() + 9);
  base.base_round = static_cast<int64_t>(GetFixed64(data.data() + 17));
  if (base.base_round < 0) {
    return Status::IOError("journal BASE file " + path +
                           " declares a negative base round");
  }
  return base;
}

Status RetireJournalSegments(const std::string& dir,
                             uint64_t first_surviving_index,
                             int64_t base_round) {
  RETRASYN_RETURN_NOT_OK(
      WriteJournalBase(dir, JournalBase{first_surviving_index, base_round}));
  // BASE is durable: the prefix is dead whether or not the unlinks below
  // complete. Delete what we can and make the removals durable.
  auto names = ListDirectory(dir);
  if (!names.ok()) return names.status();
  bool removed = false;
  for (const std::string& name : names.value()) {
    uint64_t index = 0;
    if (JournalWriter::ParseSegmentFileName(name, &index) &&
        index < first_surviving_index) {
      RETRASYN_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
      removed = true;
    }
  }
  return removed ? SyncDir(dir) : Status::OK();
}

}  // namespace retrasyn
