// Versioned binary wire format for the ingestion event journal.
//
// The journal records the full session event vocabulary — the exact inputs
// IngestSession accepts — so a crashed service can be reconstructed by
// replaying them through a fresh session:
//
//   Enter(user, point)   the user's stream begins at `point`
//   Move(user, point)    the user's next report
//   Quit(user)           the user leaves
//   Tick                 the open round closed
//   AdvanceTo(t)         every round up to t closed (codec vocabulary; the
//                        live session emits one Tick per closed round, but
//                        readers accept AdvanceTo so compacted or externally
//                        produced journals can skip idle stretches)
//
// Segment layout (see docs/durability.md for the diagram):
//
//   +--------+---------+-------------+----------+ ... +----------+
//   | magic  | version | fingerprint | record 0 |     | record N |
//   | 8 B    | 1 B     | 8 B, LE     |          |     |          |
//   +--------+---------+-------------+----------+ ... +----------+
//
// The fingerprint identifies the deployment the journal belongs to (grid /
// state space / engine config — whatever the writer's owner hashes into
// it). Replay under a different configuration would not fail loudly — most
// events would still be *accepted*, just resolved to different cells — so
// recovery checks the fingerprint instead of silently diverging.
//
// Record framing:
//
//   +-------------+---------------------+------------------+
//   | payload_len | payload             | CRC32C(payload)  |
//   | varint      | payload_len bytes   | 4 B little-endian|
//   +-------------+---------------------+------------------+
//
//   payload = type byte + type-specific fields. User ids are varints;
//   coordinates are the raw IEEE-754 bit patterns (8 bytes little-endian),
//   because replay must relocate the *identical* double to reproduce a
//   byte-identical service. Timestamps are zigzag varints.
//
// Decoding classifies failures so the reader can tell a torn tail from rot:
//   kOutOfRange      — the buffer ends mid-record (clean truncation point)
//   kIOError         — framing intact but the checksum does not match
//   kInvalidArgument — well-framed garbage (unknown type, trailing bytes)
// All three truncate the journal when they occur in the *last* segment; any
// of them mid-journal is unrecoverable corruption.

#ifndef RETRASYN_JOURNAL_EVENT_CODEC_H_
#define RETRASYN_JOURNAL_EVENT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "geo/point.h"

namespace retrasyn {

enum class JournalEventType : uint8_t {
  kEnter = 1,
  kMove = 2,
  kQuit = 3,
  kTick = 4,
  kAdvanceTo = 5,
};

const char* JournalEventTypeName(JournalEventType type);

struct JournalEvent {
  JournalEventType type = JournalEventType::kTick;
  uint64_t user = 0;      ///< kEnter / kMove / kQuit
  Point location{};       ///< kEnter / kMove
  int64_t target_t = 0;   ///< kAdvanceTo

  static JournalEvent Enter(uint64_t user, const Point& location) {
    JournalEvent e;
    e.type = JournalEventType::kEnter;
    e.user = user;
    e.location = location;
    return e;
  }
  static JournalEvent Move(uint64_t user, const Point& location) {
    JournalEvent e;
    e.type = JournalEventType::kMove;
    e.user = user;
    e.location = location;
    return e;
  }
  static JournalEvent Quit(uint64_t user) {
    JournalEvent e;
    e.type = JournalEventType::kQuit;
    e.user = user;
    return e;
  }
  static JournalEvent Tick() { return JournalEvent{}; }
  static JournalEvent AdvanceTo(int64_t t) {
    JournalEvent e;
    e.type = JournalEventType::kAdvanceTo;
    e.target_t = t;
    return e;
  }

  /// True for the record kinds that close rounds (the fsync points of
  /// FsyncPolicy::kEveryRound and the only legal segment-rotation points).
  bool is_round_boundary() const {
    return type == JournalEventType::kTick ||
           type == JournalEventType::kAdvanceTo;
  }

  friend bool operator==(const JournalEvent& a, const JournalEvent& b) {
    return a.type == b.type && a.user == b.user && a.location == b.location &&
           a.target_t == b.target_t;
  }
};

/// The 8-byte magic + 1-byte format version + 8-byte deployment
/// fingerprint every segment starts with.
inline constexpr char kJournalMagic[8] = {'R', 'S', 'Y', 'N',
                                          'J', 'R', 'N', 'L'};
inline constexpr uint8_t kJournalFormatVersion = 1;
inline constexpr size_t kSegmentHeaderSize = sizeof(kJournalMagic) + 1 + 8;

/// Appends the segment header (magic + version + fingerprint) to \p out.
void AppendSegmentHeader(uint64_t fingerprint, std::string* out);

/// Verifies the segment header at \p *offset, advances past it, and returns
/// the stored fingerprint. kOutOfRange when the buffer ends inside the
/// header (torn header), kInvalidArgument on a magic/version mismatch.
Status CheckSegmentHeader(const char* data, size_t size, size_t* offset,
                          uint64_t* fingerprint);

// --- varint primitives (LEB128; exposed for tests) -------------------------

void PutVarint64(uint64_t value, std::string* out);
/// False when the buffer ends mid-varint or the varint overflows 64 bits
/// (the caller maps the two cases via the surrounding record frame).
bool GetVarint64(const char* data, size_t size, size_t* offset,
                 uint64_t* value);

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// --- record framing ---------------------------------------------------------

/// Appends \p event as one framed record (length varint + payload + CRC32C).
void EncodeRecord(const JournalEvent& event, std::string* out);

/// Decodes the record at \p *offset, advancing \p *offset past it on success
/// only. See the header comment for the failure classification.
Status DecodeRecord(const char* data, size_t size, size_t* offset,
                    JournalEvent* event);

}  // namespace retrasyn

#endif  // RETRASYN_JOURNAL_EVENT_CODEC_H_
