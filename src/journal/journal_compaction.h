// Journal compaction: deleting the prefix of segments a checkpoint has made
// redundant, without ever mistaking the deletion for data loss.
//
// The problem: recovery treats a missing segment as corruption (a gap in the
// contiguous numbering fails the scan). Compaction *wants* to remove
// segments, so it must first leave a durable declaration of what it removed.
// That declaration is the `BASE` file:
//
//   +--------+---------+------------------------+------------+----------+
//   | magic  | version | first_surviving_index  | base_round | CRC32C   |
//   | 8 B    | 1 B     | 8 B, little-endian     | 8 B, LE    | 4 B, LE  |
//   +--------+---------+------------------------+------------+----------+
//
// `first_surviving_index` is the lowest segment index compaction kept;
// `base_round` is the absolute number of closed rounds summarized by the
// deleted prefix — replay of the surviving suffix starts counting rounds
// from there. BASE is written atomically (tmp file + rename + directory
// fsync) *before* any segment is unlinked, so every crash point is safe:
//
//   * crash before the rename: an orphaned `*.tmp` the scanner removes;
//   * crash after the rename, before the unlinks: segments below the base
//     survive on disk but are declared dead — the scanner deletes them;
//   * crash mid-unlink: same, for whichever subset remains.
//
// RetireJournalSegments is the one-call compaction step the checkpoint
// manager uses; Read/WriteJournalBase are its (test-visible) halves.

#ifndef RETRASYN_JOURNAL_JOURNAL_COMPACTION_H_
#define RETRASYN_JOURNAL_JOURNAL_COMPACTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace retrasyn {

/// The durable "segments below this never existed" declaration.
struct JournalBase {
  /// Lowest segment index that still holds replayable data.
  uint64_t first_surviving_index = 0;
  /// Absolute closed-round count summarized by the deleted prefix; replay of
  /// the surviving segments resumes round numbering here.
  int64_t base_round = 0;
};

/// The BASE file name; never parsed as a segment.
inline constexpr char kJournalBaseFileName[] = "BASE";
/// 8-byte magic + 1-byte version the BASE file starts with.
inline constexpr char kJournalBaseMagic[8] = {'R', 'S', 'Y', 'N',
                                              'B', 'A', 'S', 'E'};
inline constexpr uint8_t kJournalBaseFormatVersion = 1;
/// magic + version + first_surviving_index + base_round + CRC32C.
inline constexpr size_t kJournalBaseFileSize =
    sizeof(kJournalBaseMagic) + 1 + 8 + 8 + 4;

/// \brief Atomically replaces `<dir>/BASE` (tmp + rename + dir fsync).
Status WriteJournalBase(const std::string& dir, const JournalBase& base);

/// \brief Reads `<dir>/BASE`. kNotFound when the journal has never been
/// compacted; kIOError on a truncated or checksum-corrupt file.
Result<JournalBase> ReadJournalBase(const std::string& dir);

/// \brief Retires every segment below \p first_surviving_index: durably
/// writes BASE first, then unlinks the dead segments and fsyncs the
/// directory. \p base_round is the absolute closed-round count at the end of
/// the last deleted segment. Idempotent — re-running after a crash finishes
/// the job.
Status RetireJournalSegments(const std::string& dir,
                             uint64_t first_surviving_index,
                             int64_t base_round);

}  // namespace retrasyn

#endif  // RETRASYN_JOURNAL_JOURNAL_COMPACTION_H_
