// RetraSyn engine: the end-to-end realization of Algorithm 1 of the paper,
// wiring together LDP collection, the global mobility model, the DMU
// mechanism, the adaptive allocation strategies, and the real-time
// synthesizer behind a single streaming interface.
//
// The engine also hosts the paper's ablation variants through configuration:
//   use_dmu = false  ->  AllUpdate  (whole model replaced every round, SV-D)
//   use_eq  = false  ->  NoEQ       (movement-only collection, no
//                                    termination/size adjustment, SV-D)
//
// Privacy accounting:
//  * budget division   — per-timestamp budgets recorded in a BudgetLedger;
//                        any w-window sums to at most epsilon.
//  * population division — every report uses the full epsilon, and the
//                        active/inactive/quitted status discipline with
//                        recycling at t - w guarantees each user reports at
//                        most once per window (audited by a
//                        ReportWindowTracker).

#ifndef RETRASYN_CORE_ENGINE_H_
#define RETRASYN_CORE_ENGINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/allocation.h"
#include "core/mobility_model.h"
#include "core/synthesizer.h"
#include "geo/state_space.h"
#include "journal/journal_options.h"
#include "ldp/aggregate.h"
#include "ldp/budget.h"
#include "stream/cell_stream.h"
#include "stream/feeder.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

enum class DivisionStrategy {
  kBudget,      ///< split epsilon across timestamps (RetraSyn_b)
  kPopulation,  ///< split users across timestamps   (RetraSyn_p)
};

const char* DivisionStrategyName(DivisionStrategy division);

/// \brief Where the heavy round-closing work (collection + model update +
/// synthesis + sink delivery) runs relative to the ingest thread.
enum class SyncPolicy {
  kInline,  ///< Tick() runs the whole round on the calling thread (default)
  kAsync,   ///< Tick() seals + enqueues; a background closer runs the round
};

/// \brief What Tick() does under SyncPolicy::kAsync when the round queue is
/// full (the closer has fallen behind the ingest rate).
enum class BackpressurePolicy {
  kBlock,     ///< block the ingest thread until the closer frees a slot
  kFailFast,  ///< fail the Tick with ResourceExhausted; the round stays open
              ///< with its events intact and the Tick may be retried later
};

/// \brief Uniform interface for all stream-release mechanisms (RetraSyn, its
/// ablation variants, and the LDP-IDS baselines), so the evaluation harness
/// and metrics treat them identically.
class StreamReleaseEngine {
 public:
  virtual ~StreamReleaseEngine() = default;

  /// Processes one timestamp of the input stream.
  virtual void Observe(const TimestampBatch& batch) = 0;

  /// Non-destructive snapshot of the evolving synthetic database over horizon
  /// \p num_timestamps (which must cover every timestamp observed so far).
  /// The engine keeps running; consumers may snapshot while the stream is
  /// still open.
  virtual CellStreamSet SnapshotRelease(int64_t num_timestamps) const = 0;

  /// Per-cell density of the live synthetic population — the real-time view
  /// downstream sinks consume after each round. All zeros before the first
  /// synthesis round.
  virtual std::vector<uint32_t> LiveDensity() const = 0;

  /// Closes all live synthetic streams and returns the synthetic database
  /// over the given horizon. The engine is finished afterwards. Legacy
  /// batch-pipeline entry point; prefer SnapshotRelease, which does not
  /// consume the engine.
  virtual CellStreamSet Finish(int64_t num_timestamps) = 0;

  virtual std::string name() const = 0;

  /// Registers the engine's metrics in \p telemetry (not owned; null
  /// detaches). Observation-only: attached or not, the released bytes are
  /// identical. Default: engines expose nothing.
  virtual void AttachTelemetry(Telemetry* telemetry) { (void)telemetry; }
};

struct RetraSynConfig {
  double epsilon = 1.0;
  int window = 20;
  DivisionStrategy division = DivisionStrategy::kPopulation;
  AllocationConfig allocation;
  /// false -> the AllUpdate ablation (no significant-transition selection).
  bool use_dmu = true;
  /// false -> the NoEQ ablation (movement-only model, frozen population).
  bool use_eq = true;
  /// Stream-length reweighting factor of Eq. 8 (the harness sets it to the
  /// dataset's average stream length, per SV-A).
  double lambda = 13.61;
  CollectionMode collection_mode = CollectionMode::kAggregateSim;
  /// Frequency oracle. The paper uses OUE (optimal variance for the large
  /// transition-state domains here); kAuto switches to GRR per round when the
  /// domain/budget combination favors it.
  OracleKind oracle = OracleKind::kOue;
  /// Consistency post-processing applied to each round's frequency estimates
  /// (privacy-free by Thm. 2). kClip keeps every state's (non-negative)
  /// estimate, preserving per-cell relative movement structure even for
  /// low-traffic cells — synthesis only consumes per-cell renormalized
  /// distributions, so the spurious global tail mass clipping leaves behind
  /// is largely harmless downstream. kNormSub (the LDPTrace-style consistency
  /// step) yields a far more accurate global frequency vector but zeroes all
  /// outgoing mass of weak cells, freezing their synthetic dynamics; see
  /// bench_ablation for the measured trade-off.
  Postprocess postprocess = Postprocess::kClip;
  uint64_t seed = 1;
  /// Worker threads for the synthesis hot path. 1 = serial (default); 0 =
  /// resolve to the hardware concurrency (or the shared pool's size) at
  /// engine construction. For n > 1 the synthetic output is byte-identical
  /// for a fixed (seed, num_threads) on any machine, but differs from the
  /// serial stream. Values above kMaxThreads are rejected by Validate.
  int num_threads = 1;
  /// A pool shared across engines/services (multi-tenant deployments: one
  /// pool, several sessions). When null and num_threads > 1 the engine owns
  /// a private pool. For num_threads >= 1 the pool's size does not affect
  /// results — only num_threads does; num_threads = 0 resolves the chunk
  /// count from the pool size (or hardware), trading that reproducibility
  /// away explicitly.
  std::shared_ptr<ThreadPool> thread_pool;
  /// When false, synthesis samples through legacy linear scans instead of the
  /// cached alias tables (A/B benchmarking; distributionally identical).
  bool use_sampler_cache = true;
  /// Stream-index lifecycle over unbounded horizons. When true (default) the
  /// service's IngestSession re-issues the index of a quitted stream once its
  /// quit round has left the w-window — the last round the stream could
  /// possibly have reported in — and the engine retires the matching dense
  /// status/report-slot entries by the same rule, so per-user state is
  /// bounded by the peak concurrent population plus one window of churn
  /// instead of growing with every stream ever seen. Retirement is a
  /// deterministic function of the sealed batch sequence alone (never of
  /// closer timing or RNG), so Inline, Async, and journal replay all derive
  /// byte-identical index assignments, and the released bytes are identical
  /// with recycling on or off. false = legacy cumulative indices for A/B.
  bool recycle_stream_indices = true;
  /// Ingest shards: the service's IngestSession partitions users across this
  /// many shards (hash of user id), each owning its slice of validation,
  /// pending-event state, and — when journaling — its own journal segment
  /// stream under journal_dir/shard-NNN. Shards admit events concurrently
  /// (one producer thread per shard scales batch production across cores);
  /// Tick() seals every shard in parallel and k-way-merges the sorted shard
  /// batches into the same deterministic observation sequence a single shard
  /// produces, so for a fixed shard count the released bytes are identical
  /// to ingest_shards = 1. The shard count is part of the deployment
  /// fingerprint: a journal written under N shards only replays under N.
  /// Values above kMaxIngestShards are rejected by Validate.
  int ingest_shards = 1;
  /// When true (default) the session reuses its per-shard seal scratch and
  /// recycles TimestampBatch observation buffers across rounds, so sealing
  /// at steady state allocates nothing proportional to the population.
  /// false = allocate fresh per round (A/B; byte-identical output).
  bool reuse_seal_buffers = true;
  /// kAsync moves the round-closing work off the ingest thread onto a
  /// dedicated closer worker per service (the parallel synthesis inside still
  /// uses thread_pool/num_threads). For a fixed (seed, num_threads) the
  /// release sequence and snapshots are byte-identical to kInline; only the
  /// thread that produces them changes. Requires TrajectoryService::Drain()
  /// before SnapshotRelease(). Ignored by bare RetraSynEngine users — the
  /// service layer owns the queue.
  SyncPolicy sync_policy = SyncPolicy::kInline;
  /// Bounded depth of the async round queue (sealed batches waiting for the
  /// closer). The TrajectoryService factories require >= 1
  /// (ServiceOptions::Validate). Ignored under kInline and by bare engines.
  int round_queue_capacity = 8;
  /// Tick() behavior when the async round queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Directory of the durable event journal (write-ahead log of every
  /// accepted Enter/Move/Quit/Tick). Empty disables journaling. Non-empty:
  /// TrajectoryService::Create requires the directory to hold no existing
  /// journal (fresh deployment); TrajectoryService::Recover replays an
  /// existing one and continues appending. Ignored by bare engines — the
  /// service layer owns the journal. See docs/durability.md.
  std::string journal_dir;
  /// When the journal fsyncs. kEveryRound (default) makes every closed round
  /// crash-durable; kNever trusts the OS; kEveryRecord hardens every event.
  FsyncPolicy journal_fsync = FsyncPolicy::kEveryRound;
  /// Journal segment rotation threshold in bytes.
  int64_t journal_segment_bytes = 64 << 20;
  /// Write a full service checkpoint every N closed rounds (0 = off).
  /// Requires journal_dir and checkpoint_dir. Recovery then loads the newest
  /// checkpoint and replays only the journal suffix behind it — O(window)
  /// instead of O(horizon) — and compaction retires journal segments older
  /// than the oldest retained checkpoint minus the w-window. Deliberately
  /// NOT part of the deployment fingerprint: cadence and retention may
  /// change across restarts. See docs/durability.md.
  int64_t checkpoint_every_rounds = 0;
  /// Directory for checkpoint and history spill files.
  std::string checkpoint_dir;
  /// Newest checkpoints kept on disk (>= 1; default 2, so one corrupted
  /// checkpoint still leaves a bounded-replay recovery path).
  int checkpoint_retain = 2;
  /// Move closed synthetic streams into history spill files at every
  /// checkpoint, keeping steady-state memory flat over unbounded horizons;
  /// SnapshotRelease reads them back on demand.
  bool checkpoint_spill_history = true;
  /// Service-owned telemetry (metrics registry + round tracing; see
  /// src/telemetry/). Observation-only by contract — released bytes are
  /// byte-identical with it on or off — and deliberately NOT part of the
  /// deployment fingerprint, so it may be toggled across restarts of the
  /// same journaled deployment. Ignored by bare engines.
  bool enable_telemetry = true;

  /// Upper bound Validate accepts for num_threads.
  static constexpr int kMaxThreads = 256;
  /// Upper bound Validate accepts for ingest_shards.
  static constexpr int kMaxIngestShards = 64;

  /// Rejects nonsensical configurations with a descriptive error instead of
  /// crashing the process. TrajectoryService::Create and the engine
  /// constructor both route through this.
  Status Validate() const;
};

/// \brief The complete mutable state of a RetraSynEngine at a round boundary
/// — everything a restored engine needs to continue the byte-identical
/// sequence an uninterrupted run would produce. Purely derived state (the
/// transition-sampler cache, which rebuilds deterministically from the
/// restored model, and the wall-clock accumulators) is deliberately absent.
/// Produced by SaveCheckpointState, persisted by the checkpoint subsystem
/// (src/checkpoint/), consumed by RestoreCheckpointState.
struct EngineCheckpointState {
  // RNG + collection progress.
  std::array<uint64_t, 4> rng_state = {0, 0, 0, 0};
  bool collected_once = false;
  uint64_t total_reports = 0;

  // Global mobility model (stored frequencies are already clamped).
  std::vector<double> model_freq;
  bool model_initialized = false;

  // Synthesizer: the evolving T_syn. `finished` holds only the in-memory
  // remainder — history the checkpoint manager spilled to disk is carried by
  // the checkpoint's manifest, not here. `total_points` counts spilled
  // points too.
  std::vector<CellStream> live;
  std::vector<CellStream> finished;
  uint64_t total_points = 0;
  bool synth_initialized = false;

  // Adaptive-allocation histories (Eq. 9-10).
  int64_t allocator_rounds_recorded = 0;
  std::deque<std::vector<double>> allocator_freq_history;
  std::deque<double> allocator_ratio_history;

  // Budget ledger (budget division; the clock advances under population too).
  std::deque<std::pair<int64_t, double>> ledger_spends;
  double ledger_window_sum = 0.0;
  int64_t ledger_last_t = std::numeric_limits<int64_t>::min();
  double ledger_max_window_spend = 0.0;

  // Report-per-window audit, sorted by user for deterministic bytes.
  std::vector<std::pair<uint64_t, int64_t>> tracker_last_report;
  bool tracker_violation = false;
  int64_t tracker_num_reports = 0;

  // Dense per-user bookkeeping, at its exact current size (the size itself
  // steers future geometric growth, so it is part of the replayed behavior).
  std::vector<uint8_t> status;
  std::vector<int64_t> report_slot;  ///< kRandom only, else empty
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> reported_at;
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> quitted_at;
  uint64_t total_retired = 0;
};

/// \brief Per-component wall-clock accumulators (paper Table V).
struct ComponentTimes {
  TimeAccumulator user_side;
  TimeAccumulator model_construction;
  TimeAccumulator dmu;
  TimeAccumulator synthesis;

  double TotalMeanPerTimestamp() const {
    return user_side.Mean() + model_construction.Mean() + dmu.Mean() +
           synthesis.Mean();
  }
};

class RetraSynEngine : public StreamReleaseEngine {
 public:
  RetraSynEngine(const StateSpace& states, const RetraSynConfig& config);

  void Observe(const TimestampBatch& batch) override;
  CellStreamSet SnapshotRelease(int64_t num_timestamps) const override;
  std::vector<uint32_t> LiveDensity() const override;
  CellStreamSet Finish(int64_t num_timestamps) override;
  std::string name() const override;
  /// Rounds/reports counters plus the four per-component latency histograms
  /// of ComponentTimes, recorded at the same points Observe() already times;
  /// forwards to the synthesizer (step latency, points, live streams,
  /// sampler-cache rebuilds).
  void AttachTelemetry(Telemetry* telemetry) override;

  const RetraSynConfig& config() const { return config_; }
  const GlobalMobilityModel& model() const { return model_; }
  /// Live view of the evolving synthetic database (real-time consumers).
  const Synthesizer& synthesizer() const { return synthesizer_; }
  const ComponentTimes& component_times() const { return times_; }
  /// Budget accounting (budget division; records zeros under population
  /// division).
  const BudgetLedger& budget_ledger() const { return ledger_; }
  /// Report-per-window audit (population division).
  const ReportWindowTracker& report_tracker() const { return tracker_; }
  uint64_t total_reports() const { return total_reports_; }
  /// The pool driving the synthesis phase (shared or engine-owned); nullptr
  /// when the engine runs serially.
  const ThreadPool* thread_pool() const { return pool_.get(); }

  /// Stream indices retired at the start of the last Observe(): their stream
  /// quit >= window rounds before that batch, so the dense slots were reset
  /// and the index may carry a new stream from that batch on. Empty unless
  /// recycle_stream_indices is on (population division — budget division
  /// keeps no per-user state). The service copies this into the round's
  /// RoundRelease, so the retired flow rides the round-handler path: under
  /// SyncPolicy::kAsync it is produced and consumed on the closer worker,
  /// never racing the ingest thread.
  const std::vector<uint32_t>& retired_last_round() const {
    return retired_last_round_;
  }
  /// Total indices retired over the engine's lifetime.
  uint64_t total_retired() const { return total_retired_; }
  /// Current size of the dense per-user bookkeeping — bounded by the index
  /// high-water mark, which recycling keeps at O(peak live + window churn).
  size_t dense_user_slots() const { return status_.size(); }

  // --- Checkpointing (src/checkpoint/) ------------------------------------

  /// Captures the engine's complete mutable state. Call only at a round
  /// boundary (after Observe returns); under SyncPolicy::kAsync that means
  /// on the closer worker, where the service's checkpoint trigger runs.
  EngineCheckpointState SaveCheckpointState() const;

  /// Restores a freshly constructed engine (same StateSpace + config as the
  /// checkpointed one — the checkpoint fingerprint enforces that upstream)
  /// to the captured state. Rejects structurally impossible state with
  /// InvalidArgument instead of corrupting dense bookkeeping.
  Status RestoreCheckpointState(EngineCheckpointState state);

  /// Moves the synthesizer's finished-stream history out (history spill):
  /// the caller becomes responsible for serving those streams in snapshots.
  std::vector<CellStream> TakeFinishedStreams() {
    return synthesizer_.TakeFinished();
  }

 private:
  enum class UserStatus : uint8_t { kUnknown = 0, kActive, kInactive, kQuitted };

  static constexpr int64_t kNoSlot = std::numeric_limits<int64_t>::min();

  /// Grows the dense per-user bookkeeping to cover \p user.
  void EnsureUser(uint32_t user);

  /// Resets the dense slots of indices whose stream quit at or before
  /// t - window (their last possible report has left the w-window), making
  /// them safe for the session to re-issue. No-op under
  /// recycle_stream_indices = false.
  void RetireQuitted(int64_t t);

  /// Registers arrivals, recycles users whose report left the window, and
  /// returns the indices (into batch.observations) of eligible reporters.
  std::vector<uint32_t> PrepareEligible(const TimestampBatch& batch);

  /// Chooses the reporting subset (population division).
  std::vector<uint32_t> ChooseReporters(const TimestampBatch& batch,
                                        const std::vector<uint32_t>& eligible);

  /// Marks chosen users inactive and quitters quitted after a round.
  void CommitStatuses(const TimestampBatch& batch,
                      const std::vector<uint32_t>& chosen);

  bool ObservationEligible(const UserObservation& obs) const;

  const StateSpace* states_;
  RetraSynConfig config_;
  Rng rng_;
  TransitionCollector collector_;
  GlobalMobilityModel model_;
  Synthesizer synthesizer_;
  std::shared_ptr<ThreadPool> pool_;  ///< shared via config or engine-owned
  PortionAllocator allocator_;
  BudgetLedger ledger_;
  ReportWindowTracker tracker_;
  ComponentTimes times_;
  bool collected_once_ = false;

  // Population-division bookkeeping, dense over the contiguous user indices
  // the service layer / feeder assign (no per-observation hashing).
  std::vector<UserStatus> status_;
  std::vector<int64_t> report_slot_;  ///< kRandom only; kNoSlot = unscheduled
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> reported_at_;
  /// Indices whose stream quit, bucketed by quit round; a bucket retires
  /// once its round leaves the w-window. Empty under
  /// recycle_stream_indices = false. An index sits in at most one bucket:
  /// it can only quit again after being re-issued, which happens strictly
  /// after its previous bucket retired.
  std::deque<std::pair<int64_t, std::vector<uint32_t>>> quitted_at_;
  std::vector<uint32_t> retired_last_round_;
  uint64_t total_retired_ = 0;

  uint64_t total_reports_ = 0;

  // Telemetry (all null when detached; the Observe hot path pays one null
  // check per already-timed phase).
  Counter* rounds_metric_ = nullptr;
  Counter* reports_metric_ = nullptr;
  LatencyHistogram* user_side_hist_ = nullptr;
  LatencyHistogram* model_hist_ = nullptr;
  LatencyHistogram* dmu_hist_ = nullptr;
  LatencyHistogram* synthesis_hist_ = nullptr;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_ENGINE_H_
