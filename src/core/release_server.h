// Real-time downstream analytics over the private release (paper SI: traffic
// monitoring, congestion prediction, emergency response).
//
// The server is a ReleaseSink: subscribe it to a TrajectoryService and it
// records each closed round's released density, serving location-based
// queries over any time window seen so far — without ever touching raw user
// data and without consuming additional privacy budget (post-processing,
// Thm. 2). It is the online counterpart of the post-hoc DensityIndex: a
// consistency test certifies that its answers equal the post-hoc answers
// computed from the finished release.
//
// The query surface is hardened for service use: timestamps outside the
// ingested horizon (including negative ones) answer zero/empty, and range
// queries are clamped to the grid and horizon instead of indexing out of
// bounds.
//
// Retention: by default every round's density is kept forever, which grows
// without bound on an infinite stream — the same leak class as cumulative
// stream indices. Construct with a retention horizon to keep only the
// trailing `retention_rounds` rounds; evicted timestamps answer zero/empty,
// exactly like timestamps that were never ingested (the out-of-horizon
// contract, extended backwards).

#ifndef RETRASYN_CORE_RELEASE_SERVER_H_
#define RETRASYN_CORE_RELEASE_SERVER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/engine.h"
#include "core/release_sink.h"
#include "geo/spatial_grid.h"
#include "metrics/queries.h"

namespace retrasyn {

class ReleaseServer : public ReleaseSink {
 public:
  /// \param retention_rounds  Query horizon: how many trailing rounds stay
  /// queryable. 0 (default) retains everything — only suitable for bounded
  /// streams; long-running deployments should set it to their largest query
  /// window so memory stays O(retention * cells) instead of O(horizon).
  explicit ReleaseServer(const SpatialGrid& grid, int64_t retention_rounds = 0);

  /// ReleaseSink: records one closed round. Rounds must arrive in strictly
  /// increasing timestamp order (the service guarantees this); a server
  /// subscribed mid-stream zero-backfills the rounds it missed so round t
  /// always lands at index t. A duplicate or out-of-order round returns
  /// InvalidArgument and records nothing — mixing OnRound with the legacy
  /// Ingest() path can no longer silently misalign DensityAt/RangeCount.
  Status OnRound(const RoundRelease& round) override;

  /// Legacy pull-based ingestion: records the engine's current live density
  /// at the next expected timestamp; call once per timestamp, right after
  /// engine.Observe(). Routes through the same accounting as OnRound, so the
  /// two paths interleave consistently. Fails (InvalidArgument) when the
  /// engine's density cardinality does not match this server's grid. Prefer
  /// subscribing the server to a TrajectoryService instead.
  Status Ingest(const StreamReleaseEngine& engine);

  /// Number of ingested timestamps (also the next expected timestamp).
  int64_t horizon() const { return next_t_; }

  /// The configured retention horizon; 0 = unlimited.
  int64_t retention_rounds() const { return retention_; }

  /// The earliest timestamp still retained (0 until eviction starts).
  /// Retained rounds are [first_retained(), horizon()).
  int64_t first_retained() const { return first_retained_; }

  /// Released per-cell density at timestamp \p t. All-zero for timestamps
  /// outside the retained horizon (not yet ingested, negative, or evicted
  /// by the retention bound).
  const std::vector<uint32_t>& DensityAt(int64_t t) const;

  /// Released active population at \p t; zero outside the retained horizon.
  uint64_t ActiveAt(int64_t t) const;

  /// Points inside a spatio-temporal range query (clamped to the retained
  /// horizon and the grid bounds; evicted rounds contribute zero). Row/column
  /// rectangles only exist on the uniform lattice: aborts when this server's
  /// grid has no uniform view — use BoxCount for backend-agnostic queries.
  uint64_t RangeCount(const RangeQuery& query) const;

  /// Backend-agnostic spatial count: points over [t_start, t_end) in cells
  /// whose center lies inside \p box (the same region semantics as the
  /// post-hoc DensityIndex::CountBox, so the consistency contract holds for
  /// every grid backend).
  uint64_t BoxCount(const BoundingBox& box, int64_t t_start,
                    int64_t t_end) const;

  /// The k busiest cells over [t_start, t_end), busiest first.
  std::vector<CellId> TopHotspots(int64_t t_start, int64_t t_end,
                                  int k) const;

  /// Mean released population over the trailing \p window timestamps ending
  /// at the latest ingested timestamp; a simple congestion baseline. Zero
  /// when nothing was ingested or \p window < 1.
  double TrailingMeanActive(int window) const;

 private:
  /// Shared accounting for both ingestion paths: records \p density at
  /// timestamp \p t, zero-backfilling [next_t_, t). Fails on t < next_t_
  /// (duplicate/out-of-order) or a density of the wrong cardinality.
  Status Record(int64_t t, std::vector<uint32_t> density, uint64_t active);

  const SpatialGrid* grid_;
  std::vector<uint32_t> zeros_;  ///< out-of-retention answer
  /// Retained rounds, densities and totals; index 0 holds timestamp
  /// first_retained_. Deques so retention eviction pops the front in O(1)
  /// without invalidating DensityAt's returned references to other rounds.
  std::deque<std::vector<uint32_t>> density_;
  std::deque<uint64_t> active_;
  int64_t next_t_ = 0;           ///< next expected timestamp
  int64_t retention_ = 0;        ///< trailing rounds kept; 0 = unlimited
  int64_t first_retained_ = 0;   ///< timestamp held at density_[0]
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_RELEASE_SERVER_H_
