// Real-time downstream analytics over the private release (paper SI: traffic
// monitoring, congestion prediction, emergency response).
//
// The server ingests the engine's live synthetic view once per timestamp and
// serves location-based queries over any time window seen so far — without
// ever touching raw user data and without consuming additional privacy
// budget (post-processing, Thm. 2). It is the online counterpart of the
// post-hoc DensityIndex: a consistency test certifies that its answers equal
// the post-hoc answers computed from the finished release.

#ifndef RETRASYN_CORE_RELEASE_SERVER_H_
#define RETRASYN_CORE_RELEASE_SERVER_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "geo/grid.h"
#include "metrics/queries.h"

namespace retrasyn {

class ReleaseServer {
 public:
  explicit ReleaseServer(const Grid& grid);

  /// Records the engine's current live density; call once per timestamp,
  /// right after engine.Observe(). Timestamps are implicit and sequential
  /// from 0.
  void Ingest(const RetraSynEngine& engine);

  /// Number of ingested timestamps.
  int64_t horizon() const { return static_cast<int64_t>(density_.size()); }

  /// Released per-cell density at timestamp \p t (zeros before the engine's
  /// first synthesis round).
  const std::vector<uint32_t>& DensityAt(int64_t t) const;

  /// Released active population at \p t.
  uint64_t ActiveAt(int64_t t) const;

  /// Points inside a spatio-temporal range query (clamped to the ingested
  /// horizon).
  uint64_t RangeCount(const RangeQuery& query) const;

  /// The k busiest cells over [t_start, t_end), busiest first.
  std::vector<CellId> TopHotspots(int64_t t_start, int64_t t_end,
                                  int k) const;

  /// Mean released population over the trailing \p window timestamps ending
  /// at the latest ingested timestamp; a simple congestion baseline.
  double TrailingMeanActive(int window) const;

 private:
  const Grid* grid_;
  std::vector<std::vector<uint32_t>> density_;  ///< [t][cell]
  std::vector<uint64_t> active_;                ///< per-timestamp totals
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_RELEASE_SERVER_H_
