#include "core/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace retrasyn {

Synthesizer::Synthesizer(const StateSpace& states,
                         const SynthesizerConfig& config)
    : states_(&states), config_(config), cache_(states) {
  RETRASYN_CHECK(config.lambda > 0.0);
  RETRASYN_CHECK(config.num_threads >= 1);
}

std::vector<uint32_t> Synthesizer::LiveDensity() const {
  std::vector<uint32_t> counts(states_->num_cells(), 0);
  for (const CellStream& s : live_) ++counts[s.cells.back()];
  return counts;
}

double Synthesizer::QuitProbabilityAt(const GlobalMobilityModel& model,
                                      CellId at) const {
  if (config_.use_sampler_cache) return cache_.QuitProbability(at);
  return model.QuitProbability(at);
}

namespace {

// The pre-cache sampler, verbatim (sum-then-walk, one RNG draw per call).
// The legacy A/B path must reproduce the *historical* per-point cost, so it
// deliberately does not route through the rewritten Rng::Discrete — using it
// would charge the baseline one draw per weight and inflate the measured
// alias-table speedup.
size_t DiscreteTwoPassLegacy(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = rng.UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    target -= w;
    if (target < 0.0) return i;
  }
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size();
}

}  // namespace

CellId Synthesizer::SampleNextCellLinear(const GlobalMobilityModel& model,
                                         CellId from, Rng& rng) const {
  const auto& nbrs = states_->grid().Neighbors(from);
  std::vector<double> weights(nbrs.size());
  const StateId offset = states_->MoveOffset(from);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    weights[i] = std::max(0.0, model.frequency(offset + static_cast<StateId>(i)));
  }
  const size_t pick = DiscreteTwoPassLegacy(rng, weights);
  if (pick >= nbrs.size()) return from;  // no observed mass: dwell in place
  return nbrs[pick];
}

CellId Synthesizer::SampleNextCell(const GlobalMobilityModel& model,
                                   CellId from, Rng& rng) const {
  if (config_.use_sampler_cache) return cache_.SampleNextCell(from, rng);
  return SampleNextCellLinear(model, from, rng);
}

void Synthesizer::Spawn(const GlobalMobilityModel& model, uint32_t count,
                        int64_t t, Rng& rng) {
  if (count == 0) return;
  const uint32_t num_cells = states_->num_cells();
  // Derive the start-cell distribution once per call — never per spawned
  // stream. With the cache this is a lookup of an already-built alias table;
  // on the legacy path the distribution vector is hoisted out of the loop.
  std::vector<double> start_weights;
  if (!config_.use_sampler_cache) {
    if (!config_.random_init) {
      start_weights = model.EnterDistribution();
    } else {
      start_weights.assign(num_cells, 0.0);
      for (CellId c = 0; c < num_cells; ++c) {
        const StateId offset = states_->MoveOffset(c);
        const size_t degree = states_->grid().Neighbors(c).size();
        for (size_t i = 0; i < degree; ++i) {
          start_weights[c] += std::max(0.0, model.frequency(offset + i));
        }
      }
    }
  }
  for (uint32_t i = 0; i < count; ++i) {
    CellId cell;
    if (config_.use_sampler_cache) {
      cell = config_.random_init ? cache_.SampleMoveMarginalCell(rng)
                                 : cache_.SampleEnterCell(rng);
    } else {
      cell = static_cast<CellId>(DiscreteTwoPassLegacy(rng, start_weights));
    }
    if (cell >= num_cells) {
      // No mass in the model yet: uniform fallback.
      cell = static_cast<CellId>(
          rng.UniformInt(static_cast<uint64_t>(num_cells)));
    }
    CellStream stream;
    stream.enter_time = t;
    stream.cells.push_back(cell);
    ++total_points_;
    live_.push_back(std::move(stream));
  }
}

void Synthesizer::Initialize(const GlobalMobilityModel& model,
                             uint32_t target_size, int64_t t, Rng& rng) {
  RETRASYN_CHECK(!initialized_);
  Stopwatch step_watch;
  if (config_.use_sampler_cache) cache_.Sync(model);
  Spawn(model, target_size, t, rng);
  initialized_ = true;
  if (step_hist_ != nullptr) {
    RecordStepTelemetry(step_watch.ElapsedSeconds(), /*finished_delta=*/0);
  }
}

void Synthesizer::AttachTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr) {
    step_hist_ = nullptr;
    points_metric_ = nullptr;
    finished_metric_ = nullptr;
    live_metric_ = nullptr;
    cache_syncs_metric_ = nullptr;
    cache_full_rebuilds_metric_ = nullptr;
    cache_cell_rebuilds_metric_ = nullptr;
    return;
  }
  MetricsRegistry& registry = telemetry->registry();
  step_hist_ = registry.GetHistogram(
      "retrasyn_synthesis_step_seconds",
      "One synthesis round over the live set (quit + size-adjust + "
      "generate)");
  points_metric_ = registry.GetCounter("retrasyn_synthesis_points_total",
                                       "Synthetic trajectory points generated");
  finished_metric_ = registry.GetCounter(
      "retrasyn_synthesis_streams_finished_total",
      "Synthetic streams terminated (Eq. 8 quits + size-adjustment victims)");
  live_metric_ = registry.GetGauge("retrasyn_synthesis_live_streams",
                                   "Live synthetic streams after the last "
                                   "round");
  cache_syncs_metric_ = registry.GetCounter(
      "retrasyn_sampler_cache_syncs_total",
      "Sampler-cache Sync calls that found the cache stale");
  cache_full_rebuilds_metric_ = registry.GetCounter(
      "retrasyn_sampler_cache_full_rebuilds_total",
      "Sampler-cache full invalidations processed");
  cache_cell_rebuilds_metric_ = registry.GetCounter(
      "retrasyn_sampler_cache_cell_rebuilds_total",
      "Per-cell movement tables re-derived by the sampler cache");
  // Counters report deltas against these baselines, so attaching mid-run
  // (or re-attaching) never double-counts work already recorded.
  points_reported_ = total_points_;
  cache_reported_ = cache_.stats();
}

void Synthesizer::RecordStepTelemetry(double seconds,
                                      uint64_t finished_delta) {
  step_hist_->Record(seconds);
  // Finish() resets total_points_; resynchronize instead of underflowing.
  if (total_points_ < points_reported_) points_reported_ = total_points_;
  points_metric_->Add(total_points_ - points_reported_);
  points_reported_ = total_points_;
  if (finished_delta > 0) finished_metric_->Add(finished_delta);
  live_metric_->Set(static_cast<int64_t>(live_.size()));
  const SamplerCacheStats& stats = cache_.stats();
  cache_syncs_metric_->Add(stats.syncs - cache_reported_.syncs);
  cache_full_rebuilds_metric_->Add(stats.full_rebuilds -
                                   cache_reported_.full_rebuilds);
  cache_cell_rebuilds_metric_->Add(stats.cell_rebuilds -
                                   cache_reported_.cell_rebuilds);
  cache_reported_ = stats;
}

int Synthesizer::EffectiveChunks(size_t work_items) const {
  if (config_.num_threads <= 1) return 1;
  // Below this size, per-chunk overhead dominates any gain. The chunk count
  // deliberately ignores the hardware concurrency: it must be a pure function
  // of (config, work size) so a run is reproducible on any machine.
  constexpr size_t kMinItemsPerChunk = 2048;
  const int by_work =
      static_cast<int>(std::max<size_t>(1, work_items / kMinItemsPerChunk));
  return std::min(config_.num_threads, by_work);
}

void Synthesizer::QuitAndGeneratePhase(const GlobalMobilityModel& model,
                                       Rng& rng) {
  const size_t n = live_.size();
  quit_flags_.assign(n, 0);
  proposed_.resize(n);
  auto process = [&](size_t i, Rng& r) {
    CellStream& stream = live_[i];
    const CellId at = stream.cells.back();
    if (config_.use_quit) {
      const double base = QuitProbabilityAt(model, at);
      const double len = static_cast<double>(stream.cells.size());
      if (r.Bernoulli(std::min(1.0, len / config_.lambda * base))) {
        quit_flags_[i] = 1;
        return;
      }
    }
    proposed_[i] = SampleNextCell(model, at, r);
  };
  const int chunks = EffectiveChunks(n);
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) process(i, rng);
    return;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  chunk_rngs_.clear();
  for (int c = 0; c < chunks; ++c) chunk_rngs_.push_back(rng.Fork());
  auto run_chunk = [&](int c) {
    const size_t lo = static_cast<size_t>(c) * chunk_size;
    const size_t hi = std::min(n, lo + chunk_size);
    Rng& r = chunk_rngs_[c];
    for (size_t i = lo; i < hi; ++i) process(i, r);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(chunks, run_chunk);
  } else {
    // No pool attached: execute the same chunk schedule inline. Chunks write
    // disjoint slots from their own RNGs, so this is byte-identical to the
    // pooled run.
    for (int c = 0; c < chunks; ++c) run_chunk(c);
  }
}

void Synthesizer::Step(const GlobalMobilityModel& model,
                       uint32_t target_active, int64_t t, Rng& rng) {
  RETRASYN_CHECK(initialized_);
  Stopwatch step_watch;
  const size_t finished_before = finished_.size();
  if (config_.use_sampler_cache) cache_.Sync(model);

  // 1. + 3a. Fused quit decision (Eq. 8) and next-cell proposal, one pass.
  QuitAndGeneratePhase(model, rng);

  // 1b. Retire quitters, compacting survivors (and their proposed cells) in
  //     place in stable order.
  if (config_.use_quit) {
    size_t w = 0;
    for (size_t i = 0; i < live_.size(); ++i) {
      if (quit_flags_[i]) {
        finished_.push_back(std::move(live_[i]));
      } else {
        if (w != i) {
          live_[w] = std::move(live_[i]);
          proposed_[w] = proposed_[i];
        }
        ++w;
      }
    }
    live_.resize(w);
    proposed_.resize(w);
  }

  // 2. Size adjustment: terminate surplus streams by the quitting
  //    distribution at their last location; spawns are deferred until after
  //    point generation so new streams begin at timestamp t.
  uint32_t deficit = 0;
  if (config_.use_size_adjustment) {
    if (live_.size() > target_active) {
      // Both conditional operands must be lvalues: mixing the cache's
      // reference with a prvalue would copy the O(|C|) vector every round.
      std::vector<double> model_quit_dist;
      if (!config_.use_sampler_cache) model_quit_dist = model.QuitDistribution();
      const std::vector<double>& quit_dist = config_.use_sampler_cache
                                                 ? cache_.QuitDistribution()
                                                 : model_quit_dist;
      const uint32_t surplus =
          static_cast<uint32_t>(live_.size()) - target_active;
      // Weighted sampling without replacement via one exponential race
      // (Efraimidis-Spirakis): stream i draws key = Exp(1)/w_i and the
      // `surplus` smallest keys are distributed exactly like sequentially
      // drawing victims proportional to the remaining weights — in O(live)
      // RNG draws total instead of O(surplus * live). Zero-weight streams
      // race at +inf with a uniform tiebreaker, so they only lose once the
      // positive mass is exhausted (the former uniform fallback).
      std::vector<std::pair<double, double>> race(live_.size());
      for (size_t i = 0; i < live_.size(); ++i) {
        const double w =
            quit_dist.empty() ? 0.0 : quit_dist[live_[i].cells.back()];
        const double u = rng.UniformDouble();
        if (w > 0.0) {
          race[i] = {-std::log1p(-u) / w, 0.0};  // Exp(1)/w, u in [0,1)
        } else {
          race[i] = {std::numeric_limits<double>::infinity(), u};
        }
      }
      std::vector<size_t> victims(live_.size());
      for (size_t i = 0; i < live_.size(); ++i) victims[i] = i;
      std::nth_element(victims.begin(), victims.begin() + surplus,
                       victims.end(), [&](size_t a, size_t b) {
                         return race[a] < race[b];
                       });
      victims.resize(surplus);
      // Remove in descending index order so swap-erase stays valid. Victims
      // never receive this round's proposed point: they end at their last
      // cell, exactly as when the adjustment preceded generation.
      std::sort(victims.rbegin(), victims.rend());
      for (size_t victim : victims) {
        finished_.push_back(std::move(live_[victim]));
        live_[victim] = std::move(live_.back());
        live_.pop_back();
        proposed_[victim] = proposed_.back();
        proposed_.pop_back();
      }
    } else if (live_.size() < target_active) {
      deficit = target_active - static_cast<uint32_t>(live_.size());
    }
  }

  // 3b. Commit the proposed points of the remaining survivors (Markov step).
  for (size_t i = 0; i < live_.size(); ++i) {
    live_[i].cells.push_back(proposed_[i]);
  }
  total_points_ += live_.size();

  // 4. Fill the deficit with fresh entering streams at timestamp t.
  if (deficit > 0) Spawn(model, deficit, t, rng);

  if (step_hist_ != nullptr) {
    RecordStepTelemetry(step_watch.ElapsedSeconds(),
                        finished_.size() - finished_before);
  }
}

std::vector<CellStream> Synthesizer::TakeFinished() {
  std::vector<CellStream> taken = std::move(finished_);
  finished_.clear();
  return taken;
}

void Synthesizer::Restore(std::vector<CellStream> live,
                          std::vector<CellStream> finished,
                          uint64_t total_points, bool initialized) {
  live_ = std::move(live);
  finished_ = std::move(finished);
  total_points_ = total_points;
  initialized_ = initialized;
}

CellStreamSet Synthesizer::Snapshot(int64_t num_timestamps) const {
  CellStreamSet out(num_timestamps);
  for (const CellStream& s : finished_) out.Add(s).CheckOK();
  for (const CellStream& s : live_) out.Add(s).CheckOK();
  return out;
}

CellStreamSet Synthesizer::Finish(int64_t num_timestamps) {
  CellStreamSet out(num_timestamps);
  for (CellStream& s : finished_) out.Add(std::move(s)).CheckOK();
  for (CellStream& s : live_) out.Add(std::move(s)).CheckOK();
  finished_.clear();
  live_.clear();
  initialized_ = false;
  total_points_ = 0;
  return out;
}

}  // namespace retrasyn
