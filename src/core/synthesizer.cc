#include "core/synthesizer.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace retrasyn {

Synthesizer::Synthesizer(const StateSpace& states,
                         const SynthesizerConfig& config)
    : states_(&states), config_(config) {
  RETRASYN_CHECK(config.lambda > 0.0);
}

std::vector<uint32_t> Synthesizer::LiveDensity() const {
  std::vector<uint32_t> counts(states_->num_cells(), 0);
  for (const CellStream& s : live_) ++counts[s.cells.back()];
  return counts;
}

CellId Synthesizer::SampleStartCell(const GlobalMobilityModel& model,
                                    Rng& rng) const {
  const uint32_t num_cells = states_->num_cells();
  if (!config_.random_init) {
    const std::vector<double> enter = model.EnterDistribution();
    const size_t cell = rng.Discrete(enter);
    if (cell < enter.size()) return static_cast<CellId>(cell);
  } else {
    // No entering distribution available (NoEQ / baselines): approximate the
    // population's spatial distribution by the movement-source marginal.
    std::vector<double> marginal(num_cells, 0.0);
    for (CellId c = 0; c < num_cells; ++c) {
      const StateId offset = states_->MoveOffset(c);
      const size_t degree = states_->grid().Neighbors(c).size();
      for (size_t i = 0; i < degree; ++i) {
        marginal[c] += std::max(0.0, model.frequency(offset + i));
      }
    }
    const size_t cell = rng.Discrete(marginal);
    if (cell < marginal.size()) return static_cast<CellId>(cell);
  }
  return static_cast<CellId>(rng.UniformInt(static_cast<uint64_t>(num_cells)));
}

CellId Synthesizer::SampleNextCell(const GlobalMobilityModel& model,
                                   CellId from, Rng& rng) const {
  const auto& nbrs = states_->grid().Neighbors(from);
  std::vector<double> weights(nbrs.size());
  const StateId offset = states_->MoveOffset(from);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    weights[i] = std::max(0.0, model.frequency(offset + static_cast<StateId>(i)));
  }
  const size_t pick = rng.Discrete(weights);
  if (pick >= nbrs.size()) return from;  // no observed mass: dwell in place
  return nbrs[pick];
}

void Synthesizer::Spawn(const GlobalMobilityModel& model, uint32_t count,
                        int64_t t, Rng& rng) {
  for (uint32_t i = 0; i < count; ++i) {
    CellStream stream;
    stream.enter_time = t;
    stream.cells.push_back(SampleStartCell(model, rng));
    ++total_points_;
    live_.push_back(std::move(stream));
  }
}

void Synthesizer::Initialize(const GlobalMobilityModel& model,
                             uint32_t target_size, int64_t t, Rng& rng) {
  RETRASYN_CHECK(!initialized_);
  Spawn(model, target_size, t, rng);
  initialized_ = true;
}

int Synthesizer::EffectiveThreads(size_t work_items) const {
  if (config_.num_threads <= 1) return 1;
  // Below this size, thread startup dominates any gain.
  constexpr size_t kMinItemsPerThread = 2048;
  const int by_work =
      static_cast<int>(std::max<size_t>(1, work_items / kMinItemsPerThread));
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min({config_.num_threads, by_work, hw});
}

void Synthesizer::QuitPhase(const GlobalMobilityModel& model, Rng& rng) {
  auto quits = [&](const CellStream& stream, Rng& r) {
    const CellId at = stream.cells.back();
    const double base = model.QuitProbability(at);
    const double len = static_cast<double>(stream.cells.size());
    return r.Bernoulli(std::min(1.0, len / config_.lambda * base));
  };
  const int threads = EffectiveThreads(live_.size());
  std::vector<char> quit_flags(live_.size(), 0);
  if (threads == 1) {
    for (size_t i = 0; i < live_.size(); ++i) {
      quit_flags[i] = quits(live_[i], rng) ? 1 : 0;
    }
  } else {
    const size_t chunk = (live_.size() + threads - 1) / threads;
    std::vector<Rng> chunk_rngs;
    for (int c = 0; c < threads; ++c) chunk_rngs.push_back(rng.Fork());
    std::vector<std::thread> workers;
    for (int c = 0; c < threads; ++c) {
      workers.emplace_back([&, c]() {
        const size_t lo = c * chunk;
        const size_t hi = std::min(live_.size(), lo + chunk);
        for (size_t i = lo; i < hi; ++i) {
          quit_flags[i] = quits(live_[i], chunk_rngs[c]) ? 1 : 0;
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  std::vector<CellStream> survivors;
  survivors.reserve(live_.size());
  for (size_t i = 0; i < live_.size(); ++i) {
    if (quit_flags[i]) {
      finished_.push_back(std::move(live_[i]));
    } else {
      survivors.push_back(std::move(live_[i]));
    }
  }
  live_ = std::move(survivors);
}

void Synthesizer::GeneratePhase(const GlobalMobilityModel& model, Rng& rng) {
  const int threads = EffectiveThreads(live_.size());
  if (threads == 1) {
    for (CellStream& stream : live_) {
      stream.cells.push_back(SampleNextCell(model, stream.cells.back(), rng));
      ++total_points_;
    }
    return;
  }
  const size_t chunk = (live_.size() + threads - 1) / threads;
  std::vector<Rng> chunk_rngs;
  for (int c = 0; c < threads; ++c) chunk_rngs.push_back(rng.Fork());
  std::vector<std::thread> workers;
  for (int c = 0; c < threads; ++c) {
    workers.emplace_back([&, c]() {
      const size_t lo = c * chunk;
      const size_t hi = std::min(live_.size(), lo + chunk);
      for (size_t i = lo; i < hi; ++i) {
        live_[i].cells.push_back(
            SampleNextCell(model, live_[i].cells.back(), chunk_rngs[c]));
      }
    });
  }
  for (auto& w : workers) w.join();
  total_points_ += live_.size();
}

void Synthesizer::Step(const GlobalMobilityModel& model,
                       uint32_t target_active, int64_t t, Rng& rng) {
  RETRASYN_CHECK(initialized_);
  // 1. Quit phase (Eq. 8).
  if (config_.use_quit) {
    QuitPhase(model, rng);
  }

  // 2. Size adjustment: terminate surplus streams by the quitting
  //    distribution at their last location; spawns are deferred until after
  //    point generation so new streams begin at timestamp t.
  uint32_t deficit = 0;
  if (config_.use_size_adjustment) {
    if (live_.size() > target_active) {
      const std::vector<double> quit_dist = model.QuitDistribution();
      uint32_t surplus = static_cast<uint32_t>(live_.size()) - target_active;
      // Weighted sampling without replacement: weights are computed once and
      // zeroed as victims are drawn; uniform fallback when no mass remains.
      std::vector<double> weights(live_.size());
      for (size_t i = 0; i < live_.size(); ++i) {
        weights[i] =
            quit_dist.empty() ? 0.0 : quit_dist[live_[i].cells.back()];
      }
      std::vector<size_t> victims;
      victims.reserve(surplus);
      for (uint32_t k = 0; k < surplus; ++k) {
        size_t victim = rng.Discrete(weights);
        if (victim >= weights.size()) {
          // No mass left: pick uniformly among not-yet-chosen streams.
          do {
            victim = static_cast<size_t>(
                rng.UniformInt(static_cast<uint64_t>(live_.size())));
          } while (weights[victim] < 0.0);
        }
        weights[victim] = -1.0;  // mark as chosen
        victims.push_back(victim);
      }
      // Remove in descending index order so swap-erase stays valid.
      std::sort(victims.rbegin(), victims.rend());
      for (size_t victim : victims) {
        finished_.push_back(std::move(live_[victim]));
        live_[victim] = std::move(live_.back());
        live_.pop_back();
      }
    } else if (live_.size() < target_active) {
      deficit = target_active - static_cast<uint32_t>(live_.size());
    }
  }

  // 3. New point generation for survivors (Markov step).
  GeneratePhase(model, rng);

  // 4. Fill the deficit with fresh entering streams at timestamp t.
  if (deficit > 0) Spawn(model, deficit, t, rng);
}

CellStreamSet Synthesizer::Snapshot(int64_t num_timestamps) const {
  CellStreamSet out(num_timestamps);
  for (const CellStream& s : finished_) out.Add(s);
  for (const CellStream& s : live_) out.Add(s);
  return out;
}

CellStreamSet Synthesizer::Finish(int64_t num_timestamps) {
  CellStreamSet out(num_timestamps);
  for (CellStream& s : finished_) out.Add(std::move(s));
  for (CellStream& s : live_) out.Add(std::move(s));
  finished_.clear();
  live_.clear();
  initialized_ = false;
  total_points_ = 0;
  return out;
}

}  // namespace retrasyn
