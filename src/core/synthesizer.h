// Real-time trajectory synthesis (paper SIII-D).
//
// The synthesizer maintains the evolving synthetic database T_syn. Each
// timestamp performs, in order:
//
//  1. Quit phase: every live synthetic stream terminates with the
//     length-reweighted probability of Eq. 8,
//       Pr(quit | c_i) = (len / lambda) * f_iQ / (sum_{x in N(i)} f_ix + f_iQ),
//     so streams do not end prematurely under a pure first-order model.
//  2. Size adjustment (paper "Size Adjustment"): surplus streams are
//     terminated with probability proportional to the quitting distribution
//     Q at their last cell; deficits are filled by spawning streams whose
//     start cell is drawn from the entering distribution E.
//  3. New point generation: each surviving stream appends a next cell from
//     the Markov movement distribution of its current cell; fresh spawns
//     start at their sampled entering cell.
//
// Doing the size adjustment *before* appending points keeps the number of
// synthetic streams holding a location at timestamp t exactly equal to the
// number of real active users at t, which several downstream metrics
// (density, query counts) rely on.
//
// The ablation/baseline switches: use_quit=false + use_size_adjustment=false
// + random_init=true reproduce the NoEQ variant of SV-D and the behaviour of
// the adapted LDP-IDS baselines (streams never terminate and the population
// is frozen at its initial size).

#ifndef RETRASYN_CORE_SYNTHESIZER_H_
#define RETRASYN_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/mobility_model.h"
#include "stream/cell_stream.h"

namespace retrasyn {

struct SynthesizerConfig {
  /// Stream-length reweighting factor lambda of Eq. 8; the paper sets it to
  /// the dataset's average trajectory length.
  double lambda = 13.61;
  bool use_quit = true;
  bool use_size_adjustment = true;
  /// NoEQ / baselines: no entering distribution is learned, so start cells
  /// are drawn from the model's movement-source marginal (the private
  /// estimate of where users currently are), falling back to uniform cells
  /// when the model carries no movement mass yet.
  bool random_init = false;
  /// Worker threads for the quit and point-generation phases (the paper's
  /// stated future work: "acceleration techniques (e.g., parallel
  /// computing)"). Streams are partitioned into fixed chunks, each driven by
  /// a deterministically forked RNG, so results are reproducible for a given
  /// thread count (though they differ from the single-threaded stream).
  /// 1 = serial (default); values above the hardware concurrency are
  /// clamped.
  int num_threads = 1;
};

class Synthesizer {
 public:
  Synthesizer(const StateSpace& states, const SynthesizerConfig& config);

  bool initialized() const { return initialized_; }
  uint32_t num_live() const { return static_cast<uint32_t>(live_.size()); }
  uint64_t total_points() const { return total_points_; }

  /// The currently-live synthetic streams (the evolving T_syn); real-time
  /// consumers can query this between timestamps without finishing the run.
  const std::vector<CellStream>& live_streams() const { return live_; }

  /// Per-cell counts of the live streams' current locations — the real-time
  /// synthetic density snapshot.
  std::vector<uint32_t> LiveDensity() const;

  /// Creates the initial synthetic population of \p target_size streams at
  /// timestamp \p t, sampling start cells from the model's entering
  /// distribution (uniform under random_init or when E carries no mass).
  void Initialize(const GlobalMobilityModel& model, uint32_t target_size,
                  int64_t t, Rng& rng);

  /// Advances the database to timestamp \p t (quit, size-adjust, generate).
  /// With size adjustment enabled the live count after this call equals
  /// \p target_active.
  void Step(const GlobalMobilityModel& model, uint32_t target_active,
            int64_t t, Rng& rng);

  /// Non-destructive copy of the synthetic database (finished + live streams)
  /// over horizon \p num_timestamps, which must cover every generated point
  /// (>= the last stepped timestamp + 1). The synthesizer keeps running.
  CellStreamSet Snapshot(int64_t num_timestamps) const;

  /// Closes every live stream and returns the full synthetic database over
  /// horizon \p num_timestamps. The synthesizer is empty afterwards.
  CellStreamSet Finish(int64_t num_timestamps);

 private:
  void Spawn(const GlobalMobilityModel& model, uint32_t count, int64_t t,
             Rng& rng);
  /// Eq. 8 termination sampling over all live streams; moves quitters to
  /// finished_. Parallelized across stream chunks when configured.
  void QuitPhase(const GlobalMobilityModel& model, Rng& rng);
  /// Appends one sampled cell to every live stream. Parallelized across
  /// stream chunks when configured.
  void GeneratePhase(const GlobalMobilityModel& model, Rng& rng);
  int EffectiveThreads(size_t work_items) const;
  CellId SampleStartCell(const GlobalMobilityModel& model, Rng& rng) const;
  /// Samples the next cell out of \p from via the model's movement
  /// distribution; stays in place when the cell has no observed mass.
  CellId SampleNextCell(const GlobalMobilityModel& model, CellId from,
                        Rng& rng) const;

  const StateSpace* states_;
  SynthesizerConfig config_;
  std::vector<CellStream> live_;
  std::vector<CellStream> finished_;
  uint64_t total_points_ = 0;
  bool initialized_ = false;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_SYNTHESIZER_H_
