// Real-time trajectory synthesis (paper SIII-D).
//
// The synthesizer maintains the evolving synthetic database T_syn. Each
// timestamp performs, in order:
//
//  1. Quit phase: every live synthetic stream terminates with the
//     length-reweighted probability of Eq. 8,
//       Pr(quit | c_i) = (len / lambda) * f_iQ / (sum_{x in N(i)} f_ix + f_iQ),
//     so streams do not end prematurely under a pure first-order model.
//  2. Size adjustment (paper "Size Adjustment"): surplus streams are
//     terminated with probability proportional to the quitting distribution
//     Q at their last cell; deficits are filled by spawning streams whose
//     start cell is drawn from the entering distribution E.
//  3. New point generation: each surviving stream appends a next cell from
//     the Markov movement distribution of its current cell; fresh spawns
//     start at their sampled entering cell.
//
// Doing the size adjustment *before* appending points keeps the number of
// synthetic streams holding a location at timestamp t exactly equal to the
// number of real active users at t, which several downstream metrics
// (density, query counts) rely on.
//
// Hot-path organization (paper SIV-B: synthesis must be O(|T_syn|) per
// round): the quit decision and the Markov step are fused into a single
// traversal of the live streams, each drawing from O(1) cached alias
// samplers (TransitionSamplerCache) instead of re-deriving distributions
// from raw model frequencies. Quit decisions and proposed next cells are
// staged in reusable scratch buffers; points are only committed after the
// size adjustment picks its victims, which preserves the phase ordering
// above while halving the traversals. Setting
// SynthesizerConfig::use_sampler_cache = false restores the legacy
// linear-scan sampling (O(degree) + an allocation per point) for A/B
// benchmarking; both paths draw from identical distributions.
//
// The ablation/baseline switches: use_quit=false + use_size_adjustment=false
// + random_init=true reproduce the NoEQ variant of SV-D and the behaviour of
// the adapted LDP-IDS baselines (streams never terminate and the population
// is frozen at its initial size).
//
// The live set is index-agnostic by design: synthetic streams are anonymous
// (identified only by position in live_), never keyed by the real stream
// indices the engine observes. Stream-index recycling
// (RetraSynConfig::recycle_stream_indices) therefore cannot alias a new
// real stream onto an old synthetic one — only the per-round active *count*
// crosses from collection into synthesis.

#ifndef RETRASYN_CORE_SYNTHESIZER_H_
#define RETRASYN_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/mobility_model.h"
#include "core/transition_sampler_cache.h"
#include "stream/cell_stream.h"
#include "telemetry/telemetry.h"

namespace retrasyn {

struct SynthesizerConfig {
  /// Stream-length reweighting factor lambda of Eq. 8; the paper sets it to
  /// the dataset's average trajectory length.
  double lambda = 13.61;
  bool use_quit = true;
  bool use_size_adjustment = true;
  /// NoEQ / baselines: no entering distribution is learned, so start cells
  /// are drawn from the model's movement-source marginal (the private
  /// estimate of where users currently are), falling back to uniform cells
  /// when the model carries no movement mass yet.
  bool random_init = false;
  /// Chunk parallelism for the fused quit+generate phase (the paper's stated
  /// future work: "acceleration techniques (e.g., parallel computing)").
  /// Streams are partitioned into at most this many fixed chunks, each driven
  /// by a deterministically forked RNG, so output is byte-identical for a
  /// given (seed, num_threads) — independent of the machine, of whether a
  /// ThreadPool is attached, and of that pool's actual size. 1 = serial
  /// (default).
  int num_threads = 1;
  /// When false, samples through the legacy linear scans over raw model
  /// frequencies instead of the cached alias tables. Distributionally
  /// identical; exists for A/B benchmarking and regression tests.
  bool use_sampler_cache = true;
};

class Synthesizer {
 public:
  Synthesizer(const StateSpace& states, const SynthesizerConfig& config);

  /// Attaches a persistent worker pool (not owned; must outlive the
  /// synthesizer) for the parallel phase. Without a pool, chunked work runs
  /// inline on the calling thread with byte-identical results.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  bool initialized() const { return initialized_; }
  uint32_t num_live() const { return static_cast<uint32_t>(live_.size()); }
  uint64_t total_points() const { return total_points_; }

  /// The currently-live synthetic streams (the evolving T_syn); real-time
  /// consumers can query this between timestamps without finishing the run.
  const std::vector<CellStream>& live_streams() const { return live_; }

  /// Per-cell counts of the live streams' current locations — the real-time
  /// synthetic density snapshot.
  std::vector<uint32_t> LiveDensity() const;

  /// Creates the initial synthetic population of \p target_size streams at
  /// timestamp \p t, sampling start cells from the model's entering
  /// distribution (uniform under random_init or when E carries no mass).
  void Initialize(const GlobalMobilityModel& model, uint32_t target_size,
                  int64_t t, Rng& rng);

  /// Advances the database to timestamp \p t (quit, size-adjust, generate).
  /// With size adjustment enabled the live count after this call equals
  /// \p target_active.
  void Step(const GlobalMobilityModel& model, uint32_t target_active,
            int64_t t, Rng& rng);

  /// Non-destructive copy of the synthetic database (finished + live streams)
  /// over horizon \p num_timestamps, which must cover every generated point
  /// (>= the last stepped timestamp + 1). The synthesizer keeps running.
  CellStreamSet Snapshot(int64_t num_timestamps) const;

  /// Closes every live stream and returns the full synthetic database over
  /// horizon \p num_timestamps. The synthesizer is empty afterwards.
  CellStreamSet Finish(int64_t num_timestamps);

  /// Derivation-work counters of the underlying sampler cache (tests and
  /// benches assert rebuilds track model changes, not sample counts).
  const SamplerCacheStats& cache_stats() const { return cache_.stats(); }

  /// Registers synthesis metrics in \p telemetry (not owned; null detaches):
  /// per-round step latency, points generated, live-stream gauge, and
  /// sampler-cache rebuild counters (recorded as deltas of cache_stats()
  /// after each Initialize/Step). Observation-only: attached or detached,
  /// the generated streams are byte-identical — the hot path never touches
  /// telemetry, only the per-round epilogue does.
  void AttachTelemetry(Telemetry* telemetry);

  // --- Checkpoint / history-spill hooks ------------------------------------

  /// Streams that already terminated (the per-horizon history Snapshot
  /// serves before the live set).
  const std::vector<CellStream>& finished_streams() const { return finished_; }

  /// Moves the finished history out, leaving it empty; live streams and
  /// counters are untouched. Snapshot() afterwards covers only the remainder,
  /// so the caller owns re-prepending the extracted prefix (the checkpoint
  /// manager serves it from spill files).
  std::vector<CellStream> TakeFinished();

  /// Restores a checkpointed synthesizer verbatim. \p total_points counts
  /// every point ever generated, including points in spilled (taken) history.
  /// The sampler cache is left stale on purpose: restoring the model counts
  /// as a full invalidation, so the next Step rebuilds it deterministically.
  void Restore(std::vector<CellStream> live, std::vector<CellStream> finished,
               uint64_t total_points, bool initialized);

 private:
  void Spawn(const GlobalMobilityModel& model, uint32_t count, int64_t t,
             Rng& rng);
  /// Fused Eq. 8 termination + Markov step: one (optionally parallel) pass
  /// fills quit_flags_ and proposed_ for every live stream. Nothing is
  /// committed: quitters move to finished_ and the size adjustment may still
  /// drop survivors before their proposed point is appended.
  void QuitAndGeneratePhase(const GlobalMobilityModel& model, Rng& rng);
  /// Number of work chunks for \p work_items (1 = run serially on the main
  /// RNG; >1 = forked per-chunk RNGs). Depends only on the config and the
  /// work size, never on the machine.
  int EffectiveChunks(size_t work_items) const;

  /// Per-round telemetry epilogue: step latency, point/cache-stat deltas,
  /// finished-stream delta, live gauge. Only called when attached.
  void RecordStepTelemetry(double seconds, uint64_t finished_delta);

  double QuitProbabilityAt(const GlobalMobilityModel& model, CellId at) const;
  /// Samples the next cell out of \p from via the model's movement
  /// distribution; stays in place when the cell has no observed mass.
  CellId SampleNextCell(const GlobalMobilityModel& model, CellId from,
                        Rng& rng) const;
  /// Legacy linear-scan variant of SampleNextCell (use_sampler_cache=false).
  CellId SampleNextCellLinear(const GlobalMobilityModel& model, CellId from,
                              Rng& rng) const;

  const StateSpace* states_;
  SynthesizerConfig config_;
  TransitionSamplerCache cache_;
  ThreadPool* pool_ = nullptr;
  std::vector<CellStream> live_;
  std::vector<CellStream> finished_;
  uint64_t total_points_ = 0;
  bool initialized_ = false;

  // Per-round scratch, reused so the steady state allocates nothing.
  std::vector<uint8_t> quit_flags_;
  std::vector<CellId> proposed_;
  std::vector<Rng> chunk_rngs_;

  // Telemetry (all null when detached). Counters are fed deltas against the
  // last reported totals so re-attaching never double-counts.
  LatencyHistogram* step_hist_ = nullptr;
  Counter* points_metric_ = nullptr;
  Counter* finished_metric_ = nullptr;
  Gauge* live_metric_ = nullptr;
  Counter* cache_syncs_metric_ = nullptr;
  Counter* cache_full_rebuilds_metric_ = nullptr;
  Counter* cache_cell_rebuilds_metric_ = nullptr;
  uint64_t points_reported_ = 0;
  SamplerCacheStats cache_reported_;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_SYNTHESIZER_H_
