// Push-based consumption of the private release. A ReleaseSink subscribes to
// a TrajectoryService and receives one RoundRelease per closed ingestion
// round — the real-time alternative to polling the engine between Observe
// calls. Everything a sink sees is derived from LDP reports only
// (post-processing, Thm. 2), so sinks never need access to raw user data.

#ifndef RETRASYN_CORE_RELEASE_SINK_H_
#define RETRASYN_CORE_RELEASE_SINK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace retrasyn {

/// \brief The per-round release pushed to subscribers: the live synthetic
/// density right after the round's collection + synthesis step.
struct RoundRelease {
  int64_t t = 0;                   ///< the just-closed timestamp
  std::vector<uint32_t> density;   ///< per-cell live synthetic density
  uint64_t active = 0;             ///< total live synthetic population
  /// Stream indices the engine retired at this round — their stream quit a
  /// full w-window ago, so the ingest session may have re-issued them from
  /// this round on (RetraSynConfig::recycle_stream_indices). Observability
  /// only; empty when recycling is off or the engine keeps no per-index
  /// state (budget division, custom engines).
  std::vector<uint32_t> retired;
};

class ReleaseSink {
 public:
  virtual ~ReleaseSink() = default;

  /// Called exactly once per closed round, in timestamp order, while the
  /// stream is still open. Implementations must not re-enter the service.
  /// A non-OK return poisons the service's round pipeline: the round stays
  /// committed (the engine consumed it before delivery), further rounds are
  /// refused, and the error surfaces, sticky, on the service's next
  /// Tick()/Drain()/SnapshotRelease — under both sync policies. Under
  /// SyncPolicy::kAsync the call arrives on the service's delivery thread,
  /// never the ingest thread — so sinks without internal locking (e.g.
  /// ReleaseServer) must not be read by the sink's owner while async rounds
  /// are in flight: Drain() the service first, which fences all deliveries.
  virtual Status OnRound(const RoundRelease& round) = 0;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_RELEASE_SINK_H_
