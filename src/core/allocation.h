// Adaptive allocation strategy (paper SIII-E).
//
// Both division strategies are driven by a per-timestamp *portion* p_t:
//  * budget division spends   eps_t = p_t * (remaining budget in window);
//  * population division samples p_t * |active users| reporters (full eps).
//
// The adaptive portion (Eq. 10) combines the stream's recent deviation
// (Eq. 9) with the recent rate of significant transitions:
//
//   p_t = min{ (alpha / w) * (1 - mean_kappa(|S*_i| / |S|)) * ln(Dev_t + 1),
//              p_max }
//
// Dev_t is computed with absolute deviations of the model's frequency history
// (a signed sum would telescope toward zero; see DESIGN.md interpretation
// notes). Uniform and Sample are the data-independent strategies of SIII-E;
// Random (population only) lets each user pick a uniform report slot within
// their current window and is scheduled inside the engine.

#ifndef RETRASYN_CORE_ALLOCATION_H_
#define RETRASYN_CORE_ALLOCATION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace retrasyn {

enum class AllocationKind {
  kAdaptive,
  kUniform,
  kSample,
  kRandom,  ///< population division only: per-user random slot in the window
};

const char* AllocationKindName(AllocationKind kind);

struct AllocationConfig {
  AllocationKind kind = AllocationKind::kAdaptive;
  double alpha = 8.0;     ///< paper experimental setting
  int kappa = 5;          ///< number of recent timestamps considered
  double max_portion = 0.6;
  /// Probe floor for the adaptive portion. Eq. 10 alone can reach p = 0 on a
  /// steady stream; since Dev is computed from the model's own history, a
  /// zero portion would then freeze the model permanently (no collection ->
  /// no observed change -> p stays 0). A small exploration floor keeps the
  /// curator probing. Negative means "auto": 1 / (2w), half the uniform rate.
  double min_portion = -1.0;
};

/// \brief Computes per-timestamp allocation portions and tracks the histories
/// behind Eq. 9-10.
class PortionAllocator {
 public:
  PortionAllocator(const AllocationConfig& config, int window,
                   uint32_t domain_size);

  /// Portion for timestamp \p t. The first collection round always uses 1/w
  /// (Alg. 1 line 2). For kRandom this returns 0; the engine schedules users
  /// individually.
  double Portion(int64_t t) const;

  /// Records one collection round: the freshly collected frequency estimates
  /// (the f^k of Eq. 9 — the curator's per-timestamp view of the stream,
  /// noise included) and the number of significant transitions DMU selected.
  /// Call only on rounds where a collection actually happened; skipped
  /// timestamps leave the history unchanged.
  void RecordRound(const std::vector<double>& collected_freqs,
                   size_t num_significant);

  /// Eq. 9 deviation over the recorded history (exposed for tests).
  double ComputeDeviation() const;

  /// Mean of |S*_i| / |S| over the last kappa recorded rounds.
  double MeanSignificantRatio() const;

  const AllocationConfig& config() const { return config_; }

  // --- Checkpoint state (the Eq. 9-10 histories are part of the replayed
  // byte stream: Portion() at the next round depends on them exactly) -------

  int64_t rounds_recorded() const { return rounds_recorded_; }
  const std::deque<std::vector<double>>& freq_history() const {
    return freq_history_;
  }
  const std::deque<double>& ratio_history() const { return ratio_history_; }

  void Restore(int64_t rounds_recorded,
               std::deque<std::vector<double>> freq_history,
               std::deque<double> ratio_history) {
    rounds_recorded_ = rounds_recorded;
    freq_history_ = std::move(freq_history);
    ratio_history_ = std::move(ratio_history);
  }

 private:
  AllocationConfig config_;
  int window_;
  uint32_t domain_size_;
  int64_t rounds_recorded_ = 0;
  /// Most-recent-last model snapshots; at most kappa + 1 retained.
  std::deque<std::vector<double>> freq_history_;
  /// Most-recent-last |S*|/|S| ratios; at most kappa retained.
  std::deque<double> ratio_history_;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_ALLOCATION_H_
