#include "core/release_server.h"

#include <algorithm>

#include "common/logging.h"
#include "metrics/histogram.h"

namespace retrasyn {

ReleaseServer::ReleaseServer(const SpatialGrid& grid, int64_t retention_rounds)
    : grid_(&grid), zeros_(grid.NumCells(), 0) {
  RETRASYN_CHECK_MSG(retention_rounds >= 0,
                     "retention_rounds must be >= 0 (0 = unlimited)");
  retention_ = retention_rounds;
}

Status ReleaseServer::Record(int64_t t, std::vector<uint32_t> density,
                             uint64_t active) {
  if (density.size() != grid_->NumCells()) {
    return Status::InvalidArgument(
        "round " + std::to_string(t) + " carries " +
        std::to_string(density.size()) + " cells; this server's grid has " +
        std::to_string(grid_->NumCells()));
  }
  if (t < next_t_) {
    return Status::InvalidArgument(
        "round " + std::to_string(t) + " is already recorded (next expected " +
        "timestamp is " + std::to_string(next_t_) +
        "); rounds are immutable and must arrive in increasing order");
  }
  // A server subscribed mid-stream missed the earlier rounds; record them as
  // zeros so timestamps keep their identity and stale ones answer zero,
  // consistent with the out-of-horizon policy. Under a retention bound a gap
  // wider than the whole horizon fast-forwards instead of materializing (and
  // immediately evicting) a zero row per missed round.
  if (retention_ > 0 && t - next_t_ >= retention_) {
    density_.clear();
    active_.clear();
    next_t_ = t;
    first_retained_ = t;
  }
  while (next_t_ < t) {
    active_.push_back(0);
    density_.push_back(zeros_);
    ++next_t_;
  }
  active_.push_back(active);
  density_.push_back(std::move(density));
  ++next_t_;
  // Retention bound: evict the oldest rounds so memory stays
  // O(retention * cells) on an unbounded stream. An evicted timestamp
  // answers zero from then on, like one that was never ingested.
  if (retention_ > 0) {
    while (next_t_ - first_retained_ > retention_) {
      density_.pop_front();
      active_.pop_front();
      ++first_retained_;
    }
  }
  return Status::OK();
}

Status ReleaseServer::OnRound(const RoundRelease& round) {
  return Record(round.t, round.density, round.active);
}

Status ReleaseServer::Ingest(const StreamReleaseEngine& engine) {
  std::vector<uint32_t> density = engine.LiveDensity();
  uint64_t total = 0;
  for (uint32_t c : density) total += c;
  // next_t_ is never in the past, so this can only fail on an engine built
  // over a different grid.
  return Record(next_t_, std::move(density), total);
}

const std::vector<uint32_t>& ReleaseServer::DensityAt(int64_t t) const {
  if (t < first_retained_ || t >= horizon()) return zeros_;
  return density_[t - first_retained_];
}

uint64_t ReleaseServer::ActiveAt(int64_t t) const {
  if (t < first_retained_ || t >= horizon()) return 0;
  return active_[t - first_retained_];
}

uint64_t ReleaseServer::RangeCount(const RangeQuery& query) const {
  const UniformGrid* uniform = grid_->AsUniform();
  RETRASYN_CHECK_MSG(uniform != nullptr,
                     "RangeCount requires a uniform grid; use BoxCount");
  const int64_t lo = std::max(first_retained_, query.t_start);
  const int64_t hi = std::min<int64_t>(horizon(), query.t_end);
  const uint32_t row_hi = std::min(query.row_hi, uniform->k() - 1);
  const uint32_t col_hi = std::min(query.col_hi, uniform->k() - 1);
  uint64_t total = 0;
  for (int64_t t = lo; t < hi; ++t) {
    const auto& cells = density_[t - first_retained_];
    for (uint32_t r = query.row_lo; r <= row_hi; ++r) {
      for (uint32_t c = query.col_lo; c <= col_hi; ++c) {
        total += cells[uniform->Cell(r, c)];
      }
    }
  }
  return total;
}

uint64_t ReleaseServer::BoxCount(const BoundingBox& box, int64_t t_start,
                                 int64_t t_end) const {
  // Membership by cell center, matching DensityIndex::CountBox: on the
  // uniform lattice this is exactly the rectangle of cells, and on adaptive
  // backends it assigns each cell to a query unambiguously.
  std::vector<CellId> cells;
  for (CellId c = 0; c < grid_->NumCells(); ++c) {
    if (box.Contains(grid_->CellCenter(c))) cells.push_back(c);
  }
  const int64_t lo = std::max(first_retained_, t_start);
  const int64_t hi = std::min<int64_t>(horizon(), t_end);
  uint64_t total = 0;
  for (int64_t t = lo; t < hi; ++t) {
    const auto& density = density_[t - first_retained_];
    for (CellId c : cells) total += density[c];
  }
  return total;
}

std::vector<CellId> ReleaseServer::TopHotspots(int64_t t_start, int64_t t_end,
                                               int k) const {
  std::vector<double> aggregate(grid_->NumCells(), 0.0);
  const int64_t lo = std::max(first_retained_, t_start);
  const int64_t hi = std::min<int64_t>(horizon(), t_end);
  for (int64_t t = lo; t < hi; ++t) {
    const auto& cells = density_[t - first_retained_];
    for (CellId c = 0; c < grid_->NumCells(); ++c) aggregate[c] += cells[c];
  }
  return TopKIndices(aggregate, k);
}

double ReleaseServer::TrailingMeanActive(int window) const {
  if (window < 1 || active_.empty()) return 0.0;
  const int64_t lo = std::max(first_retained_, horizon() - window);
  double sum = 0.0;
  for (int64_t t = lo; t < horizon(); ++t) sum += active_[t - first_retained_];
  return sum / static_cast<double>(horizon() - lo);
}

}  // namespace retrasyn
