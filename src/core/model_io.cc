#include "core/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace retrasyn {

namespace {
constexpr char kMagic[] = "retrasyn-mobility-model";
// v2: the header pins the discretization by cell count and a hash of the
// grid's canonical Describe() bytes instead of assuming a uniform K — model
// files are portable across SpatialGrid backends and refuse geometry drift.
constexpr int kVersion = 2;

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : bytes) h = (h ^ c) * 1099511628211ull;
  return h;
}
}  // namespace

Status SaveMobilityModel(const GlobalMobilityModel& model,
                         const std::string& path) {
  if (!model.initialized()) {
    return Status::FailedPrecondition("model has never been updated");
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open model file for writing: " + path);
  }
  const StateSpace& states = model.states();
  std::fprintf(f, "%s %d %u %u %016llx\n", kMagic, kVersion,
               states.num_cells(), states.size(),
               static_cast<unsigned long long>(
                   Fnv1a64(states.grid().Describe())));
  for (StateId s = 0; s < states.size(); ++s) {
    std::fprintf(f, "%.17g\n", model.frequency(s));
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("failed to close model file: " + path);
  }
  return Status::OK();
}

Status LoadMobilityModel(const std::string& path, GlobalMobilityModel* model) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open model file: " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("empty model file: " + path);
  }
  std::istringstream header_stream(header);
  std::string magic;
  int version = 0;
  uint32_t cells = 0, domain = 0;
  std::string grid_hash_hex;
  header_stream >> magic >> version >> cells >> domain >> grid_hash_hex;
  if (magic != kMagic) {
    return Status::InvalidArgument("not a mobility model file: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version));
  }
  const StateSpace& states = model->states();
  if (cells != states.num_cells() || domain != states.size()) {
    return Status::FailedPrecondition(
        "model geometry mismatch: file has |C|=" + std::to_string(cells) +
        ", |S|=" + std::to_string(domain) + "; target has |C|=" +
        std::to_string(states.num_cells()) + ", |S|=" +
        std::to_string(states.size()));
  }
  char expected[17];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(
                    Fnv1a64(states.grid().Describe())));
  if (grid_hash_hex != expected) {
    return Status::FailedPrecondition(
        "model grid mismatch: file was saved against a different "
        "discretization (grid hash " + grid_hash_hex + ", target " +
        expected + "); target grid is " + states.grid().ToString());
  }
  std::vector<double> frequencies;
  frequencies.reserve(domain);
  double value;
  while (in >> value) frequencies.push_back(value);
  if (frequencies.size() != domain) {
    return Status::InvalidArgument(
        "model file truncated: expected " + std::to_string(domain) +
        " frequencies, found " + std::to_string(frequencies.size()));
  }
  model->ReplaceAll(frequencies);
  return Status::OK();
}

}  // namespace retrasyn
