#include "core/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace retrasyn {

namespace {
constexpr char kMagic[] = "retrasyn-mobility-model";
constexpr int kVersion = 1;
}  // namespace

Status SaveMobilityModel(const GlobalMobilityModel& model,
                         const std::string& path) {
  if (!model.initialized()) {
    return Status::FailedPrecondition("model has never been updated");
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open model file for writing: " + path);
  }
  const StateSpace& states = model.states();
  std::fprintf(f, "%s %d %u %u\n", kMagic, kVersion, states.grid().k(),
               states.size());
  for (StateId s = 0; s < states.size(); ++s) {
    std::fprintf(f, "%.17g\n", model.frequency(s));
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("failed to close model file: " + path);
  }
  return Status::OK();
}

Status LoadMobilityModel(const std::string& path, GlobalMobilityModel* model) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open model file: " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("empty model file: " + path);
  }
  std::istringstream header_stream(header);
  std::string magic;
  int version = 0;
  uint32_t k = 0, domain = 0;
  header_stream >> magic >> version >> k >> domain;
  if (magic != kMagic) {
    return Status::InvalidArgument("not a mobility model file: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version));
  }
  const StateSpace& states = model->states();
  if (k != states.grid().k() || domain != states.size()) {
    return Status::FailedPrecondition(
        "model geometry mismatch: file has K=" + std::to_string(k) + ", |S|=" +
        std::to_string(domain) + "; target has K=" +
        std::to_string(states.grid().k()) + ", |S|=" +
        std::to_string(states.size()));
  }
  std::vector<double> frequencies;
  frequencies.reserve(domain);
  double value;
  while (in >> value) frequencies.push_back(value);
  if (frequencies.size() != domain) {
    return Status::InvalidArgument(
        "model file truncated: expected " + std::to_string(domain) +
        " frequencies, found " + std::to_string(frequencies.size()));
  }
  model->ReplaceAll(frequencies);
  return Status::OK();
}

}  // namespace retrasyn
