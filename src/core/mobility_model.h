// Global mobility model (paper SIII-B, Eq. 6).
//
// The model stores one estimated frequency per transition state: the fraction
// of the reporting population currently in that state. Frequencies — not
// conditional probabilities — are the stored quantity because the DMU
// mechanism (Eq. 7) compares stored and freshly-collected frequencies
// directly. The three distributions of Eq. 6 are derived views:
//
//   Pr(m_ij)      = f_ij / (sum_{x in N(i)} f_ix + f_iQ)
//   Pr(quit | i)  = f_iQ / (sum_{x in N(i)} f_ix + f_iQ)
//   Pr(e_i)       = f_Ei / sum_x f_Ex
//   Pr(q_j)       = f_jQ / sum_x f_xQ
//
// The f_iQ term in the movement denominator is the paper's authenticity
// modification: a synthetic trajectory standing at cell i can terminate with
// the probability real users quit there.

#ifndef RETRASYN_CORE_MOBILITY_MODEL_H_
#define RETRASYN_CORE_MOBILITY_MODEL_H_

#include <cstdint>
#include <vector>

#include "geo/state_space.h"

namespace retrasyn {

class GlobalMobilityModel {
 public:
  explicit GlobalMobilityModel(const StateSpace& states);

  const StateSpace& states() const { return *states_; }

  /// Replaces every state's frequency (used at initialization and by the
  /// AllUpdate ablation). Negative estimates are clamped to zero.
  void ReplaceAll(const std::vector<double>& frequencies);

  /// Selectively updates the given states with the corresponding entries of
  /// \p frequencies, leaving all other states unchanged (the DMU update).
  void UpdateStates(const std::vector<StateId>& selected,
                    const std::vector<double>& frequencies);

  /// Restores a checkpointed model verbatim: \p frequencies must have one
  /// entry per state (already clamped — ReplaceAll/UpdateStates never store
  /// negatives, and restore must not re-transform the bytes it was handed).
  /// Counts as a full invalidation for change tracking, so a consumer cache
  /// rebuilt against the restored model re-derives every cell.
  void Restore(std::vector<double> frequencies, bool initialized);

  double frequency(StateId s) const { return freq_[s]; }
  const std::vector<double>& frequencies() const { return freq_; }
  bool initialized() const { return initialized_; }

  // --- Change tracking (consumed by TransitionSamplerCache) ---------------
  //
  // Every mutation bumps version(). ReplaceAll resets the dirty log and
  // stamps replace_version(): anything derived before that version must be
  // rebuilt from scratch. UpdateStates appends the DMU-selected states to
  // dirty_log() instead, so derived per-cell structures only re-derive the
  // touched cells. The log collapses into a full-replace stamp when it
  // outgrows |S| (processing it would then cost as much as a full rebuild
  // anyway), which bounds its memory for consumers that sync rarely.

  /// Monotone counter of mutations (ReplaceAll / UpdateStates calls).
  uint64_t version() const { return version_; }
  /// version() value of the most recent full invalidation.
  uint64_t replace_version() const { return replace_version_; }
  /// States touched by UpdateStates since replace_version(), append-only in
  /// call order (may contain duplicates). Cleared on full invalidation.
  const std::vector<StateId>& dirty_log() const { return dirty_log_; }

  /// Movement distribution out of cell \p from: probabilities parallel to
  /// grid.Neighbors(from), plus the quit probability as the final element
  /// (Eq. 6 with the f_iQ denominator term, so the vector sums to 1 when any
  /// mass exists). Returns all-zeros when the cell has no observed mass.
  std::vector<double> MoveAndQuitDistribution(CellId from) const;

  /// Quit probability at cell \p from: f_iQ / (sum_neighbors + f_iQ).
  double QuitProbability(CellId from) const;

  /// Entering distribution over all cells (Pr(e_i)); all-zeros when the model
  /// has no entering mass.
  std::vector<double> EnterDistribution() const;

  /// Quitting distribution over all cells (Pr(q_j)); all-zeros when the model
  /// has no quitting mass.
  std::vector<double> QuitDistribution() const;

 private:
  const StateSpace* states_;
  std::vector<double> freq_;
  bool initialized_ = false;
  uint64_t version_ = 0;
  uint64_t replace_version_ = 0;
  std::vector<StateId> dirty_log_;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_MOBILITY_MODEL_H_
