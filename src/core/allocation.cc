#include "core/allocation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace retrasyn {

const char* AllocationKindName(AllocationKind kind) {
  switch (kind) {
    case AllocationKind::kAdaptive:
      return "Adaptive";
    case AllocationKind::kUniform:
      return "Uniform";
    case AllocationKind::kSample:
      return "Sample";
    case AllocationKind::kRandom:
      return "Random";
  }
  return "Unknown";
}

PortionAllocator::PortionAllocator(const AllocationConfig& config, int window,
                                   uint32_t domain_size)
    : config_(config), window_(window), domain_size_(domain_size) {
  RETRASYN_CHECK(window >= 1);
  RETRASYN_CHECK(config.kappa >= 1);
  RETRASYN_CHECK(domain_size >= 1);
}

double PortionAllocator::Portion(int64_t t) const {
  switch (config_.kind) {
    case AllocationKind::kUniform:
      return 1.0 / window_;
    case AllocationKind::kSample:
      return (t % window_ == 0) ? 1.0 : 0.0;
    case AllocationKind::kRandom:
      return 0.0;
    case AllocationKind::kAdaptive:
      break;
  }
  if (rounds_recorded_ == 0) {
    // Initialization round (Alg. 1 line 2): 1/w of the users/budget.
    return 1.0 / window_;
  }
  const double dev = ComputeDeviation();
  const double ratio = MeanSignificantRatio();
  const double p = (config_.alpha / window_) * (1.0 - ratio) * std::log1p(dev);
  const double floor =
      config_.min_portion < 0.0 ? 0.5 / window_ : config_.min_portion;
  return std::clamp(p, std::min(floor, config_.max_portion),
                    config_.max_portion);
}

void PortionAllocator::RecordRound(const std::vector<double>& collected_freqs,
                                   size_t num_significant) {
  RETRASYN_CHECK(collected_freqs.size() == domain_size_);
  freq_history_.push_back(collected_freqs);
  while (freq_history_.size() > static_cast<size_t>(config_.kappa) + 1) {
    freq_history_.pop_front();
  }
  ratio_history_.push_back(static_cast<double>(num_significant) /
                           static_cast<double>(domain_size_));
  while (ratio_history_.size() > static_cast<size_t>(config_.kappa)) {
    ratio_history_.pop_front();
  }
  ++rounds_recorded_;
}

double PortionAllocator::ComputeDeviation() const {
  // Eq. 9: deviation of the latest snapshot f^{t-1} from the mean of the
  // kappa snapshots preceding it, summed (in absolute value) over states.
  if (freq_history_.size() < 2) return 0.0;
  const std::vector<double>& latest = freq_history_.back();
  const size_t prior = freq_history_.size() - 1;  // <= kappa
  double dev = 0.0;
  for (uint32_t s = 0; s < domain_size_; ++s) {
    double mean = 0.0;
    for (size_t i = 0; i < prior; ++i) mean += freq_history_[i][s];
    mean /= static_cast<double>(prior);
    dev += std::abs(latest[s] - mean);
  }
  return dev;
}

double PortionAllocator::MeanSignificantRatio() const {
  if (ratio_history_.empty()) return 0.0;
  double sum = 0.0;
  for (double r : ratio_history_) sum += r;
  return sum / static_cast<double>(ratio_history_.size());
}

}  // namespace retrasyn
