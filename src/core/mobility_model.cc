#include "core/mobility_model.h"

#include <algorithm>

#include "common/logging.h"

namespace retrasyn {

GlobalMobilityModel::GlobalMobilityModel(const StateSpace& states)
    : states_(&states), freq_(states.size(), 0.0) {}

void GlobalMobilityModel::ReplaceAll(const std::vector<double>& frequencies) {
  RETRASYN_CHECK(frequencies.size() == freq_.size());
  for (uint32_t i = 0; i < freq_.size(); ++i) {
    freq_[i] = std::max(0.0, frequencies[i]);
  }
  initialized_ = true;
  ++version_;
  replace_version_ = version_;
  dirty_log_.clear();
}

void GlobalMobilityModel::UpdateStates(const std::vector<StateId>& selected,
                                       const std::vector<double>& frequencies) {
  RETRASYN_CHECK(frequencies.size() == freq_.size());
  for (StateId s : selected) {
    RETRASYN_DCHECK(s < freq_.size());
    freq_[s] = std::max(0.0, frequencies[s]);
  }
  initialized_ = true;
  ++version_;
  dirty_log_.insert(dirty_log_.end(), selected.begin(), selected.end());
  if (dirty_log_.size() > freq_.size()) {
    // Incremental replay would now cost at least a full rebuild: collapse.
    dirty_log_.clear();
    replace_version_ = version_;
  }
}

void GlobalMobilityModel::Restore(std::vector<double> frequencies,
                                  bool initialized) {
  RETRASYN_CHECK(frequencies.size() == freq_.size());
  freq_ = std::move(frequencies);
  initialized_ = initialized;
  ++version_;
  replace_version_ = version_;
  dirty_log_.clear();
}

std::vector<double> GlobalMobilityModel::MoveAndQuitDistribution(
    CellId from) const {
  const SpatialGrid& grid = states_->grid();
  const auto& nbrs = grid.Neighbors(from);
  std::vector<double> dist(nbrs.size() + 1, 0.0);
  double total = 0.0;
  const StateId offset = states_->MoveOffset(from);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    const double f = std::max(0.0, freq_[offset + i]);
    dist[i] = f;
    total += f;
  }
  const double quit = std::max(0.0, freq_[states_->QuitIndex(from)]);
  dist[nbrs.size()] = quit;
  total += quit;
  if (total <= 0.0) return dist;  // all zeros: caller decides the fallback
  for (double& d : dist) d /= total;
  return dist;
}

double GlobalMobilityModel::QuitProbability(CellId from) const {
  const auto& nbrs = states_->grid().Neighbors(from);
  double total = 0.0;
  const StateId offset = states_->MoveOffset(from);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    total += std::max(0.0, freq_[offset + i]);
  }
  const double quit = std::max(0.0, freq_[states_->QuitIndex(from)]);
  total += quit;
  if (total <= 0.0) return 0.0;
  return quit / total;
}

std::vector<double> GlobalMobilityModel::EnterDistribution() const {
  const uint32_t num_cells = states_->num_cells();
  std::vector<double> dist(num_cells, 0.0);
  double total = 0.0;
  for (CellId c = 0; c < num_cells; ++c) {
    const double f = std::max(0.0, freq_[states_->EnterIndex(c)]);
    dist[c] = f;
    total += f;
  }
  if (total <= 0.0) return dist;
  for (double& d : dist) d /= total;
  return dist;
}

std::vector<double> GlobalMobilityModel::QuitDistribution() const {
  const uint32_t num_cells = states_->num_cells();
  std::vector<double> dist(num_cells, 0.0);
  double total = 0.0;
  for (CellId c = 0; c < num_cells; ++c) {
    const double f = std::max(0.0, freq_[states_->QuitIndex(c)]);
    dist[c] = f;
    total += f;
  }
  if (total <= 0.0) return dist;
  for (double& d : dist) d /= total;
  return dist;
}

}  // namespace retrasyn
