// Cached O(1) samplers over the global mobility model's derived
// distributions (paper SIV-B: per-round synthesis must be O(|T_syn|)).
//
// The synthesizer used to re-derive distributions from raw frequencies at
// every draw: O(degree) + a heap allocation per sampled point, O(|C|) per
// spawned stream for the entering distribution. This cache materializes, per
// source cell, a Walker/Vose alias table over the outgoing movement
// frequencies plus the Eq. 6/8 quit probability, and global alias tables for
// the entering distribution and the movement-source marginal, making every
// per-point operation one RNG draw and two array reads — independent of cell
// degree and of |C|.
//
// Invalidation is driven by the model's change log: ReplaceAll (or a
// collapsed log) triggers a full rebuild, while the DMU's UpdateStates only
// re-derives the cells whose states were actually selected (Sync cost
// O(dirty) instead of O(|S|)). Rebuilds reuse all internal storage, so the
// steady state performs no heap allocation at all.
//
// Thread-safety: Sync mutates the cache and must not run concurrently with
// sampling; the sampling accessors are const and safe to call from parallel
// synthesis chunks — except SampleMoveMarginalCell, which rebuilds its table
// lazily and is only ever called from the serial spawn path.

#ifndef RETRASYN_CORE_TRANSITION_SAMPLER_CACHE_H_
#define RETRASYN_CORE_TRANSITION_SAMPLER_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/alias_table.h"
#include "common/rng.h"
#include "core/mobility_model.h"
#include "geo/state_space.h"

namespace retrasyn {

/// Observability counters for tests and benchmarks: how much derivation work
/// each Sync actually performed.
struct SamplerCacheStats {
  uint64_t syncs = 0;           ///< Sync calls that found the cache stale
  uint64_t full_rebuilds = 0;   ///< full invalidations processed
  uint64_t cell_rebuilds = 0;   ///< per-cell movement tables re-derived
  uint64_t enter_rebuilds = 0;  ///< entering-distribution table rebuilds
  uint64_t quit_rebuilds = 0;   ///< quitting-distribution rebuilds
};

class TransitionSamplerCache {
 public:
  explicit TransitionSamplerCache(const StateSpace& states);

  /// Brings every cached structure up to date with \p model. Cheap when the
  /// model did not change since the last Sync; proportional to the dirty set
  /// otherwise. Must be called (and return) before any sampling accessor.
  void Sync(const GlobalMobilityModel& model);

  /// True once Sync has run against the current model version.
  bool synced_once() const { return synced_once_; }

  /// O(1) Markov step out of \p from, distributed exactly like the linear
  /// scan over max(0, f_ij): dwells in place (returns \p from) when the cell
  /// has no outgoing movement mass.
  CellId SampleNextCell(CellId from, Rng& rng) const {
    const AliasTable& table = next_cell_[from];
    if (!table.has_mass()) return from;
    return states_->grid().Neighbors(from)[table.Sample(rng)];
  }

  /// Eq. 8 base quit probability at \p at: f_iQ / (sum_nbrs f_ix + f_iQ).
  double QuitProbability(CellId at) const { return quit_prob_[at]; }

  /// Draws a start cell from the entering distribution Pr(e_i); returns
  /// num_cells() when the model holds no entering mass (caller falls back to
  /// uniform, mirroring Rng::Discrete's sentinel).
  CellId SampleEnterCell(Rng& rng) const {
    if (!enter_.has_mass()) return states_->num_cells();
    return static_cast<CellId>(enter_.Sample(rng));
  }

  /// Draws a start cell from the movement-source marginal (the NoEQ /
  /// random_init approximation of where users currently are); num_cells()
  /// when the model carries no movement mass. The O(|C|) marginal table is
  /// rebuilt lazily on the first draw after an invalidating Sync, so configs
  /// that never spawn from it (random_init=false, the default) never pay for
  /// it. Must not be called concurrently with itself or Sync — in practice
  /// it only runs from the serial Spawn path, never from parallel chunks.
  CellId SampleMoveMarginalCell(Rng& rng) const {
    if (move_marginal_stale_) {
      move_marginal_.Build(move_mass_);
      move_marginal_stale_ = false;
    }
    if (!move_marginal_.has_mass()) return states_->num_cells();
    return static_cast<CellId>(move_marginal_.Sample(rng));
  }

  /// Normalized quitting distribution Pr(q_j) (all zeros when no quit mass),
  /// identical to GlobalMobilityModel::QuitDistribution but rebuilt only when
  /// a quit state changes. Used by the size-adjustment victim weighting.
  const std::vector<double>& QuitDistribution() const { return quit_dist_; }

  const SamplerCacheStats& stats() const { return stats_; }

 private:
  void RebuildCell(const GlobalMobilityModel& model, CellId c);
  void RebuildEnter(const GlobalMobilityModel& model);
  void RebuildQuitDistribution(const GlobalMobilityModel& model);
  void RebuildAll(const GlobalMobilityModel& model);

  const StateSpace* states_;

  // Synchronization point with the model's change log.
  bool synced_once_ = false;
  uint64_t synced_version_ = 0;
  uint64_t synced_replace_version_ = 0;
  size_t dirty_log_consumed_ = 0;

  // Derived structures.
  std::vector<AliasTable> next_cell_;  ///< per source cell, over Neighbors()
  std::vector<double> quit_prob_;      ///< per cell, Eq. 8 base
  std::vector<double> move_mass_;      ///< per cell: sum of outgoing f_ij
  AliasTable enter_;
  // Lazily (re)built from move_mass_ on first use after invalidation; see
  // SampleMoveMarginalCell for the (serial-only) mutability contract.
  mutable AliasTable move_marginal_;
  mutable bool move_marginal_stale_ = true;
  std::vector<double> quit_dist_;

  // Sync scratch (reused; no steady-state allocation).
  std::vector<double> weight_scratch_;
  std::vector<uint8_t> cell_dirty_scratch_;
  std::vector<CellId> dirty_cells_scratch_;

  SamplerCacheStats stats_;
};

}  // namespace retrasyn

#endif  // RETRASYN_CORE_TRANSITION_SAMPLER_CACHE_H_
