// Mobility-model persistence: lets a curator checkpoint the learned global
// mobility model and restore it after a restart without re-spending any
// privacy budget (the stored values are post-processed LDP outputs, Thm. 2).
//
// Format: a small versioned text header binding the model to its grid
// geometry, followed by one frequency per line. Loading validates the
// geometry so a model cannot silently be applied to a mismatched grid.

#ifndef RETRASYN_CORE_MODEL_IO_H_
#define RETRASYN_CORE_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/mobility_model.h"

namespace retrasyn {

/// \brief Writes the model's frequency vector with a geometry-binding header.
Status SaveMobilityModel(const GlobalMobilityModel& model,
                         const std::string& path);

/// \brief Restores a model saved by SaveMobilityModel into \p model, which
/// must be built over a grid with the same K and state-space size.
Status LoadMobilityModel(const std::string& path, GlobalMobilityModel* model);

}  // namespace retrasyn

#endif  // RETRASYN_CORE_MODEL_IO_H_
