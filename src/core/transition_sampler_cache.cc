#include "core/transition_sampler_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace retrasyn {

TransitionSamplerCache::TransitionSamplerCache(const StateSpace& states)
    : states_(&states),
      next_cell_(states.num_cells()),
      quit_prob_(states.num_cells(), 0.0),
      move_mass_(states.num_cells(), 0.0),
      quit_dist_(states.num_cells(), 0.0),
      cell_dirty_scratch_(states.num_cells(), 0) {}

void TransitionSamplerCache::RebuildCell(const GlobalMobilityModel& model,
                                         CellId c) {
  const auto& nbrs = states_->grid().Neighbors(c);
  const StateId offset = states_->MoveOffset(c);
  weight_scratch_.clear();
  double mass = 0.0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    const double f =
        std::max(0.0, model.frequency(offset + static_cast<StateId>(i)));
    weight_scratch_.push_back(f);
    mass += f;
  }
  next_cell_[c].Build(weight_scratch_);
  move_mass_[c] = mass;
  const double quit = std::max(0.0, model.frequency(states_->QuitIndex(c)));
  const double total = mass + quit;
  quit_prob_[c] = total > 0.0 ? quit / total : 0.0;
  ++stats_.cell_rebuilds;
}

void TransitionSamplerCache::RebuildEnter(const GlobalMobilityModel& model) {
  const uint32_t num_cells = states_->num_cells();
  weight_scratch_.clear();
  for (CellId c = 0; c < num_cells; ++c) {
    weight_scratch_.push_back(
        std::max(0.0, model.frequency(states_->EnterIndex(c))));
  }
  enter_.Build(weight_scratch_);
  ++stats_.enter_rebuilds;
}

void TransitionSamplerCache::RebuildQuitDistribution(
    const GlobalMobilityModel& model) {
  const uint32_t num_cells = states_->num_cells();
  double total = 0.0;
  for (CellId c = 0; c < num_cells; ++c) {
    const double f = std::max(0.0, model.frequency(states_->QuitIndex(c)));
    quit_dist_[c] = f;
    total += f;
  }
  if (total > 0.0) {
    for (double& d : quit_dist_) d /= total;
  }
  ++stats_.quit_rebuilds;
}

void TransitionSamplerCache::RebuildAll(const GlobalMobilityModel& model) {
  const uint32_t num_cells = states_->num_cells();
  for (CellId c = 0; c < num_cells; ++c) RebuildCell(model, c);
  RebuildEnter(model);
  RebuildQuitDistribution(model);
  move_marginal_stale_ = true;
  ++stats_.full_rebuilds;
}

void TransitionSamplerCache::Sync(const GlobalMobilityModel& model) {
  RETRASYN_CHECK(&model.states() == states_);
  if (synced_once_ && synced_version_ == model.version()) return;
  ++stats_.syncs;

  if (!synced_once_ || synced_replace_version_ != model.replace_version()) {
    RebuildAll(model);
    synced_once_ = true;
    synced_version_ = model.version();
    synced_replace_version_ = model.replace_version();
    dirty_log_consumed_ = model.dirty_log().size();
    return;
  }

  // Incremental: classify the new tail of the dirty log into affected
  // derived structures, then rebuild each touched piece once.
  const std::vector<StateId>& log = model.dirty_log();
  RETRASYN_DCHECK(dirty_log_consumed_ <= log.size());
  bool enter_dirty = false;
  bool quit_dirty = false;
  bool marginal_dirty = false;
  dirty_cells_scratch_.clear();
  for (size_t i = dirty_log_consumed_; i < log.size(); ++i) {
    const StateId s = log[i];
    if (states_->IsMove(s)) {
      const CellId c = states_->Decode(s).from;
      if (!cell_dirty_scratch_[c]) {
        cell_dirty_scratch_[c] = 1;
        dirty_cells_scratch_.push_back(c);
      }
      marginal_dirty = true;
    } else if (states_->IsEnter(s)) {
      enter_dirty = true;
    } else {
      // Quit state of cell c: feeds both the global quitting distribution and
      // the cell's Eq. 8 denominator.
      const CellId c = s - states_->QuitIndex(0);
      if (!cell_dirty_scratch_[c]) {
        cell_dirty_scratch_[c] = 1;
        dirty_cells_scratch_.push_back(c);
      }
      quit_dirty = true;
    }
  }
  for (CellId c : dirty_cells_scratch_) {
    RebuildCell(model, c);
    cell_dirty_scratch_[c] = 0;
  }
  if (enter_dirty) RebuildEnter(model);
  if (quit_dirty) RebuildQuitDistribution(model);
  // The O(|C|) marginal table is only marked stale here; configs that never
  // draw from it (random_init=false) never rebuild it.
  if (marginal_dirty) move_marginal_stale_ = true;

  synced_version_ = model.version();
  dirty_log_consumed_ = log.size();
}

}  // namespace retrasyn
