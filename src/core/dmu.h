// Dynamic Mobility Update mechanism (paper SIII-C).
//
// At each collection round the curator decides, per transition state, whether
// to overwrite the model entry with the fresh (noisy) estimate or keep the
// current approximation. The total introduced error (Eq. 7),
//
//   Err = sum_s x_s * Var_OUE(eps_t, n_t) + sum_s (1 - x_s)(f~_s - f^_s)^2,
//
// is separable across states, so the exact minimizer is the per-state rule
// "select s iff the (estimated) approximation bias exceeds the perturbation
// variance". States so selected are the paper's *significant transitions*.

#ifndef RETRASYN_CORE_DMU_H_
#define RETRASYN_CORE_DMU_H_

#include <cstdint>
#include <vector>

#include "geo/state_space.h"

namespace retrasyn {

struct DmuDecision {
  /// States to update with the fresh estimates (S* in the paper).
  std::vector<StateId> selected;
  /// Total error of the chosen selection under the Eq. 7 objective.
  double objective = 0.0;
  /// Per-report variance term used for the decision.
  double update_error = 0.0;
};

/// \brief Picks the significant transitions for one collection round.
///
/// \param model_freqs     current model frequencies f~ (size |S|)
/// \param collected_freqs fresh noisy estimates f^  (size |S|)
/// \param epsilon         per-report budget of this round
/// \param num_reports     number of reporting users this round
DmuDecision SelectSignificantTransitions(
    const std::vector<double>& model_freqs,
    const std::vector<double>& collected_freqs, double epsilon,
    uint64_t num_reports);

/// \brief Exhaustive minimizer of the Eq. 7 objective (2^|S| subsets); only
/// feasible for tiny state spaces. Used by tests to certify that the
/// separable rule above is the exact optimum.
DmuDecision SelectSignificantTransitionsBruteForce(
    const std::vector<double>& model_freqs,
    const std::vector<double>& collected_freqs, double epsilon,
    uint64_t num_reports);

}  // namespace retrasyn

#endif  // RETRASYN_CORE_DMU_H_
