#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/dmu.h"

namespace retrasyn {

// Budget-division rounds below this epsilon are skipped outright: the OUE
// estimator's denominator p - q = 1/2 - 1/(e^eps + 1) vanishes as eps -> 0,
// so a microscopic budget yields numerically explosive pure noise (and at
// eps < ~1e-16, exact 0/0 NaNs). Skipping lets the window recover instead.
constexpr double kMinRoundEpsilon = 1e-4;

Status RetraSynConfig::Validate() const {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "epsilon must be a positive finite privacy budget, got " +
        std::to_string(epsilon));
  }
  if (window < 1) {
    return Status::InvalidArgument(
        "window must be at least 1 timestamp (w-event privacy), got " +
        std::to_string(window));
  }
  if (!std::isfinite(lambda) || lambda <= 0.0) {
    return Status::InvalidArgument(
        "lambda (Eq. 8 stream-length reweighting factor) must be a positive "
        "finite value, got " +
        std::to_string(lambda));
  }
  if (allocation.kind == AllocationKind::kRandom &&
      division != DivisionStrategy::kPopulation) {
    return Status::InvalidArgument(
        "the Random allocation strategy schedules per-user report slots and "
        "is only defined under population division");
  }
  if (!std::isfinite(allocation.max_portion) ||
      allocation.max_portion <= 0.0 || allocation.max_portion > 1.0) {
    return Status::InvalidArgument(
        "allocation.max_portion must lie in (0, 1], got " +
        std::to_string(allocation.max_portion));
  }
  if (!(allocation.min_portion <= 1.0)) {  // also rejects NaN
    return Status::InvalidArgument(
        "allocation.min_portion must not exceed 1, got " +
        std::to_string(allocation.min_portion));
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 1 (or 0 to resolve to the hardware "
        "concurrency), got " +
        std::to_string(num_threads));
  }
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads " + std::to_string(num_threads) +
        " exceeds the sanity cap of " + std::to_string(kMaxThreads));
  }
  if (ingest_shards < 1) {
    return Status::InvalidArgument(
        "ingest_shards must be >= 1 (1 = unsharded ingestion), got " +
        std::to_string(ingest_shards));
  }
  if (ingest_shards > kMaxIngestShards) {
    return Status::InvalidArgument(
        "ingest_shards " + std::to_string(ingest_shards) +
        " exceeds the sanity cap of " + std::to_string(kMaxIngestShards));
  }
  // round_queue_capacity and the journal_*/checkpoint_* fields are
  // service-layer state
  // (ignored by bare engines); ServiceOptions::Validate owns their checks,
  // via the TrajectoryService factories.
  return Status::OK();
}

namespace {

/// Resolves the configured thread count: explicit value, or the shared
/// pool's size / hardware concurrency for the 0 = auto setting.
int ResolveThreads(const RetraSynConfig& config) {
  if (config.num_threads > 0) return config.num_threads;
  if (config.thread_pool != nullptr) return config.thread_pool->num_threads();
  return std::max(1u, std::thread::hardware_concurrency());
}

SynthesizerConfig MakeSynthesizerConfig(const RetraSynConfig& config) {
  SynthesizerConfig synth;
  synth.lambda = config.lambda;
  synth.use_quit = config.use_eq;
  synth.use_size_adjustment = config.use_eq;
  synth.random_init = !config.use_eq;
  synth.num_threads = ResolveThreads(config);
  synth.use_sampler_cache = config.use_sampler_cache;
  return synth;
}

}  // namespace

const char* DivisionStrategyName(DivisionStrategy division) {
  switch (division) {
    case DivisionStrategy::kBudget:
      return "b";
    case DivisionStrategy::kPopulation:
      return "p";
  }
  return "?";
}

RetraSynEngine::RetraSynEngine(const StateSpace& states,
                               const RetraSynConfig& config)
    : states_(&states),
      config_(config),
      rng_(config.seed),
      collector_(states.size(), config.collection_mode, config.oracle),
      model_(states),
      synthesizer_(states, MakeSynthesizerConfig(config)),
      allocator_(config.allocation, config.window, states.size()),
      ledger_(config.window, config.epsilon),
      tracker_(config.window) {
  // Programmatic construction aborts on a bad config (a programming bug);
  // service-layer callers validate first and surface the Status instead.
  config.Validate().CheckOK();
  const int threads = ResolveThreads(config);
  if (config.thread_pool != nullptr) {
    pool_ = config.thread_pool;  // shared across engines (multi-tenant)
  } else if (threads > 1) {
    pool_ = std::make_shared<ThreadPool>(threads);
  }
  synthesizer_.SetThreadPool(pool_.get());
}

std::string RetraSynEngine::name() const {
  std::string base = "RetraSyn";
  if (!config_.use_dmu) base = "AllUpdate";
  if (!config_.use_eq) base = "NoEQ";
  base += DivisionStrategyName(config_.division);
  base += "-";
  base += AllocationKindName(config_.allocation.kind);
  return base;
}

bool RetraSynEngine::ObservationEligible(const UserObservation& obs) const {
  if (!config_.use_eq && (obs.is_enter || obs.is_quit)) return false;
  return true;
}

void RetraSynEngine::EnsureUser(uint32_t user) {
  if (user < status_.size()) return;
  // The bookkeeping is dense over user_index: indices must be the compact
  // stream indices of the service layer / feeder (cumulative, or recycled
  // per RetireQuitted), not arbitrary device ids. The cap turns a miskeyed
  // id (which would silently allocate gigabytes) into an immediate,
  // diagnosable failure — IngestSession::Tick() refuses to mint indices at
  // the cap with kResourceExhausted before they ever reach this check.
  RETRASYN_CHECK_MSG(user < kMaxStreamIndex,
                     "user_index must be a dense stream index");
  // Grow geometrically so the amortized cost per new user is O(1). The
  // report-slot schedule only exists under the Random allocation strategy.
  const size_t size = std::max<size_t>(user + 1, status_.size() * 2);
  status_.resize(size, UserStatus::kUnknown);
  if (config_.allocation.kind == AllocationKind::kRandom) {
    report_slot_.resize(size, kNoSlot);
  }
}

void RetraSynEngine::RetireQuitted(int64_t t) {
  retired_last_round_.clear();
  if (!config_.recycle_stream_indices) return;
  // A quitted stream's last possible report was its quit round (the quit
  // transition itself), so once that round leaves the w-window the index's
  // whole contribution has left it too — Alg. 1's recycle boundary, applied
  // to the index lifecycle. Resetting to kUnknown makes the slot
  // indistinguishable from a never-used one, which is why the released bytes
  // are identical whether the session re-issues the index or mints a fresh
  // one. This runs before arrival registration: an enter in this very batch
  // may already carry a retired index.
  while (!quitted_at_.empty() &&
         quitted_at_.front().first <= t - config_.window) {
    for (uint32_t user : quitted_at_.front().second) {
      status_[user] = UserStatus::kUnknown;
      if (config_.allocation.kind == AllocationKind::kRandom) {
        report_slot_[user] = kNoSlot;
      }
      retired_last_round_.push_back(user);
    }
    total_retired_ += quitted_at_.front().second.size();
    quitted_at_.pop_front();
  }
}

std::vector<uint32_t> RetraSynEngine::PrepareEligible(
    const TimestampBatch& batch) {
  const int64_t t = batch.t;
  RetireQuitted(t);
  // Register arrivals as active (Alg. 1 line 7).
  for (const UserObservation& obs : batch.observations) {
    if (obs.is_enter) {
      EnsureUser(obs.user_index);
      status_[obs.user_index] = UserStatus::kActive;
      if (config_.allocation.kind == AllocationKind::kRandom) {
        report_slot_[obs.user_index] =
            t + static_cast<int64_t>(rng_.UniformInt(
                    static_cast<uint64_t>(config_.window)));
      }
    }
  }
  // Recycle users whose report is now outside the window (Alg. 1 line 9).
  while (!reported_at_.empty() &&
         reported_at_.front().first <= t - config_.window) {
    for (uint32_t user : reported_at_.front().second) {
      // Recorded reporters are always within the dense range.
      if (status_[user] == UserStatus::kInactive) {
        status_[user] = UserStatus::kActive;
        if (config_.allocation.kind == AllocationKind::kRandom) {
          report_slot_[user] =
              t + static_cast<int64_t>(rng_.UniformInt(
                      static_cast<uint64_t>(config_.window)));
        }
      }
    }
    reported_at_.pop_front();
  }
  // Eligible = present in this batch, status active, and within the
  // engine's observable state set.
  std::vector<uint32_t> eligible;
  eligible.reserve(batch.observations.size());
  for (uint32_t i = 0; i < batch.observations.size(); ++i) {
    const UserObservation& obs = batch.observations[i];
    if (!ObservationEligible(obs)) continue;
    if (obs.user_index >= status_.size() ||
        status_[obs.user_index] != UserStatus::kActive) {
      continue;
    }
    eligible.push_back(i);
  }
  return eligible;
}

std::vector<uint32_t> RetraSynEngine::ChooseReporters(
    const TimestampBatch& batch, const std::vector<uint32_t>& eligible) {
  const int64_t t = batch.t;
  if (config_.allocation.kind == AllocationKind::kRandom) {
    std::vector<uint32_t> chosen;
    for (uint32_t i : eligible) {
      const uint32_t user = batch.observations[i].user_index;
      if (user < report_slot_.size() && report_slot_[user] == t) {
        chosen.push_back(i);
      }
    }
    return chosen;
  }
  const double p = allocator_.Portion(t);
  const uint32_t k = static_cast<uint32_t>(
      std::llround(p * static_cast<double>(eligible.size())));
  if (k == 0) return {};
  if (k >= eligible.size()) return eligible;
  std::vector<uint32_t> picks = rng_.SampleWithoutReplacement(
      static_cast<uint32_t>(eligible.size()), k);
  std::vector<uint32_t> chosen;
  chosen.reserve(picks.size());
  for (uint32_t p_idx : picks) chosen.push_back(eligible[p_idx]);
  return chosen;
}

void RetraSynEngine::CommitStatuses(const TimestampBatch& batch,
                                    const std::vector<uint32_t>& chosen) {
  const int64_t t = batch.t;
  std::vector<uint32_t> reported_users;
  reported_users.reserve(chosen.size());
  for (uint32_t i : chosen) {
    const uint32_t user = batch.observations[i].user_index;
    EnsureUser(user);
    status_[user] = UserStatus::kInactive;
    reported_users.push_back(user);
    tracker_.RecordReport(user, t);
  }
  if (!reported_users.empty()) {
    reported_at_.emplace_back(t, std::move(reported_users));
  }
  // Quitting users never report again (Alg. 1 line 8); this overrides the
  // inactive mark for quitters that were chosen this round.
  std::vector<uint32_t> quitted;
  for (const UserObservation& obs : batch.observations) {
    if (obs.is_quit) {
      EnsureUser(obs.user_index);
      status_[obs.user_index] = UserStatus::kQuitted;
      if (config_.allocation.kind == AllocationKind::kRandom) {
        report_slot_[obs.user_index] = kNoSlot;
      }
      if (config_.recycle_stream_indices) quitted.push_back(obs.user_index);
    }
  }
  if (!quitted.empty()) quitted_at_.emplace_back(t, std::move(quitted));
}

void RetraSynEngine::Observe(const TimestampBatch& batch) {
  const int64_t t = batch.t;

  // --- Reporting set & per-report budget --------------------------------
  std::vector<StateId> report_states;
  double eps_round = 0.0;
  if (config_.division == DivisionStrategy::kPopulation) {
    const std::vector<uint32_t> eligible = PrepareEligible(batch);
    const std::vector<uint32_t> chosen = ChooseReporters(batch, eligible);
    report_states.reserve(chosen.size());
    for (uint32_t i : chosen) {
      report_states.push_back(batch.observations[i].state);
    }
    CommitStatuses(batch, chosen);
    eps_round = config_.epsilon;
    ledger_.Record(t, 0.0);  // keep the ledger clock advancing
  } else {
    for (const UserObservation& obs : batch.observations) {
      if (ObservationEligible(obs)) report_states.push_back(obs.state);
    }
    double eps_t = 0.0;
    if (!report_states.empty()) {
      switch (config_.allocation.kind) {
        case AllocationKind::kUniform:
          eps_t = config_.epsilon / config_.window;
          break;
        case AllocationKind::kSample:
          eps_t = (t % config_.window == 0) ? config_.epsilon : 0.0;
          break;
        case AllocationKind::kAdaptive:
          eps_t = allocator_.Portion(t) * ledger_.RemainingAt(t);
          break;
        case AllocationKind::kRandom:
          RETRASYN_CHECK_MSG(false, "unreachable: Random is population-only");
      }
      eps_t = std::min(eps_t, ledger_.RemainingAt(t));
    }
    if (!(eps_t >= kMinRoundEpsilon)) {  // also rejects NaN
      eps_t = 0.0;
      report_states.clear();
    }
    ledger_.Record(t, report_states.empty() ? 0.0 : eps_t);
    eps_round = eps_t;
  }

  // --- LDP collection ----------------------------------------------------
  CollectTimings timings;
  CollectionResult result =
      collector_.Collect(report_states, eps_round, rng_, &timings);
  times_.user_side.Add(timings.user_side_seconds);
  if (user_side_hist_ != nullptr) {
    user_side_hist_->Record(timings.user_side_seconds);
  }
  if (result.num_reports > 0) {
    Stopwatch postprocess_watch;
    ApplyPostprocess(config_.postprocess, result.frequencies, 1.0);
    timings.aggregation_seconds += postprocess_watch.ElapsedSeconds();
  }
  times_.model_construction.Add(timings.aggregation_seconds);
  if (model_hist_ != nullptr) model_hist_->Record(timings.aggregation_seconds);
  total_reports_ += result.num_reports;
  if (reports_metric_ != nullptr) reports_metric_->Add(result.num_reports);

  // --- Model update (DMU, SIII-C) ----------------------------------------
  Stopwatch dmu_watch;
  size_t num_significant = 0;
  if (result.num_reports > 0) {
    if (!collected_once_ || !config_.use_dmu) {
      // Full replacement (initialization / AllUpdate): no DMU selection took
      // place, so no significant-transition count enters the Eq. 10 history.
      model_.ReplaceAll(result.frequencies);
      collected_once_ = true;
    } else {
      const DmuDecision decision = SelectSignificantTransitions(
          model_.frequencies(), result.frequencies, eps_round,
          result.num_reports);
      model_.UpdateStates(decision.selected, result.frequencies);
      num_significant = decision.selected.size();
    }
  }
  const double dmu_seconds = dmu_watch.ElapsedSeconds();
  times_.dmu.Add(dmu_seconds);
  if (dmu_hist_ != nullptr) dmu_hist_->Record(dmu_seconds);
  if (config_.allocation.kind == AllocationKind::kAdaptive &&
      result.num_reports > 0) {
    allocator_.RecordRound(result.frequencies, num_significant);
  }

  // --- Real-time synthesis (SIII-D) --------------------------------------
  Stopwatch syn_watch;
  if (model_.initialized()) {
    if (!synthesizer_.initialized()) {
      synthesizer_.Initialize(model_, batch.num_active, t, rng_);
    } else {
      synthesizer_.Step(model_, batch.num_active, t, rng_);
    }
  }
  const double synthesis_seconds = syn_watch.ElapsedSeconds();
  times_.synthesis.Add(synthesis_seconds);
  if (synthesis_hist_ != nullptr) synthesis_hist_->Record(synthesis_seconds);
  if (rounds_metric_ != nullptr) rounds_metric_->Increment();
}

void RetraSynEngine::AttachTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr) {
    rounds_metric_ = nullptr;
    reports_metric_ = nullptr;
    user_side_hist_ = nullptr;
    model_hist_ = nullptr;
    dmu_hist_ = nullptr;
    synthesis_hist_ = nullptr;
    synthesizer_.AttachTelemetry(nullptr);
    return;
  }
  MetricsRegistry& registry = telemetry->registry();
  rounds_metric_ = registry.GetCounter("retrasyn_engine_rounds_observed_total",
                                       "Timestamp batches consumed by "
                                       "Observe()");
  reports_metric_ = registry.GetCounter(
      "retrasyn_engine_reports_total",
      "LDP reports collected across all rounds");
  user_side_hist_ = registry.GetHistogram(
      "retrasyn_engine_user_side_seconds",
      "Per-round user-side LDP collection time (paper Table V)");
  model_hist_ = registry.GetHistogram(
      "retrasyn_engine_model_construction_seconds",
      "Per-round aggregation + post-processing time");
  dmu_hist_ = registry.GetHistogram(
      "retrasyn_engine_dmu_seconds",
      "Per-round dynamic model update time");
  synthesis_hist_ = registry.GetHistogram(
      "retrasyn_engine_synthesis_seconds",
      "Per-round synthesis time (Initialize/Step)");
  synthesizer_.AttachTelemetry(telemetry);
}

EngineCheckpointState RetraSynEngine::SaveCheckpointState() const {
  EngineCheckpointState state;
  state.rng_state = rng_.state();
  state.collected_once = collected_once_;
  state.total_reports = total_reports_;
  state.model_freq = model_.frequencies();
  state.model_initialized = model_.initialized();
  state.live = synthesizer_.live_streams();
  state.finished = synthesizer_.finished_streams();
  state.total_points = synthesizer_.total_points();
  state.synth_initialized = synthesizer_.initialized();
  state.allocator_rounds_recorded = allocator_.rounds_recorded();
  state.allocator_freq_history = allocator_.freq_history();
  state.allocator_ratio_history = allocator_.ratio_history();
  state.ledger_spends = ledger_.spends();
  state.ledger_window_sum = ledger_.window_sum();
  state.ledger_last_t = ledger_.last_t();
  state.ledger_max_window_spend = ledger_.MaxWindowSpend();
  state.tracker_last_report.assign(tracker_.last_reports().begin(),
                                   tracker_.last_reports().end());
  std::sort(state.tracker_last_report.begin(),
            state.tracker_last_report.end());
  state.tracker_violation = tracker_.HasViolation();
  state.tracker_num_reports = tracker_.num_reports();
  state.status.reserve(status_.size());
  for (UserStatus s : status_) {
    state.status.push_back(static_cast<uint8_t>(s));
  }
  state.report_slot = report_slot_;
  state.reported_at = reported_at_;
  state.quitted_at = quitted_at_;
  state.total_retired = total_retired_;
  return state;
}

Status RetraSynEngine::RestoreCheckpointState(EngineCheckpointState state) {
  if (state.model_freq.size() != states_->size()) {
    return Status::InvalidArgument(
        "checkpointed model has " + std::to_string(state.model_freq.size()) +
        " states, this deployment has " + std::to_string(states_->size()));
  }
  // The dense vectors may legitimately exceed kMaxStreamIndex by the final
  // geometric-growth doubling, never by more.
  if (state.status.size() > 2 * static_cast<size_t>(kMaxStreamIndex)) {
    return Status::InvalidArgument("checkpointed dense state impossibly big");
  }
  for (uint8_t s : state.status) {
    if (s > static_cast<uint8_t>(UserStatus::kQuitted)) {
      return Status::InvalidArgument("checkpointed user status out of range");
    }
  }
  const bool random_slots =
      config_.allocation.kind == AllocationKind::kRandom;
  if (random_slots ? state.report_slot.size() != state.status.size()
                   : !state.report_slot.empty()) {
    return Status::InvalidArgument(
        "checkpointed report-slot schedule does not match the allocation "
        "strategy");
  }
  const uint32_t num_cells = states_->num_cells();
  auto streams_valid = [&](const std::vector<CellStream>& streams) {
    for (const CellStream& s : streams) {
      if (s.cells.empty() || s.enter_time < 0) return false;
      for (CellId c : s.cells) {
        if (c >= num_cells) return false;
      }
    }
    return true;
  };
  if (!streams_valid(state.live) || !streams_valid(state.finished)) {
    return Status::InvalidArgument(
        "checkpointed synthetic stream holds an out-of-range cell");
  }
  auto buckets_valid =
      [&](const std::deque<std::pair<int64_t, std::vector<uint32_t>>>& b) {
        for (const auto& bucket : b) {
          for (uint32_t user : bucket.second) {
            if (user >= state.status.size()) return false;
          }
        }
        return true;
      };
  if (!buckets_valid(state.reported_at) || !buckets_valid(state.quitted_at)) {
    return Status::InvalidArgument(
        "checkpointed report/quit bucket references an unknown index");
  }
  if (!rng_.set_state(state.rng_state)) {
    return Status::InvalidArgument("checkpointed RNG state is all-zero");
  }
  collected_once_ = state.collected_once;
  total_reports_ = state.total_reports;
  model_.Restore(std::move(state.model_freq), state.model_initialized);
  synthesizer_.Restore(std::move(state.live), std::move(state.finished),
                       state.total_points, state.synth_initialized);
  allocator_.Restore(state.allocator_rounds_recorded,
                     std::move(state.allocator_freq_history),
                     std::move(state.allocator_ratio_history));
  ledger_.Restore(std::move(state.ledger_spends), state.ledger_window_sum,
                  state.ledger_last_t, state.ledger_max_window_spend);
  tracker_.Restore({state.tracker_last_report.begin(),
                    state.tracker_last_report.end()},
                   state.tracker_violation, state.tracker_num_reports);
  status_.clear();
  status_.reserve(state.status.size());
  for (uint8_t s : state.status) {
    status_.push_back(static_cast<UserStatus>(s));
  }
  report_slot_ = std::move(state.report_slot);
  reported_at_ = std::move(state.reported_at);
  quitted_at_ = std::move(state.quitted_at);
  retired_last_round_.clear();
  total_retired_ = state.total_retired;
  return Status::OK();
}

CellStreamSet RetraSynEngine::SnapshotRelease(int64_t num_timestamps) const {
  return synthesizer_.Snapshot(num_timestamps);
}

std::vector<uint32_t> RetraSynEngine::LiveDensity() const {
  return synthesizer_.LiveDensity();  // all zeros before initialization
}

CellStreamSet RetraSynEngine::Finish(int64_t num_timestamps) {
  return synthesizer_.Finish(num_timestamps);
}

}  // namespace retrasyn
