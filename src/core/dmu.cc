#include "core/dmu.h"

#include "common/logging.h"
#include "ldp/frequency_oracle.h"

namespace retrasyn {

DmuDecision SelectSignificantTransitions(
    const std::vector<double>& model_freqs,
    const std::vector<double>& collected_freqs, double epsilon,
    uint64_t num_reports) {
  RETRASYN_CHECK(model_freqs.size() == collected_freqs.size());
  DmuDecision decision;
  decision.update_error = OueFrequencyVariance(epsilon, num_reports);
  for (uint32_t s = 0; s < model_freqs.size(); ++s) {
    const double bias = collected_freqs[s] - model_freqs[s];
    const double approx_error = bias * bias;
    if (approx_error > decision.update_error) {
      decision.selected.push_back(s);
      decision.objective += decision.update_error;
    } else {
      decision.objective += approx_error;
    }
  }
  return decision;
}

DmuDecision SelectSignificantTransitionsBruteForce(
    const std::vector<double>& model_freqs,
    const std::vector<double>& collected_freqs, double epsilon,
    uint64_t num_reports) {
  RETRASYN_CHECK(model_freqs.size() == collected_freqs.size());
  const uint32_t d = static_cast<uint32_t>(model_freqs.size());
  RETRASYN_CHECK_MSG(d <= 20, "brute force only supports tiny domains");
  const double var = OueFrequencyVariance(epsilon, num_reports);

  DmuDecision best;
  best.update_error = var;
  double best_obj = -1.0;
  for (uint64_t mask = 0; mask < (1ULL << d); ++mask) {
    double obj = 0.0;
    for (uint32_t s = 0; s < d; ++s) {
      if (mask & (1ULL << s)) {
        obj += var;
      } else {
        const double bias = collected_freqs[s] - model_freqs[s];
        obj += bias * bias;
      }
    }
    if (best_obj < 0.0 || obj < best_obj) {
      best_obj = obj;
      best.selected.clear();
      for (uint32_t s = 0; s < d; ++s) {
        if (mask & (1ULL << s)) best.selected.push_back(s);
      }
      best.objective = obj;
    }
  }
  return best;
}

}  // namespace retrasyn
