// Dataset registry for the evaluation suite. Each entry mirrors one of the
// paper's three datasets (SV-A Table I) via the corresponding generator
// substitute, with a `scale` knob multiplying the population so experiments
// run at laptop scale by default and at paper scale with --scale=1:
//
//   T-Drive-like     886 ts, 10-min granularity; at scale 1 about 233k
//                    streams / 3.2M points / avg length 13.6 (Table I).
//   Oldenburg-like   500 ts; 10k initial + 500/ts arrivals at scale 1
//                    (260k streams / ~14M points, Table I).
//   SanJoaquin-like  1000 ts; 10k initial + 1000/ts arrivals at scale 1
//                    (1.01M streams / ~55M points, Table I).

#ifndef RETRASYN_EVAL_DATASETS_H_
#define RETRASYN_EVAL_DATASETS_H_

#include <string>

#include "common/status.h"
#include "stream/stream_database.h"

namespace retrasyn {

enum class DatasetKind {
  kTDriveLike,
  kOldenburgLike,
  kSanJoaquinLike,
  kRandomWalk,  ///< small structure-free set for tests/examples
};

struct DatasetSpec {
  std::string name;
  DatasetKind kind = DatasetKind::kTDriveLike;
  double scale = 1.0;
  uint64_t seed = 42;
};

DatasetSpec TDriveLike(double scale, uint64_t seed = 42);
DatasetSpec OldenburgLike(double scale, uint64_t seed = 43);
DatasetSpec SanJoaquinLike(double scale, uint64_t seed = 44);
DatasetSpec RandomWalkSmall(double scale, uint64_t seed = 45);

/// \brief Generates the dataset described by \p spec.
StreamDatabase MakeDataset(const DatasetSpec& spec);

/// \brief Looks a dataset up by name ("tdrive", "oldenburg", "sanjoaquin",
/// "randomwalk").
Result<DatasetSpec> DatasetByName(const std::string& name, double scale,
                                  uint64_t seed);

}  // namespace retrasyn

#endif  // RETRASYN_EVAL_DATASETS_H_
