#include "eval/table.h"

#include <algorithm>
#include <cstring>

#include "common/csv.h"

namespace retrasyn {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(FILE* out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (!row.empty() && row[0].rfind("--", 0) == 0) continue;
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::fprintf(out, "%-*s", static_cast<int>(widths[c] + 2), cell.c_str());
    }
    std::fputc('\n', out);
  };
  print_line(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) {
    if (!row.empty() && row[0].rfind("--", 0) == 0) {
      std::fprintf(out, "%s\n", rule.c_str());
    } else {
      print_line(row);
    }
  }
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  auto writer_result = CsvWriter::Open(path);
  if (!writer_result.ok()) return false;
  CsvWriter writer = std::move(writer_result).value();
  writer.WriteRow(headers_);
  for (const auto& row : rows_) {
    if (!row.empty() && row[0].rfind("--", 0) == 0) continue;
    writer.WriteRow(row);
  }
  return writer.Close().ok();
}

}  // namespace retrasyn
