// Aligned-table printing for the bench binaries, so each reproduces the
// paper's rows/series in a readable terminal format (plus optional CSV dump).

#ifndef RETRASYN_EVAL_TABLE_H_
#define RETRASYN_EVAL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace retrasyn {

std::string FormatDouble(double value, int precision = 4);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);
  /// Prints the table with column alignment. A row whose first cell starts
  /// with "--" is rendered as a separator line.
  void Print(FILE* out = stdout) const;
  /// Writes the table as CSV (no alignment padding, separators skipped).
  bool WriteCsv(const std::string& path) const;

  static std::vector<std::string> Separator() { return {"--"}; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace retrasyn

#endif  // RETRASYN_EVAL_TABLE_H_
