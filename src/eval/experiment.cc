#include "eval/experiment.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "metrics/historical.h"
#include "service/replay.h"
#include "service/trajectory_service.h"

namespace retrasyn {

PreparedDataset::PreparedDataset(const StreamDatabase& db, uint32_t grid_k,
                                 GridBackend backend) {
  db_ = std::make_unique<StreamDatabase>(db);
  grid_ = MakeSpatialGrid(db.box(), grid_k, backend).ValueOrDie();
  states_ = std::make_unique<StateSpace>(*grid_);
  feeder_ = std::make_unique<StreamFeeder>(db, *grid_, *states_);
  orig_density_ =
      std::make_unique<DensityIndex>(feeder_->cell_streams(), *grid_);
  orig_transitions_ =
      std::make_unique<TransitionIndex>(feeder_->cell_streams(), *states_);
  average_length_ = std::max(1.0, db.AverageLength());
}

MetricsReport EvaluateMetrics(const PreparedDataset& dataset,
                              const CellStreamSet& synthetic,
                              const StreamingMetricsConfig& metrics_config,
                              uint64_t metrics_seed) {
  MetricsReport report;
  const DensityIndex syn_density(synthetic, dataset.grid());
  const TransitionIndex syn_transitions(synthetic, dataset.states());

  report.density_error =
      AverageDensityError(dataset.original_density(), syn_density);
  report.transition_error =
      AverageTransitionError(dataset.original_transitions(), syn_transitions);

  // Each randomized metric gets its own deterministic stream so that the
  // evaluation workload is identical for every engine under comparison.
  {
    Rng rng(metrics_seed * 2654435761ULL + 1);
    report.query_error =
        AverageQueryError(dataset.original_density(), syn_density,
                          dataset.grid(), metrics_config, rng);
  }
  {
    Rng rng(metrics_seed * 2654435761ULL + 2);
    report.hotspot_ndcg = AverageHotspotNdcg(dataset.original_density(),
                                             syn_density, metrics_config, rng);
  }
  {
    Rng rng(metrics_seed * 2654435761ULL + 3);
    report.pattern_f1 = AveragePatternF1(dataset.original(), synthetic,
                                         metrics_config, rng);
  }
  report.kendall_tau = CellPopularityKendallTau(
      dataset.original(), synthetic, dataset.grid().NumCells());
  report.trip_error =
      TripError(dataset.original(), synthetic, dataset.grid().NumCells());
  report.length_error = LengthError(dataset.original(), synthetic);
  return report;
}

RunResult RunEngine(const PreparedDataset& dataset,
                    StreamReleaseEngine& engine,
                    const StreamingMetricsConfig& metrics_config,
                    uint64_t metrics_seed) {
  RunResult result;
  result.engine_name = engine.name();

  auto service = TrajectoryService::Attach(dataset.states(), &engine);
  service.status().CheckOK();

  Stopwatch watch;
  ReplayDatabase(dataset.db(), *service.value()).CheckOK();
  result.engine_seconds = watch.ElapsedSeconds();
  result.seconds_per_timestamp =
      dataset.horizon() > 0
          ? result.engine_seconds / static_cast<double>(dataset.horizon())
          : 0.0;

  const CellStreamSet synthetic =
      service.value()->SnapshotRelease(dataset.horizon()).ValueOrDie();
  result.metrics =
      EvaluateMetrics(dataset, synthetic, metrics_config, metrics_seed);

  if (auto* retra = dynamic_cast<RetraSynEngine*>(&engine)) {
    result.total_reports = retra->total_reports();
    result.max_window_budget = retra->budget_ledger().MaxWindowSpend();
    result.report_window_violation = retra->report_tracker().HasViolation();
  } else if (auto* ids = dynamic_cast<LdpIdsEngine*>(&engine)) {
    result.max_window_budget = ids->budget_ledger().MaxWindowSpend();
    result.report_window_violation = ids->report_tracker().HasViolation();
  }
  return result;
}

const char* MethodName(MethodId id) {
  switch (id) {
    case MethodId::kLBD:
      return "LBD";
    case MethodId::kLBA:
      return "LBA";
    case MethodId::kLPD:
      return "LPD";
    case MethodId::kLPA:
      return "LPA";
    case MethodId::kRetraSynB:
      return "RetraSyn_b";
    case MethodId::kRetraSynP:
      return "RetraSyn_p";
    case MethodId::kAllUpdateB:
      return "AllUpdate_b";
    case MethodId::kAllUpdateP:
      return "AllUpdate_p";
    case MethodId::kNoEQB:
      return "NoEQ_b";
    case MethodId::kNoEQP:
      return "NoEQ_p";
  }
  return "?";
}

std::unique_ptr<StreamReleaseEngine> MakeEngine(MethodId id,
                                                const StateSpace& states,
                                                double epsilon, int window,
                                                AllocationKind allocation,
                                                double lambda, uint64_t seed,
                                                CollectionMode mode) {
  switch (id) {
    case MethodId::kLBD:
    case MethodId::kLBA:
    case MethodId::kLPD:
    case MethodId::kLPA: {
      LdpIdsConfig config;
      config.epsilon = epsilon;
      config.window = window;
      config.collection_mode = mode;
      config.seed = seed;
      switch (id) {
        case MethodId::kLBD:
          config.method = LdpIdsMethod::kLBD;
          break;
        case MethodId::kLBA:
          config.method = LdpIdsMethod::kLBA;
          break;
        case MethodId::kLPD:
          config.method = LdpIdsMethod::kLPD;
          break;
        default:
          config.method = LdpIdsMethod::kLPA;
          break;
      }
      return std::make_unique<LdpIdsEngine>(states, config);
    }
    default: {
      RetraSynConfig config;
      config.epsilon = epsilon;
      config.window = window;
      config.allocation.kind = allocation;
      config.lambda = lambda;
      config.collection_mode = mode;
      config.seed = seed;
      config.division = (id == MethodId::kRetraSynB ||
                         id == MethodId::kAllUpdateB || id == MethodId::kNoEQB)
                            ? DivisionStrategy::kBudget
                            : DivisionStrategy::kPopulation;
      config.use_dmu =
          !(id == MethodId::kAllUpdateB || id == MethodId::kAllUpdateP);
      config.use_eq = !(id == MethodId::kNoEQB || id == MethodId::kNoEQP);
      return std::make_unique<RetraSynEngine>(states, config);
    }
  }
}

}  // namespace retrasyn
