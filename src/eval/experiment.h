// Experiment harness: prepares a dataset once (grid mapping, feeder batches,
// ground-truth indices), runs any StreamReleaseEngine over it, and evaluates
// the full metric suite of SV-B. All bench binaries are thin wrappers over
// this module.

#ifndef RETRASYN_EVAL_EXPERIMENT_H_
#define RETRASYN_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>

#include "baselines/ldp_ids.h"
#include "core/engine.h"
#include "eval/datasets.h"
#include "geo/grid_factory.h"
#include "metrics/queries.h"
#include "metrics/streaming.h"
#include "stream/feeder.h"

namespace retrasyn {

/// \brief All eight utility metrics of the paper's evaluation.
struct MetricsReport {
  double density_error = 0.0;
  double query_error = 0.0;
  double hotspot_ndcg = 0.0;
  double transition_error = 0.0;
  double pattern_f1 = 0.0;
  double kendall_tau = 0.0;
  double trip_error = 0.0;
  double length_error = 0.0;
};

/// \brief A dataset discretized against a grid, with ground-truth indices
/// built once and shared across all engine runs of an experiment. Keeps the
/// raw database so runs can replay it through the streaming service layer.
class PreparedDataset {
 public:
  /// Discretizes against \p backend at an effective cell count matched to a
  /// uniform grid_k x grid_k grid (see MakeSpatialGrid).
  PreparedDataset(const StreamDatabase& db, uint32_t grid_k,
                  GridBackend backend = GridBackend::kUniform);

  const StreamDatabase& db() const { return *db_; }
  const SpatialGrid& grid() const { return *grid_; }
  const StateSpace& states() const { return *states_; }
  const StreamFeeder& feeder() const { return *feeder_; }
  const CellStreamSet& original() const { return feeder_->cell_streams(); }
  const DensityIndex& original_density() const { return *orig_density_; }
  const TransitionIndex& original_transitions() const {
    return *orig_transitions_;
  }
  int64_t horizon() const { return feeder_->num_timestamps(); }
  double average_length() const { return average_length_; }

 private:
  std::unique_ptr<StreamDatabase> db_;
  std::unique_ptr<SpatialGrid> grid_;
  std::unique_ptr<StateSpace> states_;
  std::unique_ptr<StreamFeeder> feeder_;
  std::unique_ptr<DensityIndex> orig_density_;
  std::unique_ptr<TransitionIndex> orig_transitions_;
  double average_length_ = 1.0;
};

/// \brief Outcome of one engine run over a prepared dataset.
struct RunResult {
  std::string engine_name;
  MetricsReport metrics;
  /// Total wall-clock of the streaming run: the engine's Observe work plus
  /// the ingestion-session overhead of the service replay (the deployed
  /// path). Per-component engine times remain in engine.component_times().
  double engine_seconds = 0.0;
  double seconds_per_timestamp = 0.0;
  uint64_t total_reports = 0;
  double max_window_budget = 0.0;       ///< budget-division w-event audit
  bool report_window_violation = false; ///< population-division audit
};

/// \brief Streams the dataset through \p engine via the streaming service
/// layer (TrajectoryService + ReplayDatabase; bit-identical to the legacy
/// precomputed-batch loop), then evaluates all metrics. The same
/// \p metrics_seed must be reused across engines under comparison so they
/// face identical random queries/ranges.
RunResult RunEngine(const PreparedDataset& dataset,
                    StreamReleaseEngine& engine,
                    const StreamingMetricsConfig& metrics_config,
                    uint64_t metrics_seed);

/// \brief Computes the metric suite for an already-released synthetic set.
MetricsReport EvaluateMetrics(const PreparedDataset& dataset,
                              const CellStreamSet& synthetic,
                              const StreamingMetricsConfig& metrics_config,
                              uint64_t metrics_seed);

/// \brief The six methods of the paper's headline comparison plus the four
/// ablation variants of Table IV.
enum class MethodId {
  kLBD,
  kLBA,
  kLPD,
  kLPA,
  kRetraSynB,
  kRetraSynP,
  kAllUpdateB,
  kAllUpdateP,
  kNoEQB,
  kNoEQP,
};

const char* MethodName(MethodId id);

/// \brief Engine factory shared by benches/examples. \p lambda is the Eq. 8
/// reweighting factor (pass the dataset's average stream length);
/// \p allocation applies to the RetraSyn-family methods only.
std::unique_ptr<StreamReleaseEngine> MakeEngine(
    MethodId id, const StateSpace& states, double epsilon, int window,
    AllocationKind allocation, double lambda, uint64_t seed,
    CollectionMode mode = CollectionMode::kAggregateSim);

}  // namespace retrasyn

#endif  // RETRASYN_EVAL_EXPERIMENT_H_
