#include "eval/datasets.h"

#include <algorithm>
#include <cmath>

#include "stream/hotspot_generator.h"
#include "stream/network_generator.h"
#include "stream/random_walk_generator.h"

namespace retrasyn {

namespace {

uint32_t Scaled(uint32_t base, double scale) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::llround(base * scale)));
}

}  // namespace

DatasetSpec TDriveLike(double scale, uint64_t seed) {
  return DatasetSpec{"T-Drive-like", DatasetKind::kTDriveLike, scale, seed};
}
DatasetSpec OldenburgLike(double scale, uint64_t seed) {
  return DatasetSpec{"Oldenburg-like", DatasetKind::kOldenburgLike, scale,
                     seed};
}
DatasetSpec SanJoaquinLike(double scale, uint64_t seed) {
  return DatasetSpec{"SanJoaquin-like", DatasetKind::kSanJoaquinLike, scale,
                     seed};
}
DatasetSpec RandomWalkSmall(double scale, uint64_t seed) {
  return DatasetSpec{"RandomWalk", DatasetKind::kRandomWalk, scale, seed};
}

StreamDatabase MakeDataset(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  switch (spec.kind) {
    case DatasetKind::kTDriveLike: {
      HotspotGeneratorConfig config;
      config.num_timestamps = 886;
      config.initial_users = Scaled(3600, spec.scale);
      config.mean_arrivals = std::max(1.0, 260.0 * spec.scale);
      return GenerateHotspotStreams(config, rng);
    }
    case DatasetKind::kOldenburgLike: {
      NetworkGeneratorConfig config;
      config.num_timestamps = 500;
      config.initial_objects = Scaled(10000, spec.scale);
      config.arrivals_per_timestamp = Scaled(500, spec.scale);
      config.quit_probability = 0.02;
      config.network.grid_dim = 16;
      return GenerateNetworkStreams(config, rng);
    }
    case DatasetKind::kSanJoaquinLike: {
      NetworkGeneratorConfig config;
      config.num_timestamps = 1000;
      config.initial_objects = Scaled(10000, spec.scale);
      config.arrivals_per_timestamp = Scaled(1000, spec.scale);
      config.quit_probability = 0.018;
      config.network.grid_dim = 20;
      config.network.box = BoundingBox{0.0, 0.0, 14000.0, 14000.0};
      return GenerateNetworkStreams(config, rng);
    }
    case DatasetKind::kRandomWalk: {
      RandomWalkConfig config;
      config.initial_users = Scaled(200, spec.scale);
      config.mean_arrivals = std::max(1.0, 10.0 * spec.scale);
      return GenerateRandomWalkStreams(config, rng);
    }
  }
  RandomWalkConfig fallback;
  return GenerateRandomWalkStreams(fallback, rng);
}

Result<DatasetSpec> DatasetByName(const std::string& name, double scale,
                                  uint64_t seed) {
  if (name == "tdrive") return TDriveLike(scale, seed);
  if (name == "oldenburg") return OldenburgLike(scale, seed);
  if (name == "sanjoaquin") return SanJoaquinLike(scale, seed);
  if (name == "randomwalk") return RandomWalkSmall(scale, seed);
  return Status::NotFound("unknown dataset: " + name +
                          " (expected tdrive|oldenburg|sanjoaquin|randomwalk)");
}

}  // namespace retrasyn
