#include "metrics/streaming.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "metrics/histogram.h"
#include "metrics/patterns.h"

namespace retrasyn {

double AverageDensityError(const DensityIndex& orig, const DensityIndex& syn) {
  RETRASYN_CHECK(orig.num_timestamps() == syn.num_timestamps());
  const int64_t horizon = orig.num_timestamps();
  if (horizon == 0) return 0.0;
  double total = 0.0;
  for (int64_t t = 0; t < horizon; ++t) {
    total += JensenShannonDivergence(orig.DensityAt(t), syn.DensityAt(t));
  }
  return total / static_cast<double>(horizon);
}

double AverageQueryError(const DensityIndex& orig, const DensityIndex& syn,
                         const SpatialGrid& grid,
                         const StreamingMetricsConfig& config, Rng& rng) {
  double total = 0.0;
  size_t n = 0;
  auto accumulate = [&](double o, double s, int64_t t_start, int64_t t_end) {
    const double sanity =
        config.sanity_fraction *
        static_cast<double>(orig.TotalPointsIn(t_start, t_end));
    const double denom = std::max(o, std::max(sanity, 1.0));
    total += std::abs(o - s) / denom;
    ++n;
  };
  if (const UniformGrid* uniform = grid.AsUniform()) {
    const std::vector<RangeQuery> queries = GenerateRandomQueries(
        *uniform, orig.num_timestamps(), config.phi, config.num_queries, rng);
    for (const RangeQuery& q : queries) {
      accumulate(static_cast<double>(orig.Count(q)),
                 static_cast<double>(syn.Count(q)), q.t_start, q.t_end);
    }
  } else {
    const std::vector<BoxQuery> queries = GenerateRandomBoxQueries(
        grid, orig.num_timestamps(), config.phi, config.num_queries, rng);
    for (const BoxQuery& q : queries) {
      accumulate(static_cast<double>(orig.CountBox(q)),
                 static_cast<double>(syn.CountBox(q)), q.t_start, q.t_end);
    }
  }
  if (n == 0) return 0.0;
  return total / static_cast<double>(n);
}

double AverageHotspotNdcg(const DensityIndex& orig, const DensityIndex& syn,
                          const StreamingMetricsConfig& config, Rng& rng) {
  const int64_t horizon = orig.num_timestamps();
  const int64_t max_start = std::max<int64_t>(0, horizon - config.phi);
  if (config.num_hotspot_ranges <= 0) return 0.0;
  double total = 0.0;
  for (int i = 0; i < config.num_hotspot_ranges; ++i) {
    const int64_t t0 = max_start == 0 ? 0 : rng.UniformInt(0, max_start);
    const std::vector<double> rel = orig.AggregateDensity(t0, t0 + config.phi);
    const std::vector<double> pred = syn.AggregateDensity(t0, t0 + config.phi);
    const std::vector<uint32_t> ranking = TopKIndices(pred, config.hotspot_k);
    total += NdcgAtK(rel, ranking, config.hotspot_k);
  }
  return total / static_cast<double>(config.num_hotspot_ranges);
}

TransitionIndex::TransitionIndex(const CellStreamSet& set,
                                 const StateSpace& states) {
  const int64_t horizon = set.num_timestamps();
  counts_.assign(horizon, std::vector<uint32_t>(states.num_move_states(), 0));
  const SpatialGrid& grid = states.grid();
  for (const CellStream& s : set.streams()) {
    for (int64_t t = s.enter_time + 1; t < s.end_time(); ++t) {
      const CellId from = s.At(t - 1);
      const CellId to = s.At(t);
      if (!grid.AreNeighbors(from, to)) continue;  // cannot be encoded
      const StateId id = states.MoveIndex(from, to);
      RETRASYN_DCHECK(id != kInvalidState);
      ++counts_[t][id];
    }
  }
}

double AverageTransitionError(const TransitionIndex& orig,
                              const TransitionIndex& syn) {
  RETRASYN_CHECK(orig.num_timestamps() == syn.num_timestamps());
  const int64_t horizon = orig.num_timestamps();
  // Timestamp 0 has no incoming transitions on either side; skip it.
  if (horizon <= 1) return 0.0;
  double total = 0.0;
  for (int64_t t = 1; t < horizon; ++t) {
    total +=
        JensenShannonDivergence(orig.TransitionsAt(t), syn.TransitionsAt(t));
  }
  return total / static_cast<double>(horizon - 1);
}

double AveragePatternF1(const CellStreamSet& orig, const CellStreamSet& syn,
                        const StreamingMetricsConfig& config, Rng& rng) {
  const int64_t horizon = orig.num_timestamps();
  const int64_t max_start = std::max<int64_t>(0, horizon - config.phi);
  if (config.num_pattern_ranges <= 0) return 0.0;
  double total = 0.0;
  for (int i = 0; i < config.num_pattern_ranges; ++i) {
    const int64_t t0 = max_start == 0 ? 0 : rng.UniformInt(0, max_start);
    const std::vector<PatternKey> po =
        TopPatterns(orig, t0, t0 + config.phi, config.pattern_min_len,
                    config.pattern_max_len, config.pattern_top_n);
    const std::vector<PatternKey> ps =
        TopPatterns(syn, t0, t0 + config.phi, config.pattern_min_len,
                    config.pattern_max_len, config.pattern_top_n);
    total += PatternSetF1(po, ps);
  }
  return total / static_cast<double>(config.num_pattern_ranges);
}

}  // namespace retrasyn
