// Mobility-pattern mining (paper SV-B "Pattern F1"): a pattern is an ordered
// sequence of consecutive cells; the metric compares the top-N most frequent
// patterns of the synthetic and original sets within a time window.
//
// Patterns of length 2..5 are packed into a uint64 key (12 bits per cell plus
// a length tag), which requires the grid to have at most 4096 cells — ample
// for the paper's K <= 18.

#ifndef RETRASYN_METRICS_PATTERNS_H_
#define RETRASYN_METRICS_PATTERNS_H_

#include <cstdint>
#include <vector>

#include "stream/cell_stream.h"

namespace retrasyn {

using PatternKey = uint64_t;

inline constexpr int kMaxPatternLength = 5;
inline constexpr uint32_t kMaxPatternCells = 1u << 12;

/// \brief Packs a consecutive-cell window into a key. Requires
/// 2 <= len <= kMaxPatternLength and all cells < kMaxPatternCells.
PatternKey PackPattern(const CellId* cells, int len);

/// \brief Unpacks a key back into its cell sequence (for debugging/tests).
std::vector<CellId> UnpackPattern(PatternKey key);

/// \brief The top_n most frequent patterns of length [min_len, max_len]
/// occurring inside [t_start, t_end) across all streams, most frequent first
/// (ties by smaller key).
std::vector<PatternKey> TopPatterns(const CellStreamSet& set, int64_t t_start,
                                    int64_t t_end, int min_len, int max_len,
                                    size_t top_n);

/// \brief F1 overlap of two top-pattern sets.
double PatternSetF1(const std::vector<PatternKey>& a,
                    const std::vector<PatternKey>& b);

}  // namespace retrasyn

#endif  // RETRASYN_METRICS_PATTERNS_H_
