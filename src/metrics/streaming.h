// Streaming utility metrics (paper SV-B): global level (Density Error,
// Query Error, Hotspot NDCG) and semantic level (Transition Error,
// Pattern F1). All metrics compare the original discretized streams with the
// released synthetic streams; randomized metrics (queries, time ranges) take
// an explicit RNG so evaluations are reproducible and identical across the
// methods being compared.

#ifndef RETRASYN_METRICS_STREAMING_H_
#define RETRASYN_METRICS_STREAMING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/state_space.h"
#include "metrics/queries.h"
#include "stream/cell_stream.h"

namespace retrasyn {

struct StreamingMetricsConfig {
  /// Evaluation time range size phi (paper Table II; default 10).
  int64_t phi = 10;
  int num_queries = 100;
  int num_hotspot_ranges = 100;
  int hotspot_k = 10;  ///< NDCG@n_h with n_h = 10
  int num_pattern_ranges = 100;
  int pattern_min_len = 2;
  int pattern_max_len = 3;
  size_t pattern_top_n = 100;
  /// Sanity bound for query error: max(true, fraction * points-in-range).
  double sanity_fraction = 0.01;
};

/// \brief Mean per-timestamp JSD between original and synthetic density
/// distributions.
double AverageDensityError(const DensityIndex& orig, const DensityIndex& syn);

/// \brief Mean relative error of random spatio-temporal range queries with
/// the sanity bound of the synthesis literature. On a uniform grid the
/// queries are the classic cell rectangles (bit-identical to the
/// pre-SpatialGrid implementation); adaptive backends use continuous box
/// queries with cell-center membership.
double AverageQueryError(const DensityIndex& orig, const DensityIndex& syn,
                         const SpatialGrid& grid,
                         const StreamingMetricsConfig& config, Rng& rng);

/// \brief Mean NDCG@k of the synthetic top-k hotspot ranking over random time
/// ranges of length phi.
double AverageHotspotNdcg(const DensityIndex& orig, const DensityIndex& syn,
                          const StreamingMetricsConfig& config, Rng& rng);

/// \brief Per-timestamp movement-transition histograms of a stream set
/// (dense over the movement-state domain), used by the transition error.
class TransitionIndex {
 public:
  TransitionIndex(const CellStreamSet& set, const StateSpace& states);

  int64_t num_timestamps() const {
    return static_cast<int64_t>(counts_.size());
  }
  /// Movement-state counts for transitions arriving at timestamp \p t.
  const std::vector<uint32_t>& TransitionsAt(int64_t t) const {
    return counts_[t];
  }

 private:
  std::vector<std::vector<uint32_t>> counts_;
};

/// \brief Mean per-timestamp JSD between original and synthetic transition
/// distributions.
double AverageTransitionError(const TransitionIndex& orig,
                              const TransitionIndex& syn);

/// \brief Mean F1 between the top-N frequent mobility patterns of the two
/// sets over random time ranges of length phi.
double AveragePatternF1(const CellStreamSet& orig, const CellStreamSet& syn,
                        const StreamingMetricsConfig& config, Rng& rng);

}  // namespace retrasyn

#endif  // RETRASYN_METRICS_STREAMING_H_
