// Distribution-comparison primitives shared by the utility metrics:
// Jensen-Shannon divergence (natural log, matching the paper: the maximal
// JSD between disjoint distributions is ln 2 = 0.6931, the value the
// baselines hit on Length Error in Table III), Kendall tau-b, and NDCG.

#ifndef RETRASYN_METRICS_HISTOGRAM_H_
#define RETRASYN_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace retrasyn {

/// \brief JSD between two non-negative vectors, which are normalized
/// internally. Conventions for empty mass: JSD(0, 0) = 0 and
/// JSD(P, 0) = ln 2 (maximally different).
double JensenShannonDivergence(const std::vector<double>& p,
                               const std::vector<double>& q);

/// Convenience overload for count histograms.
double JensenShannonDivergence(const std::vector<uint32_t>& p,
                               const std::vector<uint32_t>& q);

/// \brief Kendall tau-b rank correlation between two paired score vectors
/// (tie-corrected). Returns 0 when either vector is constant.
double KendallTauB(const std::vector<double>& a, const std::vector<double>& b);

/// \brief NDCG@k of a predicted item ranking against graded relevance.
///
/// \param relevance  relevance (e.g. true counts) per item id
/// \param ranking    predicted item ids, best first; only the first k used
double NdcgAtK(const std::vector<double>& relevance,
               const std::vector<uint32_t>& ranking, int k);

/// \brief Indices of the k largest entries of \p scores, descending (ties
/// broken by lower index).
std::vector<uint32_t> TopKIndices(const std::vector<double>& scores, int k);

}  // namespace retrasyn

#endif  // RETRASYN_METRICS_HISTOGRAM_H_
