#include "metrics/historical.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "metrics/histogram.h"

namespace retrasyn {

namespace {

std::vector<double> VisitCounts(const CellStreamSet& set, uint32_t num_cells) {
  std::vector<double> counts(num_cells, 0.0);
  for (const CellStream& s : set.streams()) {
    for (CellId c : s.cells) ++counts[c];
  }
  return counts;
}

std::vector<double> TripCounts(const CellStreamSet& set, uint32_t num_cells) {
  std::vector<double> counts(static_cast<size_t>(num_cells) * num_cells, 0.0);
  for (const CellStream& s : set.streams()) {
    const CellId start = s.cells.front();
    const CellId end = s.cells.back();
    ++counts[static_cast<size_t>(start) * num_cells + end];
  }
  return counts;
}

}  // namespace

double CellPopularityKendallTau(const CellStreamSet& orig,
                                const CellStreamSet& syn, uint32_t num_cells) {
  return KendallTauB(VisitCounts(orig, num_cells),
                     VisitCounts(syn, num_cells));
}

double TripError(const CellStreamSet& orig, const CellStreamSet& syn,
                 uint32_t num_cells) {
  return JensenShannonDivergence(TripCounts(orig, num_cells),
                                 TripCounts(syn, num_cells));
}

namespace {

// Diameter of one stream: the maximum pairwise distance between the centers
// of its *distinct* visited cells. Streams revisit cells heavily, so the
// distinct set is small and the exact O(k^2) scan is cheap.
double StreamDiameter(const CellStream& s, const SpatialGrid& grid) {
  std::vector<CellId> distinct(s.cells);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  double diameter = 0.0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    const Point a = grid.CellCenter(distinct[i]);
    for (size_t j = i + 1; j < distinct.size(); ++j) {
      diameter = std::max(diameter,
                          EuclideanDistance(a, grid.CellCenter(distinct[j])));
    }
  }
  return diameter;
}

}  // namespace

double DiameterError(const CellStreamSet& orig, const CellStreamSet& syn,
                     const SpatialGrid& grid, int num_buckets) {
  RETRASYN_CHECK(num_buckets >= 1);
  const double max_diameter =
      EuclideanDistance(Point{grid.box().min_x, grid.box().min_y},
                        Point{grid.box().max_x, grid.box().max_y});
  const double width = max_diameter / num_buckets;
  auto histogram = [&](const CellStreamSet& set) {
    std::vector<double> h(num_buckets, 0.0);
    for (const CellStream& s : set.streams()) {
      int b = width <= 0.0
                  ? 0
                  : static_cast<int>(StreamDiameter(s, grid) / width);
      b = std::clamp(b, 0, num_buckets - 1);
      ++h[b];
    }
    return h;
  };
  return JensenShannonDivergence(histogram(orig), histogram(syn));
}

double LengthError(const CellStreamSet& orig, const CellStreamSet& syn,
                   int num_buckets) {
  RETRASYN_CHECK(num_buckets >= 1);
  size_t max_len = 1;
  for (const CellStream& s : orig.streams()) {
    max_len = std::max(max_len, s.length());
  }
  for (const CellStream& s : syn.streams()) {
    max_len = std::max(max_len, s.length());
  }
  const double bucket_width =
      static_cast<double>(max_len) / static_cast<double>(num_buckets);
  auto histogram = [&](const CellStreamSet& set) {
    std::vector<double> h(num_buckets, 0.0);
    for (const CellStream& s : set.streams()) {
      int b = static_cast<int>(static_cast<double>(s.length() - 1) /
                               bucket_width);
      b = std::clamp(b, 0, num_buckets - 1);
      ++h[b];
    }
    return h;
  };
  return JensenShannonDivergence(histogram(orig), histogram(syn));
}

}  // namespace retrasyn
