// Spatio-temporal range queries (paper SV-B "Query Error") and the density
// index that answers them in O(time-range) via per-timestamp 2D prefix sums.

#ifndef RETRASYN_METRICS_QUERIES_H_
#define RETRASYN_METRICS_QUERIES_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/grid.h"
#include "stream/cell_stream.h"

namespace retrasyn {

/// \brief A rectangular cell region crossed with a timestamp range
/// [t_start, t_end). Row/column indexed, so meaningful only on the uniform
/// lattice; BoxQuery is the backend-agnostic form.
struct RangeQuery {
  uint32_t row_lo = 0;
  uint32_t row_hi = 0;  ///< inclusive
  uint32_t col_lo = 0;
  uint32_t col_hi = 0;  ///< inclusive
  int64_t t_start = 0;
  int64_t t_end = 0;    ///< exclusive
};

/// \brief A continuous spatial rectangle crossed with a timestamp range
/// [t_start, t_end); cells belong to the query when their center lies inside
/// the box. Works against any SpatialGrid backend.
struct BoxQuery {
  BoundingBox box;
  int64_t t_start = 0;
  int64_t t_end = 0;    ///< exclusive
};

/// \brief Per-timestamp per-cell point counts with 2D prefix sums; answers
/// density lookups and rectangle counts for a CellStreamSet.
class DensityIndex {
 public:
  DensityIndex(const CellStreamSet& set, const SpatialGrid& grid);

  int64_t num_timestamps() const {
    return static_cast<int64_t>(counts_.size());
  }

  /// Raw per-cell counts at timestamp \p t.
  const std::vector<uint32_t>& DensityAt(int64_t t) const {
    return counts_[t];
  }

  /// Cell counts aggregated over [t_start, t_end) (clamped to the horizon).
  std::vector<double> AggregateDensity(int64_t t_start, int64_t t_end) const;

  /// Number of points inside the query region over its time range. Aborts
  /// when the index was built over a grid without a uniform view (2D prefix
  /// sums only exist on the uniform lattice); use CountBox there.
  uint64_t Count(const RangeQuery& query) const;

  /// Number of points over the query's time range in cells whose center lies
  /// inside the query box; works for every backend.
  uint64_t CountBox(const BoxQuery& query) const;

  /// Total points in a time range (for the query-error sanity bound).
  uint64_t TotalPointsIn(int64_t t_start, int64_t t_end) const;

 private:
  uint64_t CountAt(int64_t t, uint32_t row_lo, uint32_t row_hi,
                   uint32_t col_lo, uint32_t col_hi) const;

  const SpatialGrid* grid_;
  uint32_t k_ = 0;  ///< uniform lattice size; 0 when the grid is not uniform
  std::vector<std::vector<uint32_t>> counts_;   ///< [t][cell]
  /// Per-timestamp (k+1)x(k+1) 2D sums; built only on the uniform lattice.
  std::vector<std::vector<uint64_t>> prefix_;
  std::vector<uint64_t> totals_;                ///< points per timestamp
};

/// \brief Samples \p count random queries: rectangle edges uniform in
/// [1, max(1, K/2)] cells, position uniform, time window of length \p phi
/// placed uniformly in [0, horizon - phi].
std::vector<RangeQuery> GenerateRandomQueries(const UniformGrid& grid,
                                              int64_t horizon, int64_t phi,
                                              int count, Rng& rng);

/// \brief Backend-agnostic analogue of GenerateRandomQueries: rectangle
/// edge lengths uniform in (0, W/2] x (0, H/2] of the grid box, position
/// uniform inside the box, time window of length \p phi placed uniformly.
std::vector<BoxQuery> GenerateRandomBoxQueries(const SpatialGrid& grid,
                                               int64_t horizon, int64_t phi,
                                               int count, Rng& rng);

}  // namespace retrasyn

#endif  // RETRASYN_METRICS_QUERIES_H_
