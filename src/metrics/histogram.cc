#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace retrasyn {

namespace {

constexpr double kLn2 = 0.6931471805599453;

double MassOf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) {
    if (x > 0.0) m += x;
  }
  return m;
}

}  // namespace

double JensenShannonDivergence(const std::vector<double>& p,
                               const std::vector<double>& q) {
  RETRASYN_CHECK(p.size() == q.size());
  const double mp = MassOf(p);
  const double mq = MassOf(q);
  if (mp <= 0.0 && mq <= 0.0) return 0.0;
  if (mp <= 0.0 || mq <= 0.0) return kLn2;
  double jsd = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] > 0.0 ? p[i] / mp : 0.0;
    const double qi = q[i] > 0.0 ? q[i] / mq : 0.0;
    const double mi = 0.5 * (pi + qi);
    if (pi > 0.0) jsd += 0.5 * pi * std::log(pi / mi);
    if (qi > 0.0) jsd += 0.5 * qi * std::log(qi / mi);
  }
  // Clamp tiny negative float residue.
  return std::max(0.0, jsd);
}

double JensenShannonDivergence(const std::vector<uint32_t>& p,
                               const std::vector<uint32_t>& q) {
  std::vector<double> dp(p.begin(), p.end());
  std::vector<double> dq(q.begin(), q.end());
  return JensenShannonDivergence(dp, dq);
}

double KendallTauB(const std::vector<double>& a,
                   const std::vector<double>& b) {
  RETRASYN_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  int64_t concordant = 0, discordant = 0;
  int64_t ties_a = 0, ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) continue;  // tied in both: excluded
      if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(concordant + discordant);
  const double denom = std::sqrt((n0 + ties_a) * (n0 + ties_b));
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

std::vector<uint32_t> TopKIndices(const std::vector<double>& scores, int k) {
  std::vector<uint32_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  const size_t kk = std::min<size_t>(k, scores.size());
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                    [&](uint32_t x, uint32_t y) {
                      if (scores[x] != scores[y]) return scores[x] > scores[y];
                      return x < y;
                    });
  idx.resize(kk);
  return idx;
}

double NdcgAtK(const std::vector<double>& relevance,
               const std::vector<uint32_t>& ranking, int k) {
  const size_t kk = std::min<size_t>(k, ranking.size());
  double dcg = 0.0;
  for (size_t i = 0; i < kk; ++i) {
    const double rel = relevance[ranking[i]];
    dcg += rel / std::log2(static_cast<double>(i) + 2.0);
  }
  // Ideal DCG from the top-k true relevances.
  std::vector<uint32_t> ideal = TopKIndices(relevance, static_cast<int>(kk));
  double idcg = 0.0;
  for (size_t i = 0; i < ideal.size(); ++i) {
    idcg += relevance[ideal[i]] / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg <= 0.0) return 0.0;
  return dcg / idcg;
}

}  // namespace retrasyn
