// Historical, trajectory-level utility metrics (paper SV-B "Historical
// Metrics"): Kendall tau on cell popularity, Trip Error on the joint
// start/end distribution, and Length Error on the stream-length distribution.
// These operate on entire released streams, which is exactly what the
// synthesis-based release enables and histogram-style baselines cannot serve.

#ifndef RETRASYN_METRICS_HISTORICAL_H_
#define RETRASYN_METRICS_HISTORICAL_H_

#include <cstdint>

#include "geo/spatial_grid.h"
#include "stream/cell_stream.h"

namespace retrasyn {

/// \brief Kendall tau-b between the per-cell total visit counts of the two
/// sets (popularity-ranking agreement; higher is better, in [-1, 1]).
double CellPopularityKendallTau(const CellStreamSet& orig,
                                const CellStreamSet& syn, uint32_t num_cells);

/// \brief JSD between the joint (start cell, end cell) trip distributions.
double TripError(const CellStreamSet& orig, const CellStreamSet& syn,
                 uint32_t num_cells);

/// \brief JSD between stream-length histograms. Lengths are measured in
/// reports per stream and bucketed into \p num_buckets equal-width bins over
/// the combined observed range.
double LengthError(const CellStreamSet& orig, const CellStreamSet& syn,
                   int num_buckets = 20);

/// \brief JSD between trajectory-diameter histograms (AdaTrace / LDPTrace
/// lineage, the predecessors the paper builds on). A stream's diameter is
/// the largest distance between any two of its cell centers; computed on the
/// cells' row/col lattice via the bounding box of visited cells, bucketed
/// into \p num_buckets equal-width bins.
double DiameterError(const CellStreamSet& orig, const CellStreamSet& syn,
                     const SpatialGrid& grid, int num_buckets = 20);

}  // namespace retrasyn

#endif  // RETRASYN_METRICS_HISTORICAL_H_
