#include "metrics/patterns.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace retrasyn {

PatternKey PackPattern(const CellId* cells, int len) {
  RETRASYN_DCHECK(len >= 2 && len <= kMaxPatternLength);
  PatternKey key = static_cast<PatternKey>(len);
  for (int i = 0; i < len; ++i) {
    RETRASYN_DCHECK(cells[i] < kMaxPatternCells);
    key = (key << 12) | cells[i];
  }
  return key;
}

std::vector<CellId> UnpackPattern(PatternKey key) {
  // The length tag sits above len * 12 bits of payload.
  int len = 0;
  for (int cand = 2; cand <= kMaxPatternLength; ++cand) {
    if ((key >> (12 * cand)) == static_cast<PatternKey>(cand)) len = cand;
  }
  RETRASYN_CHECK(len != 0);
  std::vector<CellId> cells(len);
  for (int i = len - 1; i >= 0; --i) {
    cells[i] = static_cast<CellId>(key & 0xfff);
    key >>= 12;
  }
  return cells;
}

std::vector<PatternKey> TopPatterns(const CellStreamSet& set, int64_t t_start,
                                    int64_t t_end, int min_len, int max_len,
                                    size_t top_n) {
  RETRASYN_CHECK(min_len >= 2 && max_len <= kMaxPatternLength &&
                 min_len <= max_len);
  std::unordered_map<PatternKey, uint32_t> counts;
  for (const CellStream& s : set.streams()) {
    const int64_t lo = std::max(t_start, s.enter_time);
    const int64_t hi = std::min(t_end, s.end_time());
    if (hi - lo < min_len) continue;
    const CellId* cells = s.cells.data() + (lo - s.enter_time);
    const int span = static_cast<int>(hi - lo);
    for (int len = min_len; len <= max_len; ++len) {
      for (int i = 0; i + len <= span; ++i) {
        ++counts[PackPattern(cells + i, len)];
      }
    }
  }
  std::vector<std::pair<PatternKey, uint32_t>> entries(counts.begin(),
                                                       counts.end());
  const size_t keep = std::min(top_n, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  std::vector<PatternKey> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(entries[i].first);
  return out;
}

double PatternSetF1(const std::vector<PatternKey>& a,
                    const std::vector<PatternKey>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const std::unordered_set<PatternKey> sa(a.begin(), a.end());
  size_t hits = 0;
  for (PatternKey k : b) {
    if (sa.count(k) > 0) ++hits;
  }
  const double precision = static_cast<double>(hits) / b.size();
  const double recall = static_cast<double>(hits) / a.size();
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

}  // namespace retrasyn
