#include "metrics/queries.h"

#include <algorithm>

#include "common/logging.h"

namespace retrasyn {

DensityIndex::DensityIndex(const CellStreamSet& set, const SpatialGrid& grid)
    : grid_(&grid) {
  const int64_t horizon = set.num_timestamps();
  counts_.assign(horizon, std::vector<uint32_t>(grid.NumCells(), 0));
  totals_.assign(horizon, 0);
  for (const CellStream& s : set.streams()) {
    for (int64_t t = s.enter_time; t < s.end_time(); ++t) {
      ++counts_[t][s.At(t)];
      ++totals_[t];
    }
  }
  // Per-timestamp 2D prefix sums over the (k x k) cell lattice:
  // prefix[t][(r+1)*(k+1) + (c+1)] = sum of counts in rows<=r, cols<=c.
  // Rectangle queries only exist on the uniform lattice, so adaptive
  // backends skip the O(horizon * k^2) table entirely.
  const UniformGrid* uniform = grid.AsUniform();
  if (uniform == nullptr) return;
  k_ = uniform->k();
  prefix_.assign(horizon, std::vector<uint64_t>((k_ + 1) * (k_ + 1), 0));
  const uint32_t stride = k_ + 1;
  for (int64_t t = 0; t < horizon; ++t) {
    auto& pre = prefix_[t];
    const auto& cnt = counts_[t];
    for (uint32_t r = 0; r < k_; ++r) {
      for (uint32_t c = 0; c < k_; ++c) {
        pre[(r + 1) * stride + (c + 1)] =
            cnt[r * k_ + c] + pre[r * stride + (c + 1)] +
            pre[(r + 1) * stride + c] - pre[r * stride + c];
      }
    }
  }
}

std::vector<double> DensityIndex::AggregateDensity(int64_t t_start,
                                                   int64_t t_end) const {
  std::vector<double> out(counts_.empty() ? 0 : counts_[0].size(), 0.0);
  const int64_t lo = std::max<int64_t>(0, t_start);
  const int64_t hi = std::min<int64_t>(num_timestamps(), t_end);
  for (int64_t t = lo; t < hi; ++t) {
    const auto& cnt = counts_[t];
    for (size_t c = 0; c < cnt.size(); ++c) out[c] += cnt[c];
  }
  return out;
}

uint64_t DensityIndex::CountAt(int64_t t, uint32_t row_lo, uint32_t row_hi,
                               uint32_t col_lo, uint32_t col_hi) const {
  const uint32_t stride = k_ + 1;
  const auto& pre = prefix_[t];
  return pre[(row_hi + 1) * stride + (col_hi + 1)] -
         pre[row_lo * stride + (col_hi + 1)] -
         pre[(row_hi + 1) * stride + col_lo] + pre[row_lo * stride + col_lo];
}

uint64_t DensityIndex::Count(const RangeQuery& query) const {
  RETRASYN_CHECK_MSG(k_ > 0,
                     "RangeQuery counting requires a uniform grid; "
                     "use CountBox for adaptive backends");
  RETRASYN_DCHECK(query.row_hi < k_ && query.col_hi < k_);
  uint64_t total = 0;
  const int64_t lo = std::max<int64_t>(0, query.t_start);
  const int64_t hi = std::min<int64_t>(num_timestamps(), query.t_end);
  for (int64_t t = lo; t < hi; ++t) {
    total += CountAt(t, query.row_lo, query.row_hi, query.col_lo, query.col_hi);
  }
  return total;
}

uint64_t DensityIndex::CountBox(const BoxQuery& query) const {
  std::vector<CellId> cells;
  for (CellId c = 0; c < grid_->NumCells(); ++c) {
    if (query.box.Contains(grid_->CellCenter(c))) cells.push_back(c);
  }
  uint64_t total = 0;
  const int64_t lo = std::max<int64_t>(0, query.t_start);
  const int64_t hi = std::min<int64_t>(num_timestamps(), query.t_end);
  for (int64_t t = lo; t < hi; ++t) {
    const auto& cnt = counts_[t];
    for (CellId c : cells) total += cnt[c];
  }
  return total;
}

uint64_t DensityIndex::TotalPointsIn(int64_t t_start, int64_t t_end) const {
  uint64_t total = 0;
  const int64_t lo = std::max<int64_t>(0, t_start);
  const int64_t hi = std::min<int64_t>(num_timestamps(), t_end);
  for (int64_t t = lo; t < hi; ++t) total += totals_[t];
  return total;
}

std::vector<RangeQuery> GenerateRandomQueries(const UniformGrid& grid,
                                              int64_t horizon, int64_t phi,
                                              int count, Rng& rng) {
  RETRASYN_CHECK(phi >= 1);
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  const uint32_t k = grid.k();
  const uint32_t max_edge = std::max<uint32_t>(1, k / 2);
  const int64_t max_start = std::max<int64_t>(0, horizon - phi);
  for (int i = 0; i < count; ++i) {
    RangeQuery q;
    const uint32_t h = static_cast<uint32_t>(rng.UniformInt(1, max_edge));
    const uint32_t w = static_cast<uint32_t>(rng.UniformInt(1, max_edge));
    q.row_lo = static_cast<uint32_t>(
        rng.UniformInt(static_cast<uint64_t>(k - h + 1)));
    q.col_lo = static_cast<uint32_t>(
        rng.UniformInt(static_cast<uint64_t>(k - w + 1)));
    q.row_hi = q.row_lo + h - 1;
    q.col_hi = q.col_lo + w - 1;
    q.t_start = max_start == 0
                    ? 0
                    : rng.UniformInt(0, max_start);
    q.t_end = q.t_start + phi;
    queries.push_back(q);
  }
  return queries;
}

std::vector<BoxQuery> GenerateRandomBoxQueries(const SpatialGrid& grid,
                                               int64_t horizon, int64_t phi,
                                               int count, Rng& rng) {
  RETRASYN_CHECK(phi >= 1);
  std::vector<BoxQuery> queries;
  queries.reserve(count);
  const BoundingBox& box = grid.box();
  const int64_t max_start = std::max<int64_t>(0, horizon - phi);
  for (int i = 0; i < count; ++i) {
    BoxQuery q;
    const double w = rng.UniformDouble(0.0, box.Width() / 2.0);
    const double h = rng.UniformDouble(0.0, box.Height() / 2.0);
    const double x0 = box.min_x + rng.UniformDouble(0.0, box.Width() - w);
    const double y0 = box.min_y + rng.UniformDouble(0.0, box.Height() - h);
    q.box = BoundingBox{x0, y0, x0 + w, y0 + h};
    q.t_start = max_start == 0 ? 0 : rng.UniformInt(0, max_start);
    q.t_end = q.t_start + phi;
    queries.push_back(q);
  }
  return queries;
}

}  // namespace retrasyn
