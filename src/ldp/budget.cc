#include "ldp/budget.h"

#include <algorithm>

#include "common/logging.h"

namespace retrasyn {

BudgetLedger::BudgetLedger(int window, double total)
    : window_(window), total_(total) {
  RETRASYN_CHECK(window >= 1);
  RETRASYN_CHECK(total > 0.0);
}

void BudgetLedger::Record(int64_t t, double epsilon) {
  RETRASYN_CHECK(t >= last_t_);
  last_t_ = t;
  EvictBefore(t - window_ + 1);
  if (epsilon > 0.0) {
    spends_.emplace_back(t, epsilon);
    window_sum_ += epsilon;
  }
  max_window_spend_ = std::max(max_window_spend_, window_sum_);
}

double BudgetLedger::SpentInWindow(int64_t t) const {
  double sum = 0.0;
  for (const auto& [ts, eps] : spends_) {
    if (ts >= t - window_ + 1 && ts <= t) sum += eps;
  }
  return sum;
}

double BudgetLedger::RemainingAt(int64_t t) const {
  double spent = 0.0;
  for (const auto& [ts, eps] : spends_) {
    if (ts >= t - window_ + 1 && ts <= t - 1) spent += eps;
  }
  return std::max(0.0, total_ - spent);
}

void BudgetLedger::EvictBefore(int64_t t_min) {
  while (!spends_.empty() && spends_.front().first < t_min) {
    window_sum_ -= spends_.front().second;
    spends_.pop_front();
  }
}

bool ReportWindowTracker::RecordReport(uint64_t user, int64_t t) {
  ++num_reports_;
  auto it = last_report_.find(user);
  if (it != last_report_.end() && t - it->second < window_) {
    violation_ = true;
    it->second = t;
    return false;
  }
  last_report_[user] = t;
  return true;
}

}  // namespace retrasyn
